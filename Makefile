# Local mirror of the CI pipeline (.github/workflows/ci.yml).
#
#   make verify   — the tier-1 gate: release build + full test suite
#   make ci       — everything CI runs: fmt, build, test, clippy
#   make bench    — criterion micro-benchmarks (shimmed harness)
#   make speedup  — parallel-driver mutex-vs-sharded merge comparison

CARGO ?= cargo

.PHONY: verify ci fmt clippy test build bench speedup

verify: build test

build:
	$(CARGO) build --release --workspace --all-targets

test:
	$(CARGO) test -q --workspace

fmt:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

ci: fmt build test clippy

bench:
	$(CARGO) bench -p mlss-bench

speedup:
	$(CARGO) run --release -p mlss-bench --bin parallel_speedup
