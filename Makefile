# Local mirror of the CI pipeline (.github/workflows/ci.yml).
#
#   make verify     — the tier-1 gate: release build + full test suite
#   make ci         — everything CI runs: fmt, build, test, clippy, mt-tests
#   make bench      — criterion micro-benchmarks (shimmed harness)
#   make speedup    — parallel-driver mutex-vs-sharded merge comparison
#   make test-mt    — release tests with 4 test threads (scheduler jobs)
#   make sched-bench — FIFO vs concurrent-serving latency benchmark
#   make kernel-bench — scalar-adapter vs native-batch stepping throughput

CARGO ?= cargo

.PHONY: verify ci fmt clippy test build bench speedup test-mt sched-bench kernel-bench

verify: build test

build:
	$(CARGO) build --release --workspace --all-targets

test:
	$(CARGO) test -q --workspace

fmt:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

test-mt:
	$(CARGO) test --release --workspace -- --test-threads=4

sched-bench:
	$(CARGO) run --release -p mlss-bench --bin scheduler_bench -- --full

kernel-bench:
	$(CARGO) run --release -p mlss-bench --bin kernel_bench -- --full

ci: fmt build test clippy test-mt

bench:
	$(CARGO) bench -p mlss-bench

speedup:
	$(CARGO) run --release -p mlss-bench --bin parallel_speedup
