# Local mirror of the CI pipeline (.github/workflows/ci.yml).
#
#   make verify     — the tier-1 gate: release build + full test suite
#   make ci         — everything CI runs: fmt, build, test, clippy, mt-tests
#   make bench      — criterion micro-benchmarks (shimmed harness)
#   make speedup    — parallel-driver mutex-vs-sharded merge comparison
#   make test-mt    — release tests with 4 test threads (scheduler jobs)
#   make test-scalar — full release suite with the SIMD backend forced off
#   make sched-bench — FIFO vs concurrent-serving latency benchmark
#   make kernel-bench — scalar-adapter vs native-batch stepping throughput
#   make width-bench — batch_width=auto vs static-64 on a mixed workload
#   make wal-bench  — WAL fsync group-commit vs lone-appender throughput
#   make reuse-bench — cross-query shard reuse vs store-disabled baseline
#   make sql-demo   — pipe a demo script through the sql_shell example
#   make test-durability — crash-recovery suites + the kill -9 shell smoke
#   make serve-smoke — mlss_serve + 2-tenant load_bench + shell parity diff
#   make load-bench — overload (capped) + fairness profiles vs a live server
#   make rank-bench — raced RANK BY vs exhaustive per-arm estimation + socket smoke

CARGO ?= cargo

.PHONY: verify ci fmt clippy test build bench speedup test-mt test-scalar sched-bench kernel-bench width-bench wal-bench reuse-bench sql-demo test-durability serve-smoke load-bench rank-bench

verify: build test

build:
	$(CARGO) build --release --workspace --all-targets

test:
	$(CARGO) test -q --workspace

fmt:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

test-mt:
	$(CARGO) test --release --workspace -- --test-threads=4

test-scalar:
	MLSS_SIMD=scalar $(CARGO) test --release --workspace

sched-bench:
	$(CARGO) run --release -p mlss-bench --bin scheduler_bench -- --full

kernel-bench:
	$(CARGO) run --release -p mlss-bench --bin kernel_bench -- --full

# Mirror of the width-policy rows inside the CI kernel bench: the mixed
# workload driven at batch_width=auto vs a static 64, with the
# speculation-discard ledger.
width-bench:
	$(CARGO) run --release -p mlss-bench --bin kernel_bench -- --width

wal-bench:
	$(CARGO) run --release -p mlss-bench --bin wal_bench -- --full

reuse-bench:
	$(CARGO) run --release -p mlss-bench --bin reuse_bench -- --full

sql-demo:
	printf '%s\n' \
	  "SHOW MODELS;" \
	  "EXPLAIN ESTIMATE DURABILITY OF cpp(beta=50) WITHIN 500 USING auto TARGET RE 15% WITH (batch_width=32);" \
	  "ESTIMATE DURABILITY OF walk(beta=6) WITHIN 50 USING srs TARGET RE 30%;" \
	  "ESTIMATE DURABILITY OF ar(beta=3) WITHIN 40 USING gmlss TARGET RE 50% WITH (seed=7) ASYNC;" \
	  "SELECT model, method, tau, plan_cache, shard_reuse FROM results;" \
	  "SHOW DIAGNOSTICS;" \
	  | $(CARGO) run --release --example sql_shell

# The durability gate (mirrors the CI `durability` job): the WAL
# corruption suite, the crash-point recovery sweep, write-ahead
# ordering, and a real kill -9 against the sql_shell — submit an ASYNC
# query, die mid-run, reopen the log, and demand the recovered row.
test-durability:
	$(CARGO) test --release -p mlss-store
	$(CARGO) test --release --test recovery_identity
	$(CARGO) test --release --test failure_injection
	$(CARGO) build --release --example sql_shell
	rm -rf target/wal-smoke && mkdir -p target/wal-smoke
	( printf '%s\n' "ESTIMATE DURABILITY OF walk(beta=6) WITHIN 50 USING gmlss(levels=3) TARGET RE 15% WITH (seed=4242) ASYNC"; sleep 3 ) \
	  | MLSS_WAL_DIR=target/wal-smoke ./target/release/examples/sql_shell & \
	sleep 1; kill -9 $$! 2>/dev/null || true; sleep 1
	printf '%s\n' "SELECT model, method, tau FROM results" \
	  | MLSS_WAL_DIR=target/wal-smoke ./target/release/examples/sql_shell \
	  | tee target/wal-smoke/reopen.txt
	grep -q "walk | gmlss" target/wal-smoke/reopen.txt
	rm -rf target/wal-smoke

# The server front-end gate (mirrors the CI `serve` job): start
# mlss_serve with tight admission caps, drive a 2-tenant open-loop load,
# and demand per-tenant report rows plus at least one shed response;
# then diff the sql_shell's embedded vs connected output row-for-row
# against a fresh, uncapped server (only the inline estimate's
# wall-clock millis cell is masked).
serve-smoke: build
	rm -rf target/serve-smoke && mkdir -p target/serve-smoke
	set -e; \
	./target/release/mlss_serve --listen 127.0.0.1:7878 --tenant alpha --tenant beta \
	  --global-cap 2 --tenant-cap 2 > target/serve-smoke/server.log & pid=$$!; \
	trap "kill $$pid 2>/dev/null || true" EXIT; \
	for i in $$(seq 50); do echo | ./target/release/examples/sql_shell --connect 127.0.0.1:7878 >/dev/null 2>&1 && break; sleep 0.2; done; \
	./target/release/load_bench --connect 127.0.0.1:7878 --smoke | tee target/serve-smoke/smoke.txt; \
	grep -E "^tenant=alpha " target/serve-smoke/smoke.txt; \
	grep -E "^tenant=beta " target/serve-smoke/smoke.txt; \
	grep -E "^shed_response RETRY AFTER" target/serve-smoke/smoke.txt
	set -e; \
	./target/release/mlss_serve --listen 127.0.0.1:7879 > target/serve-smoke/parity-server.log & pid=$$!; \
	trap "kill $$pid 2>/dev/null || true" EXIT; \
	for i in $$(seq 50); do echo | ./target/release/examples/sql_shell --connect 127.0.0.1:7879 >/dev/null 2>&1 && break; sleep 0.2; done; \
	printf '%s\n' \
	  "SHOW MODELS" \
	  "ESTIMATE DURABILITY OF walk(beta=6) WITHIN 50 USING srs TARGET RE 30% WITH (seed=7)" \
	  "SELECT model, method, tau, steps, n_roots FROM results" \
	  > target/serve-smoke/parity.sql; \
	./target/release/examples/sql_shell < target/serve-smoke/parity.sql > target/serve-smoke/embedded.txt; \
	./target/release/examples/sql_shell --connect 127.0.0.1:7879 < target/serve-smoke/parity.sql > target/serve-smoke/connected.txt; \
	awk -F' \| ' 'BEGIN{OFS=" | "} NF>=7{$$7="_"} {print}' target/serve-smoke/embedded.txt > target/serve-smoke/embedded.masked; \
	awk -F' \| ' 'BEGIN{OFS=" | "} NF>=7{$$7="_"} {print}' target/serve-smoke/connected.txt > target/serve-smoke/connected.masked; \
	diff target/serve-smoke/embedded.masked target/serve-smoke/connected.masked

# The overload table + the fairness split, against live servers (this
# is how the PR 9 numbers in CHANGES.md were produced).
load-bench: build
	set -e; \
	./target/release/mlss_serve --listen 127.0.0.1:7878 --tenant alpha --tenant beta \
	  --global-cap 4 --tenant-cap 4 >/dev/null & pid=$$!; \
	trap "kill $$pid 2>/dev/null || true" EXIT; \
	for i in $$(seq 50); do echo | ./target/release/examples/sql_shell --connect 127.0.0.1:7878 >/dev/null 2>&1 && break; sleep 0.2; done; \
	./target/release/load_bench --connect 127.0.0.1:7878 --clients 24 --rate 50 --duration 8 --re 2%
	set -e; \
	./target/release/mlss_serve --listen 127.0.0.1:7879 --workers 1 \
	  --tenant alpha --tenant beta >/dev/null & pid=$$!; \
	trap "kill $$pid 2>/dev/null || true" EXIT; \
	for i in $$(seq 50); do echo | ./target/release/examples/sql_shell --connect 127.0.0.1:7879 >/dev/null 2>&1 && break; sleep 0.2; done; \
	./target/release/load_bench --connect 127.0.0.1:7879 --profile fairness --duration 5 --re 1%

# The ranking gate (mirrors the CI `rank-bench` step): the raced
# RANK BY path must pick the same winner as exhaustive per-arm
# estimation while spending at most half the `g` invocations (the
# binary exits nonzero if either gate fails), then a socket smoke —
# the same RANK BY statement through a live mlss_serve must come back
# with a standings row for the winning arm.
rank-bench: build
	rm -rf target/rank-bench && mkdir -p target/rank-bench
	./target/release/rank_bench > target/rank-bench/summary.txt || { cat target/rank-bench/summary.txt; exit 1; }
	cat target/rank-bench/summary.txt
	grep -q "rank_bench PASS" target/rank-bench/summary.txt
	set -e; \
	./target/release/mlss_serve --listen 127.0.0.1:7880 > target/rank-bench/server.log & pid=$$!; \
	trap "kill $$pid 2>/dev/null || true" EXIT; \
	for i in $$(seq 50); do echo | ./target/release/examples/sql_shell --connect 127.0.0.1:7880 >/dev/null 2>&1 && break; sleep 0.2; done; \
	printf '%s\n' \
	  "ESTIMATE DURABILITY OF walk(beta=6) SWEEP up FROM 0.30 TO 0.42 STEP 0.04 WITHIN 50 USING srs TARGET RE 0.5 RANK BY TOP 2 (rounds=5, round_budget=4000) WITH (seed=7)" \
	  "SELECT * FROM rankings" \
	  | ./target/release/examples/sql_shell --connect 127.0.0.1:7880 \
	  | tee target/rank-bench/socket-smoke.txt; \
	grep -E "up=0\.42" target/rank-bench/socket-smoke.txt | grep -qE "\| (in|out|definitive|resolved|budget) \|"

ci: fmt build test clippy test-mt test-durability rank-bench

bench:
	$(CARGO) bench -p mlss-bench

speedup:
	$(CARGO) run --release -p mlss-bench --bin parallel_speedup
