//! Quickstart: answer one durability prediction query three ways.
//!
//! The query: *"what is the probability that the insurance product's
//! surplus reaches 90 within the next 500 periods?"* on the paper's
//! compound-Poisson risk model — a Tiny-class query (τ ≈ 0.24%).
//!
//! Run: `cargo run --release --example quickstart`

use durability_mlss::prelude::*;
use mlss_models::{surplus_score, CompoundPoisson};

fn main() {
    // 1. The simulation model `g` (§2.1): the paper's CPP risk process.
    let model = CompoundPoisson::paper_default();

    // 2. The durability query Q(q, s): q(x) ⇔ surplus ≥ 90, s = 500,
    //    with the canonical value function f(x) = min{z(x)/β, 1}.
    let value_fn = RatioValue::new(surplus_score, 90.0);
    let problem = Problem::new(&model, &value_fn, 500);

    // Quality target: 10% relative error (the paper's Tiny/Rare metric).
    let target = QualityTarget::RelativeError {
        target: 0.10,
        reference: None,
    };

    // 3a. Baseline: Simple Random Sampling.
    let srs = SrsSampler::new(RunControl::until(target)).run(problem, &mut rng_from_seed(1));
    println!(
        "SRS   : tau = {:.4e}  ({} g-invocations, {:.2}s)",
        srs.estimate.tau,
        srs.estimate.steps,
        srs.elapsed.as_secs_f64()
    );

    // 3b. MLSS with an automatically tuned balanced partition plan.
    let mut rng = rng_from_seed(2);
    let (plan, _) = balanced_plan(problem, 5, 4000, &mut rng);
    println!("MLSS plan: {plan}");
    let cfg = GMlssConfig::new(plan, RunControl::until(target));
    let mlss = GMlssSampler::new(cfg).run(problem, &mut rng);
    println!(
        "MLSS  : tau = {:.4e}  ({} g-invocations, {:.2}s sim)",
        mlss.estimate.tau,
        mlss.estimate.steps,
        mlss.sim_elapsed.as_secs_f64()
    );
    println!(
        "       speedup: {:.1}x fewer simulation steps",
        srs.estimate.steps as f64 / mlss.estimate.steps as f64
    );

    // 3c. Same, parallel across 4 threads (§3.1).
    let base = GMlssConfig::new(
        PartitionPlan::uniform(5),
        RunControl::budget(1), // replaced by the parallel control
    );
    let par = run_parallel_to_target(problem, &base, target, 4, 3);
    println!(
        "MLSS∥ : tau = {:.4e}  ({} g-invocations on {} threads, {:.2}s)",
        par.estimate.tau,
        par.estimate.steps,
        par.threads,
        par.elapsed.as_secs_f64()
    );

    // 95% confidence intervals for all three.
    for (name, est) in [
        ("SRS", srs.estimate),
        ("MLSS", mlss.estimate),
        ("MLSS∥", par.estimate),
    ] {
        let (lo, hi) = est.ci(0.95);
        println!("{name:6} 95% CI: [{lo:.4e}, {hi:.4e}]");
    }
}
