//! Concurrent serving: many durability queries sharing one engine
//! through the session layer — submit, poll, pause/resume, cancel — with
//! memoized partition plans.
//!
//! Run: `cargo run --release --example concurrent_serving`

use durability_mlss::core::scheduler::QueryStatus;
use mlss_db::{Session, SessionConfig, Value};

fn main() {
    let session = Session::new(SessionConfig {
        workers: 2,
        slice_budget: 16_384,
        // Slices advance a 32-wide frontier of root paths per model
        // batch call (bit-identical to scalar execution — a pure
        // throughput knob; see docs/kernel.md).
        batch_width: 32,
        seed: 7,
        ..SessionConfig::default()
    })
    .expect("open session");

    // 1. Submit a burst of queries: one expensive tight-RE g-MLSS query
    //    and a handful of cheap SRS lookups. Nothing blocks.
    let expensive = session
        .submit("cpp", "gmlss", 25.0, 80, 0.02, 0)
        .expect("submit expensive");
    let cheap: Vec<_> = (0..4)
        .map(|k| {
            session
                .submit("walk", "srs", 5.0 + k as f64, 50, 0.3, 0)
                .expect("submit cheap")
        })
        .collect();
    println!("submitted 1 expensive + {} cheap queries", cheap.len());

    // 2. The cheap queries finish while the expensive one is still being
    //    time-sliced.
    for id in &cheap {
        let status = session.wait(*id).expect("record result").expect("known id");
        let est = status.estimate().expect("cheap query completes");
        println!("cheap query {id}: τ̂ = {:.4} ({} steps)", est.tau, est.steps);
    }
    if let Some(progress) = session.scheduler().progress(expensive) {
        println!(
            "expensive query after the cheap ones: {:?}, {} steps over {} slices",
            progress.status, progress.steps, progress.slices
        );
    }

    // 3. Pause the expensive query, checkpoint-style, then resume it.
    session.scheduler().pause(expensive);
    while !matches!(
        session.scheduler().poll(expensive),
        Some(QueryStatus::Paused) | Some(QueryStatus::Done(_))
    ) {
        std::thread::yield_now();
    }
    println!("expensive query paused at a slice boundary; resuming…");
    session.scheduler().resume(expensive);
    let est = *session
        .wait(expensive)
        .expect("record result")
        .expect("known id")
        .estimate()
        .expect("expensive query completes");
    println!(
        "expensive query done: τ̂ = {:.5}, RE = {:.1}%, {} steps",
        est.tau,
        100.0 * est.self_relative_error(),
        est.steps
    );

    // 4. The same query shape again: the partition plan is served from
    //    the cache (no second pilot), and SQL-style polling works too.
    let again = session
        .call(
            "mlss_submit",
            &[
                "cpp".into(),
                "gmlss".into(),
                25.0.into(),
                Value::Int(80),
                0.05.into(),
            ],
        )
        .expect("resubmit")
        .as_i64()
        .unwrap();
    loop {
        match session
            .call("mlss_poll", &[Value::Int(again)])
            .expect("poll")
        {
            Value::Float(tau) => {
                println!("repeat query via mlss_poll: τ̂ = {tau:.5}");
                break;
            }
            Value::Text(status) => {
                println!("repeat query status: {status}");
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            other => panic!("unexpected poll value {other:?}"),
        }
    }

    // 5. Serving diagnostics: plan cache effectiveness + pool counters.
    for d in session.diagnostics() {
        let details: Vec<String> = d.details.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!("[{}] {}", d.estimator, details.join(", "));
    }
    let results = session
        .db()
        .with_table("results", |t| t.len())
        .expect("results table");
    println!("rows recorded in the results table: {results}");
}
