//! Concurrent serving: many durability queries sharing one engine
//! through the session layer — declarative ASYNC submission, polling,
//! pause/resume, cancellation — with memoized partition plans and
//! scheduled plan pilots.
//!
//! Run: `cargo run --release --example concurrent_serving`

use durability_mlss::core::scheduler::QueryStatus;
use mlss_core::scheduler::QueryId;
use mlss_db::{Session, SessionConfig, Value};

fn main() {
    let session = Session::new(SessionConfig {
        workers: 2,
        slice_budget: 16_384,
        // Slices advance a 32-wide frontier of root paths per model
        // batch call (bit-identical to scalar execution — a pure
        // throughput knob; see docs/kernel.md). A statement's
        // `WITH (batch_width=…)` overrides it per query.
        batch_width: 32,
        seed: 7,
        ..SessionConfig::default()
    })
    .expect("open session");

    // 1. Submit a burst declaratively: one expensive tight-RE g-MLSS
    //    query and a handful of cheap SRS lookups. Nothing blocks — on
    //    the cold plan cache the g-MLSS pilot is *scheduled as the
    //    query's first slice*, not run here.
    let expensive = submit(
        &session,
        "ESTIMATE DURABILITY OF cpp(beta=25) WITHIN 80 USING gmlss TARGET RE 2% ASYNC",
    );
    let cheap: Vec<QueryId> = (0..4)
        .map(|k| {
            submit(
                &session,
                &format!(
                    "ESTIMATE DURABILITY OF walk(beta={}) WITHIN 50 USING srs \
                     TARGET RE 30% ASYNC",
                    5 + k
                ),
            )
        })
        .collect();
    println!("submitted 1 expensive + {} cheap queries", cheap.len());

    // 2. The cheap queries finish while the expensive one is still being
    //    time-sliced.
    for id in &cheap {
        let status = session.wait(*id).expect("record result").expect("known id");
        let est = status.estimate().expect("cheap query completes");
        println!("cheap query {id}: τ̂ = {:.4} ({} steps)", est.tau, est.steps);
    }
    if let Some(progress) = session.scheduler().progress(expensive) {
        println!(
            "expensive query after the cheap ones: {:?}, {} steps over {} slices",
            progress.status, progress.steps, progress.slices
        );
    }

    // 3. Pause the expensive query, checkpoint-style, then resume it.
    session.scheduler().pause(expensive);
    while !matches!(
        session.scheduler().poll(expensive),
        Some(QueryStatus::Paused) | Some(QueryStatus::Done(_))
    ) {
        std::thread::yield_now();
    }
    println!("expensive query paused at a slice boundary; resuming…");
    session.scheduler().resume(expensive);
    let est = *session
        .wait(expensive)
        .expect("record result")
        .expect("known id")
        .estimate()
        .expect("expensive query completes");
    println!(
        "expensive query done: τ̂ = {:.5}, RE = {:.1}%, {} steps",
        est.tau,
        100.0 * est.self_relative_error(),
        est.steps
    );

    // 4. EXPLAIN the same shape: the plan derived by that first slice is
    //    in the shared cache now, so the resolved plan comes back as a
    //    hit — and the statement shows exactly what a re-submission
    //    would do (driver, effective batch width, level plan).
    let explain = session
        .execute(
            "EXPLAIN ESTIMATE DURABILITY OF cpp(beta=25) WITHIN 80 \
             USING gmlss TARGET RE 5% ASYNC",
        )
        .expect("explain");
    println!("\nEXPLAIN of the warm query shape:");
    for row in explain.rows() {
        println!("  {:<16} {}", format!("{}", row[0]), row[1]);
    }

    // 5. The same query shape again: the partition plan is served from
    //    the cache (no second pilot), and SQL-style polling works too.
    let again = submit(
        &session,
        "ESTIMATE DURABILITY OF cpp(beta=25) WITHIN 80 USING gmlss TARGET RE 5% ASYNC",
    );
    loop {
        match session
            .call("mlss_poll", &[Value::Int(again as i64)])
            .expect("poll")
        {
            Value::Float(tau) => {
                println!("repeat query via mlss_poll: τ̂ = {tau:.5}");
                break;
            }
            Value::Text(status) => {
                println!("repeat query status: {status}");
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            other => panic!("unexpected poll value {other:?}"),
        }
    }

    // 6. Serving diagnostics: plan cache effectiveness + pool counters.
    for d in session.diagnostics() {
        let details: Vec<String> = d.details.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!("[{}] {}", d.estimator, details.join(", "));
    }
    let results = session
        .db()
        .with_table("results", |t| t.len())
        .expect("results table");
    println!("rows recorded in the results table: {results}");
}

/// Run an `… ASYNC` statement and return its query id.
fn submit(session: &Session, stmt: &str) -> QueryId {
    session
        .execute(stmt)
        .expect("submit")
        .scalar()
        .expect("query_id row")
        .as_i64()
        .expect("query_id int") as QueryId
}
