//! A line-oriented SQL shell over a serving [`Session`]: reads
//! statements from stdin (plain SQL plus the ESTIMATE dialect), prints
//! result rows to stdout. Exercised in CI as a smoke test of the whole
//! front door:
//!
//! ```text
//! echo "SHOW MODELS;
//!       ESTIMATE DURABILITY OF walk(beta=6) WITHIN 50 USING srs TARGET RE 30%;
//!       SELECT model, tau FROM results" | cargo run --release --example sql_shell
//! ```
//!
//! Statements are one per line (a trailing `;` is allowed); lines
//! starting with `--` are comments. Errors are printed (with their byte
//! spans for dialect statements) and the shell continues — like any SQL
//! prompt — but the process exits nonzero if any statement failed, so CI
//! catches regressions.
//!
//! With `MLSS_WAL_DIR=<dir>` the shell opens a **WAL-backed** session
//! over that directory: results and ASYNC queries journal there, and a
//! restarted shell replays the log — completed queries are back in
//! `results`, interrupted ASYNC queries finish before the first prompt
//! (each reports a `recovered query …` line). CI uses this for the
//! kill-and-reopen durability smoke (see `make test-durability`).

use mlss_db::{DbError, ExecResult, Session, SessionConfig};
use std::io::BufRead;

fn print_result(res: &ExecResult) {
    match res {
        ExecResult::Rows { columns, rows } => {
            println!("{}", columns.join(" | "));
            for row in rows {
                let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
                println!("{}", cells.join(" | "));
            }
            println!(
                "({} row{})",
                rows.len(),
                if rows.len() == 1 { "" } else { "s" }
            );
        }
        ExecResult::Affected(n) => println!("ok ({n} affected)"),
        ExecResult::Ok => println!("ok"),
    }
}

fn main() {
    let cfg = SessionConfig {
        seed: 42,
        ..SessionConfig::default()
    };
    let session = match std::env::var_os("MLSS_WAL_DIR") {
        Some(dir) => Session::open(std::path::PathBuf::from(dir), cfg),
        None => Session::new(cfg),
    }
    .expect("open session");
    // Finish what a previous (killed) shell left running before taking
    // statements, so `SELECT … FROM results` sees the recovered rows.
    for (id, status) in session
        .wait_recovered()
        .expect("recover interrupted queries")
    {
        println!("recovered query {id}: {status:?}");
    }

    let stdin = std::io::stdin();
    let mut failures = 0u32;
    for line in stdin.lock().lines() {
        let line = line.expect("read stdin");
        let stmt = line.trim();
        if stmt.is_empty() || stmt.starts_with("--") {
            continue;
        }
        println!("> {stmt}");
        match session.execute(stmt) {
            Ok(res) => print_result(&res),
            Err(DbError::Spec(e)) => {
                // Spanned dialect errors: point at the offending bytes.
                if let Some(span) = e.span {
                    println!("error: {e}");
                    println!("  {stmt}");
                    println!(
                        "  {}{}",
                        " ".repeat(span.start),
                        "^".repeat((span.end - span.start).max(1))
                    );
                } else {
                    println!("error: {e}");
                }
                failures += 1;
            }
            Err(e) => {
                println!("error: {e}");
                failures += 1;
            }
        }
        println!();
    }
    if failures > 0 {
        eprintln!("{failures} statement(s) failed");
        std::process::exit(1);
    }
}
