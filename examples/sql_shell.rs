//! A line-oriented SQL shell over a serving [`Session`]: reads
//! statements from stdin (plain SQL plus the ESTIMATE dialect), prints
//! result rows to stdout. Exercised in CI as a smoke test of the whole
//! front door:
//!
//! ```text
//! echo "SHOW MODELS;
//!       ESTIMATE DURABILITY OF walk(beta=6) WITHIN 50 USING srs TARGET RE 30%;
//!       SELECT model, tau FROM results" | cargo run --release --example sql_shell
//! ```
//!
//! Statements are one per line (a trailing `;` is allowed); lines
//! starting with `--` are comments. Errors are printed (with their byte
//! spans for dialect statements) and the shell continues — like any SQL
//! prompt — but the process exits nonzero if any statement failed, so CI
//! catches regressions.
//!
//! With `MLSS_WAL_DIR=<dir>` the shell opens a **WAL-backed** session
//! over that directory: results and ASYNC queries journal there, and a
//! restarted shell replays the log — completed queries are back in
//! `results`, interrupted ASYNC queries finish before the first prompt
//! (each reports a `recovered query …` line). CI uses this for the
//! kill-and-reopen durability smoke (see `make test-durability`).
//!
//! With `--connect host:port [--tenant NAME]` the shell runs the same
//! statements against a remote `mlss_serve` server instead of an
//! embedded session, printing rows in the identical format — CI's
//! serve smoke diffs embedded vs connected output row-for-row.

use mlss_db::{DbError, ExecResult, Session, SessionConfig};
use mlss_serve::{Client, Response};
use std::io::BufRead;

fn print_result(res: &ExecResult) {
    match res {
        ExecResult::Rows { columns, rows } => {
            println!("{}", columns.join(" | "));
            for row in rows {
                let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
                println!("{}", cells.join(" | "));
            }
            println!(
                "({} row{})",
                rows.len(),
                if rows.len() == 1 { "" } else { "s" }
            );
        }
        ExecResult::Affected(n) => println!("ok ({n} affected)"),
        ExecResult::Ok => println!("ok"),
    }
}

/// Print a remote response in exactly the embedded format.
fn print_response(res: &Response) -> bool {
    match res {
        Response::Rows { columns, rows } => {
            println!("{}", columns.join(" | "));
            for row in rows {
                println!("{}", row.join(" | "));
            }
            println!(
                "({} row{})",
                rows.len(),
                if rows.len() == 1 { "" } else { "s" }
            );
            true
        }
        Response::Ok(tail) => {
            match tail.strip_prefix("affected ") {
                Some(n) => println!("ok ({n} affected)"),
                None => println!("ok"),
            }
            true
        }
        Response::Err(e) => {
            println!("error: {e}");
            false
        }
        Response::Shed { retry_after } => {
            println!("shed: retry after {retry_after}s");
            false
        }
    }
}

fn run_connected(addr: &str, tenant: &str) {
    let mut client = Client::connect(addr, tenant).expect("connect to server");
    let stdin = std::io::stdin();
    let mut failures = 0u32;
    for line in stdin.lock().lines() {
        let line = line.expect("read stdin");
        let stmt = line.trim();
        if stmt.is_empty() || stmt.starts_with("--") {
            continue;
        }
        println!("> {stmt}");
        match client.request(stmt) {
            Ok(res) => {
                if !print_response(&res) {
                    failures += 1;
                }
            }
            Err(e) => {
                println!("error: {e}");
                failures += 1;
            }
        }
        println!();
    }
    let _ = client.quit();
    if failures > 0 {
        eprintln!("{failures} statement(s) failed");
        std::process::exit(1);
    }
}

fn main() {
    let mut connect: Option<String> = None;
    let mut tenant = "shell".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => connect = Some(args.next().expect("--connect needs host:port")),
            "--tenant" => tenant = args.next().expect("--tenant needs a name"),
            other => {
                eprintln!(
                    "unknown flag {other} (usage: sql_shell [--connect host:port [--tenant NAME]])"
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(addr) = connect {
        return run_connected(&addr, &tenant);
    }
    let cfg = SessionConfig {
        seed: 42,
        ..SessionConfig::default()
    };
    let session = match std::env::var_os("MLSS_WAL_DIR") {
        Some(dir) => Session::open(std::path::PathBuf::from(dir), cfg),
        None => Session::new(cfg),
    }
    .expect("open session");
    // Finish what a previous (killed) shell left running before taking
    // statements, so `SELECT … FROM results` sees the recovered rows.
    for (id, status) in session
        .wait_recovered()
        .expect("recover interrupted queries")
    {
        println!("recovered query {id}: {status:?}");
    }

    let stdin = std::io::stdin();
    let mut failures = 0u32;
    for line in stdin.lock().lines() {
        let line = line.expect("read stdin");
        let stmt = line.trim();
        if stmt.is_empty() || stmt.starts_with("--") {
            continue;
        }
        println!("> {stmt}");
        match session.execute(stmt) {
            Ok(res) => print_result(&res),
            Err(DbError::Spec(e)) => {
                // Spanned dialect errors: point at the offending bytes.
                if let Some(span) = e.span {
                    println!("error: {e}");
                    println!("  {stmt}");
                    println!(
                        "  {}{}",
                        " ".repeat(span.start),
                        "^".repeat((span.end - span.start).max(1))
                    );
                } else {
                    println!("error: {e}");
                }
                failures += 1;
            }
            Err(e) => {
                println!("error: {e}");
                failures += 1;
            }
        }
        println!();
    }
    if failures > 0 {
        eprintln!("{failures} statement(s) failed");
        std::process::exit(1);
    }
}
