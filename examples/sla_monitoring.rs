//! SLA risk assessment for a server cluster (§1's motivating example:
//! "what is the chance for our proposed server cluster to fail the
//! required service-level agreement before its term ends?").
//!
//! We model request flow through an ingress queue and a worker queue as
//! the paper's tandem queue. The SLA is violated when the worker backlog
//! ever reaches `K` within the contract horizon. We compare three
//! capacity plans and use MLSS to price the violation risk of each —
//! exactly the kind of what-if sweep where rare-event efficiency matters.
//!
//! Run: `cargo run --release --example sla_monitoring`

use durability_mlss::prelude::*;
use mlss_models::{queue2_score, TandemQueue};

/// One capacity plan under consideration.
struct Plan {
    name: &'static str,
    arrival: f64,
    svc1: f64,
    svc2: f64,
}

fn main() {
    const BACKLOG_LIMIT: f64 = 40.0; // SLA: worker backlog must stay < 40
    const TERM: Time = 500; // contract length in time units

    let plans = [
        Plan {
            name: "baseline (critical)",
            arrival: 0.5,
            svc1: 0.5,
            svc2: 0.5,
        },
        Plan {
            name: "+20% worker capacity",
            arrival: 0.5,
            svc1: 0.5,
            svc2: 0.6,
        },
        Plan {
            name: "+20% both stages",
            arrival: 0.5,
            svc1: 0.6,
            svc2: 0.6,
        },
    ];

    println!("SLA: P(worker backlog ≥ {BACKLOG_LIMIT} within {TERM} units)\n");
    println!(
        "{:<22} {:>12} {:>14} {:>10}",
        "capacity plan", "violation", "95% CI", "steps"
    );

    for (i, plan) in plans.iter().enumerate() {
        let model = TandemQueue::new(plan.arrival, plan.svc1, plan.svc2);
        let vf = RatioValue::new(queue2_score, BACKLOG_LIMIT);
        let problem = Problem::new(&model, &vf, TERM);

        let mut rng = rng_from_seed(42 + i as u64);
        let (level_plan, _) = balanced_plan(problem, 5, 3000, &mut rng);
        let cfg = GMlssConfig::new(
            level_plan,
            RunControl::until(QualityTarget::RelativeError {
                target: 0.10,
                reference: None,
            }),
        );
        let res = GMlssSampler::new(cfg).run(problem, &mut rng);
        let (lo, hi) = res.estimate.ci(0.95);
        println!(
            "{:<22} {:>12.3e} [{:>9.2e},{:>9.2e}] {:>10}",
            plan.name, res.estimate.tau, lo, hi, res.estimate.steps
        );
    }

    println!(
        "\nInterpretation: upgrading the worker stage alone cuts SLA risk \
         by two orders of magnitude; upgrading both stages is *worse* than \
         upgrading only the worker, because a faster ingress stage feeds \
         the worker queue faster. Durability queries surface exactly this \
         kind of non-obvious decision input."
    );
}
