//! Financial risk assessment (§1's motivating example: "what is the
//! probability that this financial product will keep losing money over
//! the next 12 quarters before turning in any profit?").
//!
//! Two durability queries on the compound-Poisson insurance product:
//!
//! 1. **Profit target** — probability the surplus ever reaches a profit
//!    threshold within the horizon (upside durability);
//! 2. **Ruin risk** — probability the surplus ever falls below zero
//!    (classical ruin), phrased as a durability query on the *drawdown*
//!    score `z(x) = u₀ − U(t)`.
//!
//! Both run on the same simulation model with different query functions —
//! the reuse story of §2.2 ("a general simulation model can be
//! conveniently reused for answering a variety of queries").
//!
//! Run: `cargo run --release --example finance_risk`

use durability_mlss::prelude::*;
use mlss_models::{surplus_score, CompoundPoisson, JumpDistribution};

fn main() {
    // A profitable product: premiums exceed expected claims by 25%.
    let model = CompoundPoisson::new(
        20.0, // initial reserve
        7.5,  // premium per period
        0.8,  // claim intensity
        JumpDistribution::Uniform { lo: 5.0, hi: 10.0 },
    );
    println!(
        "product drift: {:+.2} per period, per-period σ: {:.2}\n",
        model.drift(),
        model.step_variance().sqrt()
    );
    let horizon: Time = 120; // ten years of months

    let re10 = QualityTarget::RelativeError {
        target: 0.10,
        reference: None,
    };

    // Query 1: profit — surplus reaches 400 within the horizon.
    {
        let vf = RatioValue::new(surplus_score, 400.0);
        let problem = Problem::new(&model, &vf, horizon);
        let mut rng = rng_from_seed(7);
        let (plan, _) = balanced_plan(problem, 4, 3000, &mut rng);
        let res = GMlssSampler::new(GMlssConfig::new(plan, RunControl::until(re10)))
            .run(problem, &mut rng);
        let (lo, hi) = res.estimate.ci(0.95);
        println!(
            "P(surplus ≥ 400 within {horizon}): {:.3e}  CI95 [{lo:.2e}, {hi:.2e}]  ({} steps)",
            res.estimate.tau, res.estimate.steps
        );
    }

    // Query 2: ruin — drawdown from the initial reserve reaches u₀,
    // i.e. the surplus hits 0. Same model, different query function.
    {
        let initial = model.initial;
        let drawdown = move |u: &f64| initial - *u;
        let vf = RatioValue::new(drawdown, initial);
        let problem = Problem::new(&model, &vf, horizon);
        let mut rng = rng_from_seed(8);
        let (plan, _) = balanced_plan(problem, 4, 3000, &mut rng);
        let res = GMlssSampler::new(GMlssConfig::new(plan, RunControl::until(re10)))
            .run(problem, &mut rng);
        let (lo, hi) = res.estimate.ci(0.95);
        println!(
            "P(ruin within {horizon})          : {:.3e}  CI95 [{lo:.2e}, {hi:.2e}]  ({} steps)",
            res.estimate.tau, res.estimate.steps
        );
    }

    // Bonus: how the ruin probability scales with the initial reserve —
    // a parameter sweep that reuses the same machinery.
    println!("\nruin probability vs initial reserve (RE ≤ 15%):");
    for reserve in [10.0, 20.0, 30.0, 40.0] {
        let swept = CompoundPoisson::new(
            reserve,
            7.5,
            0.8,
            JumpDistribution::Uniform { lo: 5.0, hi: 10.0 },
        );
        let drawdown = move |u: &f64| reserve - *u;
        let vf = RatioValue::new(drawdown, reserve);
        let problem = Problem::new(&swept, &vf, horizon);
        let mut rng = rng_from_seed(100 + reserve as u64);
        let (plan, _) = balanced_plan(problem, 4, 2000, &mut rng);
        let res = GMlssSampler::new(GMlssConfig::new(
            plan,
            RunControl::until(QualityTarget::RelativeError {
                target: 0.15,
                reference: None,
            }),
        ))
        .run(problem, &mut rng);
        println!("  u0 = {reserve:>4}: {:.3e}", res.estimate.tau);
    }
}
