//! Black-box model support (§2.1 example (3), §6 model (3)): train the
//! from-scratch LSTM-MDN on a synthetic five-year daily price series,
//! then answer a durability query *through* the trained network — MLSS
//! never looks inside, it only calls `step`.
//!
//! Run: `cargo run --release --example rnn_stock`

use durability_mlss::prelude::*;
use mlss_models::synthetic_price_series;
use mlss_nn::{rnn_price_score, NetConfig, RnnStockModel};

fn main() {
    // 1. Training data: seeded synthetic stand-in for GOOG 2015-2020
    //    daily closes (DESIGN.md substitution 1).
    let prices = synthetic_price_series(1259, &mut rng_from_seed(2015));
    println!(
        "training series: {} closes, {:.1} → {:.1}",
        prices.len(),
        prices[0],
        prices.last().unwrap()
    );

    // 2. Train the LSTM-MDN (1×32 units, 3 mixtures, truncated BPTT).
    let cfg = NetConfig {
        epochs: 40,
        ..NetConfig::default()
    };
    let t0 = std::time::Instant::now();
    let (model, report) = RnnStockModel::train_on_prices(&prices, &cfg, &mut rng_from_seed(7001));
    println!(
        "trained in {:.1}s: NLL {:.3} → {:.3}",
        t0.elapsed().as_secs_f64(),
        report.epoch_nll[0],
        report.final_nll()
    );

    // 3. Durability query: will the stock rally +55% within 200 trading
    //    days (a Tiny-class event)? The model is a black box to the
    //    sampler.
    let beta = model.initial_price * 1.55;
    let vf = RatioValue::new(rnn_price_score, beta);
    let problem = Problem::new(&model, &vf, 200);
    println!(
        "\nquery: P(price ≥ {beta:.1} within 200 days), start {:.1}",
        model.initial_price
    );

    let target = QualityTarget::RelativeError {
        target: 0.15,
        reference: None,
    };

    let srs = SrsSampler::new(RunControl::until(target)).run(problem, &mut rng_from_seed(11));
    println!(
        "SRS : tau = {:.3e}  ({} network invocations, {:.1}s)",
        srs.estimate.tau,
        srs.estimate.steps,
        srs.elapsed.as_secs_f64()
    );

    let mut rng = rng_from_seed(12);
    let (plan, _) = balanced_plan(problem, 4, 2000, &mut rng);
    let res =
        GMlssSampler::new(GMlssConfig::new(plan, RunControl::until(target))).run(problem, &mut rng);
    println!(
        "MLSS: tau = {:.3e}  ({} network invocations, {:.1}s)",
        res.estimate.tau,
        res.estimate.steps,
        res.sim_elapsed.as_secs_f64()
    );
    let ratio = srs.estimate.steps as f64 / res.estimate.steps as f64;
    println!("      {ratio:.1}x fewer forward passes through the network");
}
