//! The end-to-end in-DBMS pipeline (§6.4): model parameters in tables,
//! durability queries asked in the declarative ESTIMATE dialect, results
//! and sample paths materialized back into tables, everything persisted
//! to disk and recovered.
//!
//! Run: `cargo run --release --example db_pipeline`

use mlss_db::{col, lit, load, save, Aggregate, Session, SessionConfig, Value};

fn main() {
    let session = Session::new(SessionConfig {
        seed: 1234,
        ..SessionConfig::default()
    })
    .expect("open session");
    let db = session.db();
    println!("tables: {:?}", db.table_names());

    // 0. The model catalog: every registered substrate declares a named
    //    parameter schema (name, type, default, range).
    let catalog = session.execute("SHOW MODELS").expect("show models");
    println!("SHOW MODELS → {} parameter rows\n", catalog.rows().len());

    // 1. Answer durability queries declaratively. β and any parameter
    //    override are *named*, not positional.
    for (model, beta) in [("queue", 37.0), ("cpp", 50.0)] {
        for method in ["srs", "gmlss"] {
            let stmt = format!(
                "ESTIMATE DURABILITY OF {model}(beta={beta}) WITHIN 500 \
                 USING {method} TARGET RE 15%"
            );
            let res = session.execute(&stmt).expect("estimate");
            let row = &res.rows()[0];
            println!(
                "ESTIMATE {model}({method}, β={beta}) → τ̂ = {} [{} plan]",
                row[2],
                row.last().unwrap()
            );
        }
    }

    // 2. EXPLAIN shows the resolved plan without guessing: the method
    //    `auto` picks, the level plan, cache provenance, and the driver.
    let explain = session
        .execute(
            "EXPLAIN ESTIMATE DURABILITY OF cpp(beta=50) WITHIN 500 \
             USING auto TARGET RE 15% WITH (threads=4, batch_width=32)",
        )
        .expect("explain");
    println!("\nEXPLAIN ESTIMATE …:");
    for row in explain.rows() {
        println!("  {:<16} {}", format!("{}", row[0]), row[1]);
    }

    // 3. Inspect the results table with the query API.
    let fast = db
        .with_table("results", |t| {
            t.filter(&col("method").eq(lit("gmlss")))
                .map(|rows| rows.len())
        })
        .expect("results")
        .expect("filter");
    println!("\ngmlss rows in results table: {fast}");
    let avg_ms = db
        .with_table("results", |t| {
            t.aggregate(&Aggregate::Avg("millis".into()), None)
        })
        .expect("results")
        .expect("aggregate");
    println!("average statement time: {avg_ms} ms");

    // 4. Materialize sample paths for inspection — the "possible worlds"
    //    interpretability by-product of §2.2, now stepping a 4-wide
    //    cohort on the batched frontier kernel (bit-identical rows at
    //    any width).
    let args: Vec<Value> = vec![
        "cpp".into(),
        Value::Int(50),
        Value::Int(4),
        "worlds".into(),
        Value::Int(4),
    ];
    let n = session
        .call("materialize_paths", &args)
        .expect("materialize_paths");
    println!("\nmaterialized {n} path rows into table 'worlds'");
    let final_values = db
        .with_table("worlds", |t| {
            t.filter(&col("t").eq(lit(50i64))).map(|rows| {
                rows.iter()
                    .map(|r| format!("{:.1}", r[2].as_f64().unwrap()))
                    .collect::<Vec<_>>()
            })
        })
        .expect("worlds")
        .expect("filter");
    println!("surplus at t=50 across the 4 worlds: {final_values:?}");

    // 5. Plain SQL and the dialect share one front door.
    let res = session
        .execute(
            "SELECT model, method, millis FROM results WHERE method = 'gmlss' ORDER BY millis ASC",
        )
        .expect("sql select");
    println!("\nSQL: SELECT model, method, millis FROM results WHERE method = 'gmlss':");
    for row in res.rows() {
        println!("  {} | {} | {} ms", row[0], row[1], row[2]);
    }
    let peak = session
        .execute("SELECT MAX(value) FROM worlds")
        .expect("sql agg");
    println!(
        "SQL: MAX(value) over all worlds = {}",
        peak.scalar().unwrap()
    );

    // 6. DURABILITY over the generalized model registry: any registered
    //    model × any method, with named parameter overrides validated
    //    against the model's schema — no `models`-table edit needed to
    //    ask about a steeper walk or a calmer GBM.
    println!("\nDeclarative queries over the model registry:");
    for stmt in [
        "ESTIMATE DURABILITY OF walk(beta=6) WITHIN 60 USING auto TARGET RE 25%",
        "ESTIMATE DURABILITY OF ar(beta=3) WITHIN 40 USING smlss TARGET RE 25%",
        "ESTIMATE DURABILITY OF gbm(beta=560, volatility=0.22) WITHIN 40 USING gmlss TARGET RE 25%",
        "ESTIMATE DURABILITY OF volatile(beta=40) WITHIN 100 USING auto TARGET RE 25%",
        // The same walk query, answered by 4 worker threads.
        "ESTIMATE DURABILITY OF walk(beta=6) WITHIN 60 USING auto TARGET RE 25% WITH (threads=4)",
    ] {
        let res = session.execute(stmt).expect("registry estimate");
        let row = &res.rows()[0];
        println!("  {} / {} → τ̂ = {}", row[0], row[1], row[2]);
    }

    let ranked = session
        .execute("SELECT model, method, tau FROM results ORDER BY tau DESC")
        .expect("sql select");
    println!("\nSQL: all durability answers so far, most durable first:");
    for row in ranked.rows() {
        println!("  {} | {} | τ̂ = {}", row[0], row[1], row[2]);
    }

    // 7. Persist and recover.
    let dir = std::env::temp_dir().join("mlss-db-pipeline-demo");
    save(db, &dir).expect("save");
    let report = load(&dir).expect("load");
    println!(
        "\npersisted to {} and recovered {} tables (skipped: {})",
        dir.display(),
        report.db.table_names().len(),
        report.skipped.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
