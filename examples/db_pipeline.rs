//! The end-to-end in-DBMS pipeline (§6.4): model parameters in tables,
//! MLSS as a stored procedure, results and sample paths materialized
//! back into tables, everything persisted to disk and recovered.
//!
//! Run: `cargo run --release --example db_pipeline`

use durability_mlss::core::rng::rng_from_seed;
use mlss_db::{
    col, execute, lit, load, save, seed_default_models, Aggregate, Database, ProcRegistry, Value,
};

fn main() {
    let db = Database::new();
    seed_default_models(&db).expect("seed models table");
    println!("tables: {:?}", db.table_names());

    let registry = ProcRegistry::with_builtins();
    println!("stored procedures: {:?}\n", registry.names());
    let mut rng = rng_from_seed(1234);

    // 1. Answer durability queries through the stored procedure.
    for (model, beta) in [("queue", 37.0), ("cpp", 50.0)] {
        for method in ["srs", "mlss"] {
            let args: Vec<Value> = vec![
                model.into(),
                method.into(),
                beta.into(),
                Value::Int(500),
                0.15.into(), // 15% relative error
            ];
            let tau = registry
                .call(&db, "mlss_estimate", &args, &mut rng)
                .expect("mlss_estimate");
            println!("mlss_estimate({model}, {method}, β={beta}) = {tau}");
        }
    }

    // 2. Inspect the results table with the query API.
    let fast = db
        .with_table("results", |t| {
            t.filter(&col("method").eq(lit("mlss")))
                .map(|rows| rows.len())
        })
        .expect("results")
        .expect("filter");
    println!("\nmlss rows in results table: {fast}");
    let avg_ms = db
        .with_table("results", |t| {
            t.aggregate(&Aggregate::Avg("millis".into()), None)
        })
        .expect("results")
        .expect("aggregate");
    println!("average procedure time: {avg_ms} ms");

    // 3. Materialize sample paths for inspection — the "possible worlds"
    //    interpretability by-product of §2.2.
    let args: Vec<Value> = vec!["cpp".into(), Value::Int(50), Value::Int(4), "worlds".into()];
    let n = registry
        .call(&db, "materialize_paths", &args, &mut rng)
        .expect("materialize_paths");
    println!("\nmaterialized {n} path rows into table 'worlds'");
    let final_values = db
        .with_table("worlds", |t| {
            t.filter(&col("t").eq(lit(50i64))).map(|rows| {
                rows.iter()
                    .map(|r| format!("{:.1}", r[2].as_f64().unwrap()))
                    .collect::<Vec<_>>()
            })
        })
        .expect("worlds")
        .expect("filter");
    println!("surplus at t=50 across the 4 worlds: {final_values:?}");

    // 4. Query everything through the SQL front end.
    let res = execute(
        &db,
        "SELECT model, method, millis FROM results WHERE method = 'mlss' ORDER BY millis ASC",
    )
    .expect("sql select");
    println!(
        "
SQL: SELECT model, method, millis FROM results WHERE method = 'mlss':"
    );
    for row in res.rows() {
        println!("  {} | {} | {} ms", row[0], row[1], row[2]);
    }
    let peak = execute(&db, "SELECT MAX(value) FROM worlds").expect("sql agg");
    println!(
        "SQL: MAX(value) over all worlds = {}",
        peak.scalar().unwrap()
    );

    // 5. DURABILITY via SQL over the generalized model registry: any
    //    registered model (walk, GBM, AR, Markov, queue, network, CPP,
    //    volatile) × any method ("srs", "smlss", "mlss"/"gmlss", "auto").
    //    "auto" derives a balanced level plan from a pilot and picks
    //    g-MLSS, falling back to SRS when no plan is derivable; a trailing
    //    threads argument routes the same query through the parallel
    //    driver — SQL call → planner → parallel driver → sampler, one
    //    execution spine.
    println!("\nDURABILITY queries over the model registry:");
    for (model, method, beta, horizon) in [
        ("walk", "auto", 6.0, 60i64),
        ("ar", "smlss", 3.0, 40),
        ("gbm", "mlss", 560.0, 40),
        ("volatile", "auto", 40.0, 100),
    ] {
        let args: Vec<Value> = vec![
            model.into(),
            method.into(),
            beta.into(),
            Value::Int(horizon),
            0.25.into(),
        ];
        let tau = registry
            .call(&db, "mlss_estimate", &args, &mut rng)
            .expect("registry estimate");
        println!("  DURABILITY({model}, {method}, β={beta}, s={horizon}) = {tau}");
    }
    // The same query, answered by 4 worker threads.
    let args: Vec<Value> = vec![
        "walk".into(),
        "auto".into(),
        6.0.into(),
        Value::Int(60),
        0.25.into(),
        Value::Int(4),
    ];
    let tau_par = registry
        .call(&db, "mlss_estimate", &args, &mut rng)
        .expect("parallel estimate");
    println!("  DURABILITY(walk, auto, 4 threads) = {tau_par}");

    let ranked = execute(
        &db,
        "SELECT model, method, tau FROM results ORDER BY tau DESC",
    )
    .expect("sql select");
    println!("\nSQL: all durability answers so far, most durable first:");
    for row in ranked.rows() {
        println!("  {} | {} | τ̂ = {}", row[0], row[1], row[2]);
    }

    // 6. Persist and recover.
    let dir = std::env::temp_dir().join("mlss-db-pipeline-demo");
    save(&db, &dir).expect("save");
    let report = load(&dir).expect("load");
    println!(
        "\npersisted to {} and recovered {} tables (skipped: {})",
        dir.display(),
        report.db.table_names().len(),
        report.skipped.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
