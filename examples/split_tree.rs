//! Visualize the anatomy of MLSS (Figure 1): trace the splitting tree of
//! root paths and print per-level statistics, showing how simulation
//! effort concentrates on promising prefixes.
//!
//! Run: `cargo run --release --example split_tree`

use durability_mlss::prelude::*;
use mlss_models::{queue2_score, TandemQueue};

fn main() {
    let model = TandemQueue::paper_default();
    let vf = RatioValue::new(queue2_score, 30.0);
    let problem = Problem::new(&model, &vf, 200);
    // Figure 1's levels: L0=[0,0.4), L1=[0.4,0.67), L2=[0.67,1), L3=[1,1].
    let plan = PartitionPlan::new(vec![0.4, 0.67]).expect("static plan");

    let mut printed = false;
    let mut trees = 0usize;
    let mut total_segments = 0usize;
    let mut total_hits = 0u64;
    let mut total_steps = 0u64;

    for seed in 0..200 {
        let tree = trace_root_tree(problem, &plan, 3, &mut rng_from_seed(seed));
        trees += 1;
        total_segments += tree.segments.len();
        total_hits += tree.hits;
        total_steps += tree.steps;
        if !printed && tree.hits > 0 && tree.depth() >= 2 {
            println!("--- one root path's split tree (seed {seed}) ---");
            print!("{}", tree.render());
            println!();
            printed = true;
        }
    }

    println!("--- aggregate over {trees} root trees ---");
    println!(
        "segments per root: {:.1}",
        total_segments as f64 / trees as f64
    );
    println!("target hits      : {total_hits}");
    println!("g-invocations    : {total_steps}");
    println!(
        "s-MLSS estimate  : {:.4e}   (N_m / (N_0 · r^(m-1)) = {total_hits}/({trees}·9))",
        total_hits as f64 / (trees as f64 * 9.0)
    );
}
