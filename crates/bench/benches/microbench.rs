//! Criterion micro-benchmarks: per-step simulation costs of every
//! substrate (the paper's cost unit is one `g` invocation), sampler
//! throughput at a fixed budget, and the bootstrap evaluation cost that
//! dominates g-MLSS overhead (§4.2, Figure 9's green bars).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mlss_core::prelude::*;
use mlss_models::{
    queue2_score, surplus_score, CompoundPoisson, GeometricBrownian, MarkovChain, RandomWalk,
    TandemQueue,
};
use mlss_nn::{NetConfig, RnnStockModel};
use std::hint::black_box;

fn bench_model_steps(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_step");
    let mut rng = rng_from_seed(1);

    let queue = TandemQueue::paper_default();
    let qs = queue.initial_state();
    g.bench_function("tandem_queue", |b| {
        b.iter(|| black_box(queue.step(black_box(&qs), 1, &mut rng)))
    });

    let cpp = CompoundPoisson::paper_default();
    g.bench_function("compound_poisson", |b| {
        b.iter(|| black_box(cpp.step(black_box(&15.0), 1, &mut rng)))
    });

    let walk = RandomWalk::new(0.4, 0.4, 0);
    g.bench_function("random_walk", |b| {
        b.iter(|| black_box(walk.step(black_box(&0), 1, &mut rng)))
    });

    let gbm = GeometricBrownian::goog_like();
    g.bench_function("gbm", |b| {
        b.iter(|| black_box(gbm.step(black_box(&525.0), 1, &mut rng)))
    });

    let chain = MarkovChain::birth_death(32, 0.3, 0.3, 0);
    g.bench_function("markov_chain", |b| {
        b.iter(|| black_box(chain.step(black_box(&5), 1, &mut rng)))
    });

    // The black-box LSTM-MDN step (one forward pass + mixture sample).
    let prices: Vec<f64> = (0..200).map(|i| 100.0 + (i as f64 * 0.7).sin()).collect();
    let cfg = NetConfig {
        hidden: 32,
        mixtures: 3,
        seq_len: 20,
        epochs: 1,
        lr: 3e-3,
        grad_clip: 5.0,
    };
    let (rnn, _) = RnnStockModel::train_on_prices(&prices, &cfg, &mut rng_from_seed(2));
    let rnn_state = rnn.initial_state();
    g.bench_function("lstm_mdn", |b| {
        b.iter(|| black_box(rnn.step(black_box(&rnn_state), 1, &mut rng)))
    });

    g.finish();
}

fn bench_samplers(c: &mut Criterion) {
    let mut g = c.benchmark_group("sampler_100k_steps");
    g.sample_size(10);
    let model = TandemQueue::paper_default();
    let vf = RatioValue::new(queue2_score, 40.0);
    let problem = Problem::new(&model, &vf, 500);

    g.bench_function("srs", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            SrsSampler::new(RunControl::budget(100_000)).run(problem, &mut rng_from_seed(seed))
        })
    });
    g.bench_function("gmlss_r3_m5", |b| {
        let plan = PartitionPlan::uniform(5);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let cfg = GMlssConfig::new(plan.clone(), RunControl::budget(100_000));
            GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(seed))
        })
    });
    g.finish();
}

fn bench_bootstrap(c: &mut Criterion) {
    let mut g = c.benchmark_group("bootstrap");
    // Build a realistic ledger from an actual volatile-ish run.
    let model = CompoundPoisson::zero_drift_default();
    let vf = RatioValue::new(surplus_score, 400.0);
    let problem = Problem::new(&model, &vf, 300);
    let mut cfg = GMlssConfig::new(PartitionPlan::uniform(5), RunControl::budget(400_000));
    cfg.keep_ledger = true;
    let res = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(3));
    let ledger = res.ledger.expect("ledger kept");

    for &resamples in &[50usize, 200] {
        g.bench_function(format!("variance_{resamples}_resamples"), |b| {
            b.iter_batched(
                || rng_from_seed(9),
                |mut rng| bootstrap_variance(black_box(&ledger), resamples, 3, &mut rng),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_levels(c: &mut Criterion) {
    let plan = PartitionPlan::new(vec![0.1, 0.25, 0.45, 0.7, 0.9]).unwrap();
    c.bench_function("level_of", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 0.0137) % 1.1;
            black_box(plan.level_of(black_box(x)))
        })
    });
}

criterion_group!(
    benches,
    bench_model_steps,
    bench_samplers,
    bench_bootstrap,
    bench_levels
);
criterion_main!(benches);
