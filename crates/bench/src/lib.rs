//! # mlss-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! `src/bin/`), shared settings ([`settings`]), drivers ([`runners`]),
//! and reporting ([`report`]). Criterion micro-benchmarks live in
//! `benches/`.
//!
//! Every binary accepts `--full` for paper-scale quality targets and
//! repetitions; the default `Quick` profile regenerates each artifact in
//! seconds-to-minutes. Output goes to stdout and `results/*.csv`.

#![warn(missing_docs)]

pub mod report;
pub mod rnn;
pub mod runners;
pub mod settings;

pub use report::{fmt_prob, fmt_steps, Report};
pub use runners::{
    balanced_for, mean_std, mlss_budget, mlss_to_target, run_budget, run_to_target, srs_budget,
    srs_to_target, RunRow,
};
pub use settings::{Profile, QueryClass, QuerySpec, DEFAULT_RATIO};
