//! Console tables and CSV output for the experiment binaries.
//!
//! Every binary prints an aligned text table (the paper's rows/series)
//! and mirrors it into `results/<name>.csv` for plotting.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// A simple aligned-text + CSV table writer.
pub struct Report {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// New report with column headers.
    pub fn new(name: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            name: name.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render the aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout and write `results/<name>.csv`.
    pub fn emit(&self) {
        println!("\n== {} ==", self.name);
        print!("{}", self.render());
        if let Err(e) = self.write_csv() {
            eprintln!("warning: could not write CSV: {e}");
        }
    }

    /// Write the CSV mirror.
    pub fn write_csv(&self) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            let quoted: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') {
                        format!("\"{c}\"")
                    } else {
                        c.clone()
                    }
                })
                .collect();
            writeln!(f, "{}", quoted.join(","))?;
        }
        Ok(path)
    }
}

/// Results directory: `$MLSS_RESULTS_DIR` or `results/` under the CWD.
pub fn results_dir() -> PathBuf {
    std::env::var_os("MLSS_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Format a probability compactly (e.g. `17.2%`, `0.15%`, `3.1e-4`).
pub fn fmt_prob(p: f64) -> String {
    if p >= 0.001 {
        format!("{:.2}%", p * 100.0)
    } else {
        format!("{p:.2e}")
    }
}

/// Format a step count with thousands separators.
pub fn fmt_steps(steps: u64) -> String {
    let s = steps.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = Report::new("t", &["a", "long_header"]);
        r.row(vec!["1".into(), "2".into()]);
        r.row(vec!["100".into(), "2000".into()]);
        let text = r.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long_header"));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut r = Report::new("t", &["a", "b"]);
        r.row(vec!["1".into()]);
    }

    #[test]
    fn prob_formatting() {
        assert_eq!(fmt_prob(0.172), "17.20%");
        assert_eq!(fmt_prob(0.0015), "0.15%");
        assert!(fmt_prob(0.0003).contains("e-4"));
    }

    #[test]
    fn step_formatting() {
        assert_eq!(fmt_steps(1234567), "1,234,567");
        assert_eq!(fmt_steps(42), "42");
    }
}
