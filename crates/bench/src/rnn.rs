//! Shared RNN-model setup for the experiment binaries.
//!
//! Trains the LSTM-MDN stock simulator on the seeded synthetic
//! "GOOG 2015-2020" daily series (DESIGN.md, substitution 1) with a
//! fixed seed, so every binary sees the same black-box model.

use mlss_core::rng::rng_from_seed;
use mlss_models::synthetic_price_series;
use mlss_nn::{NetConfig, RnnStockModel, TrainingReport};

/// Seed for the synthetic training series (5 trading years ≈ 1259 days).
pub const SERIES_SEED: u64 = 2015;

/// Seed for network initialization and training.
pub const TRAIN_SEED: u64 = 7001;

/// Train the shared RNN model. `epochs` scales training effort (the
/// paper trains 100 epochs; 60 is the library default and plenty for the
/// 1-layer net).
pub fn trained_rnn(epochs: usize) -> (RnnStockModel, TrainingReport) {
    let prices = synthetic_price_series(1259, &mut rng_from_seed(SERIES_SEED));
    let cfg = NetConfig {
        epochs,
        ..NetConfig::default()
    };
    RnnStockModel::train_on_prices(&prices, &cfg, &mut rng_from_seed(TRAIN_SEED))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_is_deterministic() {
        let (a, _) = trained_rnn(2);
        let (b, _) = trained_rnn(2);
        assert_eq!(a.initial_price, b.initial_price);
        assert_eq!(a.scale, b.scale);
    }
}
