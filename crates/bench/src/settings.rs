//! Experiment settings: query classes, thresholds, and quality targets.
//!
//! The paper's Table 2 fixes `(s, β)` per model and query class so the
//! ground-truth probabilities fall into four bands: Medium (~15-17%),
//! Small (~5%), Tiny (~0.15-0.26%), and Rare (~3-4·10⁻⁴). Our simulators
//! reproduce the paper's *process forms*, but (see DESIGN.md,
//! substitution 4) the paper's CPP β values are inconsistent with its
//! stated parameters, so thresholds here are **recalibrated** (via the
//! `calibrate` binary) to land in the same bands. `EXPERIMENTS.md`
//! records the calibration outputs.

use mlss_core::quality::QualityTarget;
use serde::{Deserialize, Serialize};

/// The four query classes of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryClass {
    /// τ ≈ 0.15 — answered to a CI target.
    Medium,
    /// τ ≈ 0.05 — answered to a CI target.
    Small,
    /// τ ≈ 2·10⁻³ — answered to an RE target.
    Tiny,
    /// τ ≈ 3·10⁻⁴ — answered to an RE target.
    Rare,
}

impl QueryClass {
    /// All classes in Table 2 order.
    pub const ALL: [QueryClass; 4] = [
        QueryClass::Medium,
        QueryClass::Small,
        QueryClass::Tiny,
        QueryClass::Rare,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            QueryClass::Medium => "Medium",
            QueryClass::Small => "Small",
            QueryClass::Tiny => "Tiny",
            QueryClass::Rare => "Rare",
        }
    }
}

/// Effort profile: `Quick` for minutes-scale regeneration of every figure,
/// `Full` for paper-scale targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Looser targets, fewer repetitions; minutes to run everything.
    Quick,
    /// The paper's targets (1% CI, 10% RE, 100 repetitions).
    Full,
}

impl Profile {
    /// Parse from CLI args: `--full` selects [`Profile::Full`].
    pub fn from_args() -> Profile {
        if std::env::args().any(|a| a == "--full") {
            Profile::Full
        } else {
            Profile::Quick
        }
    }

    /// The quality target the paper uses for this class, scaled by the
    /// profile: CI (95%) relative half-width for Medium/Small, relative
    /// error for Tiny/Rare.
    pub fn target(self, class: QueryClass) -> QualityTarget {
        match (self, class) {
            (Profile::Full, QueryClass::Medium | QueryClass::Small) => {
                QualityTarget::ConfidenceInterval {
                    confidence: 0.95,
                    rel_width: 0.01,
                    reference: None,
                }
            }
            (Profile::Quick, QueryClass::Medium | QueryClass::Small) => {
                QualityTarget::ConfidenceInterval {
                    confidence: 0.95,
                    rel_width: 0.03,
                    reference: None,
                }
            }
            (Profile::Full, _) => QualityTarget::RelativeError {
                target: 0.10,
                reference: None,
            },
            (Profile::Quick, _) => QualityTarget::RelativeError {
                target: 0.25,
                reference: None,
            },
        }
    }

    /// Repetitions for the answer-comparison tables (Tables 3/4).
    pub fn repetitions(self) -> usize {
        match self {
            Profile::Quick => 10,
            Profile::Full => 100,
        }
    }
}

/// One durability query setting `(s, β)`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Query class.
    pub class: QueryClass,
    /// Time horizon `s`.
    pub horizon: u64,
    /// Threshold `β`.
    pub beta: f64,
}

/// Queue model settings (Table 2 row 1).
///
/// Our critically loaded queue wanders a little higher than the paper's
/// (47% vs 17% at the paper's β = 20), so thresholds are recalibrated to
/// {28, 37, 57, 63} to land the Medium/Small/Tiny/Rare probability bands —
/// validated by the `calibrate` binary.
pub fn queue_specs() -> Vec<QuerySpec> {
    vec![
        QuerySpec {
            class: QueryClass::Medium,
            horizon: 500,
            beta: 28.0,
        },
        QuerySpec {
            class: QueryClass::Small,
            horizon: 500,
            beta: 37.0,
        },
        QuerySpec {
            class: QueryClass::Tiny,
            horizon: 500,
            beta: 57.0,
        },
        QuerySpec {
            class: QueryClass::Rare,
            horizon: 500,
            beta: 63.0,
        },
    ]
}

/// CPP model settings (Table 2 row 2), recalibrated thresholds (see
/// module docs).
pub fn cpp_specs() -> Vec<QuerySpec> {
    vec![
        QuerySpec {
            class: QueryClass::Medium,
            horizon: 500,
            beta: 37.0,
        },
        QuerySpec {
            class: QueryClass::Small,
            horizon: 500,
            beta: 50.0,
        },
        QuerySpec {
            class: QueryClass::Tiny,
            horizon: 500,
            beta: 90.0,
        },
        QuerySpec {
            class: QueryClass::Rare,
            horizon: 500,
            beta: 115.0,
        },
    ]
}

/// RNN model settings (Table 2 row 3): Small and Tiny only, `s = 200`,
/// thresholds as multiples of the initial simulated price (calibrated).
pub fn rnn_specs(initial_price: f64) -> Vec<QuerySpec> {
    vec![
        QuerySpec {
            class: QueryClass::Small,
            horizon: 200,
            beta: initial_price * 1.45,
        },
        QuerySpec {
            class: QueryClass::Tiny,
            horizon: 200,
            beta: initial_price * 1.60,
        },
    ]
}

/// Volatile-model settings (Table 6): Tiny and Rare, recalibrated.
pub fn volatile_queue_specs() -> Vec<QuerySpec> {
    vec![
        QuerySpec {
            class: QueryClass::Tiny,
            horizon: 500,
            beta: 87.0,
        },
        QuerySpec {
            class: QueryClass::Rare,
            horizon: 500,
            beta: 107.0,
        },
    ]
}

/// Volatile CPP settings (Table 6), recalibrated.
pub fn volatile_cpp_specs() -> Vec<QuerySpec> {
    vec![
        QuerySpec {
            class: QueryClass::Tiny,
            horizon: 500,
            beta: 620.0,
        },
        QuerySpec {
            class: QueryClass::Rare,
            horizon: 500,
            beta: 920.0,
        },
    ]
}

/// The paper's default splitting ratio (§6 "Implementation Details").
pub const DEFAULT_RATIO: u32 = 3;

/// Default number of levels used for balanced plans per query class —
/// the paper finds fewer levels optimal for easier queries (Fig. 12).
pub fn default_levels(class: QueryClass) -> usize {
    match class {
        QueryClass::Medium => 2,
        QueryClass::Small => 3,
        QueryClass::Tiny => 5,
        QueryClass::Rare => 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_cover_all_classes() {
        let q = queue_specs();
        assert_eq!(q.len(), 4);
        for (spec, class) in q.iter().zip(QueryClass::ALL) {
            assert_eq!(spec.class, class);
        }
        // Thresholds increase with rarity.
        assert!(q.windows(2).all(|w| w[0].beta < w[1].beta));
        let c = cpp_specs();
        assert!(c.windows(2).all(|w| w[0].beta < w[1].beta));
    }

    #[test]
    fn targets_match_paper_shape() {
        use mlss_core::quality::QualityTarget::*;
        assert!(matches!(
            Profile::Full.target(QueryClass::Medium),
            ConfidenceInterval { rel_width, .. } if (rel_width - 0.01).abs() < 1e-12
        ));
        assert!(matches!(
            Profile::Full.target(QueryClass::Rare),
            RelativeError { target, .. } if (target - 0.10).abs() < 1e-12
        ));
        assert!(matches!(
            Profile::Quick.target(QueryClass::Tiny),
            RelativeError { target, .. } if target > 0.10
        ));
    }

    #[test]
    fn levels_grow_with_rarity() {
        assert!(default_levels(QueryClass::Medium) < default_levels(QueryClass::Tiny));
        assert!(default_levels(QueryClass::Tiny) <= default_levels(QueryClass::Rare));
    }
}
