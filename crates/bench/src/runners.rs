//! Shared experiment drivers, generic over `mlss_core`'s `Estimator`
//! trait: run *any* sampling strategy to a target or budget and collect
//! comparable rows. The per-sampler helpers (`srs_*`, `mlss_*`) the
//! figure/table binaries call are thin wrappers over the same two generic
//! entry points, so a new estimator gains bench coverage by being passed
//! to [`run_to_target`]/[`run_budget`] — no new driver code.

use mlss_core::estimate::Estimate;
use mlss_core::estimator::{run_sequential, Estimator, EstimatorRun};
use mlss_core::gmlss::{GMlssConfig, GMlssResult, GmlssShard};
use mlss_core::levels::PartitionPlan;
use mlss_core::model::SimulationModel;
use mlss_core::partition::balanced_plan;
use mlss_core::quality::{QualityTarget, RunControl};
use mlss_core::query::{Problem, ValueFunction};
use mlss_core::rng::rng_from_seed;
use mlss_core::srs::SrsEstimator;

/// Hard step valve for target-mode runs.
pub const MAX_STEPS: u64 = 20_000_000_000;

/// One comparable measurement row.
#[derive(Debug, Clone, Copy)]
pub struct RunRow {
    /// Point estimate.
    pub tau: f64,
    /// Estimated variance.
    pub variance: f64,
    /// `g` invocations.
    pub steps: u64,
    /// Root paths.
    pub n_roots: u64,
    /// Simulation seconds.
    pub sim_secs: f64,
    /// Variance-evaluation seconds (bootstrap etc.; 0 for closed-form
    /// estimators).
    pub bootstrap_secs: f64,
}

impl RunRow {
    fn from_estimate(e: Estimate, sim: std::time::Duration, boot: std::time::Duration) -> Self {
        Self {
            tau: e.tau,
            variance: e.variance,
            steps: e.steps,
            n_roots: e.n_roots,
            sim_secs: sim.as_secs_f64(),
            bootstrap_secs: boot.as_secs_f64(),
        }
    }

    /// Total wall seconds.
    pub fn total_secs(&self) -> f64 {
        self.sim_secs + self.bootstrap_secs
    }
}

impl<L> From<&EstimatorRun<L>> for RunRow {
    fn from(run: &EstimatorRun<L>) -> Self {
        RunRow::from_estimate(run.estimate, run.sim_elapsed, run.estimate_elapsed)
    }
}

/// Run any estimator until the quality target holds.
pub fn run_to_target<M, V, E>(
    problem: Problem<'_, M, V>,
    estimator: &E,
    target: QualityTarget,
    check_every: u64,
    seed: u64,
) -> EstimatorRun<E::Shard>
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
    E: Estimator<M, V>,
{
    let control = RunControl::Target {
        target,
        check_every,
        max_steps: MAX_STEPS,
    };
    run_sequential(estimator, problem, control, &mut rng_from_seed(seed))
}

/// Run any estimator for a fixed budget of `g` invocations.
pub fn run_budget<M, V, E>(
    problem: Problem<'_, M, V>,
    estimator: &E,
    budget: u64,
    seed: u64,
) -> EstimatorRun<E::Shard>
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
    E: Estimator<M, V>,
{
    run_sequential(
        estimator,
        problem,
        RunControl::budget(budget),
        &mut rng_from_seed(seed),
    )
}

/// Run SRS until the quality target holds.
pub fn srs_to_target<M, V>(problem: Problem<'_, M, V>, target: QualityTarget, seed: u64) -> RunRow
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    RunRow::from(&run_to_target(problem, &SrsEstimator, target, 1024, seed))
}

/// Run SRS for a fixed budget of `g` invocations.
pub fn srs_budget<M, V>(problem: Problem<'_, M, V>, budget: u64, seed: u64) -> RunRow
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    RunRow::from(&run_budget(problem, &SrsEstimator, budget, seed))
}

/// Build a balanced-growth plan for the problem with `m` levels (the
/// automated MLSS-BAL of §5.1/§6.3).
pub fn balanced_for<M, V>(problem: Problem<'_, M, V>, m: usize, seed: u64) -> PartitionPlan
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    let (plan, _) = balanced_plan(problem, m, 4000, &mut rng_from_seed(seed ^ 0xBA1A_BA1A));
    plan
}

/// Reassemble the sampler-level result shape from a trait-level run.
fn gmlss_result(run: EstimatorRun<GmlssShard>) -> (RunRow, GMlssResult) {
    let row = RunRow::from(&run);
    let result = GMlssResult {
        estimate: run.estimate,
        pi_hats: run.shard.pi_hats(),
        landings: run.shard.landings_per_level(),
        crossings: run.shard.crossings_per_level(),
        skips: run.shard.skips_per_level(),
        skip_events: run.shard.skip_events,
        root_hit_variance: run.shard.root_hit_sample_variance(),
        ledger: Some(run.shard.ledger),
        sim_elapsed: run.sim_elapsed,
        bootstrap_elapsed: run.estimate_elapsed,
    };
    (row, result)
}

/// Run g-MLSS until the quality target holds.
pub fn mlss_to_target<M, V>(
    problem: Problem<'_, M, V>,
    plan: PartitionPlan,
    ratio: u32,
    target: QualityTarget,
    seed: u64,
) -> (RunRow, GMlssResult)
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    let control = RunControl::Target {
        target,
        check_every: 256,
        max_steps: MAX_STEPS,
    };
    let cfg = GMlssConfig::new(plan, control).with_ratio(ratio);
    gmlss_result(run_to_target(problem, &cfg, target, 256, seed))
}

/// Run g-MLSS for a fixed budget.
pub fn mlss_budget<M, V>(
    problem: Problem<'_, M, V>,
    plan: PartitionPlan,
    ratio: u32,
    budget: u64,
    seed: u64,
) -> (RunRow, GMlssResult)
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    let cfg = GMlssConfig::new(plan, RunControl::budget(budget)).with_ratio(ratio);
    gmlss_result(run_budget(problem, &cfg, budget, seed))
}

/// Mean ± sample std of a slice (for the "averaged over N runs" tables).
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    (mlss_core::stats::mean(xs), mlss_core::stats::sample_std(xs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlss_core::model::Time;
    use mlss_core::query::RatioValue;
    use mlss_core::rng::SimRng;
    use mlss_core::smlss::SMlssConfig;
    use rand::RngExt;

    struct Walk;

    impl SimulationModel for Walk {
        type State = f64;

        fn initial_state(&self) -> f64 {
            0.0
        }

        fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            (s + if rng.random::<f64>() < 0.49 {
                0.05
            } else {
                -0.05
            })
            .clamp(0.0, 1.0)
        }
    }

    #[test]
    fn srs_and_mlss_rows_agree() {
        let model = Walk;
        let vf = RatioValue::new(|s: &f64| *s, 1.0);
        let problem = Problem::new(&model, &vf, 150);
        let srs = srs_budget(problem, 500_000, 1);
        let plan = balanced_for(problem, 3, 2);
        let (mlss, meta) = mlss_budget(problem, plan, 3, 500_000, 3);
        assert!(srs.tau > 0.0 && mlss.tau > 0.0);
        let diff = (srs.tau - mlss.tau).abs();
        let tol = 4.0 * (srs.variance + mlss.variance.max(0.0)).sqrt();
        assert!(diff <= tol.max(5e-3), "{} vs {}", srs.tau, mlss.tau);
        assert_eq!(meta.estimate.steps, mlss.steps);
    }

    #[test]
    fn target_mode_reaches_quality() {
        let model = Walk;
        let vf = RatioValue::new(|s: &f64| *s, 1.0);
        let problem = Problem::new(&model, &vf, 100);
        let row = srs_to_target(
            problem,
            QualityTarget::RelativeError {
                target: 0.25,
                reference: None,
            },
            7,
        );
        let re = row.variance.sqrt() / row.tau;
        assert!(re <= 0.25, "re = {re}");
    }

    #[test]
    fn generic_driver_accepts_any_estimator() {
        // The same entry point drives s-MLSS — the property the figure
        // binaries rely on after the trait rewrite.
        let model = Walk;
        let vf = RatioValue::new(|s: &f64| *s, 1.0);
        let problem = Problem::new(&model, &vf, 100);
        let cfg = SMlssConfig::new(
            PartitionPlan::new(vec![0.4, 0.7]).unwrap(),
            RunControl::budget(1),
        );
        let run = run_budget(problem, &cfg, 200_000, 5);
        assert!(run.estimate.steps >= 200_000);
        let row = RunRow::from(&run);
        assert_eq!(row.steps, run.estimate.steps);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert!((s - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
