//! Shared experiment drivers: run SRS / MLSS to a target or budget and
//! collect comparable rows.

use mlss_core::estimate::Estimate;
use mlss_core::gmlss::{GMlssConfig, GMlssResult, GMlssSampler};
use mlss_core::levels::PartitionPlan;
use mlss_core::model::SimulationModel;
use mlss_core::partition::balanced_plan;
use mlss_core::quality::{QualityTarget, RunControl};
use mlss_core::query::{Problem, ValueFunction};
use mlss_core::rng::rng_from_seed;
use mlss_core::srs::SrsSampler;

/// Hard step valve for target-mode runs.
pub const MAX_STEPS: u64 = 20_000_000_000;

/// One comparable measurement row.
#[derive(Debug, Clone, Copy)]
pub struct RunRow {
    /// Point estimate.
    pub tau: f64,
    /// Estimated variance.
    pub variance: f64,
    /// `g` invocations.
    pub steps: u64,
    /// Root paths.
    pub n_roots: u64,
    /// Simulation seconds.
    pub sim_secs: f64,
    /// Bootstrap seconds (0 for SRS / variance-free runs).
    pub bootstrap_secs: f64,
}

impl RunRow {
    fn from_estimate(e: Estimate, sim: std::time::Duration, boot: std::time::Duration) -> Self {
        Self {
            tau: e.tau,
            variance: e.variance,
            steps: e.steps,
            n_roots: e.n_roots,
            sim_secs: sim.as_secs_f64(),
            bootstrap_secs: boot.as_secs_f64(),
        }
    }

    /// Total wall seconds.
    pub fn total_secs(&self) -> f64 {
        self.sim_secs + self.bootstrap_secs
    }
}

/// Run SRS until the quality target holds.
pub fn srs_to_target<M, V>(problem: Problem<'_, M, V>, target: QualityTarget, seed: u64) -> RunRow
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    let control = RunControl::Target {
        target,
        check_every: 1024,
        max_steps: MAX_STEPS,
    };
    let res = SrsSampler::new(control).run(problem, &mut rng_from_seed(seed));
    RunRow::from_estimate(res.estimate, res.elapsed, std::time::Duration::ZERO)
}

/// Run SRS for a fixed budget of `g` invocations.
pub fn srs_budget<M, V>(problem: Problem<'_, M, V>, budget: u64, seed: u64) -> RunRow
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    let res = SrsSampler::new(RunControl::budget(budget)).run(problem, &mut rng_from_seed(seed));
    RunRow::from_estimate(res.estimate, res.elapsed, std::time::Duration::ZERO)
}

/// Build a balanced-growth plan for the problem with `m` levels (the
/// automated MLSS-BAL of §5.1/§6.3).
pub fn balanced_for<M, V>(problem: Problem<'_, M, V>, m: usize, seed: u64) -> PartitionPlan
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    let (plan, _) = balanced_plan(problem, m, 4000, &mut rng_from_seed(seed ^ 0xBA1A_BA1A));
    plan
}

/// Run g-MLSS until the quality target holds.
pub fn mlss_to_target<M, V>(
    problem: Problem<'_, M, V>,
    plan: PartitionPlan,
    ratio: u32,
    target: QualityTarget,
    seed: u64,
) -> (RunRow, GMlssResult)
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    let control = RunControl::Target {
        target,
        check_every: 256,
        max_steps: MAX_STEPS,
    };
    let cfg = GMlssConfig::new(plan, control).with_ratio(ratio);
    let res = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(seed));
    (
        RunRow::from_estimate(res.estimate, res.sim_elapsed, res.bootstrap_elapsed),
        res,
    )
}

/// Run g-MLSS for a fixed budget.
pub fn mlss_budget<M, V>(
    problem: Problem<'_, M, V>,
    plan: PartitionPlan,
    ratio: u32,
    budget: u64,
    seed: u64,
) -> (RunRow, GMlssResult)
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    let cfg = GMlssConfig::new(plan, RunControl::budget(budget)).with_ratio(ratio);
    let res = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(seed));
    (
        RunRow::from_estimate(res.estimate, res.sim_elapsed, res.bootstrap_elapsed),
        res,
    )
}

/// Mean ± sample std of a slice (for the "averaged over N runs" tables).
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    (
        mlss_core::stats::mean(xs),
        mlss_core::stats::sample_std(xs),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlss_core::model::Time;
    use mlss_core::query::RatioValue;
    use mlss_core::rng::SimRng;
    use rand::RngExt;

    struct Walk;

    impl SimulationModel for Walk {
        type State = f64;

        fn initial_state(&self) -> f64 {
            0.0
        }

        fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            (s + if rng.random::<f64>() < 0.49 { 0.05 } else { -0.05 }).clamp(0.0, 1.0)
        }
    }

    #[test]
    fn srs_and_mlss_rows_agree() {
        let model = Walk;
        let vf = RatioValue::new(|s: &f64| *s, 1.0);
        let problem = Problem::new(&model, &vf, 150);
        let srs = srs_budget(problem, 500_000, 1);
        let plan = balanced_for(problem, 3, 2);
        let (mlss, meta) = mlss_budget(problem, plan, 3, 500_000, 3);
        assert!(srs.tau > 0.0 && mlss.tau > 0.0);
        let diff = (srs.tau - mlss.tau).abs();
        let tol = 4.0 * (srs.variance + mlss.variance.max(0.0)).sqrt();
        assert!(diff <= tol.max(5e-3), "{} vs {}", srs.tau, mlss.tau);
        assert_eq!(meta.estimate.steps, mlss.steps);
    }

    #[test]
    fn target_mode_reaches_quality() {
        let model = Walk;
        let vf = RatioValue::new(|s: &f64| *s, 1.0);
        let problem = Problem::new(&model, &vf, 100);
        let row = srs_to_target(
            problem,
            QualityTarget::RelativeError {
                target: 0.25,
                reference: None,
            },
            7,
        );
        let re = row.variance.sqrt() / row.tau;
        assert!(re <= 0.25, "re = {re}");
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert!((s - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
