//! Table 6: s-MLSS vs g-MLSS on volatile processes — with level skipping,
//! blindly applied s-MLSS is biased low while g-MLSS stays unbiased, at a
//! fixed simulation budget (50,000 invocations per run, as in the paper).
//!
//! Usage: `cargo run --release -p mlss-bench --bin table6_volatile_bias [--full]`

use mlss_bench::settings::{volatile_cpp_specs, volatile_queue_specs};
use mlss_bench::{fmt_prob, mean_std, Profile, Report, DEFAULT_RATIO};
use mlss_core::prelude::*;
use mlss_core::smlss::{SMlssConfig, SMlssSampler};
use mlss_models::{
    queue2_score, surplus_score, volatile_cpp, volatile_queue, CompoundPoisson, TandemQueue,
};

/// The paper's fixed per-run budget.
const BUDGET: u64 = 50_000;

/// Uniform 8-level plan: level widths (0.125) sit below the impulse
/// sizes relative to every β in Table 6 (+15 ⇒ f-jumps ≥ 0.14, +200 ⇒
/// ≥ 0.21), so impulses genuinely cross multiple boundaries at once.
fn plan() -> PartitionPlan {
    PartitionPlan::uniform(8)
}

fn bench_model<M, Z>(
    r: &mut Report,
    label: &str,
    model: &M,
    score: Z,
    specs: &[mlss_bench::QuerySpec],
    reps: usize,
    seed0: u64,
) where
    M: SimulationModel,
    Z: StateScore<M::State> + Copy,
{
    for spec in specs {
        let vf = RatioValue::new(score, spec.beta);
        let problem = Problem::new(model, &vf, spec.horizon);
        let mut srs = Vec::with_capacity(reps);
        let mut smlss = Vec::with_capacity(reps);
        let mut gmlss = Vec::with_capacity(reps);
        let mut skips = 0u64;
        for rep in 0..reps {
            let seed = seed0 + 17 * rep as u64;
            srs.push(
                SrsSampler::new(RunControl::budget(BUDGET))
                    .run(problem, &mut rng_from_seed(seed))
                    .estimate
                    .tau,
            );
            let s_cfg =
                SMlssConfig::new(plan(), RunControl::budget(BUDGET)).with_ratio(DEFAULT_RATIO);
            smlss.push(
                SMlssSampler::new(s_cfg)
                    .run(problem, &mut rng_from_seed(seed ^ 0x51))
                    .estimate
                    .tau,
            );
            let g_cfg =
                GMlssConfig::new(plan(), RunControl::budget(BUDGET)).with_ratio(DEFAULT_RATIO);
            let g = GMlssSampler::new(g_cfg).run(problem, &mut rng_from_seed(seed ^ 0x91));
            skips += g.skip_events;
            gmlss.push(g.estimate.tau);
        }
        let (a, sa) = mean_std(&srs);
        let (b, sb) = mean_std(&smlss);
        let (c, sc) = mean_std(&gmlss);
        r.row(vec![
            format!("{label} {}(β={})", spec.class.name(), spec.beta),
            format!("{} ± {}", fmt_prob(a), fmt_prob(sa)),
            format!("{} ± {}", fmt_prob(b), fmt_prob(sb)),
            format!("{} ± {}", fmt_prob(c), fmt_prob(sc)),
            (skips / reps as u64).to_string(),
        ]);
    }
}

fn main() {
    let profile = Profile::from_args();
    let reps = match profile {
        Profile::Quick => 30,
        Profile::Full => 100,
    };
    let mut r = Report::new(
        "table6_volatile_bias",
        &["query", "SRS", "s-MLSS", "g-MLSS", "skips/run"],
    );

    let vq = volatile_queue(TandemQueue::paper_default(), 500);
    bench_model(
        &mut r,
        "VolQueue",
        &vq,
        queue2_score,
        &volatile_queue_specs(),
        reps,
        61_000,
    );

    let vc = volatile_cpp(CompoundPoisson::zero_drift_default(), 500);
    bench_model(
        &mut r,
        "VolCPP",
        &vc,
        surplus_score,
        &volatile_cpp_specs(),
        reps,
        62_000,
    );

    r.emit();
    println!("({reps} runs per cell at a fixed budget of {BUDGET} g-invocations)");
}
