//! Figure 9: g-MLSS query efficiency on volatile processes — total query
//! time vs SRS, with the bootstrap-evaluation share broken out (the
//! green bars of the paper's plot).
//!
//! Usage: `cargo run --release -p mlss-bench --bin fig9_gmlss_efficiency [--full]`

use mlss_bench::settings::{volatile_cpp_specs, volatile_queue_specs};
use mlss_bench::{fmt_prob, fmt_steps, srs_to_target, Profile, Report, DEFAULT_RATIO};
use mlss_core::gmlss::VarianceMode;
use mlss_core::prelude::*;
use mlss_models::{
    queue2_score, surplus_score, volatile_cpp, volatile_queue, CompoundPoisson, TandemQueue,
};

fn bench<M, Z>(
    r: &mut Report,
    label: &str,
    model: &M,
    score: Z,
    specs: &[mlss_bench::QuerySpec],
    profile: Profile,
    seed0: u64,
) where
    M: SimulationModel,
    Z: StateScore<M::State> + Copy,
{
    for spec in specs {
        let vf = RatioValue::new(score, spec.beta);
        let problem = Problem::new(model, &vf, spec.horizon);
        let target = profile.target(spec.class);

        let srs = srs_to_target(problem, target, seed0 + spec.beta as u64);

        let control = RunControl::Target {
            target,
            check_every: 256,
            max_steps: mlss_bench::runners::MAX_STEPS,
        };
        let cfg = GMlssConfig::new(PartitionPlan::uniform(6), control)
            .with_ratio(DEFAULT_RATIO)
            .with_variance(VarianceMode::Bootstrap);
        let g = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(seed0 + 7));

        r.row(vec![
            format!("{label} {}", spec.class.name()),
            "SRS".into(),
            fmt_prob(srs.tau),
            fmt_steps(srs.steps),
            format!("{:.2}", srs.total_secs()),
            "0.00".into(),
            "1.0".into(),
        ]);
        let g_total = g.sim_elapsed.as_secs_f64() + g.bootstrap_elapsed.as_secs_f64();
        r.row(vec![
            format!("{label} {}", spec.class.name()),
            "g-MLSS".into(),
            fmt_prob(g.estimate.tau),
            fmt_steps(g.estimate.steps),
            format!("{g_total:.2}"),
            format!("{:.2}", g.bootstrap_elapsed.as_secs_f64()),
            format!("{:.1}x", srs.total_secs() / g_total.max(1e-9)),
        ]);
    }
}

fn main() {
    let profile = Profile::from_args();
    let mut r = Report::new(
        "fig9_gmlss_efficiency",
        &[
            "query",
            "sampler",
            "tau",
            "steps",
            "total_secs",
            "bootstrap_secs",
            "speedup",
        ],
    );

    let vq = volatile_queue(TandemQueue::paper_default(), 500);
    bench(
        &mut r,
        "VolQueue",
        &vq,
        queue2_score,
        &volatile_queue_specs(),
        profile,
        71_000,
    );

    let vc = volatile_cpp(CompoundPoisson::zero_drift_default(), 500);
    bench(
        &mut r,
        "VolCPP",
        &vc,
        surplus_score,
        &volatile_cpp_specs(),
        profile,
        72_000,
    );

    r.emit();
}
