//! `rank_bench` — raced top-k selection vs exhaustive per-candidate
//! estimation, end-to-end through the SQL dialect.
//!
//! The workload is the ranking question the subsystem exists for: *which
//! of these candidates is the most durable?* Two ways to answer it:
//!
//! * **exhaustive** — estimate every candidate to the relative-error
//!   target (one sync `ESTIMATE` per arm), then sort. Every arm pays
//!   full price, including the obvious losers.
//! * **raced** — one `ESTIMATE … RANK BY TOP 1` statement: the arms
//!   advance in rounds and confidence-bound boundary elimination freezes
//!   arms as soon as their interval cannot cross the top-k boundary, so
//!   losers stop sampling after a round or two.
//!
//! The harness runs both over the same spread walk field with pinned
//! seeds, reports total `g` invocations and wall clock for each, and
//! **gates**: the raced winner must match the exhaustive argmax-τ̂
//! winner, and raced steps must be at most half the exhaustive steps
//! (the ≥2x saving the racing machinery claims).
//!
//! Usage: `cargo run --release -p mlss-bench --bin rank_bench [--smoke]`

use mlss_db::{ExecResult, Session, SessionConfig, Value};
use std::time::Instant;

struct Shape {
    /// Sweep endpoints and step for the walk `up` parameter.
    from: f64,
    to: f64,
    step: f64,
    /// Relative-error target both paths run under.
    re: f64,
    /// Race round cap and per-arm round budget.
    rounds: usize,
    round_budget: u64,
    seed: u64,
}

fn session() -> Session {
    Session::new(SessionConfig {
        workers: 1,
        seed: 4242,
        // No cross-query reuse on either path: both pay full price, so
        // the comparison isolates the racing machinery.
        shard_store_capacity: 0,
        ..SessionConfig::default()
    })
    .expect("bench session")
}

fn rows_of(res: ExecResult) -> Vec<Vec<Value>> {
    match res {
        ExecResult::Rows { rows, .. } => rows,
        other => panic!("expected rows, got {other:?}"),
    }
}

fn as_f64(v: &Value) -> f64 {
    match v {
        Value::Float(f) => *f,
        Value::Int(i) => *i as f64,
        other => panic!("expected a number, got {other:?}"),
    }
}

fn as_text(v: &Value) -> &str {
    match v {
        Value::Text(s) => s,
        other => panic!("expected text, got {other:?}"),
    }
}

/// The raced path: one RANK BY statement. Returns (winner label, total
/// steps across all arms, wall seconds, standings row count).
fn run_raced(shape: &Shape) -> (String, u64, f64, usize) {
    let s = session();
    let sql = format!(
        "ESTIMATE DURABILITY OF walk(beta=6) SWEEP up FROM {} TO {} STEP {} \
         WITHIN 50 USING srs TARGET RE {} \
         RANK BY TOP 1 (rounds={}, round_budget={}) WITH (seed={})",
        shape.from, shape.to, shape.step, shape.re, shape.rounds, shape.round_budget, shape.seed
    );
    let start = Instant::now();
    let rows = rows_of(s.execute(&sql).expect("raced statement"));
    let wall = start.elapsed().as_secs_f64();
    let winner = as_text(&rows[0][1]).to_string();
    let steps: u64 = rows.iter().map(|r| as_f64(&r[7]) as u64).sum();
    for row in &rows {
        println!(
            "rank_bench raced_standing rank={} arm=\"{}\" tau={:.6} frozen_round={} reason={} steps={}",
            as_f64(&row[0]) as i64,
            as_text(&row[1]),
            as_f64(&row[2]),
            as_f64(&row[5]) as i64,
            as_text(&row[6]),
            as_f64(&row[7]) as u64,
        );
    }
    (winner, steps, wall, rows.len())
}

/// The exhaustive path: every candidate estimated to the same target,
/// one sync `ESTIMATE` each. Returns (argmax-τ̂ up value, total steps,
/// wall seconds).
fn run_exhaustive(shape: &Shape) -> (f64, u64, f64) {
    let s = session();
    let mut best: (f64, f64) = (f64::NEG_INFINITY, shape.from);
    let mut steps: u64 = 0;
    let start = Instant::now();
    // The same expansion formula the SWEEP parser uses, so the swept
    // values (and their rendered labels) match bit for bit.
    let count = ((shape.to - shape.from) / shape.step + 1e-9).floor() as usize + 1;
    for i in 0..count {
        let up = shape.from + shape.step * i as f64;
        let sql = format!(
            "ESTIMATE DURABILITY OF walk(beta=6, up={up}) WITHIN 50 USING srs \
             TARGET RE {} WITH (seed={})",
            shape.re,
            mlss_db::arm_seed(shape.seed, i),
        );
        let rows = rows_of(s.execute(&sql).expect("exhaustive statement"));
        // Sync estimate row: model, method, tau, variance, steps, …
        let tau = as_f64(&rows[0][2]);
        let arm_steps = as_f64(&rows[0][4]) as u64;
        steps += arm_steps;
        println!("rank_bench exhaustive_arm up={up} tau={tau:.6} steps={arm_steps}");
        if tau > best.0 {
            best = (tau, up);
        }
    }
    (best.1, steps, start.elapsed().as_secs_f64())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shape = if smoke {
        Shape {
            from: 0.36,
            to: 0.48,
            step: 0.04,
            re: 0.03,
            rounds: 20,
            round_budget: 5_000,
            seed: 7,
        }
    } else {
        Shape {
            from: 0.36,
            to: 0.56,
            step: 0.04,
            re: 0.01,
            rounds: 60,
            round_budget: 5_000,
            seed: 7,
        }
    };

    let (raced_winner, raced_steps, raced_wall, arms) = run_raced(&shape);
    let (exhaustive_up, exhaustive_steps, exhaustive_wall) = run_exhaustive(&shape);

    let saving = exhaustive_steps as f64 / raced_steps.max(1) as f64;
    // `up` is the ref's last parameter, so anchoring on the closing
    // paren keeps `up=0.4` from matching a `up=0.48` label.
    let winner_tag = format!("up={exhaustive_up})");
    let agree = raced_winner.contains(&winner_tag);
    println!(
        "rank_bench summary arms={arms} raced_steps={raced_steps} exhaustive_steps={exhaustive_steps} \
         saving={saving:.2}x raced_wall={raced_wall:.3}s exhaustive_wall={exhaustive_wall:.3}s \
         raced_winner=\"{raced_winner}\" exhaustive_winner={winner_tag} agree={agree}"
    );

    // The gates: same top-1, at least a 2x budget saving.
    if !agree {
        eprintln!("rank_bench FAIL: raced winner disagrees with exhaustive argmax");
        std::process::exit(1);
    }
    if saving < 2.0 {
        eprintln!("rank_bench FAIL: saving {saving:.2}x is below the 2x gate");
        std::process::exit(1);
    }
    println!("rank_bench PASS");
}
