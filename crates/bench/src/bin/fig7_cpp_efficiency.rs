//! Figure 7: query efficiency on the CPP model — total simulation steps
//! and wall time for SRS vs MLSS across query types.
//!
//! Usage: `cargo run --release -p mlss-bench --bin fig7_cpp_efficiency [--full]`

use mlss_bench::settings::{cpp_specs, default_levels};
use mlss_bench::{
    balanced_for, fmt_prob, fmt_steps, mlss_to_target, srs_to_target, Profile, Report,
    DEFAULT_RATIO,
};
use mlss_core::prelude::*;
use mlss_models::{surplus_score, CompoundPoisson};

fn main() {
    let profile = Profile::from_args();
    let model = CompoundPoisson::paper_default();
    let mut r = Report::new(
        "fig7_cpp_efficiency",
        &[
            "query",
            "sampler",
            "tau",
            "steps",
            "secs",
            "speedup_steps",
            "speedup_time",
        ],
    );

    for spec in cpp_specs() {
        let vf = RatioValue::new(surplus_score, spec.beta);
        let problem = Problem::new(&model, &vf, spec.horizon);
        let target = profile.target(spec.class);

        let srs = srs_to_target(problem, target, 131 + spec.beta as u64);
        let plan = balanced_for(problem, default_levels(spec.class), 177 + spec.beta as u64);
        let (mlss, _) =
            mlss_to_target(problem, plan, DEFAULT_RATIO, target, 141 + spec.beta as u64);

        r.row(vec![
            spec.class.name().into(),
            "SRS".into(),
            fmt_prob(srs.tau),
            fmt_steps(srs.steps),
            format!("{:.2}", srs.total_secs()),
            "1.0".into(),
            "1.0".into(),
        ]);
        r.row(vec![
            spec.class.name().into(),
            "MLSS".into(),
            fmt_prob(mlss.tau),
            fmt_steps(mlss.steps),
            format!("{:.2}", mlss.total_secs()),
            format!("{:.1}x", srs.steps as f64 / mlss.steps as f64),
            format!("{:.1}x", srs.total_secs() / mlss.total_secs().max(1e-9)),
        ]);
    }
    r.emit();
}
