//! `load_bench` — open-loop multi-client load generator for `mlss_serve`.
//!
//! Drives a running server over many concurrent socket clients with a
//! paced arrival schedule (each client fires on a fixed interval,
//! independent of completion times, so a saturated server accumulates
//! pressure instead of being politely throttled by its own latency) and
//! reports per-tenant accepted/shed counts, latency percentiles, and
//! throughput:
//!
//! ```text
//! mlss_serve --listen 127.0.0.1:7878 --global-cap 8 &
//! load_bench --connect 127.0.0.1:7878 --tenants alpha,beta \
//!     --clients 16 --rate 50 --duration 10
//! ```
//!
//! Profiles:
//!
//! * `overload` (default): sync ESTIMATE statements at the configured
//!   arrival rate; per-tenant `p50/p99` of **accepted** requests, shed
//!   rate, and saturation throughput.
//! * `fairness`: per-tenant ASYNC floods for the duration, then reads
//!   the `tenants` block of `SHOW DIAGNOSTICS` over the socket and
//!   reports each tenant's attained service and the pairwise ratio —
//!   the number the equal-weight (≤1.5x) and 4:1-weighted acceptance
//!   checks grep.
//! * `--smoke`: a seconds-long 2-tenant overload run for CI.

use mlss_serve::{Client, Response};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Clone)]
struct Config {
    addr: String,
    tenants: Vec<String>,
    clients_per_tenant: usize,
    rate_per_client: f64,
    duration: Duration,
    target_re: String,
    profile: String,
}

#[derive(Default)]
struct TenantTally {
    accepted: u64,
    shed: u64,
    errors: u64,
    first_retry_after: Option<u64>,
    latencies_ms: Vec<f64>,
}

/// Ceiling nearest-rank percentile: the smallest sample such that at
/// least `p` of the distribution is at or below it — `idx = ⌈p·n⌉ - 1`.
/// (The previous `round((n-1)·p)` index could land a rank off in either
/// direction: the p99 of 160 samples came back as the 158th-smallest
/// instead of the 159th — understating tail latency exactly where an
/// overload report matters — and the median of an even-sized sample
/// rounded *up* a rank instead of taking the nearest rank.)
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1).min(sorted.len()) - 1]
}

fn usage() -> ! {
    eprintln!(
        "usage: load_bench --connect ADDR [--tenants a,b] [--clients N] \
         [--rate R] [--duration SECS] [--re PCT] [--profile overload|fairness] [--smoke]"
    );
    std::process::exit(2);
}

fn parse_args() -> Config {
    let mut cfg = Config {
        addr: String::new(),
        tenants: vec!["alpha".into(), "beta".into()],
        clients_per_tenant: 8,
        rate_per_client: 20.0,
        duration: Duration::from_secs(10),
        target_re: "20%".into(),
        profile: "overload".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--connect" => cfg.addr = val("--connect"),
            "--tenants" => cfg.tenants = val("--tenants").split(',').map(str::to_string).collect(),
            "--clients" => {
                cfg.clients_per_tenant = val("--clients").parse().unwrap_or_else(|_| usage())
            }
            "--rate" => cfg.rate_per_client = val("--rate").parse().unwrap_or_else(|_| usage()),
            "--duration" => {
                cfg.duration =
                    Duration::from_secs(val("--duration").parse().unwrap_or_else(|_| usage()))
            }
            "--re" => cfg.target_re = val("--re"),
            "--profile" => cfg.profile = val("--profile"),
            "--smoke" => {
                cfg.clients_per_tenant = 4;
                cfg.rate_per_client = 25.0;
                cfg.duration = Duration::from_secs(2);
                // Heavy enough that a capped server actually saturates.
                cfg.target_re = "2%".into();
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if cfg.addr.is_empty() {
        eprintln!("--connect is required");
        usage()
    }
    cfg
}

fn estimate_stmt(re: &str, seed: u64, asynchronous: bool) -> String {
    let suffix = if asynchronous { " ASYNC" } else { "" };
    format!(
        "ESTIMATE DURABILITY OF walk(beta=6) WITHIN 50 USING srs \
         TARGET RE {re} WITH (seed={seed}){suffix}"
    )
}

/// Open-loop sync workload: every client fires on its own fixed
/// schedule for the duration; accepted latencies and sheds are tallied
/// per tenant.
fn run_overload(cfg: &Config) -> i32 {
    let tallies: Vec<Arc<Mutex<TenantTally>>> = cfg
        .tenants
        .iter()
        .map(|_| Arc::new(Mutex::new(TenantTally::default())))
        .collect();
    let started = Instant::now();
    let mut handles = Vec::new();
    for (ti, tenant) in cfg.tenants.iter().enumerate() {
        for ci in 0..cfg.clients_per_tenant {
            let tenant = tenant.clone();
            let tally = Arc::clone(&tallies[ti]);
            let cfg = cfg.clone();
            handles.push(std::thread::spawn(move || {
                let Ok(mut client) = Client::connect(&cfg.addr, &tenant) else {
                    tally.lock().unwrap().errors += 1;
                    return;
                };
                let interval = Duration::from_secs_f64(1.0 / cfg.rate_per_client.max(0.001));
                let deadline = started + cfg.duration;
                let mut next_fire =
                    started + interval.mul_f64(ci as f64 / cfg.clients_per_tenant as f64);
                let mut seq: u64 = 0;
                while Instant::now() < deadline {
                    let now = Instant::now();
                    if now < next_fire {
                        std::thread::sleep(next_fire - now);
                    }
                    next_fire += interval;
                    // Unique seed per request: every statement is real
                    // work, not a shard-store replay.
                    let seed = (ti as u64) << 32 | (ci as u64) << 24 | seq;
                    seq += 1;
                    let stmt = estimate_stmt(&cfg.target_re, seed, false);
                    let t0 = Instant::now();
                    match client.request(&stmt) {
                        Ok(Response::Rows { .. }) => {
                            let ms = t0.elapsed().as_secs_f64() * 1e3;
                            let mut t = tally.lock().unwrap();
                            t.accepted += 1;
                            t.latencies_ms.push(ms);
                        }
                        Ok(Response::Shed { retry_after }) => {
                            let mut t = tally.lock().unwrap();
                            t.shed += 1;
                            t.first_retry_after.get_or_insert(retry_after);
                        }
                        Ok(_) => tally.lock().unwrap().errors += 1,
                        Err(_) => {
                            tally.lock().unwrap().errors += 1;
                            return;
                        }
                    }
                }
                let _ = client.quit();
            }));
        }
    }
    for h in handles {
        let _ = h.join();
    }
    let elapsed = started.elapsed().as_secs_f64();

    println!(
        "profile={} duration_s={:.1} tenants={} clients_per_tenant={} rate_per_client={}",
        cfg.profile,
        elapsed,
        cfg.tenants.join(","),
        cfg.clients_per_tenant,
        cfg.rate_per_client
    );
    let (mut tot_acc, mut tot_shed, mut all_lat) = (0u64, 0u64, Vec::new());
    let mut first_shed: Option<u64> = None;
    for (tenant, tally) in cfg.tenants.iter().zip(&tallies) {
        let mut t = tally.lock().unwrap();
        t.latencies_ms.sort_by(|a, b| a.total_cmp(b));
        let offered = t.accepted + t.shed;
        println!(
            "tenant={} accepted={} shed={} errors={} shed_rate={:.3} p50_ms={:.1} p99_ms={:.1} qps={:.1}",
            tenant,
            t.accepted,
            t.shed,
            t.errors,
            t.shed as f64 / (offered.max(1)) as f64,
            percentile(&t.latencies_ms, 0.50),
            percentile(&t.latencies_ms, 0.99),
            t.accepted as f64 / elapsed
        );
        tot_acc += t.accepted;
        tot_shed += t.shed;
        all_lat.extend_from_slice(&t.latencies_ms);
        if first_shed.is_none() {
            first_shed = t.first_retry_after;
        }
    }
    all_lat.sort_by(|a, b| a.total_cmp(b));
    println!(
        "total accepted={} shed={} shed_rate={:.3} p50_ms={:.1} p99_ms={:.1} qps={:.1}",
        tot_acc,
        tot_shed,
        tot_shed as f64 / (tot_acc + tot_shed).max(1) as f64,
        percentile(&all_lat, 0.50),
        percentile(&all_lat, 0.99),
        tot_acc as f64 / elapsed
    );
    if let Some(r) = first_shed {
        println!("shed_response RETRY AFTER {r}");
    }
    if tot_acc == 0 {
        eprintln!("no request was accepted");
        return 1;
    }
    0
}

/// ASYNC floods per tenant, then the attained-service split straight
/// from the server's `SHOW DIAGNOSTICS` tenants block.
fn run_fairness(cfg: &Config) -> i32 {
    let started = Instant::now();
    let mut handles = Vec::new();
    for (ti, tenant) in cfg.tenants.iter().enumerate() {
        let tenant = tenant.clone();
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(&cfg.addr, &tenant).expect("connect");
            let deadline = started + cfg.duration;
            let mut ids: Vec<u64> = Vec::new();
            let mut seq = 0u64;
            while Instant::now() < deadline {
                let seed = (ti as u64) << 32 | seq;
                seq += 1;
                match client.request(&estimate_stmt(&cfg.target_re, seed, true)) {
                    Ok(Response::Rows { rows, .. }) => {
                        if let Some(id) = rows
                            .first()
                            .and_then(|r| r.first())
                            .and_then(|v| v.parse().ok())
                        {
                            ids.push(id);
                        }
                    }
                    Ok(Response::Shed { retry_after }) => {
                        // Quota full: drain one outstanding query, which
                        // both frees the slot and keeps pressure on.
                        if let Some(id) = ids.first().copied() {
                            let _ = client.request(&format!("WAIT {id}"));
                            ids.remove(0);
                        } else {
                            std::thread::sleep(Duration::from_millis(retry_after.min(1) * 50));
                        }
                    }
                    _ => break,
                }
            }
            for id in ids {
                let _ = client.request(&format!("WAIT {id}"));
            }
            let _ = client.quit();
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    // Read the split from the server itself.
    let mut client = Client::connect(&cfg.addr, &cfg.tenants[0]).expect("connect");
    let rows = match client.request("SHOW DIAGNOSTICS") {
        Ok(Response::Rows { rows, .. }) => rows,
        other => {
            eprintln!("SHOW DIAGNOSTICS failed: {other:?}");
            return 1;
        }
    };
    let lookup = |counter: &str| -> Option<f64> {
        rows.iter()
            .find(|r| r[0] == "tenants" && r[1] == counter)
            .and_then(|r| r[2].parse().ok())
    };
    let mut attained: Vec<(String, f64, f64)> = Vec::new();
    for t in &cfg.tenants {
        let a = lookup(&format!("{t}.attained_steps")).unwrap_or(0.0);
        let w = lookup(&format!("{t}.weight")).unwrap_or(1.0);
        attained.push((t.clone(), w, a));
    }
    let total: f64 = attained.iter().map(|(_, _, a)| a).sum::<f64>().max(1.0);
    for (t, w, a) in &attained {
        println!(
            "fairness tenant={t} weight={w} attained={a:.0} share={:.3} share_per_weight={:.3}",
            a / total,
            (a / total) / w
        );
    }
    if attained.len() >= 2 {
        let n0 = attained[0].2 / attained[0].1;
        let n1 = attained[1].2 / attained[1].1;
        let ratio = n0.max(n1) / n0.min(n1).max(1.0);
        println!("fairness normalized_ratio={ratio:.2}");
    }
    0
}

fn main() {
    let cfg = parse_args();
    let code = match cfg.profile.as_str() {
        "overload" => run_overload(&cfg),
        "fairness" => run_fairness(&cfg),
        other => {
            eprintln!("unknown profile {other}");
            2
        }
    };
    std::process::exit(code);
}

#[cfg(test)]
mod tests {
    use super::percentile;

    /// The regression the ceiling nearest-rank fix pins down: the old
    /// `round((n-1)·p)` index understated p99 on a 160-sample tail (rank
    /// 158 instead of 159) and overstated the median of an even-sized
    /// sample (rank 3 of 4 instead of 2).
    #[test]
    fn percentile_is_ceiling_nearest_rank() {
        // 1..=160: pN must be the ⌈p·160⌉-th smallest value.
        let v: Vec<f64> = (1..=160).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.99), 159.0); // ceil(158.4) = 159
        assert_eq!(percentile(&v, 0.50), 80.0);
        assert_eq!(percentile(&v, 1.00), 160.0);

        // Even-sized median takes the lower-of-middle nearest rank.
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.50), 2.0);
        assert_eq!(percentile(&v, 0.75), 3.0);
        assert_eq!(percentile(&v, 0.95), 4.0);

        // Boundaries and degenerate inputs.
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.5], 0.99), 7.5);
    }
}
