//! Figure 13: effectiveness of the adaptive greedy partition strategy —
//! running time (as a ratio to SRS) of MLSS-BAL (pre-tuned balanced
//! plans, search not charged) vs MLSS-G (greedy, search overhead charged
//! and broken out), across Queue, CPP, and RNN models.
//!
//! Usage: `cargo run --release -p mlss-bench --bin fig13_greedy_smlss [--full]`

use mlss_bench::rnn::trained_rnn;
use mlss_bench::settings::{cpp_specs, default_levels, queue_specs, rnn_specs};
use mlss_bench::{
    balanced_for, fmt_steps, mlss_to_target, srs_to_target, Profile, Report, DEFAULT_RATIO,
};
use mlss_core::partition::{GreedyConfig, GreedyPartition};
use mlss_core::prelude::*;
use mlss_models::{queue2_score, surplus_score, CompoundPoisson, TandemQueue};
use mlss_nn::rnn_price_score;

#[allow(clippy::too_many_arguments)]
fn bench<M, Z>(
    r: &mut Report,
    label: &str,
    model: &M,
    score: Z,
    specs: &[mlss_bench::QuerySpec],
    profile: Profile,
    trial_budget: u64,
    seed0: u64,
) where
    M: SimulationModel,
    Z: StateScore<M::State> + Copy,
{
    for spec in specs {
        let vf = RatioValue::new(score, spec.beta);
        let problem = Problem::new(model, &vf, spec.horizon);
        let target = profile.target(spec.class);
        let q = format!("{label}/{}", spec.class.name());
        eprintln!("running {q} ...");

        // SRS baseline.
        let srs = srs_to_target(problem, target, seed0 + spec.beta as u64);
        r.row(vec![
            q.clone(),
            "SRS".into(),
            fmt_steps(srs.steps),
            "0".into(),
            format!("{:.2}", srs.total_secs()),
            "1.00".into(),
        ]);

        // MLSS-BAL: pre-tuned balanced plan, tuning not charged.
        let plan = balanced_for(problem, default_levels(spec.class), seed0 + 1);
        let (bal, _) = mlss_to_target(problem, plan, DEFAULT_RATIO, target, seed0 + 2);
        r.row(vec![
            q.clone(),
            "MLSS-BAL".into(),
            fmt_steps(bal.steps),
            "0".into(),
            format!("{:.2}", bal.total_secs()),
            format!("{:.2}", bal.total_secs() / srs.total_secs().max(1e-9)),
        ]);

        // MLSS-G: greedy search (charged) + final run under the found plan.
        let driver = GreedyPartition::new(GreedyConfig {
            ratio: DEFAULT_RATIO,
            trial_budget,
            candidates_per_round: 4,
            max_rounds: 7,
        });
        let search_t0 = std::time::Instant::now();
        let outcome = driver.search(problem, &mut rng_from_seed(seed0 + 3));
        let search_secs = search_t0.elapsed().as_secs_f64();
        let (g, _) = mlss_to_target(
            problem,
            outcome.plan.clone(),
            DEFAULT_RATIO,
            target,
            seed0 + 4,
        );
        let total = g.total_secs() + search_secs;
        r.row(vec![
            q,
            "MLSS-G".into(),
            fmt_steps(g.steps),
            fmt_steps(outcome.search_steps),
            format!("{total:.2}"),
            format!("{:.2}", total / srs.total_secs().max(1e-9)),
        ]);
    }
}

fn main() {
    let profile = Profile::from_args();
    let trial_budget = match profile {
        Profile::Quick => 60_000,
        Profile::Full => 200_000,
    };
    let mut r = Report::new(
        "fig13_greedy_smlss",
        &[
            "query",
            "method",
            "steps",
            "search_steps",
            "total_secs",
            "time_ratio_vs_srs",
        ],
    );

    let queue = TandemQueue::paper_default();
    bench(
        &mut r,
        "Queue",
        &queue,
        queue2_score,
        &queue_specs(),
        profile,
        trial_budget,
        111_000,
    );
    let cpp = CompoundPoisson::paper_default();
    bench(
        &mut r,
        "CPP",
        &cpp,
        surplus_score,
        &cpp_specs(),
        profile,
        trial_budget,
        112_000,
    );
    let (rnn, _) = trained_rnn(match profile {
        Profile::Quick => 30,
        Profile::Full => 100,
    });
    bench(
        &mut r,
        "RNN",
        &rnn,
        rnn_price_score,
        &rnn_specs(rnn.initial_price),
        profile,
        trial_budget / 4,
        113_000,
    );

    r.emit();
}
