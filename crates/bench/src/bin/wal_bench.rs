//! WAL append throughput under `FsyncPolicy::Always`: one appender
//! (every record pays its own fsync) vs concurrent appenders (group
//! commit shares one fsync across the cohort written while the previous
//! leader's syscall was in flight).
//!
//! Numbers are fsync-bound and vary wildly across storage; the quantity
//! of interest is the *ratio* and the fsyncs-per-record collapse, both
//! measured in the same run.

use mlss_store::{FsyncPolicy, Record, ResultRow, Wal, WalOptions};
use std::sync::Arc;
use std::time::Instant;

fn row(i: i64) -> ResultRow {
    ResultRow {
        model: format!("m{i}"),
        method: "srs".into(),
        beta: 6.0 + i as f64,
        horizon: 60,
        tau: 1e-4,
        variance: 1e-9,
        steps: 1_000,
        n_roots: 100,
        millis: 1,
        plan_source: "none".into(),
        shard_reuse: "none".into(),
        tenant: "-".into(),
    }
}

fn bench(threads: i64, per_thread: i64, label: &str) {
    let dir = std::env::temp_dir().join(format!("mlss_wal_bench_{label}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (wal, _) = Wal::open(
        dir.clone(),
        WalOptions {
            fsync: FsyncPolicy::Always,
            crash: None,
        },
    )
    .unwrap();
    let wal = Arc::new(wal);

    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let wal = wal.clone();
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    wal.append(&Record::ResultRow(row(t * per_thread + i)))
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = wal.stats();
    let total = (threads * per_thread) as f64;
    println!(
        "| {label:<22} | {threads:>7} | {total:>7.0} | {:>6} | {:>5.2} | {:>10.0} |",
        stats.fsyncs,
        stats.fsyncs as f64 / total,
        total / elapsed,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let records: i64 = if std::env::args().any(|a| a == "--full") {
        2_000
    } else {
        400
    };
    println!("| scenario               | threads | records | fsyncs | f/rec | appends/s  |");
    println!("|------------------------|---------|---------|--------|-------|------------|");
    bench(1, records, "always, lone appender");
    for t in [2, 4, 8] {
        bench(t, records / t, &format!("always, {t} appenders"));
    }
}
