//! Figure 10: splitting-ratio trade-off on **Small** queries — total
//! simulation steps to reach the quality target for r = 1..7 (r = 1 is
//! SRS), with balanced 4-level plans on Queue and CPP.
//!
//! Usage: `cargo run --release -p mlss-bench --bin fig10_splitting_ratio_small [--full]`

use mlss_bench::settings::{cpp_specs, queue_specs};
use mlss_bench::{balanced_for, fmt_steps, mlss_to_target, Profile, Report};
use mlss_core::prelude::*;
use mlss_models::{queue2_score, surplus_score, CompoundPoisson, TandemQueue};

const LEVELS: usize = 4;

fn sweep<M, Z>(
    r: &mut Report,
    label: &str,
    model: &M,
    score: Z,
    spec: mlss_bench::QuerySpec,
    profile: Profile,
    seed0: u64,
) where
    M: SimulationModel,
    Z: StateScore<M::State> + Copy,
{
    let vf = RatioValue::new(score, spec.beta);
    let problem = Problem::new(model, &vf, spec.horizon);
    let target = profile.target(spec.class);
    let plan = balanced_for(problem, LEVELS, seed0);
    for ratio in 1..=7u32 {
        let (row, _) = mlss_to_target(problem, plan.clone(), ratio, target, seed0 + ratio as u64);
        r.row(vec![
            label.into(),
            ratio.to_string(),
            fmt_steps(row.steps),
            format!("{:.2}", row.total_secs()),
        ]);
    }
}

fn main() {
    let profile = Profile::from_args();
    let mut r = Report::new(
        "fig10_splitting_ratio_small",
        &["model", "ratio", "steps", "secs"],
    );
    let queue = TandemQueue::paper_default();
    sweep(
        &mut r,
        "Queue/Small",
        &queue,
        queue2_score,
        queue_specs()[1],
        profile,
        81_000,
    );
    let cpp = CompoundPoisson::paper_default();
    sweep(
        &mut r,
        "CPP/Small",
        &cpp,
        surplus_score,
        cpp_specs()[1],
        profile,
        82_000,
    );
    r.emit();
    println!("(ratio 1 row is the SRS baseline; balanced {LEVELS}-level plans)");
}
