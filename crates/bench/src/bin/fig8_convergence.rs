//! Figure 8: query answer quality over time — convergence of the running
//! estimate and its CI/RE for SRS vs MLSS on (1) Queue/Small with CI,
//! (2) CPP/Tiny with RE, (3) RNN/Tiny with RE.
//!
//! The CSV series (`results/fig8_convergence.csv`) holds one row per
//! checkpoint: `panel, sampler, steps, tau, quality` where `quality` is
//! the CI half-width relative to τ̂ (panel 1) or the relative error
//! (panels 2-3).
//!
//! Usage: `cargo run --release -p mlss-bench --bin fig8_convergence [--full]`

use mlss_bench::rnn::trained_rnn;
use mlss_bench::settings::{cpp_specs, default_levels, queue_specs, rnn_specs, QueryClass};
use mlss_bench::{balanced_for, Profile, Report, DEFAULT_RATIO};
use mlss_core::prelude::*;
use mlss_core::stats::z_critical;
use mlss_models::{queue2_score, surplus_score, CompoundPoisson, TandemQueue};
use mlss_nn::rnn_price_score;

/// Record roughly this many checkpoints per run.
const POINTS: usize = 60;

struct Series {
    rows: Vec<(String, String, u64, f64, f64)>,
}

impl Series {
    fn trace<M, V>(
        &mut self,
        panel: &str,
        problem: Problem<'_, M, V>,
        plan: Option<PartitionPlan>,
        budget: u64,
        use_ci: bool,
        seed: u64,
    ) where
        M: SimulationModel,
        V: ValueFunction<M::State>,
    {
        let every = (budget / POINTS as u64).max(1);
        let mut next = every;
        let sampler_name = if plan.is_some() { "MLSS" } else { "SRS" };
        let mut capture = |est: &Estimate| {
            if est.steps >= next && est.hits > 0 {
                next += every;
                let quality = if use_ci {
                    z_critical(0.95) * est.std_err() / est.tau
                } else {
                    est.self_relative_error()
                };
                self.rows.push((
                    panel.to_string(),
                    sampler_name.to_string(),
                    est.steps,
                    est.tau,
                    quality,
                ));
            }
        };
        match plan {
            None => {
                SrsSampler::new(RunControl::budget(budget)).run_observed(
                    problem,
                    &mut rng_from_seed(seed),
                    &mut capture,
                );
            }
            Some(plan) => {
                let cfg =
                    GMlssConfig::new(plan, RunControl::budget(budget)).with_ratio(DEFAULT_RATIO);
                GMlssSampler::new(cfg).run_observed(
                    problem,
                    &mut rng_from_seed(seed),
                    &mut capture,
                );
            }
        }
    }
}

fn main() {
    let profile = Profile::from_args();
    let scale = match profile {
        Profile::Quick => 1,
        Profile::Full => 10,
    };
    let mut series = Series { rows: Vec::new() };

    // Panel 1: Queue model, Small query, CI measure.
    {
        let model = TandemQueue::paper_default();
        let spec = queue_specs()[1];
        assert_eq!(spec.class, QueryClass::Small);
        let vf = RatioValue::new(queue2_score, spec.beta);
        let problem = Problem::new(&model, &vf, spec.horizon);
        let budget = 4_000_000 * scale;
        series.trace("queue_small_ci", problem, None, budget, true, 11);
        let plan = balanced_for(problem, default_levels(spec.class), 13);
        series.trace("queue_small_ci", problem, Some(plan), budget, true, 12);
    }

    // Panel 2: CPP model, Tiny query, RE measure.
    {
        let model = CompoundPoisson::paper_default();
        let spec = cpp_specs()[2];
        assert_eq!(spec.class, QueryClass::Tiny);
        let vf = RatioValue::new(surplus_score, spec.beta);
        let problem = Problem::new(&model, &vf, spec.horizon);
        let budget = 8_000_000 * scale;
        series.trace("cpp_tiny_re", problem, None, budget, false, 21);
        let plan = balanced_for(problem, default_levels(spec.class), 23);
        series.trace("cpp_tiny_re", problem, Some(plan), budget, false, 22);
    }

    // Panel 3: RNN model, Tiny query, RE measure.
    {
        let (model, _) = trained_rnn(if scale > 1 { 100 } else { 30 });
        let spec = rnn_specs(model.initial_price)[1];
        let vf = RatioValue::new(rnn_price_score, spec.beta);
        let problem = Problem::new(&model, &vf, spec.horizon);
        let budget = 600_000 * scale;
        series.trace("rnn_tiny_re", problem, None, budget, false, 31);
        let plan = balanced_for(problem, default_levels(spec.class), 33);
        series.trace("rnn_tiny_re", problem, Some(plan), budget, false, 32);
    }

    let mut r = Report::new(
        "fig8_convergence",
        &["panel", "sampler", "steps", "tau", "quality"],
    );
    for (panel, sampler, steps, tau, q) in &series.rows {
        r.row(vec![
            panel.clone(),
            sampler.clone(),
            steps.to_string(),
            format!("{tau:.6e}"),
            format!("{q:.4}"),
        ]);
    }
    // Console: print only the final checkpoint per (panel, sampler) to
    // keep stdout readable; the CSV holds the full series.
    let mut summary = Report::new(
        "fig8_convergence_summary",
        &[
            "panel",
            "sampler",
            "final_steps",
            "final_tau",
            "final_quality",
        ],
    );
    let mut seen: Vec<(String, String)> = Vec::new();
    for (panel, sampler, steps, tau, q) in series.rows.iter().rev() {
        let key = (panel.clone(), sampler.clone());
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        summary.row(vec![
            panel.clone(),
            sampler.clone(),
            steps.to_string(),
            format!("{tau:.4e}"),
            format!("{q:.4}"),
        ]);
    }
    summary.emit();
    match r.write_csv() {
        Ok(p) => println!("full series written to {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
