//! Table 3: query answer comparisons on the Queue model — SRS vs MLSS
//! averaged over repeated runs with standard deviation, demonstrating
//! MLSS's unbiasedness.
//!
//! Usage: `cargo run --release -p mlss-bench --bin table3_queue_answers [--full]`

use mlss_bench::settings::{default_levels, queue_specs};
use mlss_bench::{
    balanced_for, fmt_prob, mean_std, mlss_to_target, srs_to_target, Profile, Report, DEFAULT_RATIO,
};
use mlss_core::prelude::*;
use mlss_models::{queue2_score, TandemQueue};

fn main() {
    let profile = Profile::from_args();
    let reps = profile.repetitions();
    let model = TandemQueue::paper_default();
    let mut r = Report::new("table3_queue_answers", &["query", "SRS", "MLSS"]);

    for spec in queue_specs() {
        let vf = RatioValue::new(queue2_score, spec.beta);
        let problem = Problem::new(&model, &vf, spec.horizon);
        let target = profile.target(spec.class);
        let plan = balanced_for(problem, default_levels(spec.class), 9000 + spec.beta as u64);

        let mut srs_taus = Vec::with_capacity(reps);
        let mut mlss_taus = Vec::with_capacity(reps);
        for rep in 0..reps {
            let seed = 1000 + rep as u64;
            srs_taus.push(srs_to_target(problem, target, seed).tau);
            let (row, _) =
                mlss_to_target(problem, plan.clone(), DEFAULT_RATIO, target, seed ^ 0xA5A5);
            mlss_taus.push(row.tau);
        }
        let (sm, ss) = mean_std(&srs_taus);
        let (mm, ms) = mean_std(&mlss_taus);
        r.row(vec![
            spec.class.name().to_string(),
            format!("{} ± {}", fmt_prob(sm), fmt_prob(ss)),
            format!("{} ± {}", fmt_prob(mm), fmt_prob(ms)),
        ]);
    }
    r.emit();
    println!("({reps} runs per cell; targets per §6 scaled by profile)");
}
