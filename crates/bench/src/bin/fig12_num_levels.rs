//! Figure 12: number-of-levels trade-off — steps to target with r = 3
//! balanced plans of m = 2..5 levels (Small) and m = 2..8 (Tiny), on
//! Queue and CPP. Reproduces the four panels of the paper's figure.
//!
//! Usage: `cargo run --release -p mlss-bench --bin fig12_num_levels [--full]`

use mlss_bench::settings::{cpp_specs, queue_specs};
use mlss_bench::{balanced_for, fmt_steps, mlss_to_target, Profile, Report, DEFAULT_RATIO};
use mlss_core::prelude::*;
use mlss_models::{queue2_score, surplus_score, CompoundPoisson, TandemQueue};

#[allow(clippy::too_many_arguments)]
fn sweep<M, Z>(
    r: &mut Report,
    label: &str,
    model: &M,
    score: Z,
    spec: mlss_bench::QuerySpec,
    levels: std::ops::RangeInclusive<usize>,
    profile: Profile,
    seed0: u64,
) where
    M: SimulationModel,
    Z: StateScore<M::State> + Copy,
{
    let vf = RatioValue::new(score, spec.beta);
    let problem = Problem::new(model, &vf, spec.horizon);
    let target = profile.target(spec.class);
    for m in levels {
        let plan = balanced_for(problem, m, seed0 + m as u64);
        let (row, _) = mlss_to_target(problem, plan, DEFAULT_RATIO, target, seed0 + 100 + m as u64);
        r.row(vec![
            label.into(),
            m.to_string(),
            fmt_steps(row.steps),
            format!("{:.2}", row.total_secs()),
        ]);
    }
}

fn main() {
    let profile = Profile::from_args();
    let mut r = Report::new("fig12_num_levels", &["panel", "levels", "steps", "secs"]);

    let queue = TandemQueue::paper_default();
    let cpp = CompoundPoisson::paper_default();

    // Panels (1)-(2): Small queries, m = 2..5 (m = 1 equals SRS).
    sweep(
        &mut r,
        "Queue/Small",
        &queue,
        queue2_score,
        queue_specs()[1],
        1..=5,
        profile,
        101_000,
    );
    sweep(
        &mut r,
        "CPP/Small",
        &cpp,
        surplus_score,
        cpp_specs()[1],
        1..=5,
        profile,
        102_000,
    );
    // Panels (3)-(4): Tiny queries, m = 2..8.
    sweep(
        &mut r,
        "Queue/Tiny",
        &queue,
        queue2_score,
        queue_specs()[2],
        2..=8,
        profile,
        103_000,
    );
    sweep(
        &mut r,
        "CPP/Tiny",
        &cpp,
        surplus_score,
        cpp_specs()[2],
        2..=8,
        profile,
        104_000,
    );
    r.emit();
    println!("(r = 3; the m = 1 rows are the SRS baseline)");
}
