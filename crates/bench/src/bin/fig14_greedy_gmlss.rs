//! Figure 14: greedy level partitions with g-MLSS on volatile processes —
//! SRS vs pre-tuned MLSS-BAL vs fully automated MLSS-G, with bootstrap
//! variance evaluation charged (the paper's green bars) and greedy search
//! overhead charged for MLSS-G.
//!
//! Usage: `cargo run --release -p mlss-bench --bin fig14_greedy_gmlss [--full]`

use mlss_bench::settings::{volatile_cpp_specs, volatile_queue_specs};
use mlss_bench::{fmt_steps, srs_to_target, Profile, Report, DEFAULT_RATIO};
use mlss_core::gmlss::VarianceMode;
use mlss_core::partition::{GreedyConfig, GreedyPartition};
use mlss_core::prelude::*;
use mlss_models::{
    queue2_score, surplus_score, volatile_cpp, volatile_queue, CompoundPoisson, TandemQueue,
};

fn run_gmlss<M, V>(
    problem: Problem<'_, M, V>,
    plan: PartitionPlan,
    target: QualityTarget,
    seed: u64,
) -> (f64, f64, u64, f64)
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    let control = RunControl::Target {
        target,
        check_every: 256,
        max_steps: mlss_bench::runners::MAX_STEPS,
    };
    let cfg = GMlssConfig::new(plan, control)
        .with_ratio(DEFAULT_RATIO)
        .with_variance(VarianceMode::Bootstrap);
    let res = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(seed));
    (
        res.estimate.tau,
        res.sim_elapsed.as_secs_f64() + res.bootstrap_elapsed.as_secs_f64(),
        res.estimate.steps,
        res.bootstrap_elapsed.as_secs_f64(),
    )
}

fn bench<M, Z>(
    r: &mut Report,
    label: &str,
    model: &M,
    score: Z,
    specs: &[mlss_bench::QuerySpec],
    profile: Profile,
    seed0: u64,
) where
    M: SimulationModel,
    Z: StateScore<M::State> + Copy,
{
    for spec in specs {
        let vf = RatioValue::new(score, spec.beta);
        let problem = Problem::new(model, &vf, spec.horizon);
        let target = profile.target(spec.class);
        let q = format!("{label}/{}", spec.class.name());
        eprintln!("running {q} ...");

        let srs = srs_to_target(problem, target, seed0 + spec.beta as u64);
        r.row(vec![
            q.clone(),
            "SRS".into(),
            fmt_steps(srs.steps),
            format!("{:.2}", srs.total_secs()),
            "0.00".into(),
            "1.00".into(),
        ]);

        // MLSS-BAL: uniform 6-level plan as the pre-tuned yardstick for
        // skipping processes (balanced tail fits are unreliable under
        // impulse mixtures).
        let (_, bal_secs, bal_steps, bal_boot) =
            run_gmlss(problem, PartitionPlan::uniform(6), target, seed0 + 2);
        r.row(vec![
            q.clone(),
            "MLSS-BAL".into(),
            fmt_steps(bal_steps),
            format!("{bal_secs:.2}"),
            format!("{bal_boot:.2}"),
            format!("{:.2}", bal_secs / srs.total_secs().max(1e-9)),
        ]);

        let trial_budget = match profile {
            Profile::Quick => 60_000,
            Profile::Full => 200_000,
        };
        let driver = GreedyPartition::new(GreedyConfig {
            ratio: DEFAULT_RATIO,
            trial_budget,
            candidates_per_round: 4,
            max_rounds: 6,
        });
        let t0 = std::time::Instant::now();
        let outcome = driver.search(problem, &mut rng_from_seed(seed0 + 3));
        let search_secs = t0.elapsed().as_secs_f64();
        let (_, g_secs, g_steps, g_boot) =
            run_gmlss(problem, outcome.plan.clone(), target, seed0 + 4);
        let total = g_secs + search_secs;
        r.row(vec![
            q,
            "MLSS-G".into(),
            fmt_steps(g_steps + outcome.search_steps),
            format!("{total:.2}"),
            format!("{g_boot:.2}"),
            format!("{:.2}", total / srs.total_secs().max(1e-9)),
        ]);
    }
}

fn main() {
    let profile = Profile::from_args();
    let mut r = Report::new(
        "fig14_greedy_gmlss",
        &[
            "query",
            "method",
            "steps",
            "total_secs",
            "bootstrap_secs",
            "time_ratio_vs_srs",
        ],
    );

    let vq = volatile_queue(TandemQueue::paper_default(), 500);
    bench(
        &mut r,
        "VolQueue",
        &vq,
        queue2_score,
        &volatile_queue_specs(),
        profile,
        121_000,
    );
    let vc = volatile_cpp(CompoundPoisson::zero_drift_default(), 500);
    bench(
        &mut r,
        "VolCPP",
        &vc,
        surplus_score,
        &volatile_cpp_specs(),
        profile,
        122_000,
    );

    r.emit();
}
