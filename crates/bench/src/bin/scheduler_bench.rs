//! Scheduler throughput/latency benchmark: concurrent time-sliced
//! serving vs serial FIFO execution under a mixed workload.
//!
//! The workload models the paper's DBMS serving scenario (§6.4) under
//! load: a burst of queries arrives at once — a few expensive tight-RE
//! g-MLSS queries and many cheap loose-RE SRS queries, expensive first
//! (the worst case for FIFO, which head-of-line-blocks every cheap query
//! behind the marathons). Both engines run the identical query list:
//!
//! * **FIFO** — synchronous `mlss_estimate` calls in arrival order, one
//!   at a time; a query's latency is the time from the burst arrival to
//!   its completion.
//! * **Scheduler** — `mlss_submit` for the whole burst, then per-query
//!   completion times. The pool's least-attained-service policy lets the
//!   cheap queries slice past the expensive ones.
//!
//! Reported: per-class p50/p99 latency, makespan, throughput, and the
//! session plan-cache counters (repeated same-model g-MLSS queries reuse
//! one pilot).
//!
//! Usage: `cargo run --release -p mlss-bench --bin scheduler_bench [--full]`

use mlss_bench::{Profile, Report};
use mlss_db::{Session, SessionConfig, Value};
use std::sync::Arc;
use std::time::Instant;

#[derive(Clone)]
struct QuerySpec {
    model: &'static str,
    method: &'static str,
    beta: f64,
    horizon: i64,
    target_re: f64,
    class: &'static str, // "cheap" | "expensive"
}

fn workload(profile: Profile) -> Vec<QuerySpec> {
    let (n_cheap, expensive_re, cheap_re) = match profile {
        Profile::Full => (24, 0.008, 0.25),
        Profile::Quick => (16, 0.015, 0.25),
    };
    let mut specs = Vec::new();
    // Expensive g-MLSS queries first — the FIFO worst case.
    for _ in 0..3 {
        specs.push(QuerySpec {
            model: "cpp",
            method: "gmlss",
            beta: 25.0,
            horizon: 80,
            target_re: expensive_re,
            class: "expensive",
        });
    }
    for k in 0..n_cheap {
        specs.push(QuerySpec {
            model: "walk",
            method: "srs",
            beta: 5.0 + (k % 3) as f64, // a few distinct cheap shapes
            horizon: 50,
            target_re: cheap_re,
            class: "cheap",
        });
    }
    specs
}

fn submit_args(spec: &QuerySpec, priority: i64, seed: i64) -> Vec<Value> {
    vec![
        spec.model.into(),
        spec.method.into(),
        spec.beta.into(),
        Value::Int(spec.horizon),
        spec.target_re.into(),
        Value::Int(priority),
        Value::Int(seed),
    ]
}

fn estimate_args(spec: &QuerySpec) -> Vec<Value> {
    vec![
        spec.model.into(),
        spec.method.into(),
        spec.beta.into(),
        Value::Int(spec.horizon),
        spec.target_re.into(),
    ]
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct ClassLatencies {
    cheap: Vec<f64>,
    expensive: Vec<f64>,
}

impl ClassLatencies {
    fn collect(mut samples: Vec<(&'static str, f64)>) -> Self {
        let mut cheap = Vec::new();
        let mut expensive = Vec::new();
        for (class, lat) in samples.drain(..) {
            if class == "cheap" {
                cheap.push(lat);
            } else {
                expensive.push(lat);
            }
        }
        cheap.sort_by(|a, b| a.total_cmp(b));
        expensive.sort_by(|a, b| a.total_cmp(b));
        Self { cheap, expensive }
    }
}

/// Serial FIFO baseline: synchronous calls in arrival order.
fn run_fifo(specs: &[QuerySpec]) -> (ClassLatencies, f64) {
    let session = Session::new(SessionConfig {
        workers: 1, // unused: everything runs synchronously
        seed: 41,
        ..SessionConfig::default()
    })
    .expect("fifo session");
    let burst = Instant::now();
    let mut samples = Vec::new();
    for spec in specs {
        session
            .call("mlss_estimate", &estimate_args(spec))
            .expect("fifo estimate");
        samples.push((spec.class, burst.elapsed().as_secs_f64()));
    }
    let makespan = burst.elapsed().as_secs_f64();
    (ClassLatencies::collect(samples), makespan)
}

/// Concurrent scheduler: submit the burst, measure per-query completion.
fn run_scheduler(specs: &[QuerySpec]) -> (ClassLatencies, f64, u64, u64) {
    let session = Arc::new(
        Session::new(SessionConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            slice_budget: 32_768,
            seed: 42,
            ..SessionConfig::default()
        })
        .expect("scheduler session"),
    );
    let burst = Instant::now();
    let ids: Vec<(u64, &'static str)> = specs
        .iter()
        .enumerate()
        .map(|(k, spec)| {
            let id = session
                .call("mlss_submit", &submit_args(spec, 0, 10_000 + k as i64))
                .expect("submit")
                .as_i64()
                .expect("id") as u64;
            (id, spec.class)
        })
        .collect();

    // One waiter thread per query records its completion time.
    let handles: Vec<_> = ids
        .iter()
        .map(|&(id, class)| {
            let session = Arc::clone(&session);
            std::thread::spawn(move || {
                let status = session.wait(id).expect("record result").expect("known id");
                assert!(
                    status.estimate().is_some(),
                    "query {id} should complete, got {status:?}"
                );
                (class, burst.elapsed().as_secs_f64())
            })
        })
        .collect();
    let samples: Vec<(&'static str, f64)> = handles
        .into_iter()
        .map(|h| h.join().expect("waiter"))
        .collect();
    let makespan = burst.elapsed().as_secs_f64();
    let (hits, misses) = (session.plan_cache().hits(), session.plan_cache().misses());
    (ClassLatencies::collect(samples), makespan, hits, misses)
}

fn main() {
    let profile = Profile::from_args();
    let specs = workload(profile);
    let n_cheap = specs.iter().filter(|s| s.class == "cheap").count();
    let n_expensive = specs.len() - n_cheap;
    println!(
        "mixed burst: {n_expensive} expensive g-MLSS + {n_cheap} cheap SRS queries (expensive first)"
    );

    let (fifo, fifo_makespan) = run_fifo(&specs);
    let (sched, sched_makespan, hits, misses) = run_scheduler(&specs);

    let mut r = Report::new(
        "scheduler_bench",
        &[
            "engine",
            "cheap_p50_s",
            "cheap_p99_s",
            "exp_p50_s",
            "exp_p99_s",
            "makespan_s",
            "queries_per_s",
        ],
    );
    for (name, lat, makespan) in [
        ("serial FIFO", &fifo, fifo_makespan),
        ("scheduler", &sched, sched_makespan),
    ] {
        r.row(vec![
            name.into(),
            format!("{:.3}", percentile(&lat.cheap, 0.50)),
            format!("{:.3}", percentile(&lat.cheap, 0.99)),
            format!("{:.3}", percentile(&lat.expensive, 0.50)),
            format!("{:.3}", percentile(&lat.expensive, 0.99)),
            format!("{makespan:.3}"),
            format!("{:.1}", specs.len() as f64 / makespan),
        ]);
    }
    r.emit();

    let speedup = percentile(&fifo.cheap, 0.50) / percentile(&sched.cheap, 0.50).max(1e-9);
    println!("cheap-query p50 latency: FIFO / scheduler = {speedup:.1}x");
    println!("plan cache: {hits} hits, {misses} misses");
    assert!(
        speedup > 1.0,
        "scheduler must beat serial FIFO on cheap-query p50"
    );
    assert!(
        hits > 0,
        "repeated same-model queries must hit the plan cache"
    );
}
