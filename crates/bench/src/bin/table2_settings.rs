//! Table 2 analogue: query settings on the different models, plus the
//! calibrated ground-truth probability band each `(s, β)` lands in.
//!
//! Usage: `cargo run --release -p mlss-bench --bin table2_settings`

use mlss_bench::settings::{cpp_specs, queue_specs, volatile_cpp_specs, volatile_queue_specs};
use mlss_bench::Report;

fn main() {
    let mut r = Report::new("table2_settings", &["model", "class", "s", "beta"]);
    for (label, specs) in [
        ("Queue", queue_specs()),
        ("CPP", cpp_specs()),
        ("Volatile Queue", volatile_queue_specs()),
        ("Volatile CPP", volatile_cpp_specs()),
    ] {
        for spec in specs {
            r.row(vec![
                label.to_string(),
                spec.class.name().to_string(),
                spec.horizon.to_string(),
                format!("{}", spec.beta),
            ]);
        }
    }
    // The RNN thresholds are multiples of the trained model's initial
    // price; see `table5_rnn` which prints them after training.
    r.emit();
    println!("(RNN thresholds are derived from the trained model — see table5_rnn)");
}
