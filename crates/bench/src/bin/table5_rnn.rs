//! Table 5: query performance on the RNN (LSTM-MDN) model — single-run
//! answer, wall time, and step counts for SRS vs MLSS on Small and Tiny
//! queries.
//!
//! Usage: `cargo run --release -p mlss-bench --bin table5_rnn [--full]`

use mlss_bench::rnn::trained_rnn;
use mlss_bench::settings::{default_levels, rnn_specs};
use mlss_bench::{
    balanced_for, fmt_prob, fmt_steps, mlss_to_target, srs_to_target, Profile, Report,
    DEFAULT_RATIO,
};
use mlss_core::prelude::*;
use mlss_core::quality::QualityTarget;
use mlss_nn::rnn_price_score;

fn main() {
    let profile = Profile::from_args();
    let epochs = match profile {
        Profile::Quick => 30,
        Profile::Full => 100,
    };
    eprintln!("training LSTM-MDN ({epochs} epochs)...");
    let t0 = std::time::Instant::now();
    let (model, report) = trained_rnn(epochs);
    eprintln!(
        "trained in {:.1}s, final NLL {:.3}, start price {:.1}",
        t0.elapsed().as_secs_f64(),
        report.final_nll(),
        model.initial_price
    );

    // Table 5 uses RE for both classes (the paper's step counts imply
    // ≈10% RE); quick mode loosens to 25%.
    let re = match profile {
        Profile::Quick => 0.25,
        Profile::Full => 0.10,
    };
    let target = QualityTarget::RelativeError {
        target: re,
        reference: None,
    };

    let mut r = Report::new(
        "table5_rnn",
        &["query", "beta", "sampler", "tau", "steps", "secs"],
    );
    for spec in rnn_specs(model.initial_price) {
        let vf = RatioValue::new(rnn_price_score, spec.beta);
        let problem = Problem::new(&model, &vf, spec.horizon);

        let srs = srs_to_target(problem, target, 51 + spec.horizon);
        let plan = balanced_for(problem, default_levels(spec.class), 57 + spec.horizon);
        let (mlss, _) = mlss_to_target(problem, plan, DEFAULT_RATIO, target, 61 + spec.horizon);

        for (name, row) in [("SRS", srs), ("MLSS", mlss)] {
            r.row(vec![
                spec.class.name().into(),
                format!("{:.0}", spec.beta),
                name.into(),
                fmt_prob(row.tau),
                fmt_steps(row.steps),
                format!("{:.2}", row.total_secs()),
            ]);
        }
    }
    r.emit();
}
