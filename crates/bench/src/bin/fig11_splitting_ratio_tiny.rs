//! Figure 11: splitting-ratio trade-off on **Tiny** queries — total
//! simulation steps to reach the quality target for r = 1..7, with
//! balanced 4-level plans on Queue and CPP.
//!
//! Usage: `cargo run --release -p mlss-bench --bin fig11_splitting_ratio_tiny [--full]`

use mlss_bench::settings::{cpp_specs, queue_specs};
use mlss_bench::{balanced_for, fmt_steps, mlss_to_target, Profile, Report};
use mlss_core::prelude::*;
use mlss_models::{queue2_score, surplus_score, CompoundPoisson, TandemQueue};

const LEVELS: usize = 4;

fn sweep<M, Z>(
    r: &mut Report,
    label: &str,
    model: &M,
    score: Z,
    spec: mlss_bench::QuerySpec,
    profile: Profile,
    seed0: u64,
) where
    M: SimulationModel,
    Z: StateScore<M::State> + Copy,
{
    let vf = RatioValue::new(score, spec.beta);
    let problem = Problem::new(model, &vf, spec.horizon);
    let target = profile.target(spec.class);
    let plan = balanced_for(problem, LEVELS, seed0);
    for ratio in 1..=7u32 {
        let (row, _) = mlss_to_target(problem, plan.clone(), ratio, target, seed0 + ratio as u64);
        r.row(vec![
            label.into(),
            ratio.to_string(),
            fmt_steps(row.steps),
            format!("{:.2}", row.total_secs()),
        ]);
    }
}

fn main() {
    let profile = Profile::from_args();
    let mut r = Report::new(
        "fig11_splitting_ratio_tiny",
        &["model", "ratio", "steps", "secs"],
    );
    let queue = TandemQueue::paper_default();
    sweep(
        &mut r,
        "Queue/Tiny",
        &queue,
        queue2_score,
        queue_specs()[2],
        profile,
        91_000,
    );
    let cpp = CompoundPoisson::paper_default();
    sweep(
        &mut r,
        "CPP/Tiny",
        &cpp,
        surplus_score,
        cpp_specs()[2],
        profile,
        92_000,
    );
    r.emit();
    println!("(ratio 1 row is the SRS baseline; balanced {LEVELS}-level plans)");
}
