//! Threshold calibration: estimate the ground-truth probability of each
//! candidate `(model, β)` with g-MLSS so the query classes of Table 2
//! land in the paper's probability bands (see DESIGN.md, substitution 4).
//!
//! Usage: `cargo run --release -p mlss-bench --bin calibrate [--budget N]`

use mlss_bench::{fmt_prob, Report, DEFAULT_RATIO};
use mlss_core::prelude::*;
use mlss_models::{
    queue2_score, surplus_score, volatile_cpp, volatile_queue, CompoundPoisson, TandemQueue,
};

fn budget_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--budget")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(12_000_000)
}

#[allow(clippy::too_many_arguments)]
fn calibrate<M>(
    report: &mut Report,
    label: &str,
    model: &M,
    score: fn(&M::State) -> f64,
    horizon: Time,
    betas: &[f64],
    budget: u64,
    seed: u64,
) where
    M: SimulationModel,
{
    for (i, &beta) in betas.iter().enumerate() {
        let vf = RatioValue::new(score, beta);
        let problem = Problem::new(model, &vf, horizon);
        let mut rng = rng_from_seed(seed + i as u64);
        let (plan, _) = balanced_plan(problem, 5, 4000, &mut rng);
        let cfg = GMlssConfig::new(plan, RunControl::budget(budget)).with_ratio(DEFAULT_RATIO);
        let res = GMlssSampler::new(cfg).run(problem, &mut rng);
        report.row(vec![
            label.to_string(),
            format!("{beta}"),
            format!("{horizon}"),
            fmt_prob(res.estimate.tau),
            format!("{:.1}%", res.estimate.self_relative_error() * 100.0),
            res.estimate.steps.to_string(),
        ]);
    }
}

fn main() {
    let budget = budget_from_args();
    let mut report = Report::new(
        "calibration",
        &["model", "beta", "s", "tau_hat", "RE", "steps"],
    );

    let queue = TandemQueue::paper_default();
    calibrate(
        &mut report,
        "queue",
        &queue,
        queue2_score,
        500,
        &[28.0, 37.0, 57.0, 63.0],
        budget,
        100,
    );

    let cpp = CompoundPoisson::paper_default();
    calibrate(
        &mut report,
        "cpp",
        &cpp,
        surplus_score,
        500,
        &[37.0, 50.0, 90.0, 115.0],
        budget,
        200,
    );

    let vq = volatile_queue(TandemQueue::paper_default(), 500);
    calibrate(
        &mut report,
        "volatile_queue",
        &vq,
        queue2_score,
        500,
        &[70.0, 75.0, 80.0, 90.0, 95.0, 100.0],
        budget,
        300,
    );

    let vc = volatile_cpp(CompoundPoisson::zero_drift_default(), 500);
    calibrate(
        &mut report,
        "volatile_cpp",
        &vc,
        surplus_score,
        500,
        &[620.0, 700.0, 850.0, 950.0, 1050.0],
        budget,
        400,
    );

    report.emit();
}
