//! Table 7: the whole pipeline inside the DBMS — model parameters live in
//! tables, the samplers run as stored procedures, timings land in the
//! `results` table. Compares SRS vs MLSS running times per query class.
//!
//! Usage: `cargo run --release -p mlss-bench --bin table7_dbms [--full]`

use mlss_bench::settings::{cpp_specs, queue_specs};
use mlss_bench::{Profile, Report};
use mlss_core::quality::QualityTarget;
use mlss_core::rng::rng_from_seed;
use mlss_db::{seed_default_models, Database, ProcRegistry, Value};

fn main() {
    let profile = Profile::from_args();
    // Table 7 uses time-to-quality; express both CI and RE classes as an
    // equivalent RE for the stored procedure interface.
    let re_for = |class: mlss_bench::QueryClass| -> f64 {
        use mlss_bench::QueryClass::*;
        match (profile, class) {
            // 1% CI at 95% ≈ 0.51% RE; quick ≈ 1.5% RE.
            (Profile::Full, Medium | Small) => 0.0051,
            (Profile::Quick, Medium | Small) => 0.02,
            (Profile::Full, _) => 0.10,
            (Profile::Quick, _) => 0.25,
        }
    };

    let db = Database::new();
    seed_default_models(&db).expect("seed models");
    let registry = ProcRegistry::with_builtins();
    let mut rng = rng_from_seed(77_000);

    let mut r = Report::new(
        "table7_dbms",
        &["model", "query", "SRS_secs", "MLSS_secs", "speedup"],
    );

    for (model, specs) in [("queue", queue_specs()), ("cpp", cpp_specs())] {
        for spec in specs {
            let mut secs = [0.0f64; 2];
            for (i, method) in ["srs", "mlss"].iter().enumerate() {
                let t0 = std::time::Instant::now();
                let args: Vec<Value> = vec![
                    model.into(),
                    (*method).into(),
                    spec.beta.into(),
                    Value::Int(spec.horizon as i64),
                    re_for(spec.class).into(),
                ];
                registry
                    .call(&db, "mlss_estimate", &args, &mut rng)
                    .expect("estimate");
                secs[i] = t0.elapsed().as_secs_f64();
            }
            r.row(vec![
                model.into(),
                spec.class.name().into(),
                format!("{:.2}", secs[0]),
                format!("{:.2}", secs[1]),
                format!("{:.1}x", secs[0] / secs[1].max(1e-9)),
            ]);
        }
    }
    r.emit();

    // Show that results landed in the `results` table and paths can be
    // materialized — the end-to-end story of §6.4.
    let rows = db
        .with_table("results", |t| t.len())
        .expect("results table");
    let args: Vec<Value> = vec![
        "cpp".into(),
        Value::Int(100),
        Value::Int(5),
        "paths_demo".into(),
    ];
    let n = registry
        .call(&db, "materialize_paths", &args, &mut rng)
        .expect("materialize");
    println!("results table rows: {rows}; materialized path rows: {n}");

    let _ = QualityTarget::paper_re(); // (referenced for doc purposes)
}
