//! Figure 1 analogue: the anatomy of one MLSS root path — a split tree
//! with levels L0 = [0, 0.4), L1 = [0.4, 0.67), L2 = [0.67, 1), L3 = [1,1]
//! and splitting ratio r = 3 on the Queue model, rendered as text.
//!
//! Usage: `cargo run --release -p mlss-bench --bin fig1_tree`

use mlss_core::diagnostics::trace_root_tree;
use mlss_core::prelude::*;
use mlss_models::{queue2_score, TandemQueue};

fn main() {
    let model = TandemQueue::paper_default();
    let vf = RatioValue::new(queue2_score, 30.0);
    let problem = Problem::new(&model, &vf, 200);
    let plan = PartitionPlan::new(vec![0.4, 0.67]).expect("static plan");

    // Search seeds until we find a tree that actually reaches the target —
    // the illustrative case of Figure 1.
    for seed in 0.. {
        let tree = trace_root_tree(problem, &plan, 3, &mut rng_from_seed(seed));
        if tree.hits > 0 && tree.depth() >= 2 {
            println!(
                "seed {seed}: {} segments, {} target hit(s), {} g-invocations\n",
                tree.segments.len(),
                tree.hits,
                tree.steps
            );
            print!("{}", tree.render());
            break;
        }
    }
}
