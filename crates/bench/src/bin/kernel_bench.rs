//! Batched-kernel microbenchmark: steps/s of the scalar→batch adapter vs
//! each model's native `step_batch` across frontier widths.
//!
//! For every (model, width) cell the harness steps a full-occupancy
//! cohort (all lanes alive, one private RNG per lane — exactly the
//! frontier's hot loop) through the same total number of `g`
//! invocations, once through [`ScalarAdapter`] (which forces the default
//! per-lane scalar loop) and once through the native kernel.
//!
//! Run with `--full` for larger totals (the committed CHANGES.md table);
//! the default profile keeps CI fast.

use mlss_core::model::{ScalarAdapter, SimulationModel, Time};
use mlss_core::rng::{rng_from_seed, SimRng};
use mlss_core::simd::Backend;
use mlss_models::{CompoundPoisson, GeometricBrownian, RandomWalk};
use mlss_nn::model::{NetConfig, RnnStockModel};
use std::time::Instant;

const WIDTHS: [usize; 4] = [1, 8, 64, 256];

/// Steps/s of `model.step_batch` at the given width over `total_steps`
/// `g` invocations (all lanes alive).
fn throughput<M: SimulationModel>(model: &M, width: usize, total_steps: u64) -> f64 {
    let mut lanes: Vec<M::State> = (0..width).map(|_| model.initial_state()).collect();
    let mut rngs: Vec<SimRng> = (0..width).map(|k| rng_from_seed(k as u64)).collect();
    let ts: Vec<Time> = vec![1; width];
    let alive: Vec<usize> = (0..width).collect();
    let batch_steps = (total_steps / width as u64).max(1);

    // Warmup: a tenth of the run, untimed.
    for _ in 0..batch_steps / 10 {
        model.step_batch(&mut lanes, &ts, &mut rngs, &alive);
    }
    let start = Instant::now();
    for _ in 0..batch_steps {
        model.step_batch(&mut lanes, &ts, &mut rngs, &alive);
    }
    let elapsed = start.elapsed().as_secs_f64();
    (batch_steps * width as u64) as f64 / elapsed
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.2} Msteps/s", rate / 1e6)
    } else {
        format!("{:.1} Ksteps/s", rate / 1e3)
    }
}

/// Bench one model; returns the best native-vs-adapter speedup observed
/// at width ≥ 64.
fn bench_model<M: SimulationModel>(name: &str, model: &M, total_steps: u64) -> f64 {
    let mut best_wide_speedup: f64 = 0.0;
    for &w in &WIDTHS {
        let adapter = throughput(&ScalarAdapter(model), w, total_steps);
        let native = throughput(model, w, total_steps);
        let speedup = native / adapter;
        if w >= 64 {
            best_wide_speedup = best_wide_speedup.max(speedup);
        }
        println!(
            "| {name} | {w} | {} | {} | **{speedup:.2}x** |",
            fmt_rate(adapter),
            fmt_rate(native),
        );
    }
    best_wide_speedup
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale: u64 = if full { 4 } else { 1 };

    println!("# kernel_bench — scalar-adapter vs native-batch steps/s");
    println!();
    println!(
        "profile: {}; widths {:?}; one RNG stream per lane (the frontier's hot loop); \
         SIMD backend: {} (MLSS_SIMD overrides)",
        if full { "--full" } else { "quick" },
        WIDTHS,
        Backend::active(),
    );
    println!();
    println!("| model | width | scalar adapter | native batch | speedup |");
    println!("|---|---|---|---|---|");

    let cpp = CompoundPoisson::paper_default();
    let cpp_best = bench_model("cpp", &cpp, 1_000_000 * scale);

    let walk = RandomWalk::new(0.3, 0.3, 0).reflected();
    let walk_best = bench_model("walk", &walk, 4_000_000 * scale);

    let gbm = GeometricBrownian::goog_like();
    let gbm_best = bench_model("gbm", &gbm, 2_000_000 * scale);

    // A genuinely trained (small) LSTM-MDN so the batched forward pass
    // runs the real inference path.
    let mut rng = rng_from_seed(2015);
    let prices = mlss_models::synthetic_price_series(320, &mut rng);
    let cfg = NetConfig {
        hidden: 32,
        mixtures: 3,
        seq_len: 20,
        epochs: 4,
        lr: 3e-3,
        grad_clip: 5.0,
    };
    let (rnn, _) = RnnStockModel::train_on_prices(&prices, &cfg, &mut rng);
    let rnn_best = bench_model("rnn (H=32)", &rnn, 60_000 * scale);

    // Paper-scale forward pass (the paper stacks 256-unit LSTM layers;
    // DESIGN.md substitution 2 trains small for CI speed). Weights are
    // random — sampling cost is weight-value-independent — so this rows'
    // numbers are the serving cost of the full-size network, where the
    // 2 MB recurrent matrix no longer fits near the core and the scalar
    // path re-streams it per path per step.
    let big = RnnStockModel {
        net: mlss_nn::model::LstmMdn::new(&NetConfig { hidden: 256, ..cfg }, &mut rng),
        initial_price: 500.0,
        scale: 0.02,
        return_clamp: 4.0,
    };
    let big_best = bench_model("rnn (H=256, paper scale)", &big, 6_000 * scale);

    println!();
    let best = cpp_best
        .max(walk_best)
        .max(gbm_best)
        .max(rnn_best)
        .max(big_best);
    let closed_form_best = cpp_best.max(walk_best).max(gbm_best);
    println!(
        "best native-batch speedup at width ≥ 64: **{best:.2}x** \
         (closed-form models: **{closed_form_best:.2}x**; acceptance: \
         ≥ 2x overall, ≥ 1.5x closed-form on a SIMD backend)"
    );
    // Regression guards, deliberately loose for noisy CI runners — the
    // committed table documents the real margins. The overall guard is
    // carried by the (backend-independent) RNN kernel; the closed-form
    // guard pins the vectorized draw pipeline specifically, so a silent
    // fallback to scalar (e.g. a broken `pipeline_engaged`) fails CI on
    // the SIMD legs rather than hiding behind the RNN's margin.
    assert!(
        best >= 1.2,
        "native batch kernels regressed: best wide-width speedup {best:.2}x"
    );
    if Backend::active() > Backend::Scalar {
        assert!(
            closed_form_best >= 1.5,
            "vectorized draw pipeline regressed on backend {}: best \
             closed-form wide-width speedup {closed_form_best:.2}x (< 1.5x)",
            Backend::active(),
        );
    }
}
