//! Batched-kernel microbenchmark: steps/s of the scalar→batch adapter vs
//! each model's native `step_batch` across frontier widths.
//!
//! For every (model, width) cell the harness steps a full-occupancy
//! cohort (all lanes alive, one private RNG per lane — exactly the
//! frontier's hot loop) through the same total number of `g`
//! invocations, once through [`ScalarAdapter`] (which forces the default
//! per-lane scalar loop) and once through the native kernel.
//!
//! Run with `--full` for larger totals (the committed CHANGES.md table);
//! the default profile keeps CI fast.

use mlss_core::estimator::run_sequential_batched;
use mlss_core::model::{ScalarAdapter, SimulationModel, Time};
use mlss_core::prelude::{Estimator, Problem, RatioValue, RunControl, SrsEstimator, ValueFunction};
use mlss_core::rng::{rng_from_seed, SimRng};
use mlss_core::simd::Backend;
use mlss_core::width::{self, KernelClass};
use mlss_models::{
    price_score, surplus_score, CompoundPoisson, GeometricBrownian, MarkovChain, RandomWalk,
};
use mlss_nn::model::{NetConfig, RnnStockModel};
use std::time::Instant;

const WIDTHS: [usize; 4] = [1, 8, 64, 256];

/// Steps/s of `model.step_batch` at the given width over `total_steps`
/// `g` invocations (all lanes alive).
fn throughput<M: SimulationModel>(model: &M, width: usize, total_steps: u64) -> f64 {
    let mut lanes: Vec<M::State> = (0..width).map(|_| model.initial_state()).collect();
    let mut rngs: Vec<SimRng> = (0..width).map(|k| rng_from_seed(k as u64)).collect();
    let ts: Vec<Time> = vec![1; width];
    let alive: Vec<usize> = (0..width).collect();
    let batch_steps = (total_steps / width as u64).max(1);

    // Warmup: a tenth of the run, untimed.
    for _ in 0..batch_steps / 10 {
        model.step_batch(&mut lanes, &ts, &mut rngs, &alive);
    }
    let start = Instant::now();
    for _ in 0..batch_steps {
        model.step_batch(&mut lanes, &ts, &mut rngs, &alive);
    }
    let elapsed = start.elapsed().as_secs_f64();
    (batch_steps * width as u64) as f64 / elapsed
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.2} Msteps/s", rate / 1e6)
    } else {
        format!("{:.1} Ksteps/s", rate / 1e3)
    }
}

/// Bench one model; returns the best native-vs-adapter speedup observed
/// at width ≥ 64.
fn bench_model<M: SimulationModel>(name: &str, model: &M, total_steps: u64) -> f64 {
    let mut best_wide_speedup: f64 = 0.0;
    for &w in &WIDTHS {
        let adapter = throughput(&ScalarAdapter(model), w, total_steps);
        let native = throughput(model, w, total_steps);
        let speedup = native / adapter;
        if w >= 64 {
            best_wide_speedup = best_wide_speedup.max(speedup);
        }
        println!(
            "| {name} | {w} | {} | {} | **{speedup:.2}x** |",
            fmt_rate(adapter),
            fmt_rate(native),
        );
    }
    best_wide_speedup
}

/// Best-of-`reps` wall time and the (deterministic, seeded) number of
/// discarded speculative roots of one driver run at `width`.
fn timed_driver_run<M, V>(
    problem: Problem<'_, M, V>,
    budget: u64,
    width: usize,
    reps: usize,
) -> (f64, u64)
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    let mut best = f64::INFINITY;
    let mut discarded = 0u64;
    for _ in 0..reps {
        width::take_thread_stats();
        let t0 = Instant::now();
        let out = run_sequential_batched(
            &SrsEstimator,
            problem,
            RunControl::budget(budget),
            &mut rng_from_seed(9),
            width,
        );
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(out.estimate.steps);
        discarded = width::take_thread_stats().discarded();
        best = best.min(dt);
    }
    (best, discarded)
}

/// The width the policy resolves `auto` to for this problem: the static
/// table for cheap kernels, a micro-probe over the class's candidate
/// widths otherwise — the same resolution the session layer runs.
fn auto_width<M, V>(problem: Problem<'_, M, V>) -> usize
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    let class = problem.model.kernel_class();
    if class == KernelClass::Cheap {
        return width::static_width(class, problem.horizon);
    }
    width::calibrate(class.probe_candidates(), |w| {
        let mut shard = <SrsEstimator as Estimator<M, V>>::shard(&SrsEstimator);
        let mut rng = rng_from_seed(0xBEEF);
        SrsEstimator.run_chunk_batched(problem, &mut shard, 4096, &mut rng, w);
    })
}

/// One width-policy table row: this query driven at static 64 vs at the
/// width `auto` resolves to; accumulates into
/// `(static_total, auto_total, static_discard, auto_discard)`.
fn policy_row<M, V>(
    name: &str,
    problem: Problem<'_, M, V>,
    budget: u64,
    totals: &mut (f64, f64, u64, u64),
) where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    let w = auto_width(problem);
    let class = problem.model.kernel_class();
    let (t64, d64) = timed_driver_run(problem, budget, 64, 3);
    let (ta, da) = timed_driver_run(problem, budget, w, 3);
    println!(
        "| {name} | {class:?} | {w} | {:.1} ms | {:.1} ms | **{:.2}x** | {d64} | {da} |",
        t64 * 1e3,
        ta * 1e3,
        t64 / ta,
    );
    totals.0 += t64;
    totals.1 += ta;
    totals.2 += d64;
    totals.3 += da;
}

/// The width-policy rows: a mixed workload driven at a static width 64
/// vs at the width `auto` resolves to per query. Returns
/// `(static_total, auto_total, static_discard, auto_discard)`.
fn bench_width_policy(scale: u64) -> (f64, f64, u64, u64) {
    println!();
    println!("## width policy — `batch_width=auto` vs static 64 (driver wall time, best of 3)");
    println!();
    println!(
        "| query | class | auto width | static-64 | auto | speedup | discard-64 | discard-auto |"
    );
    println!("|---|---|---|---|---|---|---|---|");

    let mut totals = (0.0f64, 0.0f64, 0u64, 0u64);

    // Cheap lookup kernel, small budget: the narrow static width wins
    // by not launching a 64-lane cohort near the budget boundary.
    let markov = MarkovChain::birth_death(32, 0.3, 0.3, 0);
    fn markov_score(s: &usize) -> f64 {
        *s as f64
    }
    let mv: RatioValue<fn(&usize) -> f64> =
        RatioValue::new(markov_score as fn(&usize) -> f64, 31.0);
    policy_row(
        "markov, tight budget",
        Problem::new(&markov, &mv, 50),
        30_000 * scale,
        &mut totals,
    );

    // SIMD-hot long-horizon kernels: the probe goes wide.
    let cpp = CompoundPoisson::paper_default();
    let cv: RatioValue<fn(&f64) -> f64> = RatioValue::new(surplus_score as fn(&f64) -> f64, 40.0);
    policy_row(
        "cpp, long run",
        Problem::new(&cpp, &cv, 80),
        400_000 * scale,
        &mut totals,
    );

    let gbm = GeometricBrownian::goog_like();
    let gv: RatioValue<fn(&f64) -> f64> = RatioValue::new(price_score as fn(&f64) -> f64, 560.0);
    policy_row(
        "gbm, long run",
        Problem::new(&gbm, &gv, 200),
        400_000 * scale,
        &mut totals,
    );

    println!();
    println!(
        "mixed workload total: static-64 {:.1} ms, auto {:.1} ms (**{:.2}x**); \
         discarded speculation {} -> {} roots",
        totals.0 * 1e3,
        totals.1 * 1e3,
        totals.0 / totals.1,
        totals.2,
        totals.3,
    );
    totals
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let width_only = std::env::args().any(|a| a == "--width");
    let scale: u64 = if full { 4 } else { 1 };

    if width_only {
        let (t64, ta, d64, da) = bench_width_policy(scale);
        assert!(
            ta <= t64 * 1.10,
            "auto width regressed the mixed workload: {ta:.3}s vs static-64 {t64:.3}s"
        );
        assert!(
            da <= d64,
            "auto width must not discard more speculation: {da} vs {d64}"
        );
        return;
    }

    println!("# kernel_bench — scalar-adapter vs native-batch steps/s");
    println!();
    println!(
        "profile: {}; widths {:?}; one RNG stream per lane (the frontier's hot loop); \
         SIMD backend: {} (MLSS_SIMD overrides)",
        if full { "--full" } else { "quick" },
        WIDTHS,
        Backend::active(),
    );
    println!();
    println!("| model | width | scalar adapter | native batch | speedup |");
    println!("|---|---|---|---|---|");

    let cpp = CompoundPoisson::paper_default();
    let cpp_best = bench_model("cpp", &cpp, 1_000_000 * scale);

    let walk = RandomWalk::new(0.3, 0.3, 0).reflected();
    let walk_best = bench_model("walk", &walk, 4_000_000 * scale);

    let gbm = GeometricBrownian::goog_like();
    let gbm_best = bench_model("gbm", &gbm, 2_000_000 * scale);

    // A genuinely trained (small) LSTM-MDN so the batched forward pass
    // runs the real inference path.
    let mut rng = rng_from_seed(2015);
    let prices = mlss_models::synthetic_price_series(320, &mut rng);
    let cfg = NetConfig {
        hidden: 32,
        mixtures: 3,
        seq_len: 20,
        epochs: 4,
        lr: 3e-3,
        grad_clip: 5.0,
    };
    let (rnn, _) = RnnStockModel::train_on_prices(&prices, &cfg, &mut rng);
    let rnn_best = bench_model("rnn (H=32)", &rnn, 60_000 * scale);

    // Paper-scale forward pass (the paper stacks 256-unit LSTM layers;
    // DESIGN.md substitution 2 trains small for CI speed). Weights are
    // random — sampling cost is weight-value-independent — so this rows'
    // numbers are the serving cost of the full-size network, where the
    // 2 MB recurrent matrix no longer fits near the core and the scalar
    // path re-streams it per path per step.
    let big = RnnStockModel {
        net: mlss_nn::model::LstmMdn::new(&NetConfig { hidden: 256, ..cfg }, &mut rng),
        initial_price: 500.0,
        scale: 0.02,
        return_clamp: 4.0,
    };
    let big_best = bench_model("rnn (H=256, paper scale)", &big, 6_000 * scale);

    println!();
    let best = cpp_best
        .max(walk_best)
        .max(gbm_best)
        .max(rnn_best)
        .max(big_best);
    let closed_form_best = cpp_best.max(walk_best).max(gbm_best);
    println!(
        "best native-batch speedup at width ≥ 64: **{best:.2}x** \
         (closed-form models: **{closed_form_best:.2}x**; acceptance: \
         ≥ 2x overall, ≥ 1.5x closed-form on a SIMD backend)"
    );
    // Regression guards, deliberately loose for noisy CI runners — the
    // committed table documents the real margins. The overall guard is
    // carried by the (backend-independent) RNN kernel; the closed-form
    // guard pins the vectorized draw pipeline specifically, so a silent
    // fallback to scalar (e.g. a broken `pipeline_engaged`) fails CI on
    // the SIMD legs rather than hiding behind the RNN's margin.
    assert!(
        best >= 1.2,
        "native batch kernels regressed: best wide-width speedup {best:.2}x"
    );
    if Backend::active() > Backend::Scalar {
        assert!(
            closed_form_best >= 1.5,
            "vectorized draw pipeline regressed on backend {}: best \
             closed-form wide-width speedup {closed_form_best:.2}x (< 1.5x)",
            Backend::active(),
        );
    }

    // The cross-lane Knuth acceptance point: cpp at the frontier's
    // production width of 64, best of 3 to shave scheduler noise. The
    // committed table documents the real margin (~1.5x median on AVX2);
    // the guard is loose for noisy CI runners.
    let mut cpp64_adapter = 0.0f64;
    let mut cpp64_native = 0.0f64;
    for _ in 0..3 {
        cpp64_adapter = cpp64_adapter.max(throughput(&ScalarAdapter(&cpp), 64, 1_000_000 * scale));
        cpp64_native = cpp64_native.max(throughput(&cpp, 64, 1_000_000 * scale));
    }
    let cpp64 = cpp64_native / cpp64_adapter;
    println!();
    println!(
        "cpp cross-lane Knuth at width 64 (best of 3): adapter {}, native {} — **{cpp64:.2}x**",
        fmt_rate(cpp64_adapter),
        fmt_rate(cpp64_native),
    );
    if full && Backend::active() >= Backend::Avx2 {
        assert!(
            cpp64 >= 1.25,
            "cpp cross-lane sampler regressed at width 64: {cpp64:.2}x"
        );
    }

    if full {
        let (t64, ta, d64, da) = bench_width_policy(scale);
        assert!(
            ta <= t64 * 1.10,
            "auto width regressed the mixed workload: {ta:.3}s vs static-64 {t64:.3}s"
        );
        assert!(
            da <= d64,
            "auto width must not discard more speculation: {da} vs {d64}"
        );
    }
}
