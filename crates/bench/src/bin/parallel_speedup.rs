//! Parallel-driver merge-strategy comparison: the pre-refactor
//! single-global-mutex merge vs. the sharded merge now implemented in
//! `mlss_core::parallel::run_parallel`.
//!
//! The legacy driver (reproduced here verbatim in behavior) made every
//! worker, after every chunk, (1) take one global mutex, (2) splice its
//! per-root ledger into the master ledger, and (3) recompute the merged
//! estimate *inside the lock* — an `O(n_roots)` fold over every root
//! simulated so far. Workers therefore serialized on the lock and the
//! per-merge cost grew linearly with run length. The sharded driver
//! deposits into per-worker slots and lets a single try-lock winner
//! reduce + evaluate the stopping rule at a coarse stride.
//!
//! Usage: `cargo run --release -p mlss-bench --bin parallel_speedup
//! [threads] [target_re]` (defaults: 8 threads, 1% RE, compound-Poisson
//! surplus model — the CHANGES.md benchmark configuration).

use mlss_bench::balanced_for;
use mlss_core::bootstrap::{bootstrap_variance, RootLedger};
use mlss_core::estimate::Estimate;
use mlss_core::estimator::{shard_for, Estimator};
use mlss_core::parallel::{run_parallel, ParallelConfig};
use mlss_core::prelude::*;
use mlss_core::stats::RunningMoments;
use mlss_models::{surplus_score, CompoundPoisson};
use std::sync::Mutex;

/// The pre-refactor merged estimate: recomputed from the master ledger on
/// every merge (O(n_roots · m) under the lock).
#[allow(clippy::too_many_arguments)]
fn legacy_merged_estimate(
    ledger: &RootLedger,
    m: usize,
    ratio: u32,
    steps: u64,
    skip_events: u64,
    resamples: usize,
    allow_bootstrap: bool,
    rng: &mut SimRng,
) -> Estimate {
    let n = ledger.n_roots();
    let idx: Vec<usize> = (0..n).collect();
    let tau = ledger.estimate_over(&idx, ratio);
    let agg = ledger.aggregate();
    let variance = if n < 2 {
        f64::INFINITY
    } else if skip_events == 0 {
        let mut moments = RunningMoments::new();
        for i in 0..n {
            moments.push(ledger.root_hits(i) as f64);
        }
        let scale = (ratio as f64).powi(m as i32 - 1);
        moments.sample_variance() / (n as f64 * scale * scale)
    } else if allow_bootstrap {
        bootstrap_variance(ledger, resamples, ratio, rng)
    } else {
        f64::INFINITY
    };
    Estimate {
        tau,
        variance,
        n_roots: n as u64,
        steps,
        hits: agg.hits,
    }
}

struct LegacyShared {
    ledger: RootLedger,
    steps: u64,
    skip_events: u64,
    done: bool,
}

/// Behavior-faithful reproduction of the old `run_parallel`: one global
/// mutex, merge + full estimate under the lock after every chunk.
fn legacy_mutex_run<M, V>(
    problem: Problem<'_, M, V>,
    base: &GMlssConfig,
    control: RunControl,
    threads: usize,
    sync_every: u64,
    seed: u64,
) -> (Estimate, std::time::Duration)
where
    M: SimulationModel + Sync,
    M::State: Send,
    V: ValueFunction<M::State> + Sync,
{
    let start = std::time::Instant::now();
    let m = base.plan.num_levels();
    let ratio = base.ratio;
    let shared = Mutex::new(LegacyShared {
        ledger: RootLedger::new(m),
        steps: 0,
        skip_events: 0,
        done: false,
    });
    let streams = StreamFactory::new(seed);

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let shared = &shared;
            scope.spawn(move || {
                let mut rng = streams.stream(worker as u64);
                loop {
                    if shared.lock().unwrap().done {
                        return;
                    }
                    // One chunk with the shared root simulation.
                    let mut chunk = shard_for(base, &problem);
                    base.run_chunk(problem, &mut chunk, sync_every, &mut rng);

                    // Merge and evaluate inside the single global lock —
                    // the legacy bottleneck.
                    let mut g = shared.lock().unwrap();
                    g.ledger.merge(&chunk.ledger);
                    g.steps += chunk.steps;
                    g.skip_events += chunk.skip_events;
                    let est = legacy_merged_estimate(
                        &g.ledger,
                        m,
                        ratio,
                        g.steps,
                        g.skip_events,
                        base.bootstrap_resamples,
                        matches!(control, RunControl::Target { .. }),
                        &mut rng,
                    );
                    let stop = match control {
                        RunControl::Budget(b) => g.steps >= b,
                        RunControl::Target {
                            target, max_steps, ..
                        } => g.steps >= max_steps || target.satisfied(&est),
                    };
                    if stop {
                        g.done = true;
                        return;
                    }
                }
            });
        }
    });

    let g = shared.into_inner().unwrap();
    let mut rng = rng_from_seed(seed ^ 0xD1B5_4A32_D192_ED03);
    let est = legacy_merged_estimate(
        &g.ledger,
        m,
        ratio,
        g.steps,
        g.skip_events,
        base.bootstrap_resamples,
        true,
        &mut rng,
    );
    (est, start.elapsed())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let target_re: f64 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(0.01);

    // The CHANGES.md configuration: compound-Poisson surplus model,
    // moderate-probability query, run to a 1% relative-error target.
    let model = CompoundPoisson::paper_default();
    let vf = RatioValue::new(surplus_score, 50.0);
    let problem = Problem::new(&model, &vf, 500);
    let plan = balanced_for(problem, 5, 4242);
    let base = GMlssConfig::new(plan, RunControl::budget(1));
    let control = RunControl::Target {
        target: QualityTarget::RelativeError {
            target: target_re,
            reference: None,
        },
        check_every: 256,
        max_steps: 20_000_000_000,
    };
    let sync_every = 65_536;

    println!(
        "parallel_speedup: CPP surplus β=50 s=500, {threads} threads, RE target {:.2}%",
        target_re * 100.0
    );

    let (old_est, old_wall) = legacy_mutex_run(problem, &base, control, threads, sync_every, 7);
    let old_rate = old_est.steps as f64 / old_wall.as_secs_f64();
    println!(
        "legacy mutex merge : τ̂={:.5}  steps={:>12}  wall={:>7.2}s  throughput={:>6.1} Msteps/s",
        old_est.tau,
        old_est.steps,
        old_wall.as_secs_f64(),
        old_rate / 1e6
    );

    let cfg = ParallelConfig {
        threads,
        sync_every,
        seed: 7,
        bootstrap_resamples: 200,
        batch_width: 0,
    };
    let new_run = run_parallel(problem, &base, control, &cfg);
    let new_rate = new_run.estimate.steps as f64 / new_run.elapsed.as_secs_f64();
    println!(
        "sharded merge      : τ̂={:.5}  steps={:>12}  wall={:>7.2}s  throughput={:>6.1} Msteps/s  (merges={}, contended={})",
        new_run.estimate.tau,
        new_run.estimate.steps,
        new_run.elapsed.as_secs_f64(),
        new_rate / 1e6,
        new_run.merges,
        new_run.contended_merges
    );

    println!(
        "throughput speedup : {:.2}x  (wall-clock {:.2}x)",
        new_rate / old_rate,
        old_wall.as_secs_f64() / new_run.elapsed.as_secs_f64()
    );
}
