//! Cross-query shard reuse benchmark: the planner's two winning
//! profiles, measured against a store-disabled baseline.
//!
//! * **repeated** — the same `ESTIMATE` statement issued N times (a
//!   dashboard refreshing a durability panel). With the store on, the
//!   first run deposits its shard and every repeat is served from the
//!   store (`stored`: zero simulation); off, every repeat re-simulates.
//! * **tightening** — one query re-issued down a ladder of
//!   relative-error targets (an analyst zooming in: 2% → 1.4% → 1% →
//!   0.7% → 0.5%). With the store on, each rung warm-starts the
//!   previous rung's checkpoint and pays only the marginal roots —
//!   O(Δ) — so the whole ladder costs about as much as its last rung
//!   alone; off, each rung re-simulates from scratch and the costs sum.
//!
//! Both sessions run identical statements with pinned seeds, so the
//! harness also asserts the reuse invariant end-to-end: the warm
//! session's final estimate is bit-identical to a cold run straight to
//! the final target.
//!
//! Usage: `cargo run --release -p mlss-bench --bin reuse_bench [--full]`

use mlss_bench::{Profile, Report};
use mlss_core::spec::{Method, QuerySpec};
use mlss_db::{Session, SessionConfig, Value};
use std::time::Instant;

fn session(store: bool) -> Session {
    Session::new(SessionConfig {
        workers: 1,
        seed: 4242,
        shard_store_capacity: if store { 64 } else { 0 },
        ..SessionConfig::default()
    })
    .expect("bench session")
}

/// One benchmark statement. SRS keeps the cost of a run proportional to
/// its simulated steps (its quality checks are O(1), with an exact
/// variance), so the ladder measures the planner's O(Δ) claim rather
/// than estimator-specific check overheads.
fn statement(target_re: f64, seed: u64) -> String {
    let mut spec = QuerySpec::new("ar", 3.0, 40, target_re);
    spec.method = Method::Srs;
    spec.options.seed = Some(seed);
    spec.render()
}

/// Run `statements` synchronously; return (elapsed seconds, per-row
/// (tau, shard_reuse) provenance in execution order).
fn run(s: &Session, statements: &[String]) -> (f64, Vec<(f64, String)>) {
    let start = Instant::now();
    for sql in statements {
        s.execute(sql).expect("estimate statement");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let rows: Vec<(f64, String)> = s
        .db()
        .with_table("results", |t| {
            t.scan()
                .map(|r| {
                    let tau = match r[4] {
                        Value::Float(x) => x,
                        _ => f64::NAN,
                    };
                    let reuse = match &r[10] {
                        Value::Text(t) => t.clone(),
                        _ => "?".into(),
                    };
                    (tau, reuse)
                })
                .collect()
        })
        .unwrap_or_default();
    (elapsed, rows)
}

fn tags(rows: &[(f64, String)]) -> String {
    rows.iter()
        .map(|(_, t)| t.as_str())
        .collect::<Vec<_>>()
        .join(",")
}

struct ProfileResult {
    name: &'static str,
    on: f64,
    off: f64,
    on_tags: String,
    off_tags: String,
    final_tau_on: f64,
}

fn run_profile(name: &'static str, statements: Vec<String>) -> ProfileResult {
    let with_store = session(true);
    let (on, on_rows) = run(&with_store, &statements);
    let without = session(false);
    let (off, off_rows) = run(&without, &statements);
    assert_eq!(on_rows.len(), statements.len());
    ProfileResult {
        name,
        on,
        off,
        on_tags: tags(&on_rows),
        off_tags: tags(&off_rows),
        final_tau_on: on_rows.last().expect("rows").0,
    }
}

fn main() {
    let profile = Profile::from_args();
    // The quick ladder stops at 1% so CI stays fast; --full descends to
    // the paper-scale 0.5%.
    let (ladder, repeats): (&[f64], usize) = match profile {
        Profile::Full => (&[0.02, 0.014, 0.01, 0.007, 0.005], 8),
        Profile::Quick => (&[0.04, 0.028, 0.02, 0.014, 0.01], 8),
    };
    let repeat_re = ladder[2];
    let seed = 99u64;

    let repeated = run_profile(
        "repeated",
        (0..repeats).map(|_| statement(repeat_re, seed)).collect(),
    );
    let tightening = run_profile(
        "tightening",
        ladder.iter().map(|&re| statement(re, seed)).collect(),
    );

    // The cold comparator for the invariant: a fresh store-less session
    // running only the final-target statement (its plan pilot runs just
    // like the ladder's first rung did, so the streams align).
    let cold_ref = session(false);
    let (_, cold_rows) = run(&cold_ref, &[statement(*ladder.last().unwrap(), seed)]);
    let cold_tau = cold_rows[0].0;
    assert_eq!(
        tightening.final_tau_on.to_bits(),
        cold_tau.to_bits(),
        "warm ladder must be bit-identical to the cold run at the final target"
    );
    println!("bit-identity: warm ladder τ̂ == cold τ̂ == {:.6e}", cold_tau);

    let mut r = Report::new(
        "reuse_bench",
        &[
            "workload",
            "store_off_s",
            "store_on_s",
            "speedup",
            "reuse_on",
            "reuse_off",
        ],
    );
    for p in [&repeated, &tightening] {
        r.row(vec![
            p.name.into(),
            format!("{:.3}", p.off),
            format!("{:.3}", p.on),
            format!("{:.1}x", p.off / p.on.max(1e-9)),
            p.on_tags.clone(),
            p.off_tags.clone(),
        ]);
    }
    r.emit();

    let repeated_speedup = repeated.off / repeated.on.max(1e-9);
    let tightening_speedup = tightening.off / tightening.on.max(1e-9);
    println!("repeated-query speedup:   {repeated_speedup:.1}x (store on vs off)");
    println!("tightening-ladder speedup: {tightening_speedup:.1}x (store on vs off)");

    assert!(
        repeated.on_tags.ends_with("stored"),
        "repeats must be served from the store: {}",
        repeated.on_tags
    );
    assert!(
        tightening.on_tags.contains("warm"),
        "the ladder must warm-start: {}",
        tightening.on_tags
    );
    assert!(
        repeated_speedup >= 5.0,
        "repeated profile must gain ≥5x, got {repeated_speedup:.2}x"
    );
    assert!(
        tightening_speedup >= 1.5,
        "tightening profile must gain ≥1.5x, got {tightening_speedup:.2}x"
    );
}
