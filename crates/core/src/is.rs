//! Importance sampling baseline (§2.2).
//!
//! The paper reviews IS as the classical variance-reduction alternative
//! to splitting and notes its key drawback: it needs *a-priori knowledge
//! of the model* to tilt the sampling distribution, which is impossible
//! for black boxes. We implement it for the class of models that can
//! expose a tilted step (e.g. Gaussian-noise processes with a mean shift,
//! discrete walks with reweighted step probabilities), together with a
//! cross-entropy-style pilot search for the tilt parameter — enough to
//! reproduce the paper's qualitative point: where IS applies it is
//! excellent, but it simply does not apply to general simulation models,
//! while MLSS does.

use crate::estimate::Estimate;
use crate::estimator::{ChunkOutcome, Diagnostics, Estimator, Ledger};
use crate::frontier::{run_frontier, FrontierMode, RootKernel, SegmentStatus};
use crate::model::{ScalarAdapter, SimulationModel, StepCounter, Time};
use crate::query::{Problem, ValueFunction};
use crate::rng::SimRng;
use crate::stats::ExactSum;

/// A model that can simulate under an exponentially tilted proposal.
pub trait TiltableModel: SimulationModel {
    /// Simulate one step under the proposal with tilt parameter `theta`,
    /// returning the new state and the *log likelihood-ratio increment*
    /// `log dP/dQ` of the drawn transition (so that the product of
    /// `exp(increments)` is the IS weight).
    fn step_tilted(
        &self,
        state: &Self::State,
        t: Time,
        theta: f64,
        rng: &mut SimRng,
    ) -> (Self::State, f64);

    /// Batched tilted stepping: for each lane `i` in `alive`, advance
    /// `lanes[i]` one tilted step and *add* the log likelihood-ratio
    /// increment into `log_ws[i]`. Same per-lane draw-identity contract
    /// as [`SimulationModel::step_batch`]; the default loops the scalar
    /// [`TiltableModel::step_tilted`].
    fn step_tilted_batch(
        &self,
        lanes: &mut [Self::State],
        log_ws: &mut [f64],
        ts: &[Time],
        theta: f64,
        rngs: &mut [SimRng],
        alive: &[usize],
    ) {
        for &i in alive {
            let (next, dlw) = self.step_tilted(&lanes[i], ts[i], theta, &mut rngs[i]);
            lanes[i] = next;
            log_ws[i] += dlw;
        }
    }
}

/// A borrowed tiltable model is itself tiltable (mirrors the
/// [`SimulationModel`] blanket impl for `&M`).
impl<M: TiltableModel> TiltableModel for &M {
    fn step_tilted(
        &self,
        state: &Self::State,
        t: Time,
        theta: f64,
        rng: &mut SimRng,
    ) -> (Self::State, f64) {
        (**self).step_tilted(state, t, theta, rng)
    }

    fn step_tilted_batch(
        &self,
        lanes: &mut [Self::State],
        log_ws: &mut [f64],
        ts: &[Time],
        theta: f64,
        rngs: &mut [SimRng],
        alive: &[usize],
    ) {
        (**self).step_tilted_batch(lanes, log_ws, ts, theta, rngs, alive)
    }
}

/// [`ScalarAdapter`] hides native tilted kernels too: `step_tilted`
/// forwards, but `step_tilted_batch` keeps the provided scalar loop —
/// the reference the draw-identity suite holds native tilted kernels
/// against.
impl<M: TiltableModel> TiltableModel for ScalarAdapter<M> {
    fn step_tilted(
        &self,
        state: &Self::State,
        t: Time,
        theta: f64,
        rng: &mut SimRng,
    ) -> (Self::State, f64) {
        self.0.step_tilted(state, t, theta, rng)
    }

    // No step_tilted_batch override: the provided scalar loop is the point.
}

/// Metered tilted stepping: batched tilted steps cost one atomic
/// `add(k)` for `k` alive lanes, exactly like plain batched stepping.
impl<M: TiltableModel> TiltableModel for StepCounter<M> {
    fn step_tilted(
        &self,
        state: &Self::State,
        t: Time,
        theta: f64,
        rng: &mut SimRng,
    ) -> (Self::State, f64) {
        self.count_one();
        self.inner().step_tilted(state, t, theta, rng)
    }

    fn step_tilted_batch(
        &self,
        lanes: &mut [Self::State],
        log_ws: &mut [f64],
        ts: &[Time],
        theta: f64,
        rngs: &mut [SimRng],
        alive: &[usize],
    ) {
        self.count_many(alive.len() as u64);
        self.inner()
            .step_tilted_batch(lanes, log_ws, ts, theta, rngs, alive)
    }
}

/// Result of an importance-sampling run.
#[derive(Debug, Clone)]
pub struct IsResult {
    /// The weighted estimate.
    pub estimate: Estimate,
    /// The tilt parameter used.
    pub theta: f64,
    /// Effective sample size `(Σw)²/Σw²` over *hitting* paths — a health
    /// indicator; tiny ESS means the tilt is mismatched.
    pub effective_sample_size: f64,
}

/// Accumulated IS statistics — the sampler's [`Ledger`].
///
/// Weight sums are held in [`ExactSum`] accumulators, so shard merges are
/// order-insensitive: merging shards in any permutation yields the same
/// exact sums, hence bit-identical estimates (non-hitting paths contribute
/// weight 0, so Σw over all paths equals Σw over hits).
#[derive(Debug, Clone, Default)]
pub struct IsShard {
    /// Paths simulated.
    n: u64,
    /// Exact Σw over hitting paths (all others contribute 0).
    w: ExactSum,
    /// Exact Σw² over hitting paths.
    w2: ExactSum,
    /// `g` invocations spent.
    pub steps: u64,
    /// Paths that satisfied the query.
    pub hits: u64,
}

impl IsShard {
    /// Sum of weights over hitting paths.
    pub fn weight_sum(&self) -> f64 {
        self.w.value()
    }

    /// Sum of squared weights over hitting paths.
    pub fn weight_sq_sum(&self) -> f64 {
        self.w2.value()
    }

    /// Effective sample size `(Σw)²/Σw²` over hitting paths — a health
    /// indicator; tiny ESS means the tilt is mismatched.
    pub fn effective_sample_size(&self) -> f64 {
        let (ws, ws2) = (self.weight_sum(), self.weight_sq_sum());
        if ws2 > 0.0 {
            ws * ws / ws2
        } else {
            0.0
        }
    }

    /// Unbiased sample variance of the per-path contributions
    /// `w_i · l(SP_i)` (0 when `n < 2`), from the exact weight sums.
    pub fn contribution_variance(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let n = self.n as f64;
        let (ws, ws2) = (self.weight_sum(), self.weight_sq_sum());
        ((ws2 - ws * ws / n) / (n - 1.0)).max(0.0)
    }

    /// The weighted estimate over the accumulated paths.
    pub fn estimate(&self) -> Estimate {
        let (tau, variance) = if self.n == 0 {
            (0.0, f64::INFINITY)
        } else if self.n < 2 {
            (self.weight_sum() / self.n as f64, f64::INFINITY)
        } else {
            let n = self.n as f64;
            (self.weight_sum() / n, self.contribution_variance() / n)
        };
        Estimate {
            tau,
            variance,
            n_roots: self.n,
            steps: self.steps,
            hits: self.hits,
        }
    }
}

// Durability codec. The exact weight sums serialize their Shewchuk
// partials verbatim, so a restored shard's `value()` — and every later
// `add`/`merge` — is bit-identical to the original's.
impl crate::persist::Persist for IsShard {
    fn persist(&self, out: &mut Vec<u8>) {
        crate::persist::put_u64(out, self.n);
        self.w.persist(out);
        self.w2.persist(out);
        crate::persist::put_u64(out, self.steps);
        crate::persist::put_u64(out, self.hits);
    }

    fn restore(r: &mut crate::persist::Reader<'_>) -> Result<Self, crate::persist::PersistError> {
        Ok(Self {
            n: r.u64()?,
            w: ExactSum::restore(r)?,
            w2: ExactSum::restore(r)?,
            steps: r.u64()?,
            hits: r.u64()?,
        })
    }
}

impl Ledger for IsShard {
    fn merge(&mut self, other: Self) {
        self.n += other.n;
        self.w.merge(&other.w);
        self.w2.merge(&other.w2);
        self.steps += other.steps;
        self.hits += other.hits;
    }

    fn n_roots(&self) -> u64 {
        self.n
    }

    fn steps(&self) -> u64 {
        self.steps
    }
}

/// Simulate one tilted path into the shard.
fn simulate_path<M, V>(
    problem: &Problem<'_, M, V>,
    theta: f64,
    shard: &mut IsShard,
    rng: &mut SimRng,
) where
    M: TiltableModel,
    V: ValueFunction<M::State>,
{
    let mut state = problem.model.initial_state();
    let mut log_w = 0.0;
    for t in 1..=problem.horizon {
        let (next, dlw) = problem.model.step_tilted(&state, t, theta, rng);
        shard.steps += 1;
        log_w += dlw;
        state = next;
        if problem.satisfied(&state) {
            let w = log_w.exp();
            shard.hits += 1;
            shard.w.add(w);
            shard.w2.add(w * w);
            break;
        }
    }
    shard.n += 1;
}

/// Frontier kernel for IS: one tilted segment per root; stepping goes
/// through the model's tilted proposal rather than `step_batch`, with the
/// log-weight accumulated per lane.
pub(crate) struct IsKernel {
    theta: f64,
}

/// Per-root scratch: running log-weight and the weight at the hit.
#[derive(Default)]
pub(crate) struct IsScratch {
    log_w: f64,
    hit_w: Option<f64>,
}

impl<M, V> RootKernel<M, V> for IsKernel
where
    M: TiltableModel,
    V: ValueFunction<M::State>,
{
    type Scratch = IsScratch;
    type Outcome = (Option<f64>, u64);
    type Shard = IsShard;

    fn new_scratch(&self) -> IsScratch {
        IsScratch::default()
    }

    fn begin_root(&self, problem: &Problem<'_, M, V>, scratch: &mut IsScratch) -> (M::State, Time) {
        scratch.log_w = 0.0;
        scratch.hit_w = None;
        (problem.model.initial_state(), 0)
    }

    fn step_lanes(
        &self,
        problem: &Problem<'_, M, V>,
        lanes: &mut [M::State],
        ts: &[Time],
        rngs: &mut [SimRng],
        alive: &[usize],
        scratches: &mut [IsScratch],
    ) {
        // Tilted proposal instead of the plain batch kernel, routed
        // through the model's (overridable) batched tilted step. The
        // log-weights live in per-lane scratch; bridge them through a
        // contiguous buffer so a native override sees the documented
        // `&mut [f64]` shape.
        let mut log_ws: Vec<f64> = scratches.iter().map(|s| s.log_w).collect();
        problem
            .model
            .step_tilted_batch(lanes, &mut log_ws, ts, self.theta, rngs, alive);
        for &i in alive {
            scratches[i].log_w = log_ws[i];
        }
    }

    fn on_step(
        &self,
        problem: &Problem<'_, M, V>,
        scratch: &mut IsScratch,
        state: &M::State,
        _t: Time,
    ) -> SegmentStatus {
        if problem.satisfied(state) {
            scratch.hit_w = Some(scratch.log_w.exp());
            SegmentStatus::SegmentDone
        } else {
            SegmentStatus::Running
        }
    }

    fn next_segment(&self, _scratch: &mut IsScratch) -> Option<(M::State, Time)> {
        None
    }

    fn finish_root(&self, scratch: &mut IsScratch, steps: u64) -> (Option<f64>, u64) {
        (scratch.hit_w, steps)
    }

    fn commit(&self, shard: &mut IsShard, (hit_w, steps): (Option<f64>, u64)) {
        shard.steps += steps;
        if let Some(w) = hit_w {
            shard.hits += 1;
            shard.w.add(w);
            shard.w2.add(w * w);
        }
        shard.n += 1;
    }
}

/// The IS strategy as a pluggable [`Estimator`]: independent
/// exponentially tilted paths with likelihood-ratio reweighting. Only
/// applicable to [`TiltableModel`]s — the paper's point about IS needing
/// a-priori model knowledge, expressed as a trait bound.
#[derive(Debug, Clone, Copy)]
pub struct IsEstimator {
    /// The tilt parameter `θ` (see [`select_tilt`]).
    pub theta: f64,
}

impl IsEstimator {
    /// Estimator with the given tilt.
    pub fn new(theta: f64) -> Self {
        Self { theta }
    }
}

impl<M, V> Estimator<M, V> for IsEstimator
where
    M: TiltableModel,
    V: ValueFunction<M::State>,
{
    type Shard = IsShard;

    fn name(&self) -> &'static str {
        "is"
    }

    fn shard(&self) -> IsShard {
        IsShard::default()
    }

    fn run_chunk(
        &self,
        problem: Problem<'_, M, V>,
        shard: &mut IsShard,
        budget: u64,
        rng: &mut SimRng,
    ) -> ChunkOutcome {
        let kernel = IsKernel { theta: self.theta };
        run_frontier(&kernel, &problem, shard, budget, rng, FrontierMode::Shared)
    }

    fn run_chunk_batched(
        &self,
        problem: Problem<'_, M, V>,
        shard: &mut IsShard,
        budget: u64,
        rng: &mut SimRng,
        width: usize,
    ) -> ChunkOutcome {
        let kernel = IsKernel { theta: self.theta };
        run_frontier(
            &kernel,
            &problem,
            shard,
            budget,
            rng,
            FrontierMode::PerRoot(width),
        )
    }

    fn estimate(&self, shard: &IsShard, _rng: &mut SimRng) -> Estimate {
        shard.estimate()
    }

    fn diagnostics(&self, shard: &IsShard) -> Diagnostics {
        Diagnostics {
            estimator: "is",
            skip_events: 0,
            details: vec![
                ("theta".to_string(), self.theta),
                ("ess".to_string(), shard.effective_sample_size()),
            ],
        }
    }
}

/// The IS sampler: `n` independent tilted paths; estimator
/// `τ̂ = (1/n) Σ w_i · l(SP_i)` (§2.2).
pub fn importance_sample<M, V>(
    problem: Problem<'_, M, V>,
    theta: f64,
    n_paths: u64,
    rng: &mut SimRng,
) -> IsResult
where
    M: TiltableModel,
    V: ValueFunction<M::State>,
{
    assert!(n_paths >= 2);
    let mut shard = IsShard::default();
    for _ in 0..n_paths {
        simulate_path(&problem, theta, &mut shard, rng);
    }
    let ess = shard.effective_sample_size();
    let mut estimate = shard.estimate();
    // Historical contract: variance is reported even for n < 2 callers
    // (the assert above guarantees n ≥ 2, keep the formula explicit).
    estimate.variance = shard.contribution_variance() / n_paths as f64;
    IsResult {
        estimate,
        theta,
        effective_sample_size: ess,
    }
}

/// Cross-entropy-style tilt selection (§2.2's CE reference, simplified):
/// evaluate a grid of tilts with small pilots and pick the one minimizing
/// the empirical second moment of the weighted estimator — equivalently,
/// its variance proxy.
pub fn select_tilt<M, V>(
    problem: Problem<'_, M, V>,
    candidates: &[f64],
    pilot_paths: u64,
    rng: &mut SimRng,
) -> f64
where
    M: TiltableModel,
    V: ValueFunction<M::State>,
{
    assert!(!candidates.is_empty());
    let mut best = candidates[0];
    let mut best_score = f64::INFINITY;
    for &theta in candidates {
        let mut second_moment = 0.0;
        let mut any_hit = false;
        for _ in 0..pilot_paths {
            let mut state = problem.model.initial_state();
            let mut log_w = 0.0;
            for t in 1..=problem.horizon {
                let (next, dlw) = problem.model.step_tilted(&state, t, theta, rng);
                log_w += dlw;
                state = next;
                if problem.satisfied(&state) {
                    second_moment += (2.0 * log_w).exp();
                    any_hit = true;
                    break;
                }
            }
        }
        // No hits at all → uninformative; rank by "found nothing" last.
        let score = if any_hit {
            second_moment / pilot_paths as f64
        } else {
            f64::INFINITY
        };
        if score < best_score {
            best_score = score;
            best = theta;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::RunControl;
    use crate::query::RatioValue;
    use crate::rng::rng_from_seed;
    use crate::srs::SrsSampler;
    use rand::RngExt;
    use rand_distr::{Distribution, Normal};

    /// Gaussian random walk `x_{t+1} = x_t + N(μ, σ)`; tilting shifts the
    /// increment mean by θ with the standard exponential-tilt weight.
    struct GaussWalk {
        mu: f64,
        sigma: f64,
    }

    impl SimulationModel for GaussWalk {
        type State = f64;

        fn initial_state(&self) -> f64 {
            0.0
        }

        fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            let n = Normal::new(self.mu, self.sigma).unwrap();
            s + n.sample(rng)
        }
    }

    impl TiltableModel for GaussWalk {
        fn step_tilted(&self, s: &f64, _t: Time, theta: f64, rng: &mut SimRng) -> (f64, f64) {
            let n = Normal::new(self.mu + theta, self.sigma).unwrap();
            let eps = n.sample(rng); // the realized increment
                                     // log dP/dQ = (θ² − 2θ(ε − μ)) / (2σ²) … derive:
                                     // P ∝ exp(−(ε−μ)²/2σ²), Q ∝ exp(−(ε−μ−θ)²/2σ²)
                                     // log P/Q = [ (ε−μ−θ)² − (ε−μ)² ] / 2σ²
                                     //         = [ θ² − 2θ(ε−μ) ] / 2σ².
            let d = eps - self.mu;
            let log_w = (theta * theta - 2.0 * theta * d) / (2.0 * self.sigma * self.sigma);
            (s + eps, log_w)
        }

        // `rng.random::<f64>()` unused here but kept in scope for parity
        // with other models' tilts.
    }

    #[allow(clippy::type_complexity)]
    fn rare_problem(_model: &GaussWalk) -> (RatioValue<fn(&f64) -> f64>, Time) {
        fn score(s: &f64) -> f64 {
            *s
        }
        (RatioValue::new(score as fn(&f64) -> f64, 25.0), 100)
    }

    #[test]
    fn zero_tilt_is_plain_monte_carlo() {
        let model = GaussWalk {
            mu: 0.0,
            sigma: 1.0,
        };
        let (vf, horizon) = rare_problem(&model);
        let problem = Problem::new(&model, &vf, horizon);
        let res = importance_sample(problem, 0.0, 20_000, &mut rng_from_seed(1));
        // All weights are exactly 1 ⇒ estimate equals the hit fraction.
        assert!(
            (res.estimate.tau - res.estimate.hits as f64 / res.estimate.n_roots as f64).abs()
                < 1e-12
        );
    }

    #[test]
    fn tilted_is_matches_srs_on_rare_event() {
        let model = GaussWalk {
            mu: 0.0,
            sigma: 1.0,
        };
        let (vf, horizon) = rare_problem(&model);
        let problem = Problem::new(&model, &vf, horizon);

        // SRS reference with a big budget (τ ≈ P(max ≥ 25) ≈ 6e-3).
        let srs =
            SrsSampler::new(RunControl::budget(3_000_000)).run(problem, &mut rng_from_seed(2));

        let is = importance_sample(problem, 0.25, 20_000, &mut rng_from_seed(3));
        let diff = (srs.estimate.tau - is.estimate.tau).abs();
        let tol = 4.0 * (srs.estimate.variance + is.estimate.variance).sqrt();
        assert!(
            diff <= tol.max(1e-3),
            "SRS {} vs IS {} (tol {tol})",
            srs.estimate.tau,
            is.estimate.tau
        );
        // And IS achieves much lower variance per path on this rare event.
        let srs_var_per_path = srs.estimate.variance * srs.estimate.n_roots as f64;
        let is_var_per_path = is.estimate.variance * is.estimate.n_roots as f64;
        assert!(
            is_var_per_path < srs_var_per_path,
            "IS per-path variance {is_var_per_path} should beat SRS {srs_var_per_path}"
        );
    }

    #[test]
    fn select_tilt_prefers_positive_drift_for_upcrossing() {
        let model = GaussWalk {
            mu: 0.0,
            sigma: 1.0,
        };
        let (vf, horizon) = rare_problem(&model);
        let problem = Problem::new(&model, &vf, horizon);
        let theta = select_tilt(
            problem,
            &[-0.2, 0.0, 0.1, 0.25, 0.5],
            400,
            &mut rng_from_seed(4),
        );
        assert!(
            theta > 0.0,
            "upcrossing query needs positive tilt, got {theta}"
        );
    }

    #[test]
    fn sampler_and_estimator_trait_agree_exactly() {
        // `importance_sample`'s scalar `simulate_path` loop and the
        // frontier's `IsKernel` are two implementations of the same root
        // program: with a budget equal to the sampler run's exact step
        // count, the chunk commits exactly the same paths — pin the two
        // bit-exactly so they cannot drift.
        let model = GaussWalk {
            mu: 0.0,
            sigma: 1.0,
        };
        let (vf, horizon) = rare_problem(&model);
        let problem = Problem::new(&model, &vf, horizon);
        let res = importance_sample(problem, 0.25, 2_000, &mut rng_from_seed(23));

        let mut rng = rng_from_seed(23);
        let mut shard = IsShard::default();
        IsEstimator::new(0.25).run_chunk(problem, &mut shard, res.estimate.steps, &mut rng);
        assert_eq!(shard.steps, res.estimate.steps);
        assert_eq!(shard.n, res.estimate.n_roots);
        assert_eq!(shard.hits, res.estimate.hits);
        assert_eq!(
            shard.estimate().tau.to_bits(),
            res.estimate.tau.to_bits(),
            "identical exact weight sums must give identical τ̂"
        );
    }

    #[test]
    fn ess_reported() {
        let model = GaussWalk {
            mu: 0.0,
            sigma: 1.0,
        };
        let (vf, horizon) = rare_problem(&model);
        let problem = Problem::new(&model, &vf, horizon);
        let res = importance_sample(problem, 0.3, 5_000, &mut rng_from_seed(5));
        assert!(res.effective_sample_size > 0.0);
        assert!(res.effective_sample_size <= res.estimate.hits as f64 + 1e-9);
        let _ = rng_from_seed(0).random::<f64>();
    }
}
