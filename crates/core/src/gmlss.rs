//! g-MLSS — general Multi-Level Splitting Sampling (§4).
//!
//! g-MLSS removes s-MLSS's *no level-skipping* assumption. Boundary
//! crossings `U_i` replace level entrances `T_i`; the decomposition
//! `τ = Π π_i` with `π_i = Pr[Θ_i | Θ_{i-1}]` (Eq. 8) is assumption-free,
//! and each `π_{i+1}` is estimated by Eq. (9):
//!
//! ```text
//!            Σ_{h ∈ H_i} μ(h)  +  n_skip_i
//! π̂_{i+1} = --------------------------------
//!                |H_i|  +  n_skip_i
//! ```
//!
//! where `H_i` are split states that *landed* in `L_i`, `μ(h)` is the
//! fraction of `h`'s `r` offsprings that crossed `β_{i+1}`, and
//! `n_skip_i` counts paths that crossed `β_{i+1}` without ever landing in
//! `L_i`. The product estimator (Eq. 10) is unbiased in general
//! (Proposition 2).
//!
//! ### Lineage bookkeeping
//!
//! Every path segment tracks `crossed_max`, the highest boundary index its
//! lineage has crossed. A step that raises `level_of(f)` above
//! `crossed_max` is a *crossing event*: it (1) reports a crossing to the
//! parent split (the `μ` numerator), (2) increments `n_skip_i` for every
//! level `i` strictly between the old and new landing levels, and then
//! (3) either registers a target hit (landing level `m`) or lands, joins
//! `H_j`, and splits into `r` offsprings. A segment therefore has at most
//! one crossing event; paths that meander below `crossed_max` never
//! re-split at levels already credited.

use crate::bootstrap::{bootstrap_variance, RootLedger};
use crate::estimate::Estimate;
use crate::levels::PartitionPlan;
use crate::model::{SimulationModel, Time};
use crate::quality::RunControl;
use crate::query::{Problem, ValueFunction};
use crate::rng::SimRng;
use crate::stats::RunningMoments;

/// How the sampler estimates the variance of `τ̂` for stopping decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarianceMode {
    /// Use the per-root-hit variance (Eq. 5-6) while no level skip has been
    /// observed — in that regime g-MLSS coincides with s-MLSS — and switch
    /// to bootstrapping as soon as a skip occurs. The practical default.
    Auto,
    /// Always use the per-root-hit variance (only sound without skips).
    PerRootHits,
    /// Always bootstrap (§4.2 "General Level-skipping and Bootstrapping").
    Bootstrap,
}

/// Configuration for the g-MLSS sampler.
#[derive(Debug, Clone)]
pub struct GMlssConfig {
    /// The level partition plan `B`.
    pub plan: PartitionPlan,
    /// Splitting ratio `r ≥ 1` applied at every split. (g-MLSS permits
    /// variable ratios; a fixed small `r` is the paper's recommended and
    /// evaluated setting, §5.)
    pub ratio: u32,
    /// Stopping criterion.
    pub control: RunControl,
    /// Variance estimation policy.
    pub variance: VarianceMode,
    /// Number of bootstrap resamples per variance evaluation.
    pub bootstrap_resamples: usize,
    /// Evaluate the bootstrap only every this-many quality checks — the
    /// paper's "run bootstrap evaluation conservatively" rule of thumb
    /// (§4.2). 1 = every check.
    pub bootstrap_every: u32,
    /// Retain the per-root ledger in the result (needed for post-hoc
    /// bootstrap analysis; the sampler itself always keeps it internally).
    pub keep_ledger: bool,
}

impl GMlssConfig {
    /// Config with the paper's defaults: `r = 3`, auto variance, 200
    /// bootstrap resamples, conservative (every 4th check) bootstrapping.
    pub fn new(plan: PartitionPlan, control: RunControl) -> Self {
        Self {
            plan,
            ratio: 3,
            control,
            variance: VarianceMode::Auto,
            bootstrap_resamples: 200,
            bootstrap_every: 4,
            keep_ledger: false,
        }
    }

    /// Override the splitting ratio.
    pub fn with_ratio(mut self, ratio: u32) -> Self {
        assert!(ratio >= 1, "splitting ratio must be ≥ 1");
        self.ratio = ratio;
        self
    }

    /// Override the variance mode.
    pub fn with_variance(mut self, mode: VarianceMode) -> Self {
        self.variance = mode;
        self
    }
}

/// Result of a g-MLSS run.
#[derive(Debug, Clone)]
pub struct GMlssResult {
    /// Final estimate (Eq. 10; variance per the configured policy).
    pub estimate: Estimate,
    /// Estimated `π̂_1 .. π̂_m` (Eq. 9) at completion.
    pub pi_hats: Vec<f64>,
    /// Aggregate landings `|H_i|` per level (index `i-1` holds level `i`).
    pub landings: Vec<u64>,
    /// Aggregate offspring crossings per level.
    pub crossings: Vec<u64>,
    /// Aggregate skip counts `n_skip_i` per level.
    pub skips: Vec<u64>,
    /// Total number of level-skip events observed (0 ⇒ s-MLSS regime).
    pub skip_events: u64,
    /// Sample variance of per-root target-hit counts, `Var(N_m⟨1⟩)` —
    /// the quantity the partition-plan evaluation (Eq. 15) needs.
    pub root_hit_variance: f64,
    /// Per-root ledger (present when `keep_ledger`).
    pub ledger: Option<RootLedger>,
    /// Wall-clock time spent simulating.
    pub sim_elapsed: std::time::Duration,
    /// Wall-clock time spent in bootstrap variance evaluations.
    pub bootstrap_elapsed: std::time::Duration,
}

struct Segment<S> {
    state: S,
    t: Time,
    /// Highest boundary index this lineage has crossed.
    crossed_max: usize,
    /// Index of the parent split event in the per-root scratch, if any.
    parent: Option<usize>,
}

/// Scratch state for one split event during a root simulation.
struct SplitEvent {
    level: usize,
    crossed: u32,
}

/// The g-MLSS sampler.
#[derive(Debug, Clone)]
pub struct GMlssSampler {
    /// Sampler configuration.
    pub config: GMlssConfig,
}

impl GMlssSampler {
    /// Create a sampler.
    pub fn new(config: GMlssConfig) -> Self {
        assert!(config.ratio >= 1, "splitting ratio must be ≥ 1");
        assert!(config.bootstrap_resamples >= 2, "need ≥ 2 resamples");
        assert!(config.bootstrap_every >= 1, "bootstrap cadence must be ≥ 1");
        Self { config }
    }

    /// Run to completion.
    pub fn run<M, V>(&self, problem: Problem<'_, M, V>, rng: &mut SimRng) -> GMlssResult
    where
        M: SimulationModel,
        V: ValueFunction<M::State>,
    {
        self.run_observed(problem, rng, |_| {})
    }

    /// Run, invoking `observe` with the running estimate after each root.
    pub fn run_observed<M, V>(
        &self,
        problem: Problem<'_, M, V>,
        rng: &mut SimRng,
        mut observe: impl FnMut(&Estimate),
    ) -> GMlssResult
    where
        M: SimulationModel,
        V: ValueFunction<M::State>,
    {
        let sim_start = std::time::Instant::now();
        let plan = &self.config.plan;
        let m = plan.num_levels();
        let r = self.config.ratio;

        // The ledger is needed whenever a bootstrap may run (Bootstrap or
        // Auto modes) or the caller asked to keep it; in pure
        // PerRootHits mode we skip it entirely — long runs would otherwise
        // hold one record per root for no benefit.
        let track_ledger =
            self.config.keep_ledger || self.config.variance != VarianceMode::PerRootHits;
        let mut ledger = RootLedger::new(m);
        let mut landings = vec![0u64; m];
        let mut crossings = vec![0u64; m];
        let mut skips = vec![0u64; m];
        let mut steps: u64 = 0;
        let mut n_roots: u64 = 0;
        let mut hits: u64 = 0;
        let mut skip_events: u64 = 0;
        let mut moments = RunningMoments::new();
        let mut since_check: u64 = 0;
        let mut checks: u64 = 0;
        let mut last_variance = f64::INFINITY;
        let mut bootstrap_elapsed = std::time::Duration::ZERO;

        let mut stack: Vec<Segment<M::State>> = Vec::new();
        let mut events: Vec<SplitEvent> = Vec::new();

        loop {
            // ---- assemble running estimate -----------------------------
            let tau = if m == 1 {
                // Trivial plan: no interior boundary, so g-MLSS degenerates
                // to SRS labelling of root paths.
                if n_roots == 0 {
                    0.0
                } else {
                    hits as f64 / n_roots as f64
                }
            } else {
                estimator(m, r, n_roots, &landings, &crossings, &skips).0
            };
            let need_boot = match self.config.variance {
                VarianceMode::PerRootHits => false,
                VarianceMode::Bootstrap => true,
                VarianceMode::Auto => skip_events > 0,
            };
            // In budget mode the running variance is irrelevant (a final
            // bootstrap is performed on exit), so only Target mode pays for
            // in-flight bootstraps — and only at its quality-check cadence.
            let at_check = since_check >= checked_cadence(&self.config.control);
            if need_boot {
                // Bootstrap conservatively: only at quality checks and only
                // every `bootstrap_every`-th one.
                if at_check {
                    checks += 1;
                    if checks % self.config.bootstrap_every as u64 == 0 && n_roots >= 2 {
                        let t0 = std::time::Instant::now();
                        last_variance = bootstrap_variance(
                            &ledger,
                            self.config.bootstrap_resamples,
                            r,
                            rng,
                        );
                        bootstrap_elapsed += t0.elapsed();
                    }
                }
            } else {
                let scale = (r as f64).powi(m as i32 - 1);
                last_variance = if n_roots == 0 {
                    f64::INFINITY
                } else {
                    moments.sample_variance() / (n_roots as f64 * scale * scale)
                };
            }
            let est = Estimate {
                tau,
                variance: last_variance,
                n_roots,
                steps,
                hits,
            };
            if n_roots > 0 {
                observe(&est);
            }
            if !self.config.control.should_continue(&est, &mut since_check) {
                let sim_elapsed = sim_start.elapsed() - bootstrap_elapsed;
                // Final variance: always bootstrap when skips occurred, so
                // the reported quality is sound even between cadences.
                let variance = if skip_events > 0
                    && self.config.variance != VarianceMode::PerRootHits
                    && n_roots >= 2
                {
                    let t0 = std::time::Instant::now();
                    let v =
                        bootstrap_variance(&ledger, self.config.bootstrap_resamples, r, rng);
                    bootstrap_elapsed += t0.elapsed();
                    v
                } else {
                    last_variance
                };
                let pi_hats = if m == 1 {
                    vec![tau]
                } else {
                    pi_estimates(m, r, n_roots, &landings, &crossings, &skips)
                };
                return GMlssResult {
                    estimate: Estimate {
                        tau,
                        variance,
                        n_roots,
                        steps,
                        hits,
                    },
                    pi_hats,
                    landings: landings[1..].to_vec(),
                    crossings: crossings[1..].to_vec(),
                    skips: skips[1..].to_vec(),
                    skip_events,
                    root_hit_variance: moments.sample_variance(),
                    ledger: self.config.keep_ledger.then_some(ledger),
                    sim_elapsed,
                    bootstrap_elapsed,
                };
            }

            // ---- simulate one root path and all its offspring ----------
            events.clear();
            stack.clear();
            let mut root_hits: u32 = 0;

            let init = problem.model.initial_state();
            // Clamp to m-1: the durability query counts t ≥ 1, so a start
            // at the target is *not* an instant hit — the root watches for
            // (re-)crossing β_m from its birth level.
            let init_level = plan.level_of(problem.value(&init)).min(m - 1);
            if init_level == 0 {
                stack.push(Segment {
                    state: init,
                    t: 0,
                    crossed_max: 0,
                    parent: None,
                });
            } else {
                // The root starts above L_0 (its value already crosses
                // β_1..β_k at t = 0). Treat t = 0 like any crossing event:
                // the levels jumped over get skip credit, and the root
                // lands (and splits) in its starting level. The telescoped
                // estimator then yields π̂_i = 1 for the pre-crossed levels
                // — exactly the conditional-probability semantics of
                // Eq. 8. The per-root-hit variance shortcut is invalid in
                // this regime (hit multiplicity is no longer r^{m-1}), so
                // the pre-crossings count as skip events, pushing Auto
                // mode onto the bootstrap.
                if init_level > 1 {
                    skip_events += 1;
                }
                for i in 1..init_level.min(m) {
                    if track_ledger {
                        ledger.bump_skip(i);
                    }
                    skips[i] += 1;
                }
                if track_ledger {
                    ledger.bump_landing(init_level);
                }
                landings[init_level] += 1;
                let ei = events.len();
                events.push(SplitEvent {
                    level: init_level,
                    crossed: 0,
                });
                for _ in 0..r {
                    stack.push(Segment {
                        state: init.clone(),
                        t: 0,
                        crossed_max: init_level,
                        parent: Some(ei),
                    });
                }
            }

            while let Some(seg) = stack.pop() {
                let mut state = seg.state;
                for t in (seg.t + 1)..=problem.horizon {
                    state = problem.model.step(&state, t, rng);
                    steps += 1;
                    let lvl = plan.level_of(problem.value(&state));
                    if lvl <= seg.crossed_max {
                        continue;
                    }
                    // Crossing event.
                    if let Some(pi) = seg.parent {
                        events[pi].crossed += 1;
                    }
                    if lvl - seg.crossed_max > 1 {
                        skip_events += 1;
                    }
                    // Levels crossed over without landing: n_skip_i for
                    // i in (crossed_max, lvl).
                    for i in (seg.crossed_max + 1)..lvl {
                        if track_ledger {
                            ledger.bump_skip(i);
                        }
                        skips[i] += 1;
                    }
                    if lvl == m {
                        hits += 1;
                        root_hits += 1;
                    } else {
                        if track_ledger {
                            ledger.bump_landing(lvl);
                        }
                        landings[lvl] += 1;
                        let ei = events.len();
                        events.push(SplitEvent {
                            level: lvl,
                            crossed: 0,
                        });
                        for _ in 0..r {
                            stack.push(Segment {
                                state: state.clone(),
                                t,
                                crossed_max: lvl,
                                parent: Some(ei),
                            });
                        }
                    }
                    break;
                }
            }

            for ev in &events {
                if track_ledger {
                    ledger.add_crossings(ev.level, ev.crossed);
                }
                crossings[ev.level] += ev.crossed as u64;
            }
            if track_ledger {
                ledger.commit_root(root_hits);
            }
            moments.push(root_hits as f64);
            n_roots += 1;
            since_check += 1;
        }
    }
}

/// Cadence of the control's quality checks (u64::MAX for budget mode).
fn checked_cadence(control: &RunControl) -> u64 {
    match control {
        RunControl::Budget(_) => u64::MAX,
        RunControl::Target { check_every, .. } => *check_every,
    }
}

/// Compute `π̂_1..π̂_m` from aggregate counters (Eq. 9).
///
/// Index convention: `landings[i]`, `crossings[i]`, `skips[i]` are the
/// counters for level `i` (index 0 unused — no splits happen in `L_0`).
pub(crate) fn pi_estimates(
    m: usize,
    r: u32,
    n_roots: u64,
    landings: &[u64],
    crossings: &[u64],
    skips: &[u64],
) -> Vec<f64> {
    let mut pis = Vec::with_capacity(m);
    // π̂_1: fraction of roots that crossed β_1. Roots either land in L_1
    // (→ landings[1]) or skip past it (→ skips[1]); both crossed β_1.
    let pi1 = if n_roots == 0 {
        0.0
    } else if m == 1 {
        // Single level: crossing β_1 *is* hitting the target; landings and
        // skips are both empty, so π̂_1 is computed by the caller from hits
        // directly — signalled here with the crossings of level 0 slot.
        // (Handled in `estimator`.)
        f64::NAN
    } else {
        (landings[1] + skips[1]) as f64 / n_roots as f64
    };
    pis.push(pi1);
    // π̂_{i+1} for i = 1..m-1.
    for i in 1..m {
        let denom = (landings[i] + skips[i]) as f64;
        let num = crossings[i] as f64 / r as f64 + skips[i] as f64;
        pis.push(if denom > 0.0 { num / denom } else { 0.0 });
    }
    pis
}

/// The g-MLSS estimator `τ̂ = Π π̂_i` (Eq. 10). Returns `(τ̂, π̂s)`.
pub(crate) fn estimator(
    m: usize,
    r: u32,
    n_roots: u64,
    landings: &[u64],
    crossings: &[u64],
    skips: &[u64],
) -> (f64, Vec<f64>) {
    if n_roots == 0 {
        return (0.0, vec![0.0; m]);
    }
    if m == 1 {
        // Degenerate single-level plan: every root is simply labelled by
        // whether it crossed β_1 = 1, i.e. SRS. Landing/skip slots are
        // empty; hits were accumulated by the caller — but we can recover
        // them from skips[0]/crossings[0]? They are zero; the caller passes
        // hits via the `skips` trick is fragile, so instead the caller
        // special-cases m == 1. Here we return NaN-free zeros.
        return (f64::NAN, vec![f64::NAN]);
    }
    let pis = pi_estimates(m, r, n_roots, landings, crossings, skips);
    (pis.iter().product(), pis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::RatioValue;
    use crate::rng::rng_from_seed;
    use rand::RngExt;

    /// Walk with occasional large jumps — guaranteed level skipping.
    struct JumpyWalk {
        step: f64,
        jump_p: f64,
        jump: f64,
    }

    impl SimulationModel for JumpyWalk {
        type State = f64;

        fn initial_state(&self) -> f64 {
            0.0
        }

        fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            let mut v = if rng.random::<f64>() < 0.5 {
                s + self.step
            } else {
                s - self.step
            };
            if rng.random::<f64>() < self.jump_p {
                v += self.jump;
            }
            v.clamp(0.0, 1.0)
        }
    }

    fn vf() -> RatioValue<fn(&f64) -> f64> {
        fn score(s: &f64) -> f64 {
            *s
        }
        RatioValue::new(score as fn(&f64) -> f64, 1.0)
    }

    #[test]
    fn pi_estimates_no_skip_match_smlss_form() {
        // Hand-built counters, no skips: the product must reduce to
        // N_m / (N_0 r^{m-1}).
        let m = 3;
        let r = 3;
        let n0 = 100;
        // 40 roots land in L_1; their 120 offsprings produce 60 crossings
        // of β_2; 60 landings in L_2; 180 offsprings produce 45 crossings
        // of β_3 = target.
        let landings = vec![0, 40, 60];
        let crossings = vec![0, 60, 45];
        let skips = vec![0, 0, 0];
        let (tau, pis) = estimator(m, r, n0, &landings, &crossings, &skips);
        assert!((pis[0] - 0.4).abs() < 1e-12);
        assert!((pis[1] - 60.0 / (3.0 * 40.0)).abs() < 1e-12);
        assert!((pis[2] - 45.0 / (3.0 * 60.0)).abs() < 1e-12);
        let smlss_form = 45.0 / (n0 as f64 * (r as f64).powi(m as i32 - 1));
        assert!((tau - smlss_form).abs() < 1e-12, "{tau} vs {smlss_form}");
    }

    #[test]
    fn pi_estimates_with_skips() {
        // Two levels (m = 2). 10 roots land in L_1, 5 skip straight over
        // it (crossing β_2 = target). Of the 10 splits × r = 3 offsprings,
        // 6 crossed the target boundary.
        let m = 2;
        let r = 3;
        let n0 = 100;
        let landings = vec![0, 10];
        let crossings = vec![0, 6];
        let skips = vec![0, 5];
        let (tau, pis) = estimator(m, r, n0, &landings, &crossings, &skips);
        assert!((pis[0] - 15.0 / 100.0).abs() < 1e-12);
        assert!((pis[1] - (2.0 + 5.0) / 15.0).abs() < 1e-12);
        assert!((tau - 0.15 * (7.0 / 15.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_run_estimates_zero() {
        let (tau, _) = estimator(3, 3, 0, &[0, 0, 0], &[0, 0, 0], &[0, 0, 0]);
        assert_eq!(tau, 0.0);
    }

    #[test]
    fn no_crossers_gives_zero() {
        let (tau, pis) = estimator(3, 3, 50, &[0, 0, 0], &[0, 0, 0], &[0, 0, 0]);
        assert_eq!(tau, 0.0);
        assert_eq!(pis[0], 0.0);
    }

    #[test]
    fn gmlss_agrees_with_srs_on_jumpy_walk() {
        let model = JumpyWalk {
            step: 0.05,
            jump_p: 0.02,
            jump: 0.5,
        };
        let v = vf();
        let problem = Problem::new(&model, &v, 40);

        let srs = crate::srs::SrsSampler::new(RunControl::budget(3_000_000))
            .run(problem, &mut rng_from_seed(21));

        let plan = PartitionPlan::new(vec![0.3, 0.6]).unwrap();
        let cfg = GMlssConfig::new(plan, RunControl::budget(3_000_000));
        let g = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(22));

        assert!(g.skip_events > 0, "test requires observed skipping");
        let diff = (srs.estimate.tau - g.estimate.tau).abs();
        let tol = 4.0 * (srs.estimate.variance.max(0.0)
            + g.estimate.variance.max(0.0))
        .sqrt();
        assert!(
            diff <= tol.max(2e-3),
            "SRS {} vs g-MLSS {} (diff {diff}, tol {tol})",
            srs.estimate.tau,
            g.estimate.tau
        );
    }

    #[test]
    fn gmlss_counters_are_consistent() {
        let model = JumpyWalk {
            step: 0.08,
            jump_p: 0.05,
            jump: 0.4,
        };
        let v = vf();
        let problem = Problem::new(&model, &v, 30);
        let plan = PartitionPlan::new(vec![0.25, 0.5, 0.75]).unwrap();
        let mut cfg = GMlssConfig::new(plan, RunControl::budget(200_000));
        cfg.keep_ledger = true;
        let res = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(5));

        // Offspring crossings can't exceed r × landings at that level.
        for (i, (&c, &l)) in res.crossings.iter().zip(res.landings.iter()).enumerate() {
            assert!(c <= 3 * l, "level {}: crossings {c} > 3·landings {l}", i + 1);
        }
        // π̂ are probabilities.
        for &p in &res.pi_hats {
            assert!((0.0..=1.0).contains(&p), "π̂ = {p}");
        }
        // Ledger aggregates match global counters.
        let ledger = res.ledger.unwrap();
        assert_eq!(ledger.n_roots() as u64, res.estimate.n_roots);
        let agg = ledger.aggregate();
        assert_eq!(&agg.landings[1..], res.landings.as_slice());
        assert_eq!(&agg.crossings[1..], res.crossings.as_slice());
        assert_eq!(&agg.skips[1..], res.skips.as_slice());
    }

    #[test]
    fn gmlss_without_jumps_sees_no_skips() {
        let model = JumpyWalk {
            step: 0.05,
            jump_p: 0.0,
            jump: 0.0,
        };
        let v = vf();
        let problem = Problem::new(&model, &v, 40);
        let plan = PartitionPlan::new(vec![0.25, 0.5, 0.75]).unwrap();
        let cfg = GMlssConfig::new(plan, RunControl::budget(100_000));
        let res = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(6));
        assert_eq!(res.skip_events, 0);
        assert!(res.skips.iter().all(|&s| s == 0));
    }
}
