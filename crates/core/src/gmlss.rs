//! g-MLSS — general Multi-Level Splitting Sampling (§4).
//!
//! g-MLSS removes s-MLSS's *no level-skipping* assumption. Boundary
//! crossings `U_i` replace level entrances `T_i`; the decomposition
//! `τ = Π π_i` with `π_i = Pr[Θ_i | Θ_{i-1}]` (Eq. 8) is assumption-free,
//! and each `π_{i+1}` is estimated by Eq. (9):
//!
//! ```text
//!            Σ_{h ∈ H_i} μ(h)  +  n_skip_i
//! π̂_{i+1} = --------------------------------
//!                |H_i|  +  n_skip_i
//! ```
//!
//! where `H_i` are split states that *landed* in `L_i`, `μ(h)` is the
//! fraction of `h`'s `r` offsprings that crossed `β_{i+1}`, and
//! `n_skip_i` counts paths that crossed `β_{i+1}` without ever landing in
//! `L_i`. The product estimator (Eq. 10) is unbiased in general
//! (Proposition 2).
//!
//! ### Lineage bookkeeping
//!
//! Every path segment tracks `crossed_max`, the highest boundary index its
//! lineage has crossed. A step that raises `level_of(f)` above
//! `crossed_max` is a *crossing event*: it (1) reports a crossing to the
//! parent split (the `μ` numerator), (2) increments `n_skip_i` for every
//! level `i` strictly between the old and new landing levels, and then
//! (3) either registers a target hit (landing level `m`) or lands, joins
//! `H_j`, and splits into `r` offsprings. A segment therefore has at most
//! one crossing event; paths that meander below `crossed_max` never
//! re-split at levels already credited.
//!
//! ### Execution spine
//!
//! The per-root simulation lives in one function used by three drivers:
//! the sequential [`GMlssSampler`], the chunked [`Estimator`]
//! implementation on [`GMlssConfig`] (which also powers
//! [`crate::parallel::run_parallel`]), and the bench harness via either.

use crate::bootstrap::{bootstrap_variance, RootLedger};
use crate::estimate::Estimate;
use crate::estimator::{ChunkOutcome, Diagnostics, Estimator, Ledger};
use crate::frontier::{run_frontier, FrontierMode, RootKernel, SegmentStatus};
use crate::levels::PartitionPlan;
use crate::model::{SimulationModel, Time};
use crate::quality::RunControl;
use crate::query::{Problem, ValueFunction};
use crate::rng::SimRng;
use crate::stats::HitMoments;

/// How the sampler estimates the variance of `τ̂` for stopping decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarianceMode {
    /// Use the per-root-hit variance (Eq. 5-6) while no level skip has been
    /// observed — in that regime g-MLSS coincides with s-MLSS — and switch
    /// to bootstrapping as soon as a skip occurs. The practical default.
    Auto,
    /// Always use the per-root-hit variance (only sound without skips).
    PerRootHits,
    /// Always bootstrap (§4.2 "General Level-skipping and Bootstrapping").
    Bootstrap,
}

/// Configuration for the g-MLSS sampler.
#[derive(Debug, Clone)]
pub struct GMlssConfig {
    /// The level partition plan `B`.
    pub plan: PartitionPlan,
    /// Splitting ratio `r ≥ 1` applied at every split. (g-MLSS permits
    /// variable ratios; a fixed small `r` is the paper's recommended and
    /// evaluated setting, §5.)
    pub ratio: u32,
    /// Stopping criterion.
    pub control: RunControl,
    /// Variance estimation policy.
    pub variance: VarianceMode,
    /// Number of bootstrap resamples per variance evaluation.
    pub bootstrap_resamples: usize,
    /// Evaluate the bootstrap only every this-many quality checks — the
    /// paper's "run bootstrap evaluation conservatively" rule of thumb
    /// (§4.2). 1 = every check.
    pub bootstrap_every: u32,
    /// Retain the per-root ledger in the result (needed for post-hoc
    /// bootstrap analysis; the sampler itself always keeps it internally).
    pub keep_ledger: bool,
}

impl GMlssConfig {
    /// Config with the paper's defaults: `r = 3`, auto variance, 200
    /// bootstrap resamples, conservative (every 4th check) bootstrapping.
    pub fn new(plan: PartitionPlan, control: RunControl) -> Self {
        Self {
            plan,
            ratio: 3,
            control,
            variance: VarianceMode::Auto,
            bootstrap_resamples: 200,
            bootstrap_every: 4,
            keep_ledger: false,
        }
    }

    /// Override the splitting ratio.
    pub fn with_ratio(mut self, ratio: u32) -> Self {
        assert!(ratio >= 1, "splitting ratio must be ≥ 1");
        self.ratio = ratio;
        self
    }

    /// Override the variance mode.
    pub fn with_variance(mut self, mode: VarianceMode) -> Self {
        self.variance = mode;
        self
    }

    fn track_ledger(&self) -> bool {
        // The ledger is needed whenever a bootstrap may run (Bootstrap or
        // Auto modes) or the caller asked to keep it; in pure PerRootHits
        // mode we skip it entirely — long runs would otherwise hold one
        // record per root for no benefit.
        self.keep_ledger || self.variance != VarianceMode::PerRootHits
    }
}

/// Result of a g-MLSS run.
#[derive(Debug, Clone)]
pub struct GMlssResult {
    /// Final estimate (Eq. 10; variance per the configured policy).
    pub estimate: Estimate,
    /// Estimated `π̂_1 .. π̂_m` (Eq. 9) at completion.
    pub pi_hats: Vec<f64>,
    /// Aggregate landings `|H_i|` per level (index `i-1` holds level `i`).
    pub landings: Vec<u64>,
    /// Aggregate offspring crossings per level.
    pub crossings: Vec<u64>,
    /// Aggregate skip counts `n_skip_i` per level.
    pub skips: Vec<u64>,
    /// Total number of level-skip events observed (0 ⇒ s-MLSS regime).
    pub skip_events: u64,
    /// Sample variance of per-root target-hit counts, `Var(N_m⟨1⟩)` —
    /// the quantity the partition-plan evaluation (Eq. 15) needs.
    pub root_hit_variance: f64,
    /// Per-root ledger (present when `keep_ledger`).
    pub ledger: Option<RootLedger>,
    /// Wall-clock time spent simulating.
    pub sim_elapsed: std::time::Duration,
    /// Wall-clock time spent in bootstrap variance evaluations.
    pub bootstrap_elapsed: std::time::Duration,
}

/// Accumulated g-MLSS counters — the sampler's [`Ledger`] shard.
///
/// Shards merge exactly (counter sums, moment merging, ledger
/// concatenation), so per-worker shards reduced by the parallel driver
/// yield the same estimate a single sequential run over the union of
/// roots would.
#[derive(Debug, Clone)]
pub struct GmlssShard {
    m: usize,
    ratio: u32,
    track_ledger: bool,
    /// Per-root ledger (empty when ledger tracking is off).
    pub ledger: RootLedger,
    /// Landings `|H_i|` per level; index = level, slot 0 unused.
    landings: Vec<u64>,
    /// Offspring crossings per level; index = level, slot 0 unused.
    crossings: Vec<u64>,
    /// Skip counts `n_skip_i` per level; index = level, slot 0 unused.
    skips: Vec<u64>,
    /// Total level-skip events observed.
    pub skip_events: u64,
    moments: HitMoments,
    /// Root paths simulated (`N_0`).
    pub n_roots: u64,
    /// Target hits (`N_m`).
    pub hits: u64,
    /// `g` invocations spent.
    pub steps: u64,
    /// Quality checks performed so far (drives `bootstrap_every`).
    checks: u64,
    /// Variance from the most recent bootstrap evaluation (∞ before the
    /// first one). Check-state only — not part of the merged statistics.
    cached_variance: f64,
}

impl GmlssShard {
    pub(crate) fn new(m: usize, ratio: u32, track_ledger: bool) -> Self {
        assert!(m >= 1);
        Self {
            m,
            ratio,
            track_ledger,
            ledger: RootLedger::new(m),
            landings: vec![0; m],
            crossings: vec![0; m],
            skips: vec![0; m],
            skip_events: 0,
            moments: HitMoments::new(),
            n_roots: 0,
            hits: 0,
            steps: 0,
            checks: 0,
            cached_variance: f64::INFINITY,
        }
    }

    /// The point estimate `τ̂` (Eq. 10) over the accumulated counters.
    pub fn tau(&self) -> f64 {
        if self.n_roots == 0 {
            0.0
        } else if self.m == 1 {
            // Trivial plan: no interior boundary, so g-MLSS degenerates to
            // SRS labelling of root paths.
            self.hits as f64 / self.n_roots as f64
        } else {
            estimator(
                self.m,
                self.ratio,
                self.n_roots,
                &self.landings,
                &self.crossings,
                &self.skips,
            )
            .0
        }
    }

    /// `π̂_1 .. π̂_m` (Eq. 9).
    pub fn pi_hats(&self) -> Vec<f64> {
        if self.m == 1 {
            vec![self.tau()]
        } else {
            pi_estimates(
                self.m,
                self.ratio,
                self.n_roots,
                &self.landings,
                &self.crossings,
                &self.skips,
            )
        }
    }

    /// Per-root-hit variance of `τ̂` (Eq. 5-6) — sound only in the
    /// no-skip regime. `∞` before the first root.
    pub fn per_root_hit_variance(&self) -> f64 {
        if self.n_roots == 0 {
            return f64::INFINITY;
        }
        let scale = (self.ratio as f64).powi(self.m as i32 - 1);
        self.moments.sample_variance() / (self.n_roots as f64 * scale * scale)
    }

    /// Sample variance of per-root target-hit counts (`Var(N_m⟨1⟩)`).
    pub fn root_hit_sample_variance(&self) -> f64 {
        self.moments.sample_variance()
    }

    /// Aggregate landings for levels `1..m` (the [`GMlssResult`] layout).
    pub fn landings_per_level(&self) -> Vec<u64> {
        self.landings[1..].to_vec()
    }

    /// Aggregate offspring crossings for levels `1..m`.
    pub fn crossings_per_level(&self) -> Vec<u64> {
        self.crossings[1..].to_vec()
    }

    /// Aggregate skip counts for levels `1..m`.
    pub fn skips_per_level(&self) -> Vec<u64> {
        self.skips[1..].to_vec()
    }

    /// Final-quality estimate under the given variance policy: bootstrap
    /// when skips were observed (and the policy allows), per-root-hit
    /// variance otherwise.
    pub fn estimate(&self, mode: VarianceMode, resamples: usize, rng: &mut SimRng) -> Estimate {
        let variance = if self.n_roots < 2 {
            f64::INFINITY
        } else {
            let bootstrap_needed = match mode {
                VarianceMode::PerRootHits => false,
                VarianceMode::Bootstrap => true,
                VarianceMode::Auto => self.skip_events > 0,
            };
            if bootstrap_needed && self.track_ledger {
                bootstrap_variance(&self.ledger, resamples, self.ratio, rng)
            } else {
                self.per_root_hit_variance()
            }
        };
        Estimate {
            tau: self.tau(),
            variance,
            n_roots: self.n_roots,
            steps: self.steps,
            hits: self.hits,
        }
    }
}

// Durability codec. The check-state fields (`checks`,
// `cached_variance`) are included: a resumed target-mode run must keep
// the original bootstrap cadence, or its quality checks — and with them
// the RNG draw positions — would diverge from an uninterrupted run.
impl crate::persist::Persist for GmlssShard {
    fn persist(&self, out: &mut Vec<u8>) {
        crate::persist::put_u64(out, self.m as u64);
        crate::persist::put_u32(out, self.ratio);
        crate::persist::put_u8(out, self.track_ledger as u8);
        self.ledger.persist(out);
        crate::persist::put_u64s(out, &self.landings);
        crate::persist::put_u64s(out, &self.crossings);
        crate::persist::put_u64s(out, &self.skips);
        crate::persist::put_u64(out, self.skip_events);
        self.moments.persist(out);
        crate::persist::put_u64(out, self.n_roots);
        crate::persist::put_u64(out, self.hits);
        crate::persist::put_u64(out, self.steps);
        crate::persist::put_u64(out, self.checks);
        crate::persist::put_f64(out, self.cached_variance);
    }

    fn restore(r: &mut crate::persist::Reader<'_>) -> Result<Self, crate::persist::PersistError> {
        use crate::persist::PersistError;
        let m = r.u64()? as usize;
        let ratio = r.u32()?;
        let track_ledger = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(PersistError::Malformed("gmlss ledger flag")),
        };
        let ledger = RootLedger::restore(r)?;
        let landings = r.u64s()?;
        let crossings = r.u64s()?;
        let skips = r.u64s()?;
        if m < 1
            || landings.len() != m
            || crossings.len() != m
            || skips.len() != m
            || ledger.num_levels() != m
        {
            return Err(PersistError::Malformed("gmlss shard geometry"));
        }
        Ok(Self {
            m,
            ratio,
            track_ledger,
            ledger,
            landings,
            crossings,
            skips,
            skip_events: r.u64()?,
            moments: HitMoments::restore(r)?,
            n_roots: r.u64()?,
            hits: r.u64()?,
            steps: r.u64()?,
            checks: r.u64()?,
            cached_variance: r.f64()?,
        })
    }
}

impl Ledger for GmlssShard {
    fn merge(&mut self, other: Self) {
        assert_eq!(self.m, other.m, "shard level counts must match");
        assert_eq!(self.ratio, other.ratio, "shard ratios must match");
        self.ledger.merge(&other.ledger);
        for (a, b) in self.landings.iter_mut().zip(&other.landings) {
            *a += b;
        }
        for (a, b) in self.crossings.iter_mut().zip(&other.crossings) {
            *a += b;
        }
        for (a, b) in self.skips.iter_mut().zip(&other.skips) {
            *a += b;
        }
        self.skip_events += other.skip_events;
        self.moments.merge(&other.moments);
        self.n_roots += other.n_roots;
        self.hits += other.hits;
        self.steps += other.steps;
        // The cached check-variance describes a superseded pool; drop it
        // so the next cadenced check re-evaluates on the merged shard.
        self.cached_variance = f64::INFINITY;
    }

    fn n_roots(&self) -> u64 {
        self.n_roots
    }

    fn steps(&self) -> u64 {
        self.steps
    }
}

struct Segment<S> {
    state: S,
    t: Time,
    /// Highest boundary index this lineage has crossed.
    crossed_max: usize,
    /// Index of the parent split event in the per-root scratch, if any.
    parent: Option<usize>,
}

/// Scratch state for one split event during a root simulation.
struct SplitEvent {
    level: usize,
    crossed: u32,
}

/// Simulate one g-MLSS root path (with its full splitting tree) into the
/// shard. `stack` and `events` are reusable scratch buffers.
fn simulate_root<M, V>(
    problem: &Problem<'_, M, V>,
    plan: &PartitionPlan,
    shard: &mut GmlssShard,
    stack: &mut Vec<Segment<M::State>>,
    events: &mut Vec<SplitEvent>,
    rng: &mut SimRng,
) where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    let m = shard.m;
    let r = shard.ratio;
    let track_ledger = shard.track_ledger;
    events.clear();
    stack.clear();
    let mut root_hits: u32 = 0;

    let init = problem.model.initial_state();
    // Clamp to m-1: the durability query counts t ≥ 1, so a start at the
    // target is *not* an instant hit — the root watches for (re-)crossing
    // β_m from its birth level.
    let init_level = plan.level_of(problem.value(&init)).min(m - 1);
    if init_level == 0 {
        stack.push(Segment {
            state: init,
            t: 0,
            crossed_max: 0,
            parent: None,
        });
    } else {
        // The root starts above L_0 (its value already crosses β_1..β_k at
        // t = 0). Treat t = 0 like any crossing event: the levels jumped
        // over get skip credit, and the root lands (and splits) in its
        // starting level. The telescoped estimator then yields π̂_i = 1
        // for the pre-crossed levels — exactly the conditional-probability
        // semantics of Eq. 8. The per-root-hit variance shortcut is
        // invalid in this regime (hit multiplicity is no longer r^{m-1}),
        // so the pre-crossings count as skip events, pushing Auto mode
        // onto the bootstrap.
        if init_level > 1 {
            shard.skip_events += 1;
        }
        for i in 1..init_level.min(m) {
            if track_ledger {
                shard.ledger.bump_skip(i);
            }
            shard.skips[i] += 1;
        }
        if track_ledger {
            shard.ledger.bump_landing(init_level);
        }
        shard.landings[init_level] += 1;
        let ei = events.len();
        events.push(SplitEvent {
            level: init_level,
            crossed: 0,
        });
        for _ in 0..r {
            stack.push(Segment {
                state: init.clone(),
                t: 0,
                crossed_max: init_level,
                parent: Some(ei),
            });
        }
    }

    while let Some(seg) = stack.pop() {
        let mut state = seg.state;
        for t in (seg.t + 1)..=problem.horizon {
            state = problem.model.step(&state, t, rng);
            shard.steps += 1;
            let lvl = plan.level_of(problem.value(&state));
            if lvl <= seg.crossed_max {
                continue;
            }
            // Crossing event.
            if let Some(pi) = seg.parent {
                events[pi].crossed += 1;
            }
            if lvl - seg.crossed_max > 1 {
                shard.skip_events += 1;
            }
            // Levels crossed over without landing: n_skip_i for
            // i in (crossed_max, lvl).
            for i in (seg.crossed_max + 1)..lvl {
                if track_ledger {
                    shard.ledger.bump_skip(i);
                }
                shard.skips[i] += 1;
            }
            if lvl == m {
                shard.hits += 1;
                root_hits += 1;
            } else {
                if track_ledger {
                    shard.ledger.bump_landing(lvl);
                }
                shard.landings[lvl] += 1;
                let ei = events.len();
                events.push(SplitEvent {
                    level: lvl,
                    crossed: 0,
                });
                for _ in 0..r {
                    stack.push(Segment {
                        state: state.clone(),
                        t,
                        crossed_max: lvl,
                        parent: Some(ei),
                    });
                }
            }
            break;
        }
    }

    for ev in events.iter() {
        if track_ledger {
            shard.ledger.add_crossings(ev.level, ev.crossed);
        }
        shard.crossings[ev.level] += ev.crossed as u64;
    }
    if track_ledger {
        shard.ledger.commit_root(root_hits);
    }
    shard.moments.push(root_hits);
    shard.n_roots += 1;
}

/// Frontier kernel for g-MLSS: one lane carries one root's whole
/// splitting tree (same LIFO segment order as [`simulate_root`], so
/// per-root RNG consumption is identical); per-root counter deltas and
/// the ledger record are buffered in scratch and folded into the shard in
/// root order at commit time.
pub(crate) struct GMlssKernel<'a> {
    plan: &'a PartitionPlan,
    ratio: u32,
    track_ledger: bool,
}

/// Per-root scratch for the g-MLSS kernel.
pub(crate) struct GMlssScratch<S> {
    stack: Vec<Segment<S>>,
    /// `crossed_max` of the lane's current segment.
    crossed_max: usize,
    /// Parent split-event index of the current segment.
    parent: Option<usize>,
    events: Vec<SplitEvent>,
    landings: Vec<u64>,
    skips: Vec<u64>,
    skip_events: u64,
    hits: u32,
    /// Ledger record (layout of [`RootLedger`]): landings `0..m`,
    /// crossings `m..2m`, skips `2m..3m`, hits at `3m`.
    rec: Vec<u32>,
}

/// Everything one finished g-MLSS root commits.
pub(crate) struct GMlssRoot {
    landings: Vec<u64>,
    crossings: Vec<u64>,
    skips: Vec<u64>,
    skip_events: u64,
    hits: u32,
    steps: u64,
    rec: Option<Vec<u32>>,
}

impl<'a, M, V> RootKernel<M, V> for GMlssKernel<'a>
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    type Scratch = GMlssScratch<M::State>;
    type Outcome = GMlssRoot;
    type Shard = GmlssShard;

    fn new_scratch(&self) -> Self::Scratch {
        let m = self.plan.num_levels();
        GMlssScratch {
            stack: Vec::new(),
            crossed_max: 0,
            parent: None,
            events: Vec::new(),
            landings: vec![0; m],
            skips: vec![0; m],
            skip_events: 0,
            hits: 0,
            // The ledger record costs per-root work; only carry it when
            // the shard actually tracks a ledger.
            rec: if self.track_ledger {
                vec![0; 3 * m + 1]
            } else {
                Vec::new()
            },
        }
    }

    fn begin_root(
        &self,
        problem: &Problem<'_, M, V>,
        scratch: &mut Self::Scratch,
    ) -> (M::State, Time) {
        let m = self.plan.num_levels();
        let r = self.ratio;
        scratch.stack.clear();
        scratch.events.clear();
        scratch.skip_events = 0;
        scratch.hits = 0;
        scratch.landings.clear();
        scratch.landings.resize(m, 0);
        scratch.skips.clear();
        scratch.skips.resize(m, 0);
        if self.track_ledger {
            scratch.rec.clear();
            scratch.rec.resize(3 * m + 1, 0);
        }

        let init = problem.model.initial_state();
        let init_level = self.plan.level_of(problem.value(&init)).min(m - 1);
        if init_level == 0 {
            scratch.crossed_max = 0;
            scratch.parent = None;
            return (init, 0);
        }
        // Root born above L_0: t = 0 is a crossing event (see
        // `simulate_root` for the estimator-semantics rationale).
        if init_level > 1 {
            scratch.skip_events += 1;
        }
        for i in 1..init_level.min(m) {
            if self.track_ledger {
                scratch.rec[2 * m + i] += 1;
            }
            scratch.skips[i] += 1;
        }
        if self.track_ledger {
            scratch.rec[init_level] += 1;
        }
        scratch.landings[init_level] += 1;
        scratch.events.push(SplitEvent {
            level: init_level,
            crossed: 0,
        });
        for _ in 0..r - 1 {
            scratch.stack.push(Segment {
                state: init.clone(),
                t: 0,
                crossed_max: init_level,
                parent: Some(0),
            });
        }
        scratch.crossed_max = init_level;
        scratch.parent = Some(0);
        (init, 0)
    }

    fn on_step(
        &self,
        problem: &Problem<'_, M, V>,
        scratch: &mut Self::Scratch,
        state: &M::State,
        t: Time,
    ) -> SegmentStatus {
        let m = self.plan.num_levels();
        let lvl = self.plan.level_of(problem.value(state));
        if lvl <= scratch.crossed_max {
            return SegmentStatus::Running;
        }
        // Crossing event (at most one per segment).
        if let Some(pi) = scratch.parent {
            scratch.events[pi].crossed += 1;
        }
        if lvl - scratch.crossed_max > 1 {
            scratch.skip_events += 1;
        }
        for i in (scratch.crossed_max + 1)..lvl {
            if self.track_ledger {
                scratch.rec[2 * m + i] += 1;
            }
            scratch.skips[i] += 1;
        }
        if lvl == m {
            scratch.hits += 1;
        } else {
            if self.track_ledger {
                scratch.rec[lvl] += 1;
            }
            scratch.landings[lvl] += 1;
            let ei = scratch.events.len();
            scratch.events.push(SplitEvent {
                level: lvl,
                crossed: 0,
            });
            for _ in 0..self.ratio {
                scratch.stack.push(Segment {
                    state: state.clone(),
                    t,
                    crossed_max: lvl,
                    parent: Some(ei),
                });
            }
        }
        SegmentStatus::SegmentDone
    }

    fn next_segment(&self, scratch: &mut Self::Scratch) -> Option<(M::State, Time)> {
        let seg = scratch.stack.pop()?;
        scratch.crossed_max = seg.crossed_max;
        scratch.parent = seg.parent;
        Some((seg.state, seg.t))
    }

    fn finish_root(&self, scratch: &mut Self::Scratch, steps: u64) -> GMlssRoot {
        let m = self.plan.num_levels();
        let mut crossings = vec![0u64; m];
        for ev in &scratch.events {
            if self.track_ledger {
                scratch.rec[m + ev.level] += ev.crossed;
            }
            crossings[ev.level] += ev.crossed as u64;
        }
        let rec = self.track_ledger.then(|| {
            scratch.rec[3 * m] = scratch.hits;
            std::mem::take(&mut scratch.rec)
        });
        GMlssRoot {
            landings: std::mem::take(&mut scratch.landings),
            crossings,
            skips: std::mem::take(&mut scratch.skips),
            skip_events: scratch.skip_events,
            hits: scratch.hits,
            steps,
            rec,
        }
    }

    fn commit(&self, shard: &mut GmlssShard, out: GMlssRoot) {
        for (a, b) in shard.landings.iter_mut().zip(&out.landings) {
            *a += b;
        }
        for (a, b) in shard.crossings.iter_mut().zip(&out.crossings) {
            *a += b;
        }
        for (a, b) in shard.skips.iter_mut().zip(&out.skips) {
            *a += b;
        }
        shard.skip_events += out.skip_events;
        shard.hits += out.hits as u64;
        shard.steps += out.steps;
        if let Some(rec) = out.rec {
            if shard.track_ledger {
                shard.ledger.push_record(&rec);
            }
        }
        shard.moments.push(out.hits);
        shard.n_roots += 1;
    }
}

impl<M, V> Estimator<M, V> for GMlssConfig
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    type Shard = GmlssShard;

    fn name(&self) -> &'static str {
        "gmlss"
    }

    fn shard(&self) -> GmlssShard {
        GmlssShard::new(self.plan.num_levels(), self.ratio, self.track_ledger())
    }

    fn run_chunk(
        &self,
        problem: Problem<'_, M, V>,
        shard: &mut GmlssShard,
        budget: u64,
        rng: &mut SimRng,
    ) -> ChunkOutcome {
        let kernel = GMlssKernel {
            plan: &self.plan,
            ratio: self.ratio,
            track_ledger: shard.track_ledger,
        };
        run_frontier(&kernel, &problem, shard, budget, rng, FrontierMode::Shared)
    }

    fn run_chunk_batched(
        &self,
        problem: Problem<'_, M, V>,
        shard: &mut GmlssShard,
        budget: u64,
        rng: &mut SimRng,
        width: usize,
    ) -> ChunkOutcome {
        let kernel = GMlssKernel {
            plan: &self.plan,
            ratio: self.ratio,
            track_ledger: shard.track_ledger,
        };
        run_frontier(
            &kernel,
            &problem,
            shard,
            budget,
            rng,
            FrontierMode::PerRoot(width),
        )
    }

    fn estimate(&self, shard: &GmlssShard, rng: &mut SimRng) -> Estimate {
        shard.estimate(self.variance, self.bootstrap_resamples, rng)
    }

    /// In-flight stopping checks honor `bootstrap_every` (the paper's
    /// "run bootstrap evaluation conservatively" rule, §4.2): the
    /// expensive bootstrap runs only every `bootstrap_every`-th check and
    /// its result is cached in the shard, mirroring [`GMlssSampler`]'s
    /// running-variance behavior. The final estimate (from
    /// [`Estimator::estimate`]) always re-evaluates in full.
    fn check_estimate(&self, shard: &mut GmlssShard, rng: &mut SimRng) -> Estimate {
        let bootstrap_needed = match self.variance {
            VarianceMode::PerRootHits => false,
            VarianceMode::Bootstrap => true,
            VarianceMode::Auto => shard.skip_events > 0,
        };
        let variance = if !bootstrap_needed {
            if shard.n_roots == 0 {
                f64::INFINITY
            } else {
                shard.per_root_hit_variance()
            }
        } else {
            shard.checks += 1;
            if shard
                .checks
                .is_multiple_of(self.bootstrap_every.max(1) as u64)
                && shard.n_roots >= 2
                && shard.track_ledger
            {
                shard.cached_variance =
                    bootstrap_variance(&shard.ledger, self.bootstrap_resamples, shard.ratio, rng);
            }
            shard.cached_variance
        };
        Estimate {
            tau: shard.tau(),
            variance,
            n_roots: shard.n_roots,
            steps: shard.steps,
            hits: shard.hits,
        }
    }

    fn diagnostics(&self, shard: &GmlssShard) -> Diagnostics {
        let mut details: Vec<(String, f64)> = shard
            .pi_hats()
            .into_iter()
            .enumerate()
            .map(|(i, p)| (format!("pi_hat_{}", i + 1), p))
            .collect();
        details.push((
            "root_hit_variance".to_string(),
            shard.root_hit_sample_variance(),
        ));
        Diagnostics {
            estimator: "gmlss",
            skip_events: shard.skip_events,
            details,
        }
    }
}

/// The g-MLSS sampler.
#[derive(Debug, Clone)]
pub struct GMlssSampler {
    /// Sampler configuration.
    pub config: GMlssConfig,
}

impl GMlssSampler {
    /// Create a sampler.
    pub fn new(config: GMlssConfig) -> Self {
        assert!(config.ratio >= 1, "splitting ratio must be ≥ 1");
        assert!(config.bootstrap_resamples >= 2, "need ≥ 2 resamples");
        assert!(config.bootstrap_every >= 1, "bootstrap cadence must be ≥ 1");
        Self { config }
    }

    /// Run to completion.
    pub fn run<M, V>(&self, problem: Problem<'_, M, V>, rng: &mut SimRng) -> GMlssResult
    where
        M: SimulationModel,
        V: ValueFunction<M::State>,
    {
        self.run_observed(problem, rng, |_| {})
    }

    /// Run, invoking `observe` with the running estimate after each root.
    pub fn run_observed<M, V>(
        &self,
        problem: Problem<'_, M, V>,
        rng: &mut SimRng,
        mut observe: impl FnMut(&Estimate),
    ) -> GMlssResult
    where
        M: SimulationModel,
        V: ValueFunction<M::State>,
    {
        let sim_start = std::time::Instant::now();
        let plan = &self.config.plan;
        let m = plan.num_levels();
        let r = self.config.ratio;

        let mut shard = GmlssShard::new(m, r, self.config.track_ledger());
        let mut since_check: u64 = 0;
        let mut checks: u64 = 0;
        let mut last_variance = f64::INFINITY;
        let mut bootstrap_elapsed = std::time::Duration::ZERO;
        let mut stack: Vec<Segment<M::State>> = Vec::new();
        let mut events: Vec<SplitEvent> = Vec::new();

        loop {
            // ---- assemble running estimate -----------------------------
            let tau = shard.tau();
            let need_boot = match self.config.variance {
                VarianceMode::PerRootHits => false,
                VarianceMode::Bootstrap => true,
                VarianceMode::Auto => shard.skip_events > 0,
            };
            // In budget mode the running variance is irrelevant (a final
            // bootstrap is performed on exit), so only Target mode pays for
            // in-flight bootstraps — and only at its quality-check cadence.
            let at_check = since_check >= checked_cadence(&self.config.control);
            if need_boot {
                // Bootstrap conservatively: only at quality checks and only
                // every `bootstrap_every`-th one.
                if at_check {
                    checks += 1;
                    if checks.is_multiple_of(self.config.bootstrap_every as u64)
                        && shard.n_roots >= 2
                    {
                        let t0 = std::time::Instant::now();
                        last_variance = bootstrap_variance(
                            &shard.ledger,
                            self.config.bootstrap_resamples,
                            r,
                            rng,
                        );
                        bootstrap_elapsed += t0.elapsed();
                    }
                }
            } else {
                last_variance = shard.per_root_hit_variance();
            }
            let est = Estimate {
                tau,
                variance: last_variance,
                n_roots: shard.n_roots,
                steps: shard.steps,
                hits: shard.hits,
            };
            if shard.n_roots > 0 {
                observe(&est);
            }
            if !self.config.control.should_continue(&est, &mut since_check) {
                let sim_elapsed = sim_start.elapsed() - bootstrap_elapsed;
                // Final variance: always bootstrap when skips occurred, so
                // the reported quality is sound even between cadences.
                let variance = if shard.skip_events > 0
                    && self.config.variance != VarianceMode::PerRootHits
                    && shard.n_roots >= 2
                {
                    let t0 = std::time::Instant::now();
                    let v =
                        bootstrap_variance(&shard.ledger, self.config.bootstrap_resamples, r, rng);
                    bootstrap_elapsed += t0.elapsed();
                    v
                } else {
                    last_variance
                };
                return GMlssResult {
                    estimate: Estimate {
                        tau,
                        variance,
                        n_roots: shard.n_roots,
                        steps: shard.steps,
                        hits: shard.hits,
                    },
                    pi_hats: shard.pi_hats(),
                    landings: shard.landings_per_level(),
                    crossings: shard.crossings_per_level(),
                    skips: shard.skips_per_level(),
                    skip_events: shard.skip_events,
                    root_hit_variance: shard.root_hit_sample_variance(),
                    ledger: self.config.keep_ledger.then_some(shard.ledger),
                    sim_elapsed,
                    bootstrap_elapsed,
                };
            }

            // ---- simulate one root path and all its offspring ----------
            simulate_root(&problem, plan, &mut shard, &mut stack, &mut events, rng);
            since_check += 1;
        }
    }
}

/// Cadence of the control's quality checks (u64::MAX for budget mode).
fn checked_cadence(control: &RunControl) -> u64 {
    match control {
        RunControl::Budget(_) => u64::MAX,
        RunControl::Target { check_every, .. } => *check_every,
    }
}

/// Compute `π̂_1..π̂_m` from aggregate counters (Eq. 9).
///
/// Index convention: `landings[i]`, `crossings[i]`, `skips[i]` are the
/// counters for level `i` (index 0 unused — no splits happen in `L_0`).
pub(crate) fn pi_estimates(
    m: usize,
    r: u32,
    n_roots: u64,
    landings: &[u64],
    crossings: &[u64],
    skips: &[u64],
) -> Vec<f64> {
    let mut pis = Vec::with_capacity(m);
    // π̂_1: fraction of roots that crossed β_1. Roots either land in L_1
    // (→ landings[1]) or skip past it (→ skips[1]); both crossed β_1.
    let pi1 = if n_roots == 0 {
        0.0
    } else if m == 1 {
        // Single level: crossing β_1 *is* hitting the target; landings and
        // skips are both empty, so π̂_1 is computed by the caller from hits
        // directly — signalled here with the crossings of level 0 slot.
        // (Handled in `estimator`.)
        f64::NAN
    } else {
        (landings[1] + skips[1]) as f64 / n_roots as f64
    };
    pis.push(pi1);
    // π̂_{i+1} for i = 1..m-1.
    for i in 1..m {
        let denom = (landings[i] + skips[i]) as f64;
        let num = crossings[i] as f64 / r as f64 + skips[i] as f64;
        pis.push(if denom > 0.0 { num / denom } else { 0.0 });
    }
    pis
}

/// The g-MLSS estimator `τ̂ = Π π̂_i` (Eq. 10). Returns `(τ̂, π̂s)`.
pub(crate) fn estimator(
    m: usize,
    r: u32,
    n_roots: u64,
    landings: &[u64],
    crossings: &[u64],
    skips: &[u64],
) -> (f64, Vec<f64>) {
    if n_roots == 0 {
        return (0.0, vec![0.0; m]);
    }
    if m == 1 {
        // Degenerate single-level plan: every root is simply labelled by
        // whether it crossed β_1 = 1, i.e. SRS. Landing/skip slots are
        // empty; hits were accumulated by the caller, which special-cases
        // m == 1 (see `GmlssShard::tau`).
        return (f64::NAN, vec![f64::NAN]);
    }
    let pis = pi_estimates(m, r, n_roots, landings, crossings, skips);
    (pis.iter().product(), pis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::RatioValue;
    use crate::rng::rng_from_seed;
    use rand::RngExt;

    /// Walk with occasional large jumps — guaranteed level skipping.
    struct JumpyWalk {
        step: f64,
        jump_p: f64,
        jump: f64,
    }

    impl SimulationModel for JumpyWalk {
        type State = f64;

        fn initial_state(&self) -> f64 {
            0.0
        }

        fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            let mut v = if rng.random::<f64>() < 0.5 {
                s + self.step
            } else {
                s - self.step
            };
            if rng.random::<f64>() < self.jump_p {
                v += self.jump;
            }
            v.clamp(0.0, 1.0)
        }
    }

    fn vf() -> RatioValue<fn(&f64) -> f64> {
        fn score(s: &f64) -> f64 {
            *s
        }
        RatioValue::new(score as fn(&f64) -> f64, 1.0)
    }

    #[test]
    fn pi_estimates_no_skip_match_smlss_form() {
        // Hand-built counters, no skips: the product must reduce to
        // N_m / (N_0 r^{m-1}).
        let m = 3;
        let r = 3;
        let n0 = 100;
        // 40 roots land in L_1; their 120 offsprings produce 60 crossings
        // of β_2; 60 landings in L_2; 180 offsprings produce 45 crossings
        // of β_3 = target.
        let landings = vec![0, 40, 60];
        let crossings = vec![0, 60, 45];
        let skips = vec![0, 0, 0];
        let (tau, pis) = estimator(m, r, n0, &landings, &crossings, &skips);
        assert!((pis[0] - 0.4).abs() < 1e-12);
        assert!((pis[1] - 60.0 / (3.0 * 40.0)).abs() < 1e-12);
        assert!((pis[2] - 45.0 / (3.0 * 60.0)).abs() < 1e-12);
        let smlss_form = 45.0 / (n0 as f64 * (r as f64).powi(m as i32 - 1));
        assert!((tau - smlss_form).abs() < 1e-12, "{tau} vs {smlss_form}");
    }

    #[test]
    fn pi_estimates_with_skips() {
        // Two levels (m = 2). 10 roots land in L_1, 5 skip straight over
        // it (crossing β_2 = target). Of the 10 splits × r = 3 offsprings,
        // 6 crossed the target boundary.
        let m = 2;
        let r = 3;
        let n0 = 100;
        let landings = vec![0, 10];
        let crossings = vec![0, 6];
        let skips = vec![0, 5];
        let (tau, pis) = estimator(m, r, n0, &landings, &crossings, &skips);
        assert!((pis[0] - 15.0 / 100.0).abs() < 1e-12);
        assert!((pis[1] - (2.0 + 5.0) / 15.0).abs() < 1e-12);
        assert!((tau - 0.15 * (7.0 / 15.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_run_estimates_zero() {
        let (tau, _) = estimator(3, 3, 0, &[0, 0, 0], &[0, 0, 0], &[0, 0, 0]);
        assert_eq!(tau, 0.0);
    }

    #[test]
    fn no_crossers_gives_zero() {
        let (tau, pis) = estimator(3, 3, 50, &[0, 0, 0], &[0, 0, 0], &[0, 0, 0]);
        assert_eq!(tau, 0.0);
        assert_eq!(pis[0], 0.0);
    }

    #[test]
    fn gmlss_agrees_with_srs_on_jumpy_walk() {
        let model = JumpyWalk {
            step: 0.05,
            jump_p: 0.02,
            jump: 0.5,
        };
        let v = vf();
        let problem = Problem::new(&model, &v, 40);

        let srs = crate::srs::SrsSampler::new(RunControl::budget(3_000_000))
            .run(problem, &mut rng_from_seed(21));

        let plan = PartitionPlan::new(vec![0.3, 0.6]).unwrap();
        let cfg = GMlssConfig::new(plan, RunControl::budget(3_000_000));
        let g = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(22));

        assert!(g.skip_events > 0, "test requires observed skipping");
        let diff = (srs.estimate.tau - g.estimate.tau).abs();
        let tol = 4.0 * (srs.estimate.variance.max(0.0) + g.estimate.variance.max(0.0)).sqrt();
        assert!(
            diff <= tol.max(2e-3),
            "SRS {} vs g-MLSS {} (diff {diff}, tol {tol})",
            srs.estimate.tau,
            g.estimate.tau
        );
    }

    #[test]
    fn gmlss_counters_are_consistent() {
        let model = JumpyWalk {
            step: 0.08,
            jump_p: 0.05,
            jump: 0.4,
        };
        let v = vf();
        let problem = Problem::new(&model, &v, 30);
        let plan = PartitionPlan::new(vec![0.25, 0.5, 0.75]).unwrap();
        let mut cfg = GMlssConfig::new(plan, RunControl::budget(200_000));
        cfg.keep_ledger = true;
        let res = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(5));

        // Offspring crossings can't exceed r × landings at that level.
        for (i, (&c, &l)) in res.crossings.iter().zip(res.landings.iter()).enumerate() {
            assert!(
                c <= 3 * l,
                "level {}: crossings {c} > 3·landings {l}",
                i + 1
            );
        }
        // π̂ are probabilities.
        for &p in &res.pi_hats {
            assert!((0.0..=1.0).contains(&p), "π̂ = {p}");
        }
        // Ledger aggregates match global counters.
        let ledger = res.ledger.unwrap();
        assert_eq!(ledger.n_roots() as u64, res.estimate.n_roots);
        let agg = ledger.aggregate();
        assert_eq!(&agg.landings[1..], res.landings.as_slice());
        assert_eq!(&agg.crossings[1..], res.crossings.as_slice());
        assert_eq!(&agg.skips[1..], res.skips.as_slice());
    }

    #[test]
    fn gmlss_without_jumps_sees_no_skips() {
        let model = JumpyWalk {
            step: 0.05,
            jump_p: 0.0,
            jump: 0.0,
        };
        let v = vf();
        let problem = Problem::new(&model, &v, 40);
        let plan = PartitionPlan::new(vec![0.25, 0.5, 0.75]).unwrap();
        let cfg = GMlssConfig::new(plan, RunControl::budget(100_000));
        let res = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(6));
        assert_eq!(res.skip_events, 0);
        assert!(res.skips.iter().all(|&s| s == 0));
    }

    #[test]
    fn sampler_and_estimator_trait_agree_exactly() {
        // The sequential sampler and the chunked trait path must produce
        // the identical estimate from the identical RNG stream: they share
        // the same per-root simulation function.
        let model = JumpyWalk {
            step: 0.05,
            jump_p: 0.02,
            jump: 0.5,
        };
        let v = vf();
        let problem = Problem::new(&model, &v, 40);
        let plan = PartitionPlan::new(vec![0.3, 0.6]).unwrap();
        let cfg = GMlssConfig::new(plan, RunControl::budget(100_000));

        let sampler_res = GMlssSampler::new(cfg.clone()).run(problem, &mut rng_from_seed(17));

        let mut rng = rng_from_seed(17);
        let mut shard = crate::estimator::shard_for(&cfg, &problem);
        cfg.run_chunk(problem, &mut shard, 100_000, &mut rng);
        assert_eq!(shard.steps, sampler_res.estimate.steps);
        assert_eq!(shard.hits, sampler_res.estimate.hits);
        assert_eq!(shard.n_roots, sampler_res.estimate.n_roots);
        assert_eq!(shard.tau(), sampler_res.estimate.tau);
        assert_eq!(shard.skip_events, sampler_res.skip_events);
    }
}
