//! s-MLSS — simple Multi-Level Splitting Sampling (§3).
//!
//! The sampler simulates *root paths*; whenever a path first **lands in**
//! the next level `L_{i+1}` (the paper's `T_{i+1}`, which requires
//! `f(x_t) ∈ [β_{i+1}, β_{i+2})`), it splits into `r` independent
//! offspring continuing from the entrance state. The estimator is
//! `τ̂ = N_m / (N_0 · r^{m-1})` (Eq. 3), unbiased under the
//! *no level-skipping* assumption (Proposition 1); its variance is
//! estimated from per-root-path target-hit counts (Eq. 5-6).
//!
//! When the underlying process *can* skip levels, this sampler is exactly
//! the paper's "blindly applied s-MLSS": a path that jumps across a level
//! never lands in it, loses its splitting credit, and the estimate biases
//! low — reproduced in Table 6 and our `volatile_bias` integration test.
//! Use [`crate::gmlss`] for the general, always-unbiased sampler.

use crate::estimate::Estimate;
use crate::estimator::{ChunkOutcome, Diagnostics, Estimator, Ledger};
use crate::frontier::{run_frontier, FrontierMode, RootKernel, SegmentStatus};
use crate::levels::PartitionPlan;
use crate::model::{SimulationModel, Time};
use crate::quality::RunControl;
use crate::query::{Problem, ValueFunction};
use crate::rng::SimRng;
use crate::stats::HitMoments;

/// Configuration for the s-MLSS sampler.
#[derive(Debug, Clone)]
pub struct SMlssConfig {
    /// The level partition plan `B`.
    pub plan: PartitionPlan,
    /// Splitting ratio `r ≥ 1` (the paper fixes `r = 3` by default; `r = 1`
    /// degenerates to SRS).
    pub ratio: u32,
    /// Stopping criterion.
    pub control: RunControl,
    /// Retain per-root hit counts in the result (needed for post-hoc
    /// analysis; the running variance works without it).
    pub keep_root_hits: bool,
}

impl SMlssConfig {
    /// Config with the paper's default ratio `r = 3`.
    pub fn new(plan: PartitionPlan, control: RunControl) -> Self {
        Self {
            plan,
            ratio: 3,
            control,
            keep_root_hits: false,
        }
    }

    /// Override the splitting ratio.
    pub fn with_ratio(mut self, ratio: u32) -> Self {
        assert!(ratio >= 1, "splitting ratio must be ≥ 1");
        self.ratio = ratio;
        self
    }
}

/// Per-level counters and result of an s-MLSS run.
#[derive(Debug, Clone)]
pub struct SMlssResult {
    /// Final estimate (Eq. 3 with Eq. 5-6 variance).
    pub estimate: Estimate,
    /// First-entrance counters `N_1 .. N_m` (`N_0` is `estimate.n_roots`).
    pub level_entries: Vec<u64>,
    /// Per-root target-hit counts (present when `keep_root_hits`).
    pub root_hits: Option<Vec<u32>>,
    /// Wall-clock simulation time.
    pub elapsed: std::time::Duration,
}

impl SMlssResult {
    /// Estimated level advancement probabilities `p̂_1 .. p̂_m`
    /// (`p̂_1 = N_1/N_0`, `p̂_{i+1} = N_{i+1}/(r·N_i)`).
    pub fn advancement_probabilities(&self, ratio: u32) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.level_entries.len());
        let mut prev = self.estimate.n_roots as f64;
        for (i, &n) in self.level_entries.iter().enumerate() {
            let denom = if i == 0 { prev } else { prev * ratio as f64 };
            out.push(if denom > 0.0 { n as f64 / denom } else { 0.0 });
            prev = n as f64;
        }
        out
    }
}

/// One pending path segment in the splitting tree.
pub(crate) struct Segment<S> {
    state: S,
    t: Time,
    level: usize,
}

/// Accumulated s-MLSS counters — the sampler's [`Ledger`].
#[derive(Debug, Clone)]
pub struct SMlssShard {
    m: usize,
    ratio: u32,
    /// First-entrance counters `N_1 .. N_m`.
    pub level_entries: Vec<u64>,
    moments: HitMoments,
    /// Root paths simulated (`N_0`).
    pub n_roots: u64,
    /// Target-level hits (`N_m`).
    pub hits: u64,
    /// `g` invocations spent.
    pub steps: u64,
}

impl SMlssShard {
    fn new(m: usize, ratio: u32) -> Self {
        Self {
            m,
            ratio,
            level_entries: vec![0; m],
            moments: HitMoments::new(),
            n_roots: 0,
            hits: 0,
            steps: 0,
        }
    }

    /// The estimate implied by the accumulated counters: Eq. 3 with the
    /// per-root-hit variance of Eq. 5-6.
    pub fn estimate(&self) -> Estimate {
        let scale = (self.ratio as f64).powi(self.m as i32 - 1);
        let (tau, variance) = if self.n_roots == 0 {
            (0.0, f64::INFINITY)
        } else {
            let n = self.n_roots as f64;
            (
                self.hits as f64 / (n * scale),
                self.moments.sample_variance() / (n * scale * scale),
            )
        };
        Estimate {
            tau,
            variance,
            n_roots: self.n_roots,
            steps: self.steps,
            hits: self.hits,
        }
    }
}

// Durability codec: geometry (`m`, `ratio`) plus every counter, so a
// restored shard merges and estimates exactly like the original.
impl crate::persist::Persist for SMlssShard {
    fn persist(&self, out: &mut Vec<u8>) {
        crate::persist::put_u64(out, self.m as u64);
        crate::persist::put_u32(out, self.ratio);
        crate::persist::put_u64s(out, &self.level_entries);
        self.moments.persist(out);
        crate::persist::put_u64(out, self.n_roots);
        crate::persist::put_u64(out, self.hits);
        crate::persist::put_u64(out, self.steps);
    }

    fn restore(r: &mut crate::persist::Reader<'_>) -> Result<Self, crate::persist::PersistError> {
        use crate::persist::PersistError;
        let m = r.u64()? as usize;
        let ratio = r.u32()?;
        let level_entries = r.u64s()?;
        if level_entries.len() != m {
            return Err(PersistError::Malformed("smlss level entries"));
        }
        Ok(Self {
            m,
            ratio,
            level_entries,
            moments: HitMoments::restore(r)?,
            n_roots: r.u64()?,
            hits: r.u64()?,
            steps: r.u64()?,
        })
    }
}

impl Ledger for SMlssShard {
    fn merge(&mut self, other: Self) {
        assert_eq!(self.m, other.m, "shard level counts must match");
        assert_eq!(self.ratio, other.ratio, "shard ratios must match");
        for (a, b) in self.level_entries.iter_mut().zip(&other.level_entries) {
            *a += b;
        }
        self.moments.merge(&other.moments);
        self.n_roots += other.n_roots;
        self.hits += other.hits;
        self.steps += other.steps;
    }

    fn n_roots(&self) -> u64 {
        self.n_roots
    }

    fn steps(&self) -> u64 {
        self.steps
    }
}

/// Simulate one s-MLSS root path (with its full splitting tree) into the
/// shard. Returns this root's target-hit count.
pub(crate) fn simulate_root<M, V>(
    problem: &Problem<'_, M, V>,
    plan: &PartitionPlan,
    r: u32,
    shard: &mut SMlssShard,
    stack: &mut Vec<Segment<M::State>>,
    rng: &mut SimRng,
) -> u32
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    let m = plan.num_levels();
    let init = problem.model.initial_state();
    let init_level = plan.level_of(problem.value(&init)).min(m - 1);
    let mut this_root_hits: u32 = 0;

    stack.clear();
    // A root born above L_0 is treated as having entered L_1..L_k at
    // t = 0, cascading the splits those entrances imply (multiplicity
    // r^k); the estimator's r^{m-1} hit multiplier stays exact. (The
    // paper assumes starts in L_0; this is the faithful generalization.)
    let mut mult: u64 = 1;
    for i in 1..=init_level {
        shard.level_entries[i - 1] += mult;
        mult *= r as u64;
        assert!(
            mult <= 1_000_000,
            "initial value crosses too many levels for s-MLSS cascading"
        );
    }
    for _ in 0..mult {
        stack.push(Segment {
            state: init.clone(),
            t: 0,
            level: init_level,
        });
    }

    while let Some(seg) = stack.pop() {
        let mut state = seg.state;
        let watch = seg.level + 1; // the level we wait to land in
        for t in (seg.t + 1)..=problem.horizon {
            state = problem.model.step(&state, t, rng);
            shard.steps += 1;
            let f = problem.value(&state);
            if plan.level_of(f) == watch {
                if watch == m {
                    // Target level reached.
                    shard.hits += 1;
                    this_root_hits += 1;
                } else {
                    shard.level_entries[watch - 1] += 1;
                    for _ in 0..r {
                        stack.push(Segment {
                            state: state.clone(),
                            t,
                            level: watch,
                        });
                    }
                }
                break;
            }
        }
    }

    shard.n_roots += 1;
    if this_root_hits > 0 {
        shard.level_entries[m - 1] += this_root_hits as u64;
    }
    shard.moments.push(this_root_hits);
    this_root_hits
}

/// Frontier kernel for s-MLSS: a root is a full splitting tree, processed
/// segment-by-segment within one lane (the lane's LIFO stack mirrors
/// [`simulate_root`]'s, so per-root RNG consumption is identical).
pub(crate) struct SMlssKernel<'a> {
    plan: &'a PartitionPlan,
    ratio: u32,
}

/// Per-root scratch for the s-MLSS kernel.
pub(crate) struct SMlssScratch<S> {
    stack: Vec<Segment<S>>,
    /// Watch level of the lane's current segment.
    watch: usize,
    /// First-entrance deltas `N_1 .. N_m` for this root.
    entries: Vec<u64>,
    /// Target hits of this root.
    hits: u32,
}

/// Everything one finished s-MLSS root commits.
pub(crate) struct SMlssRoot {
    entries: Vec<u64>,
    hits: u32,
    steps: u64,
}

impl<'a, M, V> RootKernel<M, V> for SMlssKernel<'a>
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    type Scratch = SMlssScratch<M::State>;
    type Outcome = SMlssRoot;
    type Shard = SMlssShard;

    fn new_scratch(&self) -> Self::Scratch {
        SMlssScratch {
            stack: Vec::new(),
            watch: 1,
            entries: vec![0; self.plan.num_levels()],
            hits: 0,
        }
    }

    fn begin_root(
        &self,
        problem: &Problem<'_, M, V>,
        scratch: &mut Self::Scratch,
    ) -> (M::State, Time) {
        let m = self.plan.num_levels();
        scratch.stack.clear();
        scratch.hits = 0;
        scratch.entries.clear();
        scratch.entries.resize(m, 0);

        let init = problem.model.initial_state();
        let init_level = self.plan.level_of(problem.value(&init)).min(m - 1);
        // Cascade for roots born above L_0 (see `simulate_root`).
        let mut mult: u64 = 1;
        for i in 1..=init_level {
            scratch.entries[i - 1] += mult;
            mult *= self.ratio as u64;
            assert!(
                mult <= 1_000_000,
                "initial value crosses too many levels for s-MLSS cascading"
            );
        }
        for _ in 0..mult - 1 {
            scratch.stack.push(Segment {
                state: init.clone(),
                t: 0,
                level: init_level,
            });
        }
        scratch.watch = init_level + 1;
        (init, 0)
    }

    fn on_step(
        &self,
        problem: &Problem<'_, M, V>,
        scratch: &mut Self::Scratch,
        state: &M::State,
        t: Time,
    ) -> SegmentStatus {
        let m = self.plan.num_levels();
        let f = problem.value(state);
        if self.plan.level_of(f) != scratch.watch {
            return SegmentStatus::Running;
        }
        if scratch.watch == m {
            scratch.hits += 1;
        } else {
            scratch.entries[scratch.watch - 1] += 1;
            for _ in 0..self.ratio {
                scratch.stack.push(Segment {
                    state: state.clone(),
                    t,
                    level: scratch.watch,
                });
            }
        }
        SegmentStatus::SegmentDone
    }

    fn next_segment(&self, scratch: &mut Self::Scratch) -> Option<(M::State, Time)> {
        let seg = scratch.stack.pop()?;
        scratch.watch = seg.level + 1;
        Some((seg.state, seg.t))
    }

    fn finish_root(&self, scratch: &mut Self::Scratch, steps: u64) -> SMlssRoot {
        SMlssRoot {
            entries: std::mem::take(&mut scratch.entries),
            hits: scratch.hits,
            steps,
        }
    }

    fn commit(&self, shard: &mut SMlssShard, out: SMlssRoot) {
        let m = shard.m;
        for (a, b) in shard.level_entries.iter_mut().zip(&out.entries) {
            *a += b;
        }
        shard.steps += out.steps;
        shard.hits += out.hits as u64;
        shard.n_roots += 1;
        if out.hits > 0 {
            shard.level_entries[m - 1] += out.hits as u64;
        }
        shard.moments.push(out.hits);
    }
}

impl<M, V> Estimator<M, V> for SMlssConfig
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    type Shard = SMlssShard;

    fn name(&self) -> &'static str {
        "smlss"
    }

    fn shard(&self) -> SMlssShard {
        SMlssShard::new(self.plan.num_levels(), self.ratio)
    }

    fn run_chunk(
        &self,
        problem: Problem<'_, M, V>,
        shard: &mut SMlssShard,
        budget: u64,
        rng: &mut SimRng,
    ) -> ChunkOutcome {
        let kernel = SMlssKernel {
            plan: &self.plan,
            ratio: self.ratio,
        };
        run_frontier(&kernel, &problem, shard, budget, rng, FrontierMode::Shared)
    }

    fn run_chunk_batched(
        &self,
        problem: Problem<'_, M, V>,
        shard: &mut SMlssShard,
        budget: u64,
        rng: &mut SimRng,
        width: usize,
    ) -> ChunkOutcome {
        let kernel = SMlssKernel {
            plan: &self.plan,
            ratio: self.ratio,
        };
        run_frontier(
            &kernel,
            &problem,
            shard,
            budget,
            rng,
            FrontierMode::PerRoot(width),
        )
    }

    fn estimate(&self, shard: &SMlssShard, _rng: &mut SimRng) -> Estimate {
        shard.estimate()
    }

    fn diagnostics(&self, shard: &SMlssShard) -> Diagnostics {
        let mut details = Vec::new();
        let mut prev = shard.n_roots as f64;
        for (i, &n) in shard.level_entries.iter().enumerate() {
            let denom = if i == 0 {
                prev
            } else {
                prev * self.ratio as f64
            };
            let p = if denom > 0.0 { n as f64 / denom } else { 0.0 };
            details.push((format!("p_hat_{}", i + 1), p));
            prev = n as f64;
        }
        Diagnostics {
            estimator: "smlss",
            skip_events: 0,
            details,
        }
    }
}

/// The s-MLSS sampler.
#[derive(Debug, Clone)]
pub struct SMlssSampler {
    /// Sampler configuration.
    pub config: SMlssConfig,
}

impl SMlssSampler {
    /// Create a sampler.
    pub fn new(config: SMlssConfig) -> Self {
        assert!(config.ratio >= 1, "splitting ratio must be ≥ 1");
        Self { config }
    }

    /// Run to completion.
    pub fn run<M, V>(&self, problem: Problem<'_, M, V>, rng: &mut SimRng) -> SMlssResult
    where
        M: SimulationModel,
        V: ValueFunction<M::State>,
    {
        self.run_observed(problem, rng, |_| {})
    }

    /// Run, invoking `observe` with the running estimate after every root
    /// path.
    pub fn run_observed<M, V>(
        &self,
        problem: Problem<'_, M, V>,
        rng: &mut SimRng,
        mut observe: impl FnMut(&Estimate),
    ) -> SMlssResult
    where
        M: SimulationModel,
        V: ValueFunction<M::State>,
    {
        let start = std::time::Instant::now();
        let plan = &self.config.plan;
        let m = plan.num_levels();
        let r = self.config.ratio;

        let mut shard = SMlssShard::new(m, r);
        let mut root_hits: Vec<u32> = Vec::new();
        let mut since_check: u64 = 0;
        let mut stack: Vec<Segment<M::State>> = Vec::new();

        loop {
            let est = shard.estimate();
            if shard.n_roots > 0 {
                observe(&est);
            }
            if !self.config.control.should_continue(&est, &mut since_check) {
                break;
            }

            let this_root_hits = simulate_root(&problem, plan, r, &mut shard, &mut stack, rng);
            since_check += 1;
            if self.config.keep_root_hits {
                root_hits.push(this_root_hits);
            }
        }

        SMlssResult {
            estimate: shard.estimate(),
            level_entries: shard.level_entries,
            root_hits: self.config.keep_root_hits.then_some(root_hits),
            elapsed: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::QualityTarget;
    use crate::query::RatioValue;
    use crate::rng::rng_from_seed;
    use rand::RngExt;

    /// Additive random walk on [0, 1]: steps of ±1/k, never skips levels
    /// that are at least 1/k apart.
    struct FineWalk {
        k: u32,
        up: f64,
    }

    impl SimulationModel for FineWalk {
        type State = f64;

        fn initial_state(&self) -> f64 {
            0.0
        }

        fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            let d = 1.0 / self.k as f64;
            if rng.random::<f64>() < self.up {
                (s + d).min(1.0)
            } else {
                (s - d).max(0.0)
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn walk_problem(_model: &FineWalk, horizon: Time) -> (RatioValue<fn(&f64) -> f64>, Time) {
        fn score(s: &f64) -> f64 {
            *s
        }
        (RatioValue::new(score as fn(&f64) -> f64, 1.0), horizon)
    }

    #[test]
    fn ratio_one_equals_srs_estimator() {
        let model = FineWalk { k: 8, up: 0.45 };
        let (vf, horizon) = walk_problem(&model, 60);
        let problem = Problem::new(&model, &vf, horizon);

        let plan = PartitionPlan::new(vec![0.25, 0.5, 0.75]).unwrap();
        let cfg = SMlssConfig::new(plan, RunControl::budget(200_000)).with_ratio(1);
        let res = SMlssSampler::new(cfg).run(problem, &mut rng_from_seed(7));

        // With r = 1, τ̂ = N_m / N_0 — the SRS form.
        let est = res.estimate;
        assert!(
            (est.tau - est.hits as f64 / est.n_roots as f64).abs() < 1e-15,
            "r=1 estimator must be N_m/N_0"
        );
        // And variance ≈ SRS binomial variance (sample vs population var
        // differ by n/(n-1)).
        let srs_var = est.tau * (1.0 - est.tau) / est.n_roots as f64;
        assert!(
            (est.variance - srs_var).abs() / srs_var < 0.01,
            "variance {} vs srs {}",
            est.variance,
            srs_var
        );
    }

    #[test]
    fn mlss_matches_srs_estimate_on_walk() {
        // Ground truth via brute-force SRS with a large budget; MLSS must
        // agree within combined CI.
        let model = FineWalk { k: 10, up: 0.5 };
        let (vf, horizon) = walk_problem(&model, 100);
        let problem = Problem::new(&model, &vf, horizon);

        let srs = crate::srs::SrsSampler::new(RunControl::budget(2_000_000))
            .run(problem, &mut rng_from_seed(1));

        let plan = PartitionPlan::new(vec![0.3, 0.6]).unwrap();
        let cfg = SMlssConfig::new(plan, RunControl::budget(2_000_000)).with_ratio(3);
        let mlss = SMlssSampler::new(cfg).run(problem, &mut rng_from_seed(2));

        let diff = (srs.estimate.tau - mlss.estimate.tau).abs();
        let tol = 3.0 * (srs.estimate.variance + mlss.estimate.variance).sqrt();
        assert!(
            diff <= tol.max(1e-3),
            "SRS {} vs MLSS {} (diff {diff}, tol {tol})",
            srs.estimate.tau,
            mlss.estimate.tau
        );
    }

    #[test]
    fn level_counters_consistent() {
        let model = FineWalk { k: 10, up: 0.55 };
        let (vf, horizon) = walk_problem(&model, 80);
        let problem = Problem::new(&model, &vf, horizon);
        let plan = PartitionPlan::new(vec![0.3, 0.6]).unwrap();
        let cfg = SMlssConfig::new(plan, RunControl::budget(50_000));
        let res = SMlssSampler::new(cfg).run(problem, &mut rng_from_seed(3));

        assert_eq!(res.level_entries.len(), 3);
        // N_m in counters equals hits in the estimate.
        assert_eq!(res.level_entries[2], res.estimate.hits);
        // Each split produces at most r offsprings' worth of next-level
        // entries: N_{i+1} ≤ r · N_i.
        assert!(res.level_entries[1] <= 3 * res.level_entries[0]);
        assert!(res.level_entries[2] <= 3 * res.level_entries[1]);
        // Advancement probabilities are valid probabilities.
        for p in res.advancement_probabilities(3) {
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn keep_root_hits_sums_to_total() {
        let model = FineWalk { k: 6, up: 0.55 };
        let (vf, horizon) = walk_problem(&model, 60);
        let problem = Problem::new(&model, &vf, horizon);
        let plan = PartitionPlan::new(vec![0.5]).unwrap();
        let mut cfg = SMlssConfig::new(plan, RunControl::budget(30_000));
        cfg.keep_root_hits = true;
        let res = SMlssSampler::new(cfg).run(problem, &mut rng_from_seed(4));
        let rh = res.root_hits.unwrap();
        assert_eq!(rh.len() as u64, res.estimate.n_roots);
        assert_eq!(rh.iter().map(|&h| h as u64).sum::<u64>(), res.estimate.hits);
    }

    #[test]
    fn quality_target_mode_reaches_re() {
        let model = FineWalk { k: 6, up: 0.5 };
        let (vf, horizon) = walk_problem(&model, 50);
        let problem = Problem::new(&model, &vf, horizon);
        let plan = PartitionPlan::new(vec![0.5]).unwrap();
        let cfg = SMlssConfig::new(
            plan,
            RunControl::Target {
                target: QualityTarget::RelativeError {
                    target: 0.2,
                    reference: None,
                },
                check_every: 128,
                max_steps: 50_000_000,
            },
        );
        let res = SMlssSampler::new(cfg).run(problem, &mut rng_from_seed(9));
        assert!(res.estimate.self_relative_error() <= 0.2);
    }

    #[test]
    #[should_panic]
    fn zero_ratio_rejected() {
        let cfg = SMlssConfig::new(PartitionPlan::trivial(), RunControl::budget(1)).with_ratio(0);
        let _ = SMlssSampler::new(cfg);
    }

    #[test]
    fn sampler_and_estimator_trait_agree_exactly() {
        // The sampler's scalar `simulate_root` (splitting stack included)
        // and the frontier's `SMlssKernel` are two implementations of the
        // same root program: pin them bit-exactly so they cannot drift.
        let model = FineWalk { k: 8, up: 0.52 };
        let (vf, horizon) = walk_problem(&model, 60);
        let problem = Problem::new(&model, &vf, horizon);
        let plan = PartitionPlan::new(vec![0.3, 0.6]).unwrap();
        let cfg = SMlssConfig::new(plan, RunControl::budget(40_000));
        let res = SMlssSampler::new(cfg.clone()).run(problem, &mut rng_from_seed(19));

        let mut rng = rng_from_seed(19);
        let mut shard = crate::estimator::shard_for(&cfg, &problem);
        cfg.run_chunk(problem, &mut shard, 40_000, &mut rng);
        assert_eq!(shard.steps, res.estimate.steps);
        assert_eq!(shard.n_roots, res.estimate.n_roots);
        assert_eq!(shard.hits, res.estimate.hits);
        assert_eq!(shard.level_entries, res.level_entries);
        assert_eq!(
            shard.estimate().variance.to_bits(),
            res.estimate.variance.to_bits()
        );
    }
}
