//! Durability prediction queries and value functions (§2.1, §3).
//!
//! A durability query `Q(q, s)` asks for the probability that the process
//! reaches a state with `q(x_t) = 1` at some `t ≤ s`. Following the paper,
//! the common practical form is `q(x) ⇔ z(x) ≥ β` for a real-valued state
//! score `z` and a threshold `β`, with the canonical value function
//! `f(x) = min{z(x)/β, 1}` guiding where MLSS splits.

use crate::model::{SimulationModel, Time};

/// Smallest value `f` may take: the paper requires `f : X → (0, 1]`, so we
/// clamp non-positive ratios up to this.
pub const VALUE_EPSILON: f64 = 1e-12;

/// A real-valued evaluation of a state — the paper's `z : X → R`.
pub trait StateScore<S>: Sync {
    /// Score the state.
    fn score(&self, state: &S) -> f64;
}

/// Any closure `Fn(&S) -> f64` is a score.
impl<S, F: Fn(&S) -> f64 + Sync> StateScore<S> for F {
    fn score(&self, state: &S) -> f64 {
        self(state)
    }
}

/// A heuristic value function `f : X → (0, 1]` with `f(x) = 1 ⇔ q(x) = 1`
/// (§3 "Value Functions"). Estimator unbiasedness never depends on `f`;
/// only sampling efficiency does.
pub trait ValueFunction<S>: Sync {
    /// Value of the state, guaranteed to lie in `(0, 1]`.
    fn value(&self, state: &S) -> f64;

    /// The query condition: by construction `q(x) = 1 ⇔ f(x) = 1`.
    fn satisfied(&self, state: &S) -> bool {
        self.value(state) >= 1.0
    }
}

/// The paper's canonical value function `f(x) = min{z(x)/β, 1}` for
/// threshold queries `z(x) ≥ β`, clamped below to keep `f` positive.
#[derive(Debug, Clone, Copy)]
pub struct RatioValue<Z> {
    score: Z,
    beta: f64,
}

impl<Z> RatioValue<Z> {
    /// Build the value function for query `z(x) ≥ beta`. `beta` must be a
    /// positive, finite threshold.
    pub fn new(score: Z, beta: f64) -> Self {
        assert!(
            beta.is_finite() && beta > 0.0,
            "threshold β must be positive and finite, got {beta}"
        );
        Self { score, beta }
    }

    /// The threshold β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The underlying score.
    pub fn score_fn(&self) -> &Z {
        &self.score
    }
}

impl<S, Z: StateScore<S>> ValueFunction<S> for RatioValue<Z> {
    fn value(&self, state: &S) -> f64 {
        let z = self.score.score(state);
        if z.is_nan() {
            // A NaN score would otherwise poison level bookkeeping; treat
            // it as "no progress" rather than crashing mid-experiment.
            return VALUE_EPSILON;
        }
        (z / self.beta).clamp(VALUE_EPSILON, 1.0)
    }
}

/// A fully specified durability prediction query over a model: the paper's
/// `Q(q, s)` bundled with `g` and the value function that guides MLSS.
pub struct Problem<'a, M: SimulationModel, V> {
    /// The simulation model `g`.
    pub model: &'a M,
    /// The value function `f` (which also defines `q`).
    pub value_fn: &'a V,
    /// The time horizon `s`.
    pub horizon: Time,
}

impl<'a, M, V> Problem<'a, M, V>
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    /// Bundle a query. `horizon` must be at least 1.
    pub fn new(model: &'a M, value_fn: &'a V, horizon: Time) -> Self {
        assert!(horizon >= 1, "durability horizon must be ≥ 1");
        Self {
            model,
            value_fn,
            horizon,
        }
    }

    /// Value of a state under this query's value function.
    pub fn value(&self, state: &M::State) -> f64 {
        self.value_fn.value(state)
    }

    /// Does the state satisfy the query condition `q`?
    pub fn satisfied(&self, state: &M::State) -> bool {
        self.value_fn.satisfied(state)
    }
}

impl<'a, M: SimulationModel, V> Clone for Problem<'a, M, V> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'a, M: SimulationModel, V> Copy for Problem<'a, M, V> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_value_basic() {
        let v = RatioValue::new(|s: &f64| *s, 10.0);
        assert!((v.value(&5.0) - 0.5).abs() < 1e-12);
        assert_eq!(v.value(&10.0), 1.0);
        assert_eq!(v.value(&25.0), 1.0);
        assert!(v.satisfied(&10.0));
        assert!(!v.satisfied(&9.999));
    }

    #[test]
    fn ratio_value_clamps_low() {
        let v = RatioValue::new(|s: &f64| *s, 10.0);
        assert_eq!(v.value(&0.0), VALUE_EPSILON);
        assert_eq!(v.value(&-100.0), VALUE_EPSILON);
        assert!(v.value(&0.0) > 0.0, "f must stay in (0,1]");
    }

    #[test]
    fn ratio_value_handles_nan_scores() {
        let v = RatioValue::new(|_: &f64| f64::NAN, 10.0);
        assert_eq!(v.value(&0.0), VALUE_EPSILON);
        assert!(!v.satisfied(&0.0));
    }

    #[test]
    #[should_panic]
    fn ratio_value_rejects_nonpositive_beta() {
        let _ = RatioValue::new(|s: &f64| *s, 0.0);
    }

    #[test]
    fn satisfied_iff_value_one() {
        let v = RatioValue::new(|s: &f64| *s, 4.0);
        for z in [-3.0, 0.0, 1.0, 3.9, 4.0, 4.1, 400.0] {
            assert_eq!(v.satisfied(&z), v.value(&z) >= 1.0);
        }
    }
}
