//! Concurrent query scheduler: many durability queries, one worker pool.
//!
//! The sequential and parallel drivers answer **one** query front to
//! back. A serving engine (the paper's DBMS integration, §6.4) instead
//! sees a stream of concurrent queries of wildly different costs: cheap
//! SRS point lookups next to 0.1%-RE g-MLSS marathons. Running them FIFO
//! lets one marathon head-of-line-block every cheap query behind it.
//!
//! [`Scheduler`] time-slices instead. Every admitted query is a
//! [`SliceableQuery`]: a self-contained job that advances its own
//! mergeable shard by one budgeted *slice* at a time (internally a
//! [`crate::estimator::Estimator::run_chunk`] call into a fresh shard,
//! merged on success). Because chunk boundaries are invisible — the chunk
//! contract completes every root path it starts, and shards merge exactly
//! — a query executed as 50 interleaved slices produces **bit-identical**
//! results to the same query run uninterrupted with the same RNG stream.
//! That single invariant buys everything the serving layer needs:
//!
//! * **concurrency** — workers pick slices from different queries;
//! * **preemption** — a cheap query's slice can run between two slices of
//!   an expensive one (the pool picks the least-attained query first, so
//!   short queries finish fast);
//! * **pause / checkpoint / resume** — a paused query is just a job whose
//!   next slice hasn't been scheduled; a detached job *is* the
//!   checkpoint (shard + RNG state), resumable in place or through
//!   [`crate::estimator::run_sequential_from`] /
//!   [`crate::parallel::run_parallel_from`];
//! * **failure isolation** — a panic inside a slice is caught by the
//!   worker; the slice ran on scratch state (fresh shard, cloned RNG), so
//!   the query's committed state is untouched and the query is retried or
//!   reported failed while every other query proceeds normally.

use crate::estimate::Estimate;
use crate::estimator::{ChunkOutcome, Diagnostics, Estimator, Ledger};
use crate::model::SimulationModel;
use crate::quality::{QualityTarget, RunControl};
use crate::query::{Problem, ValueFunction};
use crate::rng::{SimRng, StreamFactory};
use crate::shard_store::{ShardKey, ShardStore, StoredShard};
use std::any::Any;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Identifier of a submitted query (unique per scheduler, monotonically
/// increasing in submission order).
pub type QueryId = u64;

/// Identifier of a registered fair-share tenant (index into the
/// scheduler's tenant table; stable for the scheduler's lifetime).
pub type TenantId = u32;

/// A query the scheduler can advance one slice at a time.
///
/// Contract: `run_slice` must be **transactional** — if it panics, the
/// job's observable state (shard, RNG, counters) must be as if the call
/// never happened. [`EstimatorQuery`] achieves this by simulating into a
/// fresh shard with a cloned RNG and committing both only on success;
/// custom implementations must do the same, because the scheduler retries
/// panicked slices on the same job object.
pub trait SliceableQuery: Send + Any {
    /// Short name for progress reporting.
    fn name(&self) -> &'static str;

    /// Advance by (at least) `budget` `g` invocations, or less if the
    /// query's own control is nearly satisfied. Must be transactional
    /// under panics (see trait docs).
    fn run_slice(&mut self, budget: u64) -> ChunkOutcome;

    /// Has the query's stopping rule been satisfied? May consume RNG
    /// (e.g. a bootstrap variance evaluation in target mode).
    fn finished(&mut self) -> bool;

    /// The estimate over everything accumulated so far.
    fn estimate(&mut self) -> Estimate;

    /// `g` invocations accumulated.
    fn steps(&self) -> u64;

    /// Root paths accumulated.
    fn n_roots(&self) -> u64;

    /// Estimator-specific health indicators.
    fn diagnostics(&self) -> Diagnostics;

    /// Type-erasure escape hatch: lets a caller who knows the concrete
    /// type recover it from a detached checkpoint (see
    /// [`Scheduler::detach`]).
    fn into_any(self: Box<Self>) -> Box<dyn Any>;

    /// Snapshot the accumulated state as a cross-query warm-start
    /// candidate for the shard store: the key identifying what problem
    /// the shard answers, plus the checkpoint itself. Jobs that do not
    /// participate in reuse (the default) return `None`. Must not
    /// disturb the job's committed state (snapshot on clones).
    fn reuse_snapshot(&mut self) -> Option<(ShardKey, StoredShard)> {
        None
    }

    /// Capture the job's committed `(shard, RNG)` state for a durability
    /// checkpoint, plus the resolved estimator name a recovering session
    /// needs to rebuild the job. Unlike [`SliceableQuery::reuse_snapshot`]
    /// this must be cheap — it runs at the checkpoint cadence on the
    /// worker's slice path — so implementations return counters-only
    /// placeholder estimates rather than evaluating one (recovery resumes
    /// the run; it never serves a checkpoint's estimate). Must not
    /// disturb committed state (snapshot on clones). Jobs that cannot be
    /// resumed from serialized state (the default) return `None`.
    fn checkpoint(&mut self) -> Option<(&'static str, StoredShard)> {
        None
    }
}

/// The standard [`SliceableQuery`]: any [`Estimator`] over an owned model
/// and value function, advancing under a [`RunControl`].
///
/// The job *is* the checkpoint: it owns the accumulated shard and the RNG
/// stream position, so serialization-free pause/resume is a matter of
/// keeping or handing back this object.
pub struct EstimatorQuery<M, V, E>
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
    E: Estimator<M, V>,
{
    model: M,
    value_fn: V,
    horizon: u64,
    estimator: E,
    control: RunControl,
    shard: E::Shard,
    rng: SimRng,
    /// Frontier width for slices: 0 = classic scalar chunks, w ≥ 1 =
    /// batched chunks at width w (bit-identical across widths).
    batch_width: usize,
    /// The pinned seed this job was built from (`None` when the caller
    /// handed over a raw RNG) — recorded in shard-store deposits.
    seed: Option<u64>,
    /// Shard-store identity; `Some` opts the job into reuse deposits.
    reuse_key: Option<ShardKey>,
}

impl<M, V, E> EstimatorQuery<M, V, E>
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
    E: Estimator<M, V>,
{
    /// Build a query job. `rng` is the job's private stream; use
    /// [`EstimatorQuery::from_seed`] for the canonical seeding that
    /// matches the parallel driver's worker 0.
    pub fn new(
        model: M,
        value_fn: V,
        horizon: u64,
        estimator: E,
        control: RunControl,
        rng: SimRng,
    ) -> Self {
        let shard = estimator.shard();
        Self {
            model,
            value_fn,
            horizon,
            estimator,
            control,
            shard,
            rng,
            batch_width: 0,
            seed: None,
            reuse_key: None,
        }
    }

    /// Build a query job resuming from a checkpointed `(shard, rng)`
    /// pair — e.g. a [`StoredShard`] the reuse planner chose to
    /// warm-start from. The control is evaluated over the *combined*
    /// state, exactly like [`crate::estimator::run_sequential_from`].
    pub fn from_parts(
        model: M,
        value_fn: V,
        horizon: u64,
        estimator: E,
        control: RunControl,
        shard: E::Shard,
        rng: SimRng,
    ) -> Self {
        Self {
            model,
            value_fn,
            horizon,
            estimator,
            control,
            shard,
            rng,
            batch_width: 0,
            seed: None,
            reuse_key: None,
        }
    }

    /// Tag this job with its shard-store identity so the scheduler
    /// deposits its checkpoints (on completion, pause, and detach) as
    /// warm-start candidates for later queries.
    pub fn with_reuse_key(mut self, key: ShardKey) -> Self {
        self.reuse_key = Some(key);
        self
    }

    /// Record the pinned seed this job was built from (deposit
    /// provenance; [`EstimatorQuery::from_seed`] sets it
    /// automatically).
    pub fn with_seed_provenance(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Route this job's slices through the batched frontier at the given
    /// width (`0` restores the scalar path). Because batched execution is
    /// bit-identical across widths, changing between two widths `≥ 1` is
    /// safe at any slice boundary — including mid-query on a detached
    /// job (pause → detach → rewiden → resubmit), which changes
    /// throughput and nothing else. The one unsafe switch is between `0`
    /// and `≥ 1`: the scalar path's randomness scheme differs from the
    /// batched path's, so cross that line only before the first slice.
    pub fn with_batch_width(mut self, width: usize) -> Self {
        self.batch_width = width;
        self
    }

    /// Build a query job seeded like the parallel driver's worker 0
    /// (`StreamFactory::new(seed).stream(0)`), so a 1-worker scheduler
    /// run, a 1-thread parallel run, and a sequential run over that
    /// stream produce identical samples.
    pub fn from_seed(
        model: M,
        value_fn: V,
        horizon: u64,
        estimator: E,
        control: RunControl,
        seed: u64,
    ) -> Self {
        let rng = StreamFactory::new(seed).stream(0);
        Self::new(model, value_fn, horizon, estimator, control, rng).with_seed_provenance(seed)
    }

    /// The accumulated shard (the live checkpoint).
    pub fn shard(&self) -> &E::Shard {
        &self.shard
    }

    /// Consume the job, returning the accumulated shard and the RNG
    /// stream position — everything needed to resume elsewhere (e.g.
    /// through [`crate::parallel::run_parallel_from`]).
    pub fn into_parts(self) -> (E::Shard, SimRng) {
        (self.shard, self.rng)
    }

    /// Steps remaining before the control's hard step bound.
    fn remaining(&self) -> u64 {
        let bound = match self.control {
            RunControl::Budget(b) => b,
            RunControl::Target { max_steps, .. } => max_steps,
        };
        bound.saturating_sub(self.shard.steps())
    }
}

impl<M, V, E> SliceableQuery for EstimatorQuery<M, V, E>
where
    M: SimulationModel + Send + 'static,
    M::State: Send,
    V: ValueFunction<M::State> + Send + 'static,
    E: Estimator<M, V> + Send + 'static,
    E::Shard: Send + Clone + 'static,
{
    fn name(&self) -> &'static str {
        self.estimator.name()
    }

    fn run_slice(&mut self, budget: u64) -> ChunkOutcome {
        let budget = budget.max(1).min(self.remaining());
        if budget == 0 {
            return ChunkOutcome::default();
        }
        // Transactional: simulate into scratch state, commit on success.
        // A panic inside the model unwinds before either commit below, so
        // the job can be retried (or inspected) with its state intact.
        let problem = Problem::new(&self.model, &self.value_fn, self.horizon);
        let mut pending = self.estimator.shard();
        let mut rng = self.rng.clone();
        // Defense in depth: an unresolved `batch_width=auto` sentinel
        // runs at the static fallback width, never a usize::MAX cohort.
        let width = crate::width::effective(self.batch_width);
        let outcome = if width == 0 {
            self.estimator
                .run_chunk(problem, &mut pending, budget, &mut rng)
        } else {
            self.estimator
                .run_chunk_batched(problem, &mut pending, budget, &mut rng, width)
        };
        self.shard.merge(pending);
        self.rng = rng;
        outcome
    }

    fn finished(&mut self) -> bool {
        match self.control {
            RunControl::Budget(b) => self.shard.steps() >= b,
            RunControl::Target {
                target, max_steps, ..
            } => {
                if self.shard.steps() >= max_steps {
                    return true;
                }
                if self.shard.n_roots() == 0 {
                    return false;
                }
                let est = self
                    .estimator
                    .check_estimate(&mut self.shard, &mut self.rng);
                target.satisfied(&est)
            }
        }
    }

    fn estimate(&mut self) -> Estimate {
        self.estimator.estimate(&self.shard, &mut self.rng)
    }

    fn steps(&self) -> u64 {
        self.shard.steps()
    }

    fn n_roots(&self) -> u64 {
        self.shard.n_roots()
    }

    fn diagnostics(&self) -> Diagnostics {
        self.estimator.diagnostics(&self.shard)
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn reuse_snapshot(&mut self) -> Option<(ShardKey, StoredShard)> {
        let key = self.reuse_key.clone()?;
        if self.shard.n_roots() == 0 {
            return None;
        }
        // Evaluate on a cloned RNG: a bootstrap variance must not
        // consume draws from the job's committed stream (the job may
        // keep running after a pause/detach snapshot).
        let mut rng = self.rng.clone();
        let estimate = self.estimator.estimate(&self.shard, &mut rng);
        // Scheduler checkpoints are never bit-exact: slice cadence stops
        // at different root counts than the sequential target-mode
        // driver, so they only answer unpinned (statistical) reuse —
        // the producing target is recorded anyway where one exists.
        let target_re = match &self.control {
            RunControl::Target {
                target: QualityTarget::RelativeError { target, .. },
                ..
            } => *target,
            _ => f64::NAN,
        };
        Some((
            key,
            StoredShard::new(
                &self.shard,
                self.rng.clone(),
                estimate,
                self.seed,
                target_re,
                false,
            ),
        ))
    }

    fn checkpoint(&mut self) -> Option<(&'static str, StoredShard)> {
        let target_re = match &self.control {
            RunControl::Target {
                target: QualityTarget::RelativeError { target, .. },
                ..
            } => *target,
            _ => f64::NAN,
        };
        // Counters-only placeholder estimate: evaluating a real one here
        // could run a bootstrap on every checkpoint, and — decisively —
        // would consume cloned-RNG draws whose cost shows up nowhere.
        // Recovery resumes the run from (shard, rng); it never reads
        // tau/variance out of a checkpoint.
        let estimate = Estimate {
            tau: f64::NAN,
            variance: f64::INFINITY,
            n_roots: self.shard.n_roots(),
            steps: self.shard.steps(),
            hits: 0,
        };
        Some((
            self.estimator.name(),
            StoredShard::new(
                &self.shard,
                self.rng.clone(),
                estimate,
                self.seed,
                target_re,
                false,
            ),
        ))
    }
}

/// A job that is already answered: what the reuse planner admits when a
/// stored shard meets the query's RE target, so an `ASYNC` submission
/// served from the store flows through the standard poll/wait/results
/// machinery unchanged. Its first (empty) slice finishes immediately
/// with the stored estimate.
#[derive(Debug, Clone)]
pub struct CompletedQuery {
    estimate: Estimate,
}

impl CompletedQuery {
    /// A job that finishes on its first slice with `estimate`.
    pub fn new(estimate: Estimate) -> Self {
        Self { estimate }
    }
}

impl SliceableQuery for CompletedQuery {
    fn name(&self) -> &'static str {
        "stored"
    }

    fn run_slice(&mut self, _budget: u64) -> ChunkOutcome {
        ChunkOutcome::default()
    }

    fn finished(&mut self) -> bool {
        true
    }

    fn estimate(&mut self) -> Estimate {
        self.estimate
    }

    fn steps(&self) -> u64 {
        self.estimate.steps
    }

    fn n_roots(&self) -> u64 {
        self.estimate.n_roots
    }

    fn diagnostics(&self) -> Diagnostics {
        Diagnostics::none("stored")
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads in the pool (≥ 1).
    pub workers: usize,
    /// `g` invocations per slice. Smaller slices preempt faster but pay
    /// more scheduling overhead per step.
    pub slice_budget: u64,
    /// How many times a panicked slice is retried before the query is
    /// reported failed. Retries re-run the identical committed state, so
    /// deterministic panics fail fast; transient ones (e.g. resource
    /// exhaustion) get another chance.
    pub max_retries: u32,
    /// Frontier width applied to queries admitted via
    /// [`Scheduler::submit`]: 0 = scalar slices, w ≥ 1 = batched slices
    /// at width w. Pre-built jobs ([`Scheduler::submit_query`]) keep
    /// whatever width they were built with.
    /// [`crate::width::AUTO_WIDTH`] is accepted and runs slices at the
    /// static fallback width — resolve it upstream (per-model) for the
    /// real adaptive pick.
    pub batch_width: usize,
    /// Pre-registered fair-share tenants as `(name, weight)` pairs.
    /// Weights scale the least-attained-service comparison: a tenant
    /// with weight 4 is considered "behind" until it has attained 4x
    /// the service of a weight-1 tenant. Tenants can also be registered
    /// at runtime via [`Scheduler::ensure_tenant`]; unknown names
    /// default to weight 1.0.
    pub tenant_weights: Vec<(String, f64)>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            slice_budget: 32_768,
            max_retries: 1,
            batch_width: 0,
            tenant_weights: Vec::new(),
        }
    }
}

/// Lifecycle of a submitted query.
#[derive(Debug, Clone)]
pub enum QueryStatus {
    /// Waiting for a worker.
    Queued,
    /// A worker is running one of its slices right now.
    Running,
    /// Paused; no further slices until [`Scheduler::resume`].
    Paused,
    /// Finished with this estimate.
    Done(Estimate),
    /// Gave up after repeated slice panics.
    Failed(String),
    /// Cancelled by the caller.
    Cancelled,
}

impl QueryStatus {
    /// Done, failed, or cancelled?
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            QueryStatus::Done(_) | QueryStatus::Failed(_) | QueryStatus::Cancelled
        )
    }

    /// The final estimate, when done.
    pub fn estimate(&self) -> Option<&Estimate> {
        match self {
            QueryStatus::Done(e) => Some(e),
            _ => None,
        }
    }
}

/// Point-in-time view of a query's progress.
#[derive(Debug, Clone)]
pub struct QueryProgress {
    /// Current lifecycle state.
    pub status: QueryStatus,
    /// `g` invocations committed so far.
    pub steps: u64,
    /// Root paths committed so far.
    pub n_roots: u64,
    /// Slices completed.
    pub slices: u64,
    /// Panicked slices retried so far.
    pub retries: u32,
    /// Submission priority (lower runs first).
    pub priority: u8,
    /// Wall-clock time from submission to the terminal transition, or to
    /// now for in-flight queries — the query's *serving latency*, stable
    /// no matter how late the caller polls.
    pub elapsed: Duration,
}

/// Aggregate pool counters (monotonic over the scheduler's lifetime).
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedulerStats {
    /// Queries admitted.
    pub submitted: u64,
    /// Queries finished with an estimate.
    pub completed: u64,
    /// Queries that exhausted their panic retries.
    pub failed: u64,
    /// Queries cancelled.
    pub cancelled: u64,
    /// Slices executed successfully.
    pub slices: u64,
    /// Slices that panicked (caught and contained).
    pub panics: u64,
}

enum SlotState {
    Ready,
    Running,
    Paused,
    Done(Estimate),
    Failed(String),
    Cancelled,
}

struct Slot {
    state: SlotState,
    /// The job, present unless a worker has it claimed or the slot is
    /// terminal.
    job: Option<Box<dyn SliceableQuery>>,
    priority: u8,
    steps: u64,
    n_roots: u64,
    slices: u64,
    retries: u32,
    pause_requested: bool,
    cancel_requested: bool,
    submitted_at: Instant,
    finished_at: Option<Instant>,
    /// Fair-share tenant this query's attained service is charged to
    /// (`None` for tenantless submissions — the pre-tenancy behavior).
    tenant: Option<TenantId>,
}

/// Per-tenant fair-share accounting.
struct TenantState {
    name: String,
    weight: f64,
    /// `g` invocations charged to this tenant (slice deltas of its
    /// queries; warm-start steps carried into a submission are not
    /// charged — the tenant pays for work the pool actually ran).
    attained: u64,
    submitted: u64,
    completed: u64,
}

/// Public snapshot of one tenant's fair-share accounting.
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Tenant name (the handshake identity).
    pub name: String,
    /// Fair-share weight (service is balanced toward `attained/weight`
    /// equality across tenants).
    pub weight: f64,
    /// `g` invocations charged to the tenant so far.
    pub attained_steps: u64,
    /// Queries submitted under this tenant.
    pub submitted: u64,
    /// Queries completed under this tenant.
    pub completed: u64,
}

impl Slot {
    fn status(&self) -> QueryStatus {
        match &self.state {
            SlotState::Ready => QueryStatus::Queued,
            SlotState::Running => QueryStatus::Running,
            SlotState::Paused => QueryStatus::Paused,
            SlotState::Done(e) => QueryStatus::Done(*e),
            SlotState::Failed(m) => QueryStatus::Failed(m.clone()),
            SlotState::Cancelled => QueryStatus::Cancelled,
        }
    }
}

struct State {
    jobs: BTreeMap<QueryId, Slot>,
    next_id: QueryId,
    shutdown: bool,
    stats: SchedulerStats,
    /// Registered tenants, indexed by [`TenantId`].
    tenants: Vec<TenantState>,
    tenant_ids: BTreeMap<String, TenantId>,
}

impl State {
    fn ensure_tenant(&mut self, name: &str, weight: Option<f64>) -> TenantId {
        if let Some(&id) = self.tenant_ids.get(name) {
            if let Some(w) = weight {
                self.tenants[id as usize].weight = w.max(f64::MIN_POSITIVE);
            }
            return id;
        }
        let id = self.tenants.len() as TenantId;
        self.tenants.push(TenantState {
            name: name.to_string(),
            weight: weight.unwrap_or(1.0).max(f64::MIN_POSITIVE),
            attained: 0,
            submitted: 0,
            completed: 0,
        });
        self.tenant_ids.insert(name.to_string(), id);
        id
    }
}

/// Observer of query lifecycle events for a write-ahead durability
/// layer. All callbacks run on worker (or caller) threads outside the
/// scheduler lock and are panic-contained: a hook failure degrades
/// durability, never liveness or results.
///
/// The ordering contract the WAL relies on:
///
/// - [`DurabilityHook::slice_committed`] fires after a slice's state is
///   committed into the job but before the slot transition — the job's
///   `checkpoint()` at that moment is exactly the state an uninterrupted
///   run carries into its next slice.
/// - [`DurabilityHook::finishing`] fires after the final estimate is
///   computed but **before** the `Done` status becomes observable, so a
///   result a client can see is always recoverable (write-ahead
///   ordering). It is deliberately *outside* the retried slice closure:
///   the final estimate has already consumed committed RNG draws, so a
///   hook failure must not trigger a re-run.
/// - [`DurabilityHook::discarded`] fires when a query ends without a
///   result (cancel, failure, detach) so recovery won't resurrect it.
pub trait DurabilityHook: Send + Sync {
    /// A slice of `id` committed without finishing the query; `slices`
    /// counts committed slices including this one. The hook may call
    /// [`SliceableQuery::checkpoint`] on `job` (at its own cadence).
    fn slice_committed(&self, id: QueryId, slices: u64, job: &mut dyn SliceableQuery) {
        let _ = (id, slices, job);
    }

    /// `id` computed its final estimate; the `Done` status is published
    /// only after this returns.
    fn finishing(&self, id: QueryId, est: &Estimate) {
        let _ = (id, est);
    }

    /// `id` ended without a result (cancelled, failed, or detached).
    fn discarded(&self, id: QueryId) {
        let _ = id;
    }
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for ready work.
    work_cv: Condvar,
    /// [`Scheduler::wait`] callers wait here for terminal transitions.
    done_cv: Condvar,
    /// Cross-query shard store; completed and paused jobs with a reuse
    /// key deposit their checkpoints here (see
    /// [`Scheduler::attach_shard_store`]).
    store: Mutex<Option<Arc<ShardStore>>>,
    /// Durability observer (see [`Scheduler::attach_durability_hook`]).
    hook: Mutex<Option<Arc<dyn DurabilityHook>>>,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn store(&self) -> Option<Arc<ShardStore>> {
        self.store
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn hook(&self) -> Option<Arc<dyn DurabilityHook>> {
        self.hook
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Invoke a hook callback, containing panics (durability is
    /// best-effort from the scheduler's point of view; the WAL layer has
    /// its own error accounting).
    fn with_hook(&self, f: impl FnOnce(&dyn DurabilityHook)) {
        if let Some(hook) = self.hook() {
            let _ = catch_unwind(AssertUnwindSafe(|| f(hook.as_ref())));
        }
    }
}

/// Best-effort deposit of a job's checkpoint into `store`. Snapshot
/// panics (e.g. a bootstrap variance on pathological data) are contained
/// exactly like slice panics: reuse is an optimization and must never
/// take a query down.
fn deposit_snapshot(store: &ShardStore, job: &mut Box<dyn SliceableQuery>) {
    let snap = catch_unwind(AssertUnwindSafe(|| job.reuse_snapshot()));
    if let Ok(Some((key, entry))) = snap {
        store.deposit(key, entry);
    }
}

/// A shared worker pool that admits, time-slices, and completes
/// concurrent estimation queries. See the module docs for the model.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    cfg: SchedulerConfig,
}

impl Scheduler {
    /// Start a pool with the given knobs.
    pub fn new(cfg: SchedulerConfig) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        assert!(cfg.slice_budget >= 1, "slices must have a budget");
        let mut state = State {
            jobs: BTreeMap::new(),
            next_id: 1,
            shutdown: false,
            stats: SchedulerStats::default(),
            tenants: Vec::new(),
            tenant_ids: BTreeMap::new(),
        };
        for (name, weight) in &cfg.tenant_weights {
            state.ensure_tenant(name, Some(*weight));
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(state),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            store: Mutex::new(None),
            hook: Mutex::new(None),
        });
        let workers = (0..cfg.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let slice_budget = cfg.slice_budget;
                let max_retries = cfg.max_retries;
                std::thread::spawn(move || worker_loop(&shared, slice_budget, max_retries))
            })
            .collect();
        Self {
            shared,
            workers,
            cfg,
        }
    }

    /// Start a pool with default knobs.
    pub fn with_workers(workers: usize) -> Self {
        Self::new(SchedulerConfig {
            workers,
            ..SchedulerConfig::default()
        })
    }

    /// The pool's configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// Attach a cross-query [`ShardStore`]: from now on, jobs carrying a
    /// reuse key deposit their checkpoints on completion and on pause,
    /// and [`Scheduler::detach`] deposits the in-flight checkpoint as a
    /// warm-start candidate before handing the job out.
    pub fn attach_shard_store(&self, store: Arc<ShardStore>) {
        *self
            .shared
            .store
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(store);
    }

    /// The attached shard store, if any.
    pub fn shard_store(&self) -> Option<Arc<ShardStore>> {
        self.shared.store()
    }

    /// Attach a [`DurabilityHook`]: from now on workers report slice
    /// commits, pre-publication finishes, and discards to it. Attach
    /// *before* submitting queries that must be journaled — events from
    /// already-running slices are not replayed retroactively.
    pub fn attach_durability_hook(&self, hook: Arc<dyn DurabilityHook>) {
        *self
            .shared
            .hook
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(hook);
    }

    /// Admit any [`Estimator`] over an owned model as a query. The job's
    /// RNG is worker-0-canonical for `seed` (see
    /// [`EstimatorQuery::from_seed`]). Lower `priority` runs first.
    #[allow(clippy::too_many_arguments)]
    pub fn submit<M, V, E>(
        &self,
        model: M,
        value_fn: V,
        horizon: u64,
        estimator: E,
        control: RunControl,
        seed: u64,
        priority: u8,
    ) -> QueryId
    where
        M: SimulationModel + Send + 'static,
        M::State: Send,
        V: ValueFunction<M::State> + Send + 'static,
        E: Estimator<M, V> + Send + 'static,
        E::Shard: Send + Clone + 'static,
    {
        self.submit_query(
            Box::new(
                EstimatorQuery::from_seed(model, value_fn, horizon, estimator, control, seed)
                    .with_batch_width(self.cfg.batch_width),
            ),
            priority,
        )
    }

    /// Admit a pre-built job (including one previously detached as a
    /// checkpoint — its accumulated state carries over).
    pub fn submit_query(&self, job: Box<dyn SliceableQuery>, priority: u8) -> QueryId {
        self.submit_query_as(job, priority, None)
    }

    /// Admit a pre-built job on behalf of a fair-share tenant. The
    /// tenant's attained-service counter is charged for every slice the
    /// pool runs on this query (warm-start steps carried in by the job
    /// are not charged), and [`pick_ready`] balances `attained/weight`
    /// across tenants within each priority band. `None` preserves the
    /// tenantless per-query least-attained policy exactly.
    pub fn submit_query_as(
        &self,
        job: Box<dyn SliceableQuery>,
        priority: u8,
        tenant: Option<TenantId>,
    ) -> QueryId {
        let mut st = self.shared.lock();
        let tenant = tenant.filter(|&t| (t as usize) < st.tenants.len());
        let id = st.next_id;
        st.next_id += 1;
        let (steps, n_roots) = (job.steps(), job.n_roots());
        st.jobs.insert(
            id,
            Slot {
                state: SlotState::Ready,
                job: Some(job),
                priority,
                steps,
                n_roots,
                slices: 0,
                retries: 0,
                pause_requested: false,
                cancel_requested: false,
                submitted_at: Instant::now(),
                finished_at: None,
                tenant,
            },
        );
        st.stats.submitted += 1;
        if let Some(t) = tenant {
            st.tenants[t as usize].submitted += 1;
        }
        drop(st);
        self.shared.work_cv.notify_one();
        id
    }

    /// Register (or look up) a fair-share tenant by name, returning its
    /// id for [`Scheduler::submit_query_as`]. New tenants start at
    /// weight 1.0; use [`Scheduler::set_tenant_weight`] (or
    /// [`SchedulerConfig::tenant_weights`]) to change it.
    pub fn ensure_tenant(&self, name: &str) -> TenantId {
        self.shared.lock().ensure_tenant(name, None)
    }

    /// Set a tenant's fair-share weight (registering it if unknown).
    /// Weights are clamped positive; the change applies to the very next
    /// scheduling decision.
    pub fn set_tenant_weight(&self, name: &str, weight: f64) {
        self.shared.lock().ensure_tenant(name, Some(weight));
    }

    /// Snapshot of every registered tenant's fair-share accounting, in
    /// registration order.
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        self.shared
            .lock()
            .tenants
            .iter()
            .map(|t| TenantStats {
                name: t.name.clone(),
                weight: t.weight,
                attained_steps: t.attained,
                submitted: t.submitted,
                completed: t.completed,
            })
            .collect()
    }

    /// Per-tenant counters as a [`Diagnostics`] block (`None` when no
    /// tenants are registered, so tenantless sessions stay unchanged).
    pub fn tenant_diagnostics(&self) -> Option<Diagnostics> {
        let stats = self.tenant_stats();
        if stats.is_empty() {
            return None;
        }
        let mut details = Vec::with_capacity(stats.len() * 4);
        for t in &stats {
            details.push((format!("{}.weight", t.name), t.weight));
            details.push((
                format!("{}.attained_steps", t.name),
                t.attained_steps as f64,
            ));
            details.push((format!("{}.submitted", t.name), t.submitted as f64));
            details.push((format!("{}.completed", t.name), t.completed as f64));
        }
        Some(Diagnostics {
            estimator: "tenants",
            skip_events: 0,
            details,
        })
    }

    /// Current status of a query (`None` for unknown ids).
    pub fn poll(&self, id: QueryId) -> Option<QueryStatus> {
        self.shared.lock().jobs.get(&id).map(|s| s.status())
    }

    /// Progress snapshot of a query.
    pub fn progress(&self, id: QueryId) -> Option<QueryProgress> {
        self.shared.lock().jobs.get(&id).map(|s| QueryProgress {
            status: s.status(),
            steps: s.steps,
            n_roots: s.n_roots,
            slices: s.slices,
            retries: s.retries,
            priority: s.priority,
            elapsed: s.finished_at.unwrap_or_else(Instant::now) - s.submitted_at,
        })
    }

    /// Drop every terminal (done/failed/cancelled) slot, returning how
    /// many were evicted. A long-lived serving scheduler should call
    /// this periodically once results have been consumed: terminal slots
    /// are retained so `poll`/`wait` keep answering, but they cost
    /// memory and lengthen the ready-queue scan forever otherwise.
    /// Evicted ids become unknown to `poll`/`progress`/`wait`.
    pub fn evict_terminal(&self) -> usize {
        let mut st = self.shared.lock();
        let before = st.jobs.len();
        st.jobs.retain(|_, s| !s.status().is_terminal());
        before - st.jobs.len()
    }

    /// Estimator-specific diagnostics of an in-flight query (`None` when
    /// the job is terminal, detached, or currently claimed by a worker).
    pub fn diagnostics(&self, id: QueryId) -> Option<Diagnostics> {
        let st = self.shared.lock();
        st.jobs
            .get(&id)
            .and_then(|s| s.job.as_ref())
            .map(|j| j.diagnostics())
    }

    /// Pause a query: no further slices run until [`Scheduler::resume`].
    /// Takes effect immediately for queued queries and after the current
    /// slice for running ones. Returns false for unknown/terminal ids.
    pub fn pause(&self, id: QueryId) -> bool {
        let mut st = self.shared.lock();
        match st.jobs.get_mut(&id) {
            Some(slot) => match slot.state {
                SlotState::Ready => {
                    slot.state = SlotState::Paused;
                    true
                }
                SlotState::Running => {
                    slot.pause_requested = true;
                    true
                }
                SlotState::Paused => true,
                _ => false,
            },
            None => false,
        }
    }

    /// Resume a paused query.
    pub fn resume(&self, id: QueryId) -> bool {
        let mut st = self.shared.lock();
        let resumed = match st.jobs.get_mut(&id) {
            Some(slot) => {
                slot.pause_requested = false;
                if matches!(slot.state, SlotState::Paused) {
                    slot.state = SlotState::Ready;
                    true
                } else {
                    matches!(slot.state, SlotState::Ready | SlotState::Running)
                }
            }
            None => false,
        };
        drop(st);
        if resumed {
            self.shared.work_cv.notify_one();
        }
        resumed
    }

    /// Cancel a query. Queued/paused queries cancel immediately; a
    /// running one cancels after its current slice. Returns false for
    /// unknown or already-terminal ids.
    pub fn cancel(&self, id: QueryId) -> bool {
        let mut st = self.shared.lock();
        let cancelled = match st.jobs.get_mut(&id) {
            Some(slot) => match slot.state {
                SlotState::Ready | SlotState::Paused => {
                    slot.job = None;
                    slot.state = SlotState::Cancelled;
                    slot.finished_at = Some(Instant::now());
                    true
                }
                SlotState::Running => {
                    // Idempotent: only the first cancel of a running
                    // query takes effect (and is counted).
                    !std::mem::replace(&mut slot.cancel_requested, true)
                }
                _ => false,
            },
            None => false,
        };
        let immediate = cancelled
            && st
                .jobs
                .get(&id)
                .is_some_and(|s| matches!(s.state, SlotState::Cancelled));
        if cancelled {
            st.stats.cancelled += 1;
            drop(st);
            if immediate {
                self.shared.with_hook(|h| h.discarded(id));
            }
            self.shared.done_cv.notify_all();
        }
        cancelled
    }

    /// Detach a queued or paused query, removing it from the scheduler
    /// and returning the job — the live checkpoint (shard + RNG). The
    /// caller can resume it later via [`Scheduler::submit_query`] (same
    /// or another scheduler) or downcast with
    /// [`SliceableQuery::into_any`] and continue through
    /// [`crate::parallel::run_parallel_from`]. Running or terminal
    /// queries return `None` (pause first, then detach).
    pub fn detach(&self, id: QueryId) -> Option<Box<dyn SliceableQuery>> {
        let job = {
            let mut st = self.shared.lock();
            let slot = st.jobs.get_mut(&id)?;
            if !matches!(slot.state, SlotState::Ready | SlotState::Paused) {
                return None;
            }
            let job = slot.job.take();
            st.jobs.remove(&id);
            job
        };
        let mut job = job?;
        // The in-flight checkpoint becomes a warm-start candidate for
        // other queries even while the caller holds the job.
        if let Some(store) = self.shared.store() {
            deposit_snapshot(&store, &mut job);
        }
        // The query left the scheduler without finishing: its durable
        // in-flight state (submit record, checkpoints) is now stale.
        self.shared.with_hook(|h| h.discarded(id));
        // Wake any wait()-er blocked on this id: the slot is gone and
        // their next status lookup returns None instead of sleeping on.
        self.shared.done_cv.notify_all();
        Some(job)
    }

    /// Block until the query reaches a terminal state, returning it.
    /// Unknown ids return `None`; a scheduler shutdown unblocks with the
    /// then-current (possibly non-terminal) status.
    pub fn wait(&self, id: QueryId) -> Option<QueryStatus> {
        let mut st = self.shared.lock();
        loop {
            let status = st.jobs.get(&id).map(|s| s.status())?;
            if status.is_terminal() || st.shutdown {
                return Some(status);
            }
            st = self
                .shared
                .done_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Aggregate pool counters.
    pub fn stats(&self) -> SchedulerStats {
        self.shared.lock().stats
    }

    /// Pool counters as a [`Diagnostics`] block for the serving layer.
    pub fn pool_diagnostics(&self) -> Diagnostics {
        let s = self.stats();
        Diagnostics {
            estimator: "scheduler",
            skip_events: 0,
            details: vec![
                ("submitted".to_string(), s.submitted as f64),
                ("completed".to_string(), s.completed as f64),
                ("failed".to_string(), s.failed as f64),
                ("cancelled".to_string(), s.cancelled as f64),
                ("slices".to_string(), s.slices as f64),
                ("panics".to_string(), s.panics as f64),
            ],
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        self.shared.done_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The fair-share comparison key within a priority band. Tenant-charged
/// slots compete on the *tenant's* weighted attained service
/// (`attained/weight`): the pool advances whichever tenant is furthest
/// behind its share, and the per-query `steps` tiebreak below still
/// sprints cheap queries past marathons *within* a tenant. Tenantless
/// slots keep the pre-tenancy per-query key (`steps` as f64), so a
/// scheduler with no tenants registered behaves exactly as before.
fn fair_key(st: &State, s: &Slot) -> f64 {
    match s.tenant.map(|t| &st.tenants[t as usize]) {
        Some(t) => t.attained as f64 / t.weight,
        None => s.steps as f64,
    }
}

/// Pick the ready query the pool should advance next: least attained
/// service within the best (lowest) priority — cheap queries sprint past
/// marathons, which is what wins p50 latency under mixed load. With
/// tenants registered, "attained" is the submitting tenant's weighted
/// total (see [`fair_key`]), which is what makes two tenants with equal
/// weights attain equal service no matter how many queries each floods
/// the pool with.
fn pick_ready(st: &State) -> Option<QueryId> {
    st.jobs
        .iter()
        .filter(|(_, s)| matches!(s.state, SlotState::Ready) && s.job.is_some())
        .min_by(|(id_a, a), (id_b, b)| {
            a.priority
                .cmp(&b.priority)
                .then_with(|| fair_key(st, a).total_cmp(&fair_key(st, b)))
                .then_with(|| a.steps.cmp(&b.steps))
                .then_with(|| id_a.cmp(id_b))
        })
        .map(|(id, _)| *id)
}

fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn worker_loop(shared: &Shared, slice_budget: u64, max_retries: u32) {
    loop {
        // ---- claim the next slice ------------------------------------
        let (id, mut job) = {
            let mut st = shared.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(id) = pick_ready(&st) {
                    let slot = st.jobs.get_mut(&id).expect("picked id exists");
                    slot.state = SlotState::Running;
                    let job = slot.job.take().expect("ready slot has a job");
                    break (id, job);
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };

        // ---- run one slice on scratch state, outside the lock --------
        // Every job call — run_slice, finished, estimate — runs under
        // catch_unwind: a panic anywhere in user code (model step,
        // bootstrap variance, a custom SliceableQuery) must never kill
        // the worker thread, or the pool would silently stop serving.
        let sliced = catch_unwind(AssertUnwindSafe(|| job.run_slice(slice_budget)));
        // `finished`/`estimate` can be expensive (bootstrap); also keep
        // them outside the lock. They only run when the slice succeeded,
        // so the job state is committed and consistent.
        let store = shared.store();
        let outcome = match sliced {
            Ok(_) => {
                let evaluated = catch_unwind(AssertUnwindSafe(|| {
                    if job.finished() {
                        // Deposit the completed shard before the final
                        // estimate consumes the job (and its RNG).
                        if let Some(store) = &store {
                            deposit_snapshot(store, &mut job);
                        }
                        Some(job.estimate())
                    } else {
                        None
                    }
                }));
                match evaluated {
                    Ok(Some(est)) => SliceResult::Finished(est),
                    Ok(None) => SliceResult::Progressed(job),
                    Err(payload) => SliceResult::Panicked(job, panic_message(payload)),
                }
            }
            Err(payload) => SliceResult::Panicked(job, panic_message(payload)),
        };

        // Write-ahead finish: journal the final estimate before the Done
        // status becomes observable below. Deliberately outside the
        // retried closure above — the final estimate has consumed
        // committed RNG draws, so a hook panic here must degrade to "not
        // journaled" (recovery re-runs the query), never to a re-run of
        // `estimate()` on the live job.
        if let SliceResult::Finished(est) = &outcome {
            shared.with_hook(|h| h.finishing(id, est));
        }

        // Pause-park deposit: when a pause is pending, the parked job's
        // checkpoint is a warm-start candidate. Peek the flag without
        // holding the lock across the (possibly expensive) snapshot;
        // the race with a just-arriving pause only skips a best-effort
        // deposit, never loses state.
        let outcome = match outcome {
            SliceResult::Progressed(mut job) => {
                let (pause_pending, slices) = {
                    let st = shared.lock();
                    match st.jobs.get(&id) {
                        Some(s) => (s.pause_requested && !s.cancel_requested, s.slices + 1),
                        None => (false, 0),
                    }
                };
                if pause_pending {
                    if let Some(store) = &store {
                        deposit_snapshot(store, &mut job);
                    }
                }
                // Durability checkpoint opportunity: the job's committed
                // state at this instant is exactly what an uninterrupted
                // run carries into its next slice.
                shared.with_hook(|h| h.slice_committed(id, slices, job.as_mut()));
                SliceResult::Progressed(job)
            }
            other => other,
        };

        // ---- commit the transition -----------------------------------
        let mut st = shared.lock();
        let mut terminal = false;
        let mut discarded = false;
        let mut delta = SchedulerStats::default();
        let Some(slot) = st.jobs.get_mut(&id) else {
            continue; // slot vanished (not expected; drop the job)
        };
        let tenant = slot.tenant;
        let steps_before = slot.steps;
        match outcome {
            SliceResult::Finished(est) => {
                slot.slices += 1;
                if slot.cancel_requested {
                    slot.state = SlotState::Cancelled;
                    discarded = true;
                } else {
                    slot.steps = est.steps;
                    slot.n_roots = est.n_roots;
                    slot.state = SlotState::Done(est);
                    delta.completed += 1;
                }
                delta.slices += 1;
                terminal = true;
            }
            SliceResult::Progressed(job) => {
                slot.slices += 1;
                slot.steps = job.steps();
                slot.n_roots = job.n_roots();
                delta.slices += 1;
                if slot.cancel_requested {
                    slot.state = SlotState::Cancelled;
                    terminal = true;
                    discarded = true;
                } else if slot.pause_requested {
                    slot.pause_requested = false;
                    slot.job = Some(job);
                    slot.state = SlotState::Paused;
                } else {
                    slot.job = Some(job);
                    slot.state = SlotState::Ready;
                }
            }
            SliceResult::Panicked(job, msg) => {
                delta.panics += 1;
                slot.retries += 1;
                if slot.cancel_requested {
                    slot.state = SlotState::Cancelled;
                    terminal = true;
                    discarded = true;
                } else if slot.retries > max_retries {
                    slot.state = SlotState::Failed(format!(
                        "slice panicked {} time(s), giving up: {msg}",
                        slot.retries
                    ));
                    delta.failed += 1;
                    terminal = true;
                    discarded = true;
                } else {
                    // The slice ran on scratch state; the committed shard
                    // and RNG are intact — requeue for another attempt.
                    slot.job = Some(job);
                    slot.state = if slot.pause_requested {
                        slot.pause_requested = false;
                        SlotState::Paused
                    } else {
                        SlotState::Ready
                    };
                }
            }
        }
        if terminal && slot.finished_at.is_none() {
            slot.finished_at = Some(Instant::now());
        }
        // Fair-share accounting: charge this slice's newly committed
        // steps to the submitting tenant (warm-start steps were already
        // in `steps_before` at submission, so only pool work is billed).
        if let Some(t) = tenant {
            let steps_after = st.jobs.get(&id).map_or(steps_before, |s| s.steps);
            let ts = &mut st.tenants[t as usize];
            ts.attained += steps_after.saturating_sub(steps_before);
            ts.completed += delta.completed;
        }
        st.stats.completed += delta.completed;
        st.stats.failed += delta.failed;
        st.stats.slices += delta.slices;
        st.stats.panics += delta.panics;
        drop(st);
        if discarded {
            shared.with_hook(|h| h.discarded(id));
        }
        if terminal {
            shared.done_cv.notify_all();
        } else {
            shared.work_cv.notify_one();
        }
    }
}

enum SliceResult {
    Finished(Estimate),
    Progressed(Box<dyn SliceableQuery>),
    Panicked(Box<dyn SliceableQuery>, String),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::PartitionPlan;
    use crate::model::Time;
    use crate::query::RatioValue;
    use crate::smlss::SMlssConfig;
    use crate::srs::SrsEstimator;
    use rand::RngExt;

    #[derive(Clone)]
    struct Walk {
        up: f64,
    }

    impl SimulationModel for Walk {
        type State = f64;

        fn initial_state(&self) -> f64 {
            0.0
        }

        fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            (s + if rng.random::<f64>() < self.up {
                0.05
            } else {
                -0.05
            })
            .clamp(0.0, 1.0)
        }
    }

    type Vf = RatioValue<fn(&f64) -> f64>;

    fn vf() -> Vf {
        fn score(s: &f64) -> f64 {
            *s
        }
        RatioValue::new(score as fn(&f64) -> f64, 1.0)
    }

    fn small_sched(workers: usize) -> Scheduler {
        Scheduler::new(SchedulerConfig {
            workers,
            slice_budget: 10_000,
            max_retries: 1,
            batch_width: 0,
            tenant_weights: Vec::new(),
        })
    }

    #[test]
    fn single_query_completes_with_budget_semantics() {
        let sched = small_sched(2);
        let id = sched.submit(
            Walk { up: 0.48 },
            vf(),
            100,
            SrsEstimator,
            RunControl::budget(50_000),
            7,
            0,
        );
        let status = sched.wait(id).unwrap();
        let est = status.estimate().expect("query completes");
        assert!(est.steps >= 50_000);
        assert!(est.steps < 50_000 + 100, "one-root overshoot only");
        assert!((0.0..=1.0).contains(&est.tau));
        let progress = sched.progress(id).unwrap();
        assert!(progress.slices >= 5, "50k budget over 10k slices");
        assert_eq!(progress.steps, est.steps);
    }

    #[test]
    fn sliced_run_is_bit_identical_to_sequential() {
        // The scheduler's slicing must be invisible: same stream, same
        // counters, same estimate as one uninterrupted sequential run.
        let model = Walk { up: 0.48 };
        let v = vf();
        let problem = Problem::new(&model, &v, 80);
        let control = RunControl::budget(60_000);
        let seed = 11u64;

        let seq = crate::estimator::run_sequential(
            &SrsEstimator,
            problem,
            control,
            &mut StreamFactory::new(seed).stream(0),
        );

        let sched = small_sched(1);
        let id = sched.submit(model.clone(), v, 80, SrsEstimator, control, seed, 0);
        let est = *sched.wait(id).unwrap().estimate().unwrap();
        assert_eq!(est.steps, seq.estimate.steps);
        assert_eq!(est.n_roots, seq.estimate.n_roots);
        assert_eq!(est.hits, seq.estimate.hits);
        assert_eq!(est.tau.to_bits(), seq.estimate.tau.to_bits());
    }

    #[test]
    fn concurrent_queries_all_complete() {
        let sched = small_sched(3);
        let mut ids = Vec::new();
        for k in 0..8u64 {
            ids.push(sched.submit(
                Walk {
                    up: 0.45 + 0.005 * k as f64,
                },
                vf(),
                60,
                SrsEstimator,
                RunControl::budget(30_000),
                k,
                0,
            ));
        }
        for id in ids {
            let est = *sched.wait(id).unwrap().estimate().unwrap();
            assert!(est.steps >= 30_000);
            assert!((0.0..=1.0).contains(&est.tau));
        }
        let stats = sched.stats();
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn smlss_runs_through_the_scheduler() {
        let sched = small_sched(2);
        let cfg = SMlssConfig::new(
            PartitionPlan::new(vec![0.4, 0.7]).unwrap(),
            RunControl::budget(1),
        );
        let id = sched.submit(
            Walk { up: 0.48 },
            vf(),
            80,
            cfg,
            RunControl::budget(100_000),
            3,
            0,
        );
        let est = *sched.wait(id).unwrap().estimate().unwrap();
        assert!(est.steps >= 100_000);
        assert!(est.variance.is_finite());
    }

    #[test]
    fn pause_checkpoint_resume_preserves_work() {
        let sched = small_sched(1);
        // A long query we pause mid-flight.
        let id = sched.submit(
            Walk { up: 0.48 },
            vf(),
            100,
            SrsEstimator,
            RunControl::budget(2_000_000),
            5,
            0,
        );
        // Wait until some progress exists, then pause.
        loop {
            let p = sched.progress(id).unwrap();
            if p.steps > 0 {
                break;
            }
            std::thread::yield_now();
        }
        assert!(sched.pause(id));
        // Drain to the paused state (the running slice must retire).
        let paused_steps = loop {
            let p = sched.progress(id).unwrap();
            if matches!(p.status, QueryStatus::Paused) {
                break p.steps;
            }
            std::thread::yield_now();
        };
        assert!(paused_steps > 0);
        // While paused, no progress accrues.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(sched.progress(id).unwrap().steps, paused_steps);

        // Checkpoint: detach the job, inspect it, and resubmit.
        let job = sched.detach(id).expect("paused job detaches");
        assert_eq!(job.steps(), paused_steps);
        let id2 = sched.submit_query(job, 0);
        let est = *sched.wait(id2).unwrap().estimate().unwrap();
        assert!(est.steps >= 2_000_000, "resumed run finishes the budget");
    }

    #[test]
    fn detached_checkpoint_resumes_on_the_parallel_driver() {
        // A checkpoint taken from the scheduler continues seamlessly on
        // run_parallel_from: the combined run spends exactly the
        // remaining budget.
        let sched = small_sched(1);
        let id = sched.submit(
            Walk { up: 0.48 },
            vf(),
            100,
            SrsEstimator,
            RunControl::budget(1_000_000),
            9,
            0,
        );
        loop {
            let p = sched.progress(id).unwrap();
            if p.steps > 0 {
                break;
            }
            std::thread::yield_now();
        }
        sched.pause(id);
        loop {
            if matches!(sched.progress(id).unwrap().status, QueryStatus::Paused) {
                break;
            }
            std::thread::yield_now();
        }
        let job = sched.detach(id).unwrap();
        let query = job
            .into_any()
            .downcast::<EstimatorQuery<Walk, Vf, SrsEstimator>>()
            .expect("known concrete type");
        let (shard, _rng) = query.into_parts();
        let checkpointed = shard.steps();
        assert!(checkpointed > 0);

        let model = Walk { up: 0.48 };
        let v = vf();
        let problem = Problem::new(&model, &v, 100);
        let run = crate::parallel::run_parallel_from(
            problem,
            &SrsEstimator,
            RunControl::budget(1_000_000),
            &crate::parallel::ParallelConfig {
                threads: 2,
                sync_every: 50_000,
                seed: 31,
                bootstrap_resamples: 20,
                batch_width: 0,
            },
            shard,
        );
        assert!(run.estimate.steps >= 1_000_000);
        assert!(
            run.estimate.steps < 1_000_000 + 2 * 50_000 + 400,
            "resume must not restart from zero or overshoot wildly: {}",
            run.estimate.steps
        );
    }

    #[test]
    fn cancel_stops_a_query() {
        let sched = small_sched(1);
        // Saturate the single worker with a long query…
        let long = sched.submit(
            Walk { up: 0.48 },
            vf(),
            100,
            SrsEstimator,
            RunControl::budget(100_000_000),
            1,
            0,
        );
        // …and cancel a queued one plus the running one.
        let queued = sched.submit(
            Walk { up: 0.48 },
            vf(),
            100,
            SrsEstimator,
            RunControl::budget(100_000_000),
            2,
            1,
        );
        assert!(sched.cancel(queued));
        assert!(matches!(
            sched.poll(queued).unwrap(),
            QueryStatus::Cancelled
        ));
        assert!(sched.cancel(long));
        let status = sched.wait(long).unwrap();
        assert!(matches!(status, QueryStatus::Cancelled));
        // Terminal: cancelling again reports false.
        assert!(!sched.cancel(long));
    }

    #[test]
    fn least_attained_scheduling_lets_cheap_queries_finish_first() {
        // One worker, an expensive query submitted *before* a cheap one:
        // FIFO would finish the expensive query first; least-attained
        // slicing must complete the cheap one long before.
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            slice_budget: 5_000,
            max_retries: 0,
            batch_width: 0,
            tenant_weights: Vec::new(),
        });
        let expensive = sched.submit(
            Walk { up: 0.48 },
            vf(),
            100,
            SrsEstimator,
            RunControl::budget(3_000_000),
            1,
            0,
        );
        let cheap = sched.submit(
            Walk { up: 0.48 },
            vf(),
            100,
            SrsEstimator,
            RunControl::budget(20_000),
            2,
            0,
        );
        let cheap_est = *sched.wait(cheap).unwrap().estimate().unwrap();
        // The expensive query must still be in flight when the cheap one
        // finishes (it needs 150 slices; the cheap one 4).
        let p = sched.progress(expensive).unwrap();
        assert!(
            !p.status.is_terminal(),
            "expensive query should still be running"
        );
        assert!(cheap_est.steps >= 20_000);
        let exp_est = *sched.wait(expensive).unwrap().estimate().unwrap();
        assert!(exp_est.steps >= 3_000_000);
    }

    /// A custom job whose `finished` hook panics — user code outside
    /// `run_slice` must be contained just the same.
    struct FinishedPanics {
        steps: u64,
    }

    impl SliceableQuery for FinishedPanics {
        fn name(&self) -> &'static str {
            "finished-panics"
        }

        fn run_slice(&mut self, budget: u64) -> ChunkOutcome {
            self.steps += budget;
            ChunkOutcome {
                steps: budget,
                roots: 1,
            }
        }

        fn finished(&mut self) -> bool {
            panic!("injected finished panic");
        }

        fn estimate(&mut self) -> Estimate {
            unreachable!("finished always panics first")
        }

        fn steps(&self) -> u64 {
            self.steps
        }

        fn n_roots(&self) -> u64 {
            1
        }

        fn diagnostics(&self) -> Diagnostics {
            Diagnostics::none(self.name())
        }

        fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
            self
        }
    }

    fn quiet_injected_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if !format!("{info}").contains("injected") {
                    default(info);
                }
            }));
        });
    }

    #[test]
    fn panic_in_finished_fails_the_query_not_the_pool() {
        quiet_injected_panics();
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            slice_budget: 1_000,
            max_retries: 0,
            batch_width: 0,
            tenant_weights: Vec::new(),
        });
        let doomed = sched.submit_query(Box::new(FinishedPanics { steps: 0 }), 0);
        let status = sched.wait(doomed).unwrap();
        match status {
            QueryStatus::Failed(msg) => assert!(msg.contains("injected finished panic"), "{msg}"),
            other => panic!("expected Failed, got {other:?}"),
        }
        // The single worker survived: a healthy query still completes.
        let ok = sched.submit(
            Walk { up: 0.48 },
            vf(),
            50,
            SrsEstimator,
            RunControl::budget(10_000),
            1,
            0,
        );
        assert!(sched.wait(ok).unwrap().estimate().is_some());
        assert_eq!(sched.stats().failed, 1);
        assert_eq!(sched.stats().completed, 1);
    }

    #[test]
    fn evict_terminal_frees_slots_and_reports_latency() {
        let sched = small_sched(2);
        let mut ids = Vec::new();
        for k in 0..3u64 {
            ids.push(sched.submit(
                Walk { up: 0.48 },
                vf(),
                50,
                SrsEstimator,
                RunControl::budget(15_000),
                k,
                0,
            ));
        }
        for &id in &ids {
            sched.wait(id).unwrap();
            // Completed queries report a frozen serving latency.
            let p = sched.progress(id).unwrap();
            assert!(p.status.is_terminal());
            let first = p.elapsed;
            std::thread::sleep(std::time::Duration::from_millis(5));
            assert_eq!(
                sched.progress(id).unwrap().elapsed,
                first,
                "terminal elapsed must not keep growing"
            );
        }
        assert_eq!(sched.evict_terminal(), 3);
        for id in ids {
            assert!(sched.poll(id).is_none(), "evicted ids become unknown");
        }
        assert_eq!(sched.evict_terminal(), 0);
    }

    /// Submit a long walk query charged to `tenant` and return its id.
    fn submit_for(sched: &Scheduler, tenant: TenantId, budget: u64) -> QueryId {
        let job = EstimatorQuery::from_seed(
            Walk { up: 0.48 },
            vf(),
            100,
            SrsEstimator,
            RunControl::budget(budget),
            tenant as u64 + 1,
        );
        sched.submit_query_as(Box::new(job), 0, Some(tenant))
    }

    #[test]
    fn equal_weight_tenants_attain_balanced_service_despite_query_flood() {
        // Tenant A floods four queries, tenant B submits one. Per-query
        // least-attained would give A ~4x the service; per-tenant
        // fair-share must keep the split near 1:1 while both are active.
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            slice_budget: 5_000,
            max_retries: 0,
            batch_width: 0,
            tenant_weights: vec![("alpha".into(), 1.0), ("beta".into(), 1.0)],
        });
        let a = sched.ensure_tenant("alpha");
        let b = sched.ensure_tenant("beta");
        let b_id = submit_for(&sched, b, 300_000);
        for _ in 0..4 {
            submit_for(&sched, a, 5_000_000);
        }
        sched.wait(b_id).unwrap();
        let stats = sched.tenant_stats();
        let att_a = stats[a as usize].attained_steps as f64;
        let att_b = stats[b as usize].attained_steps as f64;
        assert!(att_b >= 300_000.0);
        let ratio = att_a.max(att_b) / att_a.min(att_b).max(1.0);
        assert!(
            ratio <= 1.5,
            "equal weights must attain service within 1.5x: A={att_a} B={att_b}"
        );
    }

    #[test]
    fn weighted_tenant_attains_proportionally_more_service() {
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            slice_budget: 5_000,
            max_retries: 0,
            batch_width: 0,
            tenant_weights: vec![("gold".into(), 4.0), ("basic".into(), 1.0)],
        });
        let gold = sched.ensure_tenant("gold");
        let basic = sched.ensure_tenant("basic");
        let basic_id = submit_for(&sched, basic, 200_000);
        let gold_id = submit_for(&sched, gold, 5_000_000);
        sched.wait(basic_id).unwrap();
        let stats = sched.tenant_stats();
        let att_gold = stats[gold as usize].attained_steps as f64;
        let att_basic = stats[basic as usize].attained_steps as f64;
        assert!(
            att_gold >= 2.0 * att_basic,
            "4:1 weights must show a clearly weighted split: gold={att_gold} basic={att_basic}"
        );
        sched.cancel(gold_id);
        let diag = sched.tenant_diagnostics().expect("tenants registered");
        assert_eq!(diag.estimator, "tenants");
        assert!(diag
            .details
            .iter()
            .any(|(k, v)| k == "gold.weight" && *v == 4.0));
    }

    #[test]
    fn tenantless_submissions_keep_legacy_ordering_and_charge_nobody() {
        let sched = small_sched(1);
        let id = sched.submit(
            Walk { up: 0.48 },
            vf(),
            100,
            SrsEstimator,
            RunControl::budget(20_000),
            1,
            0,
        );
        sched.wait(id).unwrap();
        assert!(sched.tenant_stats().is_empty());
        assert!(sched.tenant_diagnostics().is_none());
    }

    #[test]
    fn unknown_ids_are_handled() {
        let sched = small_sched(1);
        assert!(sched.poll(999).is_none());
        assert!(sched.progress(999).is_none());
        assert!(sched.wait(999).is_none());
        assert!(!sched.cancel(999));
        assert!(!sched.pause(999));
        assert!(!sched.resume(999));
        assert!(sched.detach(999).is_none());
    }
}
