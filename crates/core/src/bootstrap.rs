//! Bootstrap variance estimation for g-MLSS (§4.2).
//!
//! The g-MLSS estimator has no closed-form variance in general. Following
//! the paper, we resample root paths with replacement, recompute the
//! estimator (Eq. 9-10) on each bootstrap sample, and take the empirical
//! variance of the bootstrap estimates. The [`RootLedger`] stores the
//! per-root counters that make each replay a pure fold — no re-simulation.

use crate::gmlss::estimator;
use crate::rng::SimRng;
use rand::RngExt;

/// Per-root counter storage: a flat arena with one fixed-size record per
/// root path, holding level landings, offspring crossings, skip counts,
/// and target hits.
#[derive(Debug, Clone)]
pub struct RootLedger {
    m: usize,
    stride: usize,
    data: Vec<u32>,
    /// Scratch record for the root currently being simulated.
    cur: Vec<u32>,
    n_roots: usize,
}

/// Aggregate counters over a set of roots.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregates {
    /// `|H_i|` per level (index = level).
    pub landings: Vec<u64>,
    /// Offspring boundary crossings per level.
    pub crossings: Vec<u64>,
    /// `n_skip_i` per level.
    pub skips: Vec<u64>,
    /// Target hits.
    pub hits: u64,
}

impl RootLedger {
    /// New ledger for plans with `m` levels.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1);
        let stride = 3 * m + 1;
        Self {
            m,
            stride,
            data: Vec::new(),
            cur: vec![0; stride],
            n_roots: 0,
        }
    }

    /// Number of levels `m` this ledger was built for.
    pub fn num_levels(&self) -> usize {
        self.m
    }

    /// Number of committed roots.
    pub fn n_roots(&self) -> usize {
        self.n_roots
    }

    /// Record a landing in level `lvl` for the in-flight root.
    pub fn bump_landing(&mut self, lvl: usize) {
        debug_assert!(lvl < self.m);
        self.cur[lvl] += 1;
    }

    /// Record offspring crossings for a split at level `lvl`.
    pub fn add_crossings(&mut self, lvl: usize, n: u32) {
        debug_assert!(lvl < self.m);
        self.cur[self.m + lvl] += n;
    }

    /// Record a level skip over level `lvl`.
    pub fn bump_skip(&mut self, lvl: usize) {
        debug_assert!(lvl < self.m);
        self.cur[2 * self.m + lvl] += 1;
    }

    /// Finalize the in-flight root with its target-hit count.
    pub fn commit_root(&mut self, hits: u32) {
        self.cur[3 * self.m] = hits;
        self.data.extend_from_slice(&self.cur);
        self.cur.fill(0);
        self.n_roots += 1;
    }

    /// Append a complete pre-built root record (the layout of this
    /// ledger: landings `0..m`, crossings `m..2m`, skips `2m..3m`, hits
    /// at `3m`). Used by the batched frontier, which buffers each root's
    /// counters externally and commits finished roots in order.
    pub fn push_record(&mut self, rec: &[u32]) {
        assert_eq!(rec.len(), self.stride, "record length must be 3m + 1");
        self.data.extend_from_slice(rec);
        self.n_roots += 1;
    }

    /// Raw record of root `i`.
    fn record(&self, i: usize) -> &[u32] {
        &self.data[i * self.stride..(i + 1) * self.stride]
    }

    /// Fold root `i` into running aggregate arrays.
    fn fold_into(
        &self,
        i: usize,
        landings: &mut [u64],
        crossings: &mut [u64],
        skips: &mut [u64],
        hits: &mut u64,
    ) {
        let rec = self.record(i);
        for l in 0..self.m {
            landings[l] += rec[l] as u64;
            crossings[l] += rec[self.m + l] as u64;
            skips[l] += rec[2 * self.m + l] as u64;
        }
        *hits += rec[3 * self.m] as u64;
    }

    /// Aggregate over all committed roots.
    pub fn aggregate(&self) -> Aggregates {
        let mut landings = vec![0u64; self.m];
        let mut crossings = vec![0u64; self.m];
        let mut skips = vec![0u64; self.m];
        let mut hits = 0u64;
        for i in 0..self.n_roots {
            self.fold_into(i, &mut landings, &mut crossings, &mut skips, &mut hits);
        }
        Aggregates {
            landings,
            crossings,
            skips,
            hits,
        }
    }

    /// Target hits recorded for root `i`.
    pub fn root_hits(&self, i: usize) -> u32 {
        self.record(i)[3 * self.m]
    }

    /// Absorb another ledger's committed roots (parallel reduction).
    pub fn merge(&mut self, other: &RootLedger) {
        assert_eq!(self.m, other.m, "ledger level counts must match");
        self.data.extend_from_slice(&other.data);
        self.n_roots += other.n_roots;
    }

    /// The g-MLSS estimate computed over an arbitrary multiset of roots
    /// (given by index). Used by the bootstrap and by partial-sample
    /// analyses.
    pub fn estimate_over(&self, roots: &[usize], ratio: u32) -> f64 {
        let n = roots.len() as u64;
        if n == 0 {
            return 0.0;
        }
        let mut landings = vec![0u64; self.m];
        let mut crossings = vec![0u64; self.m];
        let mut skips = vec![0u64; self.m];
        let mut hits = 0u64;
        for &i in roots {
            self.fold_into(i, &mut landings, &mut crossings, &mut skips, &mut hits);
        }
        if self.m == 1 {
            return hits as f64 / n as f64;
        }
        estimator(self.m, ratio, n, &landings, &crossings, &skips).0
    }
}

/// One bootstrap evaluation: `resamples` independent with-replacement
/// redraws of the root pool, returning the empirical variance of the
/// bootstrap estimates `Σ (τ̂_b − τ̄)² / N` (§4.2).
pub fn bootstrap_variance(
    ledger: &RootLedger,
    resamples: usize,
    ratio: u32,
    rng: &mut SimRng,
) -> f64 {
    let n = ledger.n_roots();
    if n < 2 {
        return f64::INFINITY;
    }
    let mut estimates = Vec::with_capacity(resamples);
    let mut idx = vec![0usize; n];
    for _ in 0..resamples {
        for slot in idx.iter_mut() {
            *slot = rng.random_range(0..n);
        }
        estimates.push(ledger.estimate_over(&idx, ratio));
    }
    let mean = estimates.iter().sum::<f64>() / resamples as f64;
    estimates
        .iter()
        .map(|e| (e - mean) * (e - mean))
        .sum::<f64>()
        / resamples as f64
}

/// Bootstrap percentile confidence interval (an extra the paper's users
/// would want alongside the variance).
pub fn bootstrap_percentile_ci(
    ledger: &RootLedger,
    resamples: usize,
    ratio: u32,
    confidence: f64,
    rng: &mut SimRng,
) -> (f64, f64) {
    assert!(confidence > 0.0 && confidence < 1.0);
    let n = ledger.n_roots();
    if n < 2 {
        return (0.0, 1.0);
    }
    let mut estimates = Vec::with_capacity(resamples);
    let mut idx = vec![0usize; n];
    for _ in 0..resamples {
        for slot in idx.iter_mut() {
            *slot = rng.random_range(0..n);
        }
        estimates.push(ledger.estimate_over(&idx, ratio));
    }
    estimates.sort_by(|a, b| a.partial_cmp(b).expect("finite estimates"));
    let alpha = 1.0 - confidence;
    let lo_idx = ((alpha / 2.0) * resamples as f64).floor() as usize;
    let hi_idx = (((1.0 - alpha / 2.0) * resamples as f64).ceil() as usize)
        .min(resamples)
        .saturating_sub(1);
    (estimates[lo_idx], estimates[hi_idx])
}

// Durability codec. Checkpoints are taken at slice boundaries, where
// every simulated root has been committed and `cur` is all zeros, but the
// scratch record is serialized anyway so a restored ledger is
// field-for-field identical to the original in all cases.
impl crate::persist::Persist for RootLedger {
    fn persist(&self, out: &mut Vec<u8>) {
        crate::persist::put_u64(out, self.m as u64);
        crate::persist::put_u64(out, self.n_roots as u64);
        crate::persist::put_u32s(out, &self.data);
        crate::persist::put_u32s(out, &self.cur);
    }

    fn restore(r: &mut crate::persist::Reader<'_>) -> Result<Self, crate::persist::PersistError> {
        use crate::persist::PersistError;
        let m = r.u64()? as usize;
        let n_roots = r.u64()? as usize;
        let data = r.u32s()?;
        let cur = r.u32s()?;
        if m < 1 {
            return Err(PersistError::Malformed("root ledger levels"));
        }
        let stride = 3 * m + 1;
        if cur.len() != stride || data.len() != n_roots * stride {
            return Err(PersistError::Malformed("root ledger geometry"));
        }
        Ok(Self {
            m,
            stride,
            data,
            cur,
            n_roots,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    /// Ledger where each root either hits (all counters on a straight-line
    /// two-level pass) or misses entirely.
    fn two_level_ledger(hits: usize, misses: usize) -> RootLedger {
        let mut ledger = RootLedger::new(2);
        for _ in 0..hits {
            ledger.bump_landing(1);
            // All 3 offsprings cross the target boundary.
            ledger.add_crossings(1, 3);
            ledger.commit_root(3);
        }
        for _ in 0..misses {
            ledger.commit_root(0);
        }
        ledger
    }

    #[test]
    fn aggregate_sums_roots() {
        let ledger = two_level_ledger(4, 6);
        let agg = ledger.aggregate();
        assert_eq!(agg.landings, vec![0, 4]);
        assert_eq!(agg.crossings, vec![0, 12]);
        assert_eq!(agg.skips, vec![0, 0]);
        assert_eq!(agg.hits, 12);
        assert_eq!(ledger.n_roots(), 10);
    }

    #[test]
    fn estimate_over_full_pool_matches_closed_form() {
        let ledger = two_level_ledger(4, 6);
        let idx: Vec<usize> = (0..10).collect();
        let tau = ledger.estimate_over(&idx, 3);
        // π̂_1 = 4/10, π̂_2 = (12/3)/4 = 1 → τ̂ = 0.4.
        assert!((tau - 0.4).abs() < 1e-12);
    }

    #[test]
    fn estimate_over_empty_is_zero() {
        let ledger = two_level_ledger(1, 1);
        assert_eq!(ledger.estimate_over(&[], 3), 0.0);
    }

    #[test]
    fn bootstrap_variance_close_to_binomial() {
        // With deterministic per-root outcomes (hit ⇔ landed, all
        // offsprings cross), the estimator over a resample is the sample
        // fraction of hit-roots — variance should be ≈ p(1-p)/n.
        let ledger = two_level_ledger(30, 70);
        let mut rng = rng_from_seed(3);
        let v = bootstrap_variance(&ledger, 4000, 3, &mut rng);
        let expect = 0.3 * 0.7 / 100.0;
        assert!(
            (v - expect).abs() / expect < 0.15,
            "bootstrap var {v} vs binomial {expect}"
        );
    }

    #[test]
    fn bootstrap_variance_degenerate_pool() {
        let ledger = two_level_ledger(1, 0);
        let mut rng = rng_from_seed(1);
        assert!(bootstrap_variance(&ledger, 10, 3, &mut rng).is_infinite());
    }

    #[test]
    fn percentile_ci_brackets_point_estimate() {
        let ledger = two_level_ledger(30, 70);
        let mut rng = rng_from_seed(9);
        let (lo, hi) = bootstrap_percentile_ci(&ledger, 1000, 3, 0.95, &mut rng);
        assert!(lo <= 0.4 && hi >= 0.3 - 0.1, "({lo}, {hi})");
        assert!(lo < hi);
        assert!(lo >= 0.0 && hi <= 1.0);
    }

    #[test]
    fn ledger_skip_accounting() {
        let mut ledger = RootLedger::new(3);
        ledger.bump_skip(1);
        ledger.bump_skip(2);
        ledger.commit_root(1);
        let agg = ledger.aggregate();
        assert_eq!(agg.skips, vec![0, 1, 1]);
        assert_eq!(agg.hits, 1);
        // τ̂ over the single skipping root: π̂_1 = (0+1)/1 = 1,
        // π̂_2 = (0/3 + 1)/(0+1) = 1, π̂_3 = (0/3 + 1)/(0+1) = 1 → τ̂ = 1.
        assert!((ledger.estimate_over(&[0], 3) - 1.0).abs() < 1e-12);
    }
}
