//! # mlss-core
//!
//! Multi-Level Splitting Sampling (MLSS) for **durability prediction
//! queries**, reproducing *"Efficiently Answering Durability Prediction
//! Queries"* (Gao, Xu, Agarwal, Yang — SIGMOD 2021).
//!
//! A durability prediction query `Q(q, s)` asks: given a stochastic
//! process simulated step-by-step by a (possibly black-box) procedure `g`,
//! what is the probability that the process reaches a state satisfying
//! `q` within the time horizon `s`? The answers are typically small, which
//! makes plain Monte Carlo (SRS) prohibitively expensive. MLSS splits
//! "promising" sample paths into multiple offsprings at value-function
//! milestones, concentrating simulation effort near the target while
//! remaining provably unbiased.
//!
//! ## Quick example
//!
//! ```
//! use mlss_core::prelude::*;
//! use rand::RngExt;
//!
//! // A toy mean-reverting walk on [0, 1].
//! struct Walk;
//! impl SimulationModel for Walk {
//!     type State = f64;
//!     fn initial_state(&self) -> f64 { 0.0 }
//!     fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
//!         (s + if rng.random::<f64>() < 0.48 { 0.05 } else { -0.05 }).clamp(0.0, 1.0)
//!     }
//! }
//!
//! let model = Walk;
//! let value = RatioValue::new(|s: &f64| *s, 1.0); // query: state ≥ 1.0
//! let problem = Problem::new(&model, &value, 200);
//!
//! let cfg = GMlssConfig::new(
//!     PartitionPlan::new(vec![0.4, 0.7]).unwrap(),
//!     RunControl::budget(100_000),
//! );
//! let result = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(1));
//! assert!(result.estimate.tau >= 0.0 && result.estimate.tau <= 1.0);
//! ```
//!
//! ## Module map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`model`] | §2.1 | the simulation procedure `g`, batched stepping (`step_batch`), step metering |
//! | [`query`] | §2.1, §3 | queries `Q(q,s)`, value functions `f` |
//! | [`levels`] | §3 | level partition plans |
//! | [`estimator`] | §2–§4 | the unified [`estimator::Estimator`] trait: chunked execution, mergeable [`estimator::Ledger`] shards, the shared sequential driver |
//! | [`srs`] | §2.2 | the Simple Random Sampling baseline |
//! | [`smlss`] | §3 | s-MLSS sampler and estimator (Eq. 3-6) |
//! | [`gmlss`] | §4 | g-MLSS sampler and estimator (Eq. 9-10) |
//! | [`bootstrap`] | §4.2 | bootstrap variance over root ledgers |
//! | [`is`] | §2.2 | importance-sampling baseline for tiltable models |
//! | [`variance`] | §3.1, §4.2, §5.1 | closed-form variance results |
//! | [`partition`] | §5 | `eval(B)`, greedy search, balanced plans |
//! | [`parallel`] | §3.1 | multi-threaded driver over any `Estimator`, sharded merge |
//! | [`scheduler`] | §6.4 serving | concurrent query scheduler: slicing, pause/checkpoint/resume, panic isolation |
//! | [`plan_cache`] | §5, §6.4 | memoized partition plans keyed by model fingerprint (single-flight builds) |
//! | [`shard_store`] | §6.4 serving | cross-query shard store: LRU-capped reusable checkpoints (shard + RNG provenance + achieved RE) |
//! | [`planner`] | §6.4 serving | cost-based reuse planner: cold vs warm-start vs serve-from-store |
//! | [`spec`] | §6.4 | the typed [`spec::QuerySpec`] IR every estimation entry point compiles to, the [`spec::SpecError`] taxonomy, model parameter schemas, and deferred plan-derivation scheduler jobs |
//! | [`quality`] | §6 | CI/RE quality targets and budgets |
//! | [`ranking`] | §7 related work | durability ranking via racing |
//! | [`diagnostics`] | Fig. 1 | split-tree tracing |
//!
//! ## One execution spine
//!
//! All four samplers (SRS, s-MLSS, g-MLSS, IS) implement
//! [`estimator::Estimator`]: they advance a mergeable shard in budgeted
//! chunks and can report an [`estimate::Estimate`] at any time. The
//! sequential driver [`estimator::run_sequential`], the parallel driver
//! [`parallel::run_parallel`], the `mlss-bench` experiment runners, and
//! `mlss-db`'s `mlss_estimate` stored procedure are all generic over the
//! trait, so a new sampling strategy written against it plugs into every
//! layer — SQL query → planner → parallel driver → sampler — unchanged.
//!
//! Underneath the trait, all four built-in estimators execute on one
//! batched *frontier* engine: chunks advance a cohort of root paths per
//! [`model::SimulationModel::step_batch`] call, with one RNG stream per
//! root so results are bit-identical at every frontier width (see
//! `docs/kernel.md`). [`estimator::run_sequential_batched`],
//! `ParallelConfig::batch_width`, and `SchedulerConfig::batch_width`
//! expose the width at each layer.

#![warn(missing_docs)]

pub mod bootstrap;
pub mod diagnostics;
pub mod estimate;
pub mod estimator;
pub(crate) mod frontier;
pub mod gmlss;
pub mod is;
pub mod levels;
pub mod model;
pub mod parallel;
pub mod partition;
pub mod persist;
pub mod plan_cache;
pub mod planner;
pub mod quality;
pub mod query;
pub mod ranking;
pub mod rng;
pub mod scheduler;
pub mod shard_store;
pub mod simd;
pub mod smlss;
pub mod spec;
pub mod srs;
pub mod stats;
pub mod variance;
pub mod width;

/// One-stop imports for library users.
pub mod prelude {
    pub use crate::bootstrap::{bootstrap_percentile_ci, bootstrap_variance, RootLedger};
    pub use crate::diagnostics::{trace_root_tree, SplitTree};
    pub use crate::estimate::Estimate;
    pub use crate::estimator::{
        run_sequential, run_sequential_batched, run_sequential_batched_from, run_sequential_from,
        ChunkOutcome, Diagnostics, Estimator, EstimatorRun, Ledger,
    };
    pub use crate::gmlss::{GMlssConfig, GMlssResult, GMlssSampler, GmlssShard, VarianceMode};
    pub use crate::is::{
        importance_sample, select_tilt, IsEstimator, IsResult, IsShard, TiltableModel,
    };
    pub use crate::levels::PartitionPlan;
    pub use crate::model::{
        simulate_path, SamplePath, ScalarAdapter, SimulationModel, StepCounter, Time,
    };
    pub use crate::parallel::{
        run_parallel, run_parallel_from, run_parallel_gmlss, run_parallel_to_target,
        ParallelConfig, ParallelResult, ParallelRun,
    };
    pub use crate::partition::{balanced_plan, evaluate_plan, GreedyConfig, GreedyPartition};
    pub use crate::plan_cache::{fingerprint, CacheCounters, CachedPlan, Fingerprint, PlanCache};
    pub use crate::planner::{
        peek_reuse, plan_reuse, required_roots, ReuseDecision, ReusePlan, MIN_REUSE_ROOTS,
    };
    pub use crate::quality::{QualityTarget, RunControl};
    pub use crate::query::{Problem, RatioValue, StateScore, ValueFunction};
    pub use crate::ranking::{
        rank_by_durability, Candidate, FreezeReason, RaceArm, RaceConfig, RaceOutcome, RaceQuery,
        Standing,
    };
    pub use crate::rng::{rng_from_seed, split_rng, SimRng, StreamFactory};
    pub use crate::scheduler::{
        CompletedQuery, EstimatorQuery, QueryId, QueryProgress, QueryStatus, Scheduler,
        SchedulerConfig, SchedulerStats, SliceableQuery,
    };
    pub use crate::shard_store::{
        shard_key, ShardKey, ShardSnapshot, ShardStore, StoredMeta, StoredShard,
    };
    pub use crate::smlss::{SMlssConfig, SMlssResult, SMlssSampler, SMlssShard};
    pub use crate::spec::{
        ExecMode, ExecOptions, Method, ModelSchema, ParamSpec, ParamType, QuerySpec, RankSpec,
        ResolvedMethod, Span, SpecError, SpecErrorKind,
    };
    pub use crate::srs::{SrsEstimator, SrsResult, SrsSampler, SrsShard};
    pub use crate::width::{static_width, KernelClass, AUTO_WIDTH};
}
