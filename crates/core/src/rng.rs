//! Randomness plumbing.
//!
//! Every stochastic component in this workspace draws from a [`SimRng`],
//! a counter-based ChaCha12 generator. Using one concrete, seedable RNG
//! everywhere gives us bit-for-bit reproducible experiments (every number
//! in `EXPERIMENTS.md` can be regenerated from the recorded seeds) while
//! remaining statistically strong enough for rare-event estimation, where
//! a weak generator could visibly bias tail probabilities.
//!
//! Being counter-based is also what makes the vectorized draw pipeline
//! possible: a stream's next keystream block is a pure function of
//! `(key, counter)`, so [`crate::simd::chacha`] can compute many lanes'
//! next blocks in one SIMD pass — ahead of need, in any grouping —
//! and hand each lane *exactly* the words its scalar `next_u32`/`next_u64`
//! sequence would have produced. The generator's block-level accessors
//! (`block_key`, `block_counter`, `words_remaining`, `install_block`)
//! are the seam; per-stream word order never changes.

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// The workspace-wide simulation RNG.
pub type SimRng = ChaCha12Rng;

/// Create a [`SimRng`] from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> SimRng {
    SimRng::seed_from_u64(seed)
}

/// Derive a child RNG from a parent.
///
/// Used to hand independent streams to worker threads and to root paths:
/// the parent draws a fresh 64-bit seed for each child, so child streams
/// are independent of each other and of the parent's subsequent output.
pub fn split_rng(parent: &mut SimRng) -> SimRng {
    SimRng::seed_from_u64(parent.random::<u64>())
}

/// A small factory for numbered, independent RNG streams.
///
/// `StreamFactory::new(seed).stream(k)` is a pure function of `(seed, k)`,
/// which lets parallel drivers assign stream `k` to root path `k`
/// regardless of which thread executes it — results are then identical
/// across thread counts.
#[derive(Debug, Clone, Copy)]
pub struct StreamFactory {
    seed: u64,
}

impl StreamFactory {
    /// Create a factory rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The `k`-th independent stream.
    pub fn stream(&self, k: u64) -> SimRng {
        // SplitMix64-style mix so that consecutive k map to well-separated
        // ChaCha seeds.
        let mut z = self.seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::seed_from_u64(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_reproducible() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn split_rng_departs_from_parent() {
        let mut parent = rng_from_seed(7);
        let mut child = split_rng(&mut parent);
        let xs: Vec<u64> = (0..8).map(|_| parent.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| child.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn stream_factory_is_pure() {
        let f = StreamFactory::new(99);
        let mut a = f.stream(5);
        let mut b = f.stream(5);
        assert_eq!(a.random::<u64>(), b.random::<u64>());
        let mut c = f.stream(6);
        assert_ne!(f.stream(5).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn stream_factory_streams_are_distinct_across_seeds() {
        let f1 = StreamFactory::new(1);
        let f2 = StreamFactory::new(2);
        assert_ne!(f1.stream(0).random::<u64>(), f2.stream(0).random::<u64>());
    }
}
