//! Level partitions of the value-function range (§3, Table 1).
//!
//! A partition plan is the boundary sequence `0 = β_0 < β_1 < … < β_m = 1`.
//! Levels are `L_i = [β_i, β_{i+1})` for `i < m` plus the degenerate target
//! level `L_m = [1, 1]`. Only the interior boundaries `β_1..β_{m-1}` are
//! stored; `β_0 = 0` and `β_m = 1` are implicit.

use serde::{Deserialize, Serialize};

/// Error building a [`PartitionPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A boundary fell outside the open interval (0, 1).
    OutOfRange(f64),
    /// Boundaries were not strictly increasing after sorting (duplicates).
    NotStrictlyIncreasing,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::OutOfRange(v) => {
                write!(f, "partition boundary {v} outside the open interval (0,1)")
            }
            PlanError::NotStrictlyIncreasing => {
                write!(f, "partition boundaries must be strictly increasing")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A level partition plan `B = {β_1, …, β_{m-1}}` (interior boundaries).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionPlan {
    /// Strictly increasing interior boundaries, each in (0, 1).
    boundaries: Vec<f64>,
}

impl PartitionPlan {
    /// The trivial plan with no interior boundary: a single level `[0,1)`
    /// plus the target. MLSS under this plan is plain SRS regardless of
    /// splitting ratio.
    pub fn trivial() -> Self {
        Self { boundaries: vec![] }
    }

    /// Build a plan from interior boundaries. They are sorted; duplicates
    /// or out-of-range values are rejected.
    pub fn new(mut boundaries: Vec<f64>) -> Result<Self, PlanError> {
        for &b in &boundaries {
            if !(b.is_finite() && b > 0.0 && b < 1.0) {
                return Err(PlanError::OutOfRange(b));
            }
        }
        boundaries.sort_by(|a, b| a.partial_cmp(b).expect("finite boundaries"));
        if boundaries.windows(2).any(|w| w[0] >= w[1]) {
            return Err(PlanError::NotStrictlyIncreasing);
        }
        Ok(Self { boundaries })
    }

    /// Evenly spaced plan with `m` levels below the target, i.e. interior
    /// boundaries `1/m, 2/m, …, (m-1)/m`.
    pub fn uniform(m: usize) -> Self {
        assert!(m >= 1, "need at least one level");
        let boundaries = (1..m).map(|i| i as f64 / m as f64).collect();
        Self { boundaries }
    }

    /// Geometric plan: boundaries at `g^(m-1), …, g^1` for ratio `g ∈ (0,1)`
    /// — the natural first guess for "balanced growth" when advancement
    /// difficulty scales multiplicatively with `f`.
    pub fn geometric(m: usize, g: f64) -> Self {
        assert!(m >= 1);
        assert!(g > 0.0 && g < 1.0, "geometric ratio must be in (0,1)");
        let mut boundaries: Vec<f64> = (1..m).map(|i| g.powi((m - i) as i32)).collect();
        boundaries.dedup();
        Self { boundaries }
    }

    /// Number of levels *below* the target, `m` (so the total number of
    /// intervals including the target level is `m + 1`). The paper's
    /// estimator exponent is `r^{m-1}`.
    pub fn num_levels(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// Interior boundaries `β_1..β_{m-1}`.
    pub fn interior(&self) -> &[f64] {
        &self.boundaries
    }

    /// Boundary `β_i` for `i in 0..=m`, including the implicit endpoints.
    pub fn boundary(&self, i: usize) -> f64 {
        let m = self.num_levels();
        assert!(i <= m, "boundary index {i} out of range (m = {m})");
        if i == 0 {
            0.0
        } else if i == m {
            1.0
        } else {
            self.boundaries[i - 1]
        }
    }

    /// Index of the level containing value `v`: the largest `i` with
    /// `β_i ≤ v` (values ≥ 1 map to the target level `m`).
    pub fn level_of(&self, v: f64) -> usize {
        if v >= 1.0 {
            return self.num_levels();
        }
        // Linear scan: plans have a handful of levels (the paper finds 3-6
        // optimal), so this beats binary search in practice.
        let mut lvl = 0;
        for (idx, &b) in self.boundaries.iter().enumerate() {
            if v >= b {
                lvl = idx + 1;
            } else {
                break;
            }
        }
        lvl
    }

    /// Add one interior boundary, returning the extended plan.
    pub fn with_boundary(&self, v: f64) -> Result<Self, PlanError> {
        let mut b = self.boundaries.clone();
        b.push(v);
        Self::new(b)
    }

    /// The level interval `[lo, hi)` for level `i < m`.
    pub fn level_interval(&self, i: usize) -> (f64, f64) {
        (self.boundary(i), self.boundary(i + 1))
    }
}

impl std::fmt::Display for PartitionPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{0")?;
        for b in &self.boundaries {
            write!(f, ", {b:.4}")?;
        }
        write!(f, ", 1}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_plan_is_single_level() {
        let p = PartitionPlan::trivial();
        assert_eq!(p.num_levels(), 1);
        assert_eq!(p.boundary(0), 0.0);
        assert_eq!(p.boundary(1), 1.0);
        assert_eq!(p.level_of(0.5), 0);
        assert_eq!(p.level_of(1.0), 1);
    }

    #[test]
    fn new_sorts_boundaries() {
        let p = PartitionPlan::new(vec![0.67, 0.4]).unwrap();
        assert_eq!(p.interior(), &[0.4, 0.67]);
        assert_eq!(p.num_levels(), 3);
    }

    #[test]
    fn rejects_bad_boundaries() {
        assert!(matches!(
            PartitionPlan::new(vec![0.0]),
            Err(PlanError::OutOfRange(_))
        ));
        assert!(matches!(
            PartitionPlan::new(vec![1.0]),
            Err(PlanError::OutOfRange(_))
        ));
        assert!(matches!(
            PartitionPlan::new(vec![f64::NAN]),
            Err(PlanError::OutOfRange(_))
        ));
        assert!(matches!(
            PartitionPlan::new(vec![0.3, 0.3]),
            Err(PlanError::NotStrictlyIncreasing)
        ));
    }

    #[test]
    fn level_of_figure1_example() {
        // Figure 1: L0=[0,0.4), L1=[0.4,0.67), L2=[0.67,1), L3=[1,1].
        let p = PartitionPlan::new(vec![0.4, 0.67]).unwrap();
        assert_eq!(p.level_of(0.0), 0);
        assert_eq!(p.level_of(0.39), 0);
        assert_eq!(p.level_of(0.4), 1);
        assert_eq!(p.level_of(0.66), 1);
        assert_eq!(p.level_of(0.67), 2);
        assert_eq!(p.level_of(0.999), 2);
        assert_eq!(p.level_of(1.0), 3);
        assert_eq!(p.level_of(1.5), 3);
    }

    #[test]
    fn uniform_plan_boundaries() {
        let p = PartitionPlan::uniform(4);
        assert_eq!(p.num_levels(), 4);
        assert_eq!(p.interior(), &[0.25, 0.5, 0.75]);
    }

    #[test]
    fn geometric_plan_is_increasing() {
        let p = PartitionPlan::geometric(5, 0.5);
        let b = p.interior();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert!((b[0] - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn with_boundary_extends() {
        let p = PartitionPlan::new(vec![0.5]).unwrap();
        let q = p.with_boundary(0.25).unwrap();
        assert_eq!(q.interior(), &[0.25, 0.5]);
        assert!(q.with_boundary(0.25).is_err());
    }

    #[test]
    fn level_interval_covers_range() {
        let p = PartitionPlan::new(vec![0.2, 0.6]).unwrap();
        assert_eq!(p.level_interval(0), (0.0, 0.2));
        assert_eq!(p.level_interval(1), (0.2, 0.6));
        assert_eq!(p.level_interval(2), (0.6, 1.0));
    }
}
