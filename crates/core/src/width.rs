//! The adaptive batch-width policy: `batch_width=auto`.
//!
//! The batched frontier is bit-identical at every width, so width is a
//! pure throughput knob — but the *right* width varies by kernel. A
//! SIMD-hot closed-form model (gbm, cpp) wants a wide cohort to keep the
//! vectorized draw pipeline full; a generic adapter-loop model gains
//! nothing past the cache-friendly sweet spot; a table-lookup model is
//! fastest narrow, where staging overhead stays off the profile. This
//! module turns that choice into policy:
//!
//! * [`AUTO_WIDTH`] is the sentinel a spec, a scheduler config, or a
//!   session config carries for "pick for me". Every execution layer
//!   resolves it **before** dispatch (see `proc::ModelRunner`'s
//!   `resolve_width`); the drivers themselves map a leaked sentinel to
//!   a safe static default ([`effective`]) so no code path can launch a
//!   `usize::MAX`-lane cohort.
//! * [`KernelClass`] is the model's self-declared cost shape
//!   (`SimulationModel::kernel_class`), and [`static_width`] maps it to
//!   a launch width without measuring anything.
//! * [`calibrate`] is the micro-probe: time a small burst per candidate
//!   width and keep the fastest. The caller memoizes the winner in the
//!   plan cache keyed by the query fingerprint, so only the first query
//!   of a family pays the probe. Probes run on throwaway RNG streams —
//!   never the query's own stream — so `batch_width=auto` remains
//!   bit-identical to the resolved explicit width.
//! * [`record_frontier`] / [`take_thread_stats`] / [`snapshot`] count
//!   speculation waste: the batched frontier launches roots ahead of
//!   the commit target, and lanes still in flight when the target lands
//!   are discarded. The sequential driver already narrows its final
//!   chunks near a budget boundary; these counters are how tests pin
//!   that the shrink eliminates the waste, and how `SHOW DIAGNOSTICS`
//!   reports the effective width a session actually ran at.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Sentinel width meaning "resolve adaptively" (`batch_width=auto` in
/// SQL). Carried by `ExecOptions::batch_width`, `SchedulerConfig`,
/// `ParallelConfig`, and `SessionConfig`; resolved to a concrete width
/// before any frontier launches.
pub const AUTO_WIDTH: usize = usize::MAX;

/// The width the drivers substitute when an unresolved [`AUTO_WIDTH`]
/// reaches them: a safe middle pick that is near-optimal for adapter
/// kernels and acceptable everywhere.
pub const FALLBACK_WIDTH: usize = 64;

/// A model's self-declared cost shape, used to pick a launch width (and
/// probe candidates) without measuring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelClass {
    /// Per-step work is a table lookup or a couple of flops; staging a
    /// wide cohort costs more than it saves. Run narrow.
    Cheap,
    /// Steps run through the generic scalar `step_batch` adapter loop
    /// (or a native kernel with no vectorized pipeline): batching
    /// amortizes dispatch but nothing vectorizes. The middle widths win.
    Adapter,
    /// A native kernel backed by the vectorized draw pipeline
    /// (multi-stream ChaCha + chunked `vmath`): throughput keeps rising
    /// until the cohort fills the SIMD lanes several times over. Run
    /// wide, wider still on long horizons where cohorts stay full.
    SimdHot,
}

impl KernelClass {
    /// Candidate widths a micro-probe should time for this class,
    /// narrowest first. The static pick is always among them.
    pub fn probe_candidates(self) -> &'static [usize] {
        match self {
            KernelClass::Cheap => &[8, 16, 32],
            KernelClass::Adapter => &[16, 64, 128],
            KernelClass::SimdHot => &[64, 128, 256],
        }
    }
}

/// The measurement-free width pick for a kernel class at a horizon.
/// Long-horizon SIMD-hot models go widest: their cohorts stay full for
/// many steps, so staging amortizes completely.
pub fn static_width(class: KernelClass, horizon: u64) -> usize {
    match class {
        KernelClass::Cheap => 16,
        KernelClass::Adapter => 64,
        KernelClass::SimdHot => {
            if horizon >= 256 {
                256
            } else {
                128
            }
        }
    }
}

/// Map a possibly-sentinel width to one the drivers can launch. Every
/// dispatch point (`scheduler`, `parallel`, the sequential driver) runs
/// its configured width through this, so an [`AUTO_WIDTH`] that escaped
/// resolution degrades to [`FALLBACK_WIDTH`] instead of an allocation
/// of `usize::MAX` lanes.
#[inline]
pub fn effective(width: usize) -> usize {
    if width == AUTO_WIDTH {
        FALLBACK_WIDTH
    } else {
        width
    }
}

/// Time `bench(width)` once per candidate and return the fastest width.
/// `bench` must do a fixed amount of *work* per call (same step budget
/// at every width) on throwaway state — a probe must never consume
/// draws from a query's committed stream, or `auto` would stop being
/// bit-identical to the resolved width.
///
/// Candidates are probed narrow-to-wide with one warm-up call (the
/// first timing otherwise charges lazy scratch growth to the narrowest
/// width). Ties break narrow: equal speed at half the speculation
/// exposure is strictly better near budget boundaries.
pub fn calibrate(candidates: &[usize], mut bench: impl FnMut(usize)) -> usize {
    debug_assert!(!candidates.is_empty());
    let mut best = candidates[0];
    let mut best_elapsed = None;
    bench(candidates[0]); // warm scratch/caches off the clock
    for &w in candidates {
        let t0 = Instant::now();
        bench(w);
        let elapsed = t0.elapsed();
        if best_elapsed.is_none_or(|b| elapsed < b) {
            best = w;
            best_elapsed = Some(elapsed);
        }
    }
    best
}

/// One frontier chunk's speculation ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Frontier chunks recorded.
    pub chunks: u64,
    /// Roots the frontier launched (committed + speculative).
    pub launched: u64,
    /// Roots whose outcomes were committed to the shard.
    pub committed: u64,
    /// Sum over chunks of the launch width (for the effective-width
    /// average: `width_sum / chunks`).
    pub width_sum: u64,
}

impl SpecStats {
    /// Roots launched but never committed — work thrown away when the
    /// chunk's step target landed mid-flight.
    pub fn discarded(&self) -> u64 {
        self.launched - self.committed
    }
}

// Process-wide totals, fed by every frontier chunk on every thread —
// the source for the session diagnostics block.
static G_CHUNKS: AtomicU64 = AtomicU64::new(0);
static G_LAUNCHED: AtomicU64 = AtomicU64::new(0);
static G_COMMITTED: AtomicU64 = AtomicU64::new(0);
static G_WIDTH_SUM: AtomicU64 = AtomicU64::new(0);
// Memoized micro-probes re-run because a plan's observed steps/root
// drifted >2x from the regime the probe was measured in.
static G_REPROBED: AtomicU64 = AtomicU64::new(0);

/// Count one regime-drift re-probe (surfaced as `reprobed` in the
/// `width_policy` diagnostics ledger).
pub fn record_reprobe() {
    G_REPROBED.fetch_add(1, Ordering::Relaxed);
}

/// Process-wide re-probe count since process start.
pub fn reprobe_count() -> u64 {
    G_REPROBED.load(Ordering::Relaxed)
}

thread_local! {
    static T_STATS: std::cell::Cell<SpecStats> = const { std::cell::Cell::new(SpecStats {
        chunks: 0,
        launched: 0,
        committed: 0,
        width_sum: 0,
    }) };
}

/// Record one batched-frontier chunk: it ran at `width`, launched
/// `launched` roots, committed `committed` of them. Called by
/// `run_frontier` on exit; cost is four relaxed atomic adds plus a
/// thread-local update.
pub fn record_frontier(width: usize, launched: u64, committed: u64) {
    G_CHUNKS.fetch_add(1, Ordering::Relaxed);
    G_LAUNCHED.fetch_add(launched, Ordering::Relaxed);
    G_COMMITTED.fetch_add(committed, Ordering::Relaxed);
    G_WIDTH_SUM.fetch_add(width as u64, Ordering::Relaxed);
    T_STATS.with(|cell| {
        let mut s = cell.get();
        s.chunks += 1;
        s.launched += launched;
        s.committed += committed;
        s.width_sum += width as u64;
        cell.set(s);
    });
}

/// Drain the calling thread's accumulated frontier stats. The
/// sequential driver runs on the caller's thread, so a test can bracket
/// a run with `take_thread_stats` and assert on exactly that run's
/// speculation (the global totals aggregate every thread and test in
/// the process).
pub fn take_thread_stats() -> SpecStats {
    T_STATS.with(|cell| cell.replace(SpecStats::default()))
}

/// Process-wide frontier totals since process start (monotone; shared
/// by all sessions in the process, like the backend counters).
pub fn snapshot() -> SpecStats {
    SpecStats {
        chunks: G_CHUNKS.load(Ordering::Relaxed),
        launched: G_LAUNCHED.load(Ordering::Relaxed),
        committed: G_COMMITTED.load(Ordering::Relaxed),
        width_sum: G_WIDTH_SUM.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_maps_only_the_sentinel() {
        assert_eq!(effective(AUTO_WIDTH), FALLBACK_WIDTH);
        assert_eq!(effective(0), 0);
        assert_eq!(effective(1), 1);
        assert_eq!(effective(256), 256);
    }

    #[test]
    fn static_widths_are_probe_candidates() {
        for class in [
            KernelClass::Cheap,
            KernelClass::Adapter,
            KernelClass::SimdHot,
        ] {
            for horizon in [1, 255, 256, 100_000] {
                let w = static_width(class, horizon);
                assert!(
                    class.probe_candidates().contains(&w),
                    "{class:?} static pick {w} must be probeable"
                );
            }
        }
    }

    #[test]
    fn calibrate_returns_a_candidate_and_prefers_faster() {
        // A bench whose cost is deterministic in the width: wider is
        // slower. The probe must land on the narrowest candidate.
        let picked = calibrate(&[8, 64, 256], |w| {
            std::thread::sleep(std::time::Duration::from_micros(w as u64 * 50));
        });
        assert_eq!(picked, 8);
    }

    #[test]
    fn thread_stats_drain_and_global_accumulates() {
        let _ = take_thread_stats();
        let before = snapshot();
        record_frontier(32, 100, 90);
        record_frontier(16, 10, 10);
        let t = take_thread_stats();
        assert_eq!(t.chunks, 2);
        assert_eq!(t.launched, 110);
        assert_eq!(t.committed, 100);
        assert_eq!(t.discarded(), 10);
        assert_eq!(t.width_sum, 48);
        assert_eq!(take_thread_stats(), SpecStats::default());
        let after = snapshot();
        assert!(after.launched >= before.launched + 110);
        assert!(after.chunks >= before.chunks + 2);
    }
}
