//! Parallel MLSS driver (§3.1 "Parallel Computations").
//!
//! Root paths are independent, so MLSS parallelizes by sharding roots over
//! worker threads and periodically synchronizing counters to produce a
//! running estimate; the run stops once the merged estimate reaches the
//! requested quality (or the merged budget is spent) — exactly the scheme
//! sketched in the paper.
//!
//! Workers run the *sequential* g-MLSS sampler in fixed-size chunks and
//! merge their [`RootLedger`]s into a shared accumulator under a
//! `parking_lot` mutex; whichever worker merges evaluates the global
//! stopping condition. Each worker owns an independent ChaCha stream, so
//! the random numbers are reproducible per worker; the *amount* of work
//! each worker contributes depends on OS scheduling, so totals vary
//! slightly across runs (the estimates agree statistically).

use crate::bootstrap::{bootstrap_variance, RootLedger};
use crate::estimate::Estimate;
use crate::gmlss::{estimator, GMlssConfig, GMlssSampler, VarianceMode};
use crate::model::SimulationModel;
use crate::quality::{QualityTarget, RunControl};
use crate::query::{Problem, ValueFunction};
use crate::rng::{rng_from_seed, StreamFactory};
use parking_lot::Mutex;

/// Configuration of a parallel g-MLSS run.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Worker thread count (≥ 1).
    pub threads: usize,
    /// `g` invocations per worker chunk between synchronizations.
    pub sync_every: u64,
    /// Master seed; worker `k` draws stream `k`.
    pub seed: u64,
    /// Bootstrap resamples for the final variance when skips occurred.
    pub bootstrap_resamples: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            sync_every: 65_536,
            seed: 0,
            bootstrap_resamples: 200,
        }
    }
}

/// Result of a parallel run.
#[derive(Debug)]
pub struct ParallelResult {
    /// Merged estimate.
    pub estimate: Estimate,
    /// Total level-skip events across workers.
    pub skip_events: u64,
    /// The merged per-root ledger.
    pub ledger: RootLedger,
    /// Wall-clock time of the whole parallel region.
    pub elapsed: std::time::Duration,
    /// Number of worker threads used.
    pub threads: usize,
}

struct Shared {
    ledger: RootLedger,
    steps: u64,
    skip_events: u64,
    done: bool,
}

/// Run g-MLSS in parallel until `control` is satisfied on the *merged*
/// state. `base` supplies the plan/ratio; its own `control` is ignored.
pub fn run_parallel<M, V>(
    problem: Problem<'_, M, V>,
    base: &GMlssConfig,
    control: RunControl,
    cfg: &ParallelConfig,
) -> ParallelResult
where
    M: SimulationModel + Sync,
    M::State: Send,
    V: ValueFunction<M::State> + Sync,
{
    assert!(cfg.threads >= 1);
    let start = std::time::Instant::now();
    let m = base.plan.num_levels();
    let ratio = base.ratio;
    let shared = Mutex::new(Shared {
        ledger: RootLedger::new(m),
        steps: 0,
        skip_events: 0,
        done: false,
    });
    let streams = StreamFactory::new(cfg.seed);

    crossbeam::thread::scope(|scope| {
        for worker in 0..cfg.threads {
            let shared = &shared;
            let base = base.clone();
            scope.spawn(move |_| {
                let mut rng = streams.stream(worker as u64);
                loop {
                    {
                        if shared.lock().done {
                            return;
                        }
                    }
                    // One chunk with the sequential sampler.
                    let mut chunk_cfg = base.clone();
                    chunk_cfg.control = RunControl::budget(cfg.sync_every);
                    chunk_cfg.keep_ledger = true;
                    chunk_cfg.variance = VarianceMode::PerRootHits; // cheap in-chunk
                    let res = GMlssSampler::new(chunk_cfg).run(problem, &mut rng);

                    // Merge and evaluate the global stopping condition.
                    let mut g = shared.lock();
                    if let Some(l) = res.ledger.as_ref() {
                        g.ledger.merge(l);
                    }
                    g.steps += res.estimate.steps;
                    g.skip_events += res.skip_events;
                    let est = merged_estimate(
                        &g.ledger,
                        m,
                        ratio,
                        g.steps,
                        g.skip_events,
                        cfg.bootstrap_resamples,
                        // Cheap in-loop policy: only bootstrap when needed
                        // for the decision (Target mode + skips observed).
                        matches!(control, RunControl::Target { .. }),
                        &mut rng,
                    );
                    let stop = match control {
                        RunControl::Budget(b) => g.steps >= b,
                        RunControl::Target {
                            target, max_steps, ..
                        } => g.steps >= max_steps || target.satisfied(&est),
                    };
                    if stop {
                        g.done = true;
                        return;
                    }
                }
            });
        }
    })
    .expect("worker panicked");

    let g = shared.into_inner();
    let mut rng = rng_from_seed(cfg.seed ^ 0xD1B5_4A32_D192_ED03);
    let estimate = merged_estimate(
        &g.ledger,
        m,
        ratio,
        g.steps,
        g.skip_events,
        cfg.bootstrap_resamples,
        true,
        &mut rng,
    );
    ParallelResult {
        estimate,
        skip_events: g.skip_events,
        ledger: g.ledger,
        elapsed: start.elapsed(),
        threads: cfg.threads,
    }
}

/// Convenience: parallel run to a quality target with default knobs.
pub fn run_parallel_to_target<M, V>(
    problem: Problem<'_, M, V>,
    base: &GMlssConfig,
    target: QualityTarget,
    threads: usize,
    seed: u64,
) -> ParallelResult
where
    M: SimulationModel + Sync,
    M::State: Send,
    V: ValueFunction<M::State> + Sync,
{
    let cfg = ParallelConfig {
        threads,
        seed,
        ..Default::default()
    };
    run_parallel(problem, base, RunControl::until(target), &cfg)
}

/// Build the merged estimate from a combined ledger.
#[allow(clippy::too_many_arguments)]
fn merged_estimate(
    ledger: &RootLedger,
    m: usize,
    ratio: u32,
    steps: u64,
    skip_events: u64,
    resamples: usize,
    allow_bootstrap: bool,
    rng: &mut crate::rng::SimRng,
) -> Estimate {
    let n = ledger.n_roots() as u64;
    let agg = ledger.aggregate();
    let tau = if n == 0 {
        0.0
    } else if m == 1 {
        agg.hits as f64 / n as f64
    } else {
        estimator(m, ratio, n, &agg.landings, &agg.crossings, &agg.skips).0
    };

    let variance = if n < 2 {
        f64::INFINITY
    } else if skip_events == 0 {
        // s-MLSS regime: per-root hit variance (Eq. 5-6).
        let mut moments = crate::stats::RunningMoments::new();
        for i in 0..ledger.n_roots() {
            moments.push(ledger.root_hits(i) as f64);
        }
        let scale = (ratio as f64).powi(m as i32 - 1);
        moments.sample_variance() / (n as f64 * scale * scale)
    } else if allow_bootstrap {
        bootstrap_variance(ledger, resamples, ratio, rng)
    } else {
        f64::INFINITY
    };

    Estimate {
        tau,
        variance,
        n_roots: n,
        steps,
        hits: agg.hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::PartitionPlan;
    use crate::model::Time;
    use crate::query::RatioValue;
    use crate::rng::SimRng;
    use rand::RngExt;

    struct Walk;

    impl SimulationModel for Walk {
        type State = f64;

        fn initial_state(&self) -> f64 {
            0.0
        }

        fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            (s + if rng.random::<f64>() < 0.48 { 0.05 } else { -0.05 }).clamp(0.0, 1.0)
        }
    }

    fn vf() -> RatioValue<fn(&f64) -> f64> {
        fn score(s: &f64) -> f64 {
            *s
        }
        RatioValue::new(score as fn(&f64) -> f64, 1.0)
    }

    #[test]
    fn parallel_budget_run_merges_workers() {
        let model = Walk;
        let v = vf();
        let problem = Problem::new(&model, &v, 100);
        let base = GMlssConfig::new(
            PartitionPlan::new(vec![0.4, 0.7]).unwrap(),
            RunControl::budget(1), // ignored
        );
        let cfg = ParallelConfig {
            threads: 4,
            sync_every: 20_000,
            seed: 7,
            bootstrap_resamples: 50,
        };
        let res = run_parallel(problem, &base, RunControl::budget(400_000), &cfg);
        assert!(res.estimate.steps >= 400_000);
        assert_eq!(res.ledger.n_roots() as u64, res.estimate.n_roots);
        assert!(res.estimate.tau > 0.0, "walk does hit sometimes");
        assert!(res.estimate.variance.is_finite());
    }

    #[test]
    fn parallel_matches_sequential_estimate() {
        let model = Walk;
        let v = vf();
        let problem = Problem::new(&model, &v, 100);
        let plan = PartitionPlan::new(vec![0.4, 0.7]).unwrap();

        let seq_cfg = GMlssConfig::new(plan.clone(), RunControl::budget(600_000));
        let seq = GMlssSampler::new(seq_cfg).run(problem, &mut crate::rng::rng_from_seed(3));

        let base = GMlssConfig::new(plan, RunControl::budget(1));
        let cfg = ParallelConfig {
            threads: 3,
            sync_every: 50_000,
            seed: 11,
            bootstrap_resamples: 50,
        };
        let par = run_parallel(problem, &base, RunControl::budget(600_000), &cfg);

        let diff = (seq.estimate.tau - par.estimate.tau).abs();
        let tol = 4.0
            * (seq.estimate.variance.max(0.0) + par.estimate.variance.max(0.0)).sqrt();
        assert!(
            diff <= tol.max(1e-3),
            "sequential {} vs parallel {}",
            seq.estimate.tau,
            par.estimate.tau
        );
    }

    #[test]
    fn parallel_runs_agree_statistically() {
        let model = Walk;
        let v = vf();
        let problem = Problem::new(&model, &v, 60);
        let base = GMlssConfig::new(PartitionPlan::new(vec![0.5]).unwrap(), RunControl::budget(1));
        let cfg = ParallelConfig {
            threads: 2,
            sync_every: 10_000,
            seed: 42,
            bootstrap_resamples: 50,
        };
        // Worker *streams* are seed-deterministic, but chunk scheduling is
        // not, so repeated runs agree statistically rather than exactly.
        let a = run_parallel(problem, &base, RunControl::budget(100_000), &cfg);
        let b = run_parallel(problem, &base, RunControl::budget(100_000), &cfg);
        let diff = (a.estimate.tau - b.estimate.tau).abs();
        let tol = 5.0
            * (a.estimate.variance.max(0.0) + b.estimate.variance.max(0.0)).sqrt();
        assert!(
            diff <= tol.max(5e-3),
            "runs disagree: {} vs {}",
            a.estimate.tau,
            b.estimate.tau
        );
        assert!(a.estimate.steps >= 100_000 && b.estimate.steps >= 100_000);
    }

    #[test]
    fn single_thread_parallel_works() {
        let model = Walk;
        let v = vf();
        let problem = Problem::new(&model, &v, 40);
        let base = GMlssConfig::new(PartitionPlan::trivial(), RunControl::budget(1));
        let cfg = ParallelConfig {
            threads: 1,
            sync_every: 5_000,
            seed: 1,
            bootstrap_resamples: 20,
        };
        let res = run_parallel(problem, &base, RunControl::budget(20_000), &cfg);
        assert!(res.estimate.steps >= 20_000);
    }
}
