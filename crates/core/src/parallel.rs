//! Parallel sampling driver (§3.1 "Parallel Computations"), generic over
//! any [`Estimator`].
//!
//! Root paths are independent, so every sampler in this crate
//! parallelizes the same way: shard roots over worker threads,
//! periodically reduce the shards, and stop once the merged estimate
//! reaches the requested quality (or the merged budget is spent).
//!
//! ### Sharded reduction (vs. the old single-mutex merge)
//!
//! Earlier versions funneled every worker through one global mutex after
//! every chunk, serializing all workers on the merge (and, in target
//! mode, on bootstrap variance evaluations performed *inside* the lock).
//! The driver now keeps one deposit slot per worker: after each chunk a
//! worker folds its freshly sampled shard into its own slot — contended
//! only with the occasional reducer, never with other workers — and the
//! stopping check is performed by whichever worker first crosses the next
//! check boundary *and* wins a `try_lock` on the master accumulator; it
//! drains all slots, merges, and evaluates the stopping rule. Losers
//! don't wait: they grow their chunk (adaptive `sync_every`) and keep
//! simulating, so merge contention translates into coarser sync instead
//! of idle workers.
//!
//! Each worker owns an independent ChaCha stream, so the random numbers
//! are reproducible per worker; the *amount* of work each worker
//! contributes depends on OS scheduling, so totals vary slightly across
//! runs (the estimates agree statistically).

use crate::bootstrap::RootLedger;
use crate::estimate::Estimate;
use crate::estimator::{Estimator, Ledger};
use crate::gmlss::GMlssConfig;
use crate::model::SimulationModel;
use crate::quality::{QualityTarget, RunControl};
use crate::query::{Problem, ValueFunction};
use crate::rng::{rng_from_seed, StreamFactory};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Configuration of a parallel run.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Worker thread count (≥ 1).
    pub threads: usize,
    /// Baseline `g` invocations per worker chunk between merge attempts.
    /// The first chunk is clamped to `budget / threads` so short runs
    /// still get mid-run stopping checks, and chunks grow adaptively when
    /// merges are contended.
    pub sync_every: u64,
    /// Master seed; worker `k` draws stream `k`.
    pub seed: u64,
    /// Bootstrap resamples used by the g-MLSS compatibility wrappers'
    /// final variance ([`run_parallel_gmlss`]).
    pub bootstrap_resamples: usize,
    /// Frontier width for each worker's chunks: `0` runs the classic
    /// scalar `run_chunk` path (bit-compatible with pre-frontier runs);
    /// `w ≥ 1` routes chunks through `run_chunk_batched` at width `w`
    /// (bit-identical across widths, so this knob only changes speed).
    /// [`crate::width::AUTO_WIDTH`] is accepted and runs at the static
    /// fallback width — resolve it upstream (per-model) for the real
    /// adaptive pick.
    pub batch_width: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            sync_every: 65_536,
            seed: 0,
            bootstrap_resamples: 200,
            batch_width: 0,
        }
    }
}

/// Result of a generic parallel run.
#[derive(Debug)]
pub struct ParallelRun<L> {
    /// Merged estimate.
    pub estimate: Estimate,
    /// The fully merged shard (estimator-specific diagnostics live here).
    pub shard: L,
    /// Wall-clock time of the whole parallel region.
    pub elapsed: std::time::Duration,
    /// Number of worker threads used.
    pub threads: usize,
    /// Successful master merges (stopping checks performed).
    pub merges: u64,
    /// Merge attempts that lost the `try_lock` race and grew their chunk.
    pub contended_merges: u64,
}

/// Result of a parallel g-MLSS run (compatibility shape: the merged
/// ledger and skip counter are hoisted out of the shard).
#[derive(Debug)]
pub struct ParallelResult {
    /// Merged estimate.
    pub estimate: Estimate,
    /// Total level-skip events across workers.
    pub skip_events: u64,
    /// The merged per-root ledger.
    pub ledger: RootLedger,
    /// Wall-clock time of the whole parallel region.
    pub elapsed: std::time::Duration,
    /// Number of worker threads used.
    pub threads: usize,
}

/// First-chunk size: `sync_every`, clamped so all `threads` workers
/// together stay within the run's step bound. Without the clamp a budget
/// below `sync_every` would receive zero mid-run stopping checks and
/// overshoot by up to `threads × sync_every` steps.
fn first_chunk(control: &RunControl, cfg: &ParallelConfig) -> u64 {
    let bound = match control {
        RunControl::Budget(b) => *b,
        RunControl::Target { max_steps, .. } => *max_steps,
    };
    let per_thread = (bound / cfg.threads.max(1) as u64).max(1);
    cfg.sync_every.max(1).min(per_thread)
}

/// Run any [`Estimator`] across threads until `control` is satisfied on
/// the *merged* state.
pub fn run_parallel<M, V, E>(
    problem: Problem<'_, M, V>,
    estimator: &E,
    control: RunControl,
    cfg: &ParallelConfig,
) -> ParallelRun<E::Shard>
where
    M: SimulationModel + Sync,
    M::State: Send,
    V: ValueFunction<M::State> + Sync,
    E: Estimator<M, V> + Sync,
    E::Shard: Send,
{
    run_parallel_from(problem, estimator, control, cfg, estimator.shard())
}

/// Resume a parallel run from a previously accumulated shard (a
/// checkpoint produced by an earlier parallel, sequential, or scheduler
/// run — all three produce the same mergeable shard type). The resumed
/// shard's steps count toward `control`: a run checkpointed at 10M steps
/// and resumed under a 30M budget simulates 20M more, and target mode
/// evaluates quality over the combined pool.
///
/// Worker streams are derived from `(cfg.seed, resumed steps)` rather
/// than `cfg.seed` alone: resuming a checkpoint with the *same* seed
/// that produced it must not replay the sample paths already committed
/// in the shard (that would double-count them and bias the estimate).
/// An empty initial shard leaves the streams identical to
/// [`run_parallel`].
pub fn run_parallel_from<M, V, E>(
    problem: Problem<'_, M, V>,
    estimator: &E,
    control: RunControl,
    cfg: &ParallelConfig,
    initial: E::Shard,
) -> ParallelRun<E::Shard>
where
    M: SimulationModel + Sync,
    M::State: Send,
    V: ValueFunction<M::State> + Sync,
    E: Estimator<M, V> + Sync,
    E::Shard: Send,
{
    assert!(cfg.threads >= 1);
    let start = std::time::Instant::now();
    let base_chunk = first_chunk(&control, cfg);
    let check_stride = base_chunk.saturating_mul(cfg.threads as u64).max(1);

    let resumed_steps = initial.steps();
    // Fresh streams on resume (see doc comment); bit-compatible with the
    // original seeding when nothing was resumed.
    let stream_seed = if resumed_steps == 0 {
        cfg.seed
    } else {
        cfg.seed ^ resumed_steps.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    };
    let streams = StreamFactory::new(stream_seed);
    let bound = match control {
        RunControl::Budget(b) => b,
        RunControl::Target { max_steps, .. } => max_steps,
    };
    if resumed_steps >= bound {
        // The checkpoint already satisfies the step bound: don't spin up
        // workers that would each overshoot by one minimum-size chunk.
        let mut final_rng = rng_from_seed(cfg.seed ^ 0xD1B5_4A32_D192_ED03);
        let estimate = estimator.estimate(&initial, &mut final_rng);
        return ParallelRun {
            estimate,
            shard: initial,
            elapsed: start.elapsed(),
            threads: cfg.threads,
            merges: 0,
            contended_merges: 0,
        };
    }
    let slots: Vec<Mutex<Option<E::Shard>>> = (0..cfg.threads).map(|_| Mutex::new(None)).collect();
    let master: Mutex<E::Shard> = Mutex::new(initial);
    let done = AtomicBool::new(false);
    let total_steps = AtomicU64::new(resumed_steps);
    let next_check = AtomicU64::new(check_stride);
    let merges = AtomicU64::new(0);
    let contended = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for worker in 0..cfg.threads {
            let slots = &slots;
            let master = &master;
            let done = &done;
            let total_steps = &total_steps;
            let next_check = &next_check;
            let merges = &merges;
            let contended = &contended;
            scope.spawn(move || {
                let mut rng = streams.stream(worker as u64);
                let mut chunk = base_chunk;
                loop {
                    if done.load(Ordering::Acquire) {
                        return;
                    }
                    // In budget mode, never start a chunk larger than a
                    // fair share of what is left.
                    if let RunControl::Budget(b) = control {
                        let total = total_steps.load(Ordering::Relaxed);
                        let fair = (b.saturating_sub(total) / cfg.threads as u64).max(1);
                        chunk = chunk.min(fair);
                    }

                    let mut pending = estimator.shard();
                    // Defense in depth: an unresolved `batch_width=auto`
                    // sentinel runs at the static fallback width.
                    let width = crate::width::effective(cfg.batch_width);
                    let outcome = if width == 0 {
                        estimator.run_chunk(problem, &mut pending, chunk, &mut rng)
                    } else {
                        estimator.run_chunk_batched(problem, &mut pending, chunk, &mut rng, width)
                    };

                    // Deposit into this worker's slot — contended only
                    // with a reducer draining it, never with peers.
                    {
                        let mut slot = slots[worker].lock();
                        match slot.take() {
                            Some(mut held) => {
                                held.merge(pending);
                                *slot = Some(held);
                            }
                            None => *slot = Some(pending),
                        }
                    }
                    let total =
                        total_steps.fetch_add(outcome.steps, Ordering::AcqRel) + outcome.steps;

                    match control {
                        RunControl::Budget(budget) => {
                            if total < budget {
                                continue;
                            }
                            // Budget exhausted: stop — become the finisher
                            // or wait for one (no further chunks).
                            loop {
                                if done.load(Ordering::Acquire) {
                                    return;
                                }
                                if let Some(mut m) = master.try_lock() {
                                    drain_slots(slots, &mut m);
                                    merges.fetch_add(1, Ordering::Relaxed);
                                    done.store(true, Ordering::Release);
                                    return;
                                }
                                std::thread::yield_now();
                            }
                        }
                        RunControl::Target {
                            target, max_steps, ..
                        } => {
                            if total >= max_steps {
                                // Hard valve reached: stop now — become
                                // the finisher or wait for one. Never
                                // simulate past the valve (a lost
                                // try_lock must not grow the chunk and
                                // keep going).
                                loop {
                                    if done.load(Ordering::Acquire) {
                                        return;
                                    }
                                    if let Some(mut m) = master.try_lock() {
                                        drain_slots(slots, &mut m);
                                        merges.fetch_add(1, Ordering::Relaxed);
                                        done.store(true, Ordering::Release);
                                        return;
                                    }
                                    std::thread::yield_now();
                                }
                            }
                            if total < next_check.load(Ordering::Acquire) {
                                continue;
                            }
                            match master.try_lock() {
                                Some(mut m) => {
                                    drain_slots(slots, &mut m);
                                    merges.fetch_add(1, Ordering::Relaxed);
                                    let est = estimator.check_estimate(&mut m, &mut rng);
                                    if target.satisfied(&est) {
                                        done.store(true, Ordering::Release);
                                        return;
                                    }
                                    next_check.store(
                                        total.saturating_add(check_stride),
                                        Ordering::Release,
                                    );
                                }
                                None => {
                                    // Another worker is reducing; grow our
                                    // chunk so merge pressure drops.
                                    contended.fetch_add(1, Ordering::Relaxed);
                                    chunk = chunk.saturating_mul(2).min(base_chunk * 16).max(1);
                                }
                            }
                        }
                    }
                }
            });
        }
    });

    let mut shard = master.into_inner();
    drain_slots(&slots, &mut shard);
    let mut final_rng = rng_from_seed(cfg.seed ^ 0xD1B5_4A32_D192_ED03);
    let estimate = estimator.estimate(&shard, &mut final_rng);
    ParallelRun {
        estimate,
        shard,
        elapsed: start.elapsed(),
        threads: cfg.threads,
        merges: merges.into_inner(),
        contended_merges: contended.into_inner(),
    }
}

/// Merge every deposited slot shard into `into`.
fn drain_slots<L: Ledger>(slots: &[Mutex<Option<L>>], into: &mut L) {
    for slot in slots {
        if let Some(shard) = slot.lock().take() {
            into.merge(shard);
        }
    }
}

/// Run g-MLSS in parallel until `control` is satisfied on the *merged*
/// state. `base` supplies the plan/ratio/variance policy; its own
/// `control` is ignored. Compatibility wrapper over the generic
/// [`run_parallel`].
pub fn run_parallel_gmlss<M, V>(
    problem: Problem<'_, M, V>,
    base: &GMlssConfig,
    control: RunControl,
    cfg: &ParallelConfig,
) -> ParallelResult
where
    M: SimulationModel + Sync,
    M::State: Send,
    V: ValueFunction<M::State> + Sync,
{
    let mut estimator = base.clone();
    estimator.keep_ledger = true; // the merged ledger is part of the result
    estimator.bootstrap_resamples = cfg.bootstrap_resamples.max(2);
    let run = run_parallel(problem, &estimator, control, cfg);
    ParallelResult {
        estimate: run.estimate,
        skip_events: run.shard.skip_events,
        ledger: run.shard.ledger,
        elapsed: run.elapsed,
        threads: run.threads,
    }
}

/// Convenience: parallel g-MLSS run to a quality target with default
/// knobs.
pub fn run_parallel_to_target<M, V>(
    problem: Problem<'_, M, V>,
    base: &GMlssConfig,
    target: QualityTarget,
    threads: usize,
    seed: u64,
) -> ParallelResult
where
    M: SimulationModel + Sync,
    M::State: Send,
    V: ValueFunction<M::State> + Sync,
{
    let cfg = ParallelConfig {
        threads,
        seed,
        ..Default::default()
    };
    run_parallel_gmlss(problem, base, RunControl::until(target), &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmlss::GMlssSampler;
    use crate::levels::PartitionPlan;
    use crate::model::Time;
    use crate::query::RatioValue;
    use crate::rng::SimRng;
    use crate::smlss::SMlssConfig;
    use crate::srs::SrsEstimator;
    use rand::RngExt;

    struct Walk;

    impl SimulationModel for Walk {
        type State = f64;

        fn initial_state(&self) -> f64 {
            0.0
        }

        fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            (s + if rng.random::<f64>() < 0.48 {
                0.05
            } else {
                -0.05
            })
            .clamp(0.0, 1.0)
        }
    }

    fn vf() -> RatioValue<fn(&f64) -> f64> {
        fn score(s: &f64) -> f64 {
            *s
        }
        RatioValue::new(score as fn(&f64) -> f64, 1.0)
    }

    #[test]
    fn parallel_budget_run_merges_workers() {
        let model = Walk;
        let v = vf();
        let problem = Problem::new(&model, &v, 100);
        let base = GMlssConfig::new(
            PartitionPlan::new(vec![0.4, 0.7]).unwrap(),
            RunControl::budget(1), // ignored
        );
        let cfg = ParallelConfig {
            threads: 4,
            sync_every: 20_000,
            seed: 7,
            bootstrap_resamples: 50,
            batch_width: 0,
        };
        let res = run_parallel_gmlss(problem, &base, RunControl::budget(400_000), &cfg);
        assert!(res.estimate.steps >= 400_000);
        assert_eq!(res.ledger.n_roots() as u64, res.estimate.n_roots);
        assert!(res.estimate.tau > 0.0, "walk does hit sometimes");
        assert!(res.estimate.variance.is_finite());
    }

    #[test]
    fn parallel_matches_sequential_estimate() {
        let model = Walk;
        let v = vf();
        let problem = Problem::new(&model, &v, 100);
        let plan = PartitionPlan::new(vec![0.4, 0.7]).unwrap();

        let seq_cfg = GMlssConfig::new(plan.clone(), RunControl::budget(600_000));
        let seq = GMlssSampler::new(seq_cfg).run(problem, &mut crate::rng::rng_from_seed(3));

        let base = GMlssConfig::new(plan, RunControl::budget(1));
        let cfg = ParallelConfig {
            threads: 3,
            sync_every: 50_000,
            seed: 11,
            bootstrap_resamples: 50,
            batch_width: 0,
        };
        let par = run_parallel_gmlss(problem, &base, RunControl::budget(600_000), &cfg);

        let diff = (seq.estimate.tau - par.estimate.tau).abs();
        let tol = 4.0 * (seq.estimate.variance.max(0.0) + par.estimate.variance.max(0.0)).sqrt();
        assert!(
            diff <= tol.max(1e-3),
            "sequential {} vs parallel {}",
            seq.estimate.tau,
            par.estimate.tau
        );
    }

    #[test]
    fn parallel_runs_agree_statistically() {
        let model = Walk;
        let v = vf();
        let problem = Problem::new(&model, &v, 60);
        let base = GMlssConfig::new(
            PartitionPlan::new(vec![0.5]).unwrap(),
            RunControl::budget(1),
        );
        let cfg = ParallelConfig {
            threads: 2,
            sync_every: 10_000,
            seed: 42,
            bootstrap_resamples: 50,
            batch_width: 0,
        };
        // Worker *streams* are seed-deterministic, but chunk scheduling is
        // not, so repeated runs agree statistically rather than exactly.
        let a = run_parallel_gmlss(problem, &base, RunControl::budget(100_000), &cfg);
        let b = run_parallel_gmlss(problem, &base, RunControl::budget(100_000), &cfg);
        let diff = (a.estimate.tau - b.estimate.tau).abs();
        let tol = 5.0 * (a.estimate.variance.max(0.0) + b.estimate.variance.max(0.0)).sqrt();
        assert!(
            diff <= tol.max(5e-3),
            "runs disagree: {} vs {}",
            a.estimate.tau,
            b.estimate.tau
        );
        assert!(a.estimate.steps >= 100_000 && b.estimate.steps >= 100_000);
    }

    #[test]
    fn single_thread_parallel_works() {
        let model = Walk;
        let v = vf();
        let problem = Problem::new(&model, &v, 40);
        let base = GMlssConfig::new(PartitionPlan::trivial(), RunControl::budget(1));
        let cfg = ParallelConfig {
            threads: 1,
            sync_every: 5_000,
            seed: 1,
            bootstrap_resamples: 20,
            batch_width: 0,
        };
        let res = run_parallel_gmlss(problem, &base, RunControl::budget(20_000), &cfg);
        assert!(res.estimate.steps >= 20_000);
    }

    #[test]
    fn short_budget_first_chunk_is_clamped() {
        // Regression test: budget far below sync_every must not overshoot
        // by threads × sync_every. With the clamp, the first chunk is
        // budget/threads and the run stops within one chunk of the budget.
        let model = Walk;
        let v = vf();
        let problem = Problem::new(&model, &v, 50);
        let budget = 10_000;
        let cfg = ParallelConfig {
            threads: 4,
            sync_every: 65_536, // silent foot-gun before the clamp
            seed: 5,
            bootstrap_resamples: 20,
            batch_width: 0,
        };
        let run = run_parallel(problem, &SrsEstimator, RunControl::budget(budget), &cfg).estimate;
        assert!(run.steps >= budget, "budget must still be spent");
        // Worst case: each of 4 workers overshoots its 2.5k chunk by one
        // root (≤ horizon), plus one straggler chunk racing the stop flag.
        assert!(
            run.steps < 2 * budget,
            "steps {} overshot a {} budget — first chunk not clamped?",
            run.steps,
            budget
        );
    }

    #[test]
    fn srs_and_smlss_run_through_the_generic_driver() {
        let model = Walk;
        let v = vf();
        let problem = Problem::new(&model, &v, 80);
        let cfg = ParallelConfig {
            threads: 3,
            sync_every: 10_000,
            seed: 9,
            bootstrap_resamples: 20,
            batch_width: 0,
        };

        let srs = run_parallel(problem, &SrsEstimator, RunControl::budget(150_000), &cfg);
        assert!(srs.estimate.steps >= 150_000);
        assert!(srs.estimate.tau > 0.0);

        let smlss_cfg = SMlssConfig::new(
            PartitionPlan::new(vec![0.4, 0.7]).unwrap(),
            RunControl::budget(1),
        );
        let smlss = run_parallel(problem, &smlss_cfg, RunControl::budget(150_000), &cfg);
        assert!(smlss.estimate.steps >= 150_000);

        let diff = (srs.estimate.tau - smlss.estimate.tau).abs();
        let tol = 5.0 * (srs.estimate.variance.max(0.0) + smlss.estimate.variance.max(0.0)).sqrt();
        assert!(
            diff <= tol.max(5e-3),
            "srs {} vs smlss {} through run_parallel",
            srs.estimate.tau,
            smlss.estimate.tau
        );
    }

    #[test]
    fn batched_parallel_at_one_thread_matches_batched_sequential() {
        // Frontier chunks keep the chunk-boundary-invisibility property,
        // so worker 0 of a batched parallel run retraces a batched
        // sequential run over the same stream bit for bit.
        let model = Walk;
        let v = vf();
        let problem = Problem::new(&model, &v, 60);
        let control = RunControl::budget(80_000);
        let seed = 23u64;
        let width = 16usize;

        let seq = crate::estimator::run_sequential_batched(
            &SrsEstimator,
            problem,
            control,
            &mut StreamFactory::new(seed).stream(0),
            width,
        )
        .estimate;

        let par = run_parallel(
            problem,
            &SrsEstimator,
            control,
            &ParallelConfig {
                threads: 1,
                sync_every: 9_000,
                seed,
                bootstrap_resamples: 20,
                batch_width: width,
            },
        )
        .estimate;

        assert_eq!(par.steps, seq.steps);
        assert_eq!(par.n_roots, seq.n_roots);
        assert_eq!(par.hits, seq.hits);
        assert_eq!(par.tau.to_bits(), seq.tau.to_bits());
    }

    #[test]
    fn batched_multiworker_parallel_agrees_statistically() {
        let model = Walk;
        let v = vf();
        let problem = Problem::new(&model, &v, 80);
        let cfg = ParallelConfig {
            threads: 3,
            sync_every: 10_000,
            seed: 14,
            bootstrap_resamples: 20,
            batch_width: 32,
        };
        let batched = run_parallel(problem, &SrsEstimator, RunControl::budget(150_000), &cfg);
        assert!(batched.estimate.steps >= 150_000);
        let scalar_cfg = ParallelConfig {
            batch_width: 0,
            ..cfg
        };
        let scalar = run_parallel(
            problem,
            &SrsEstimator,
            RunControl::budget(150_000),
            &scalar_cfg,
        );
        let diff = (batched.estimate.tau - scalar.estimate.tau).abs();
        let tol =
            5.0 * (batched.estimate.variance.max(0.0) + scalar.estimate.variance.max(0.0)).sqrt();
        assert!(
            diff <= tol.max(5e-3),
            "batched {} vs scalar {}",
            batched.estimate.tau,
            scalar.estimate.tau
        );
    }

    #[test]
    fn parallel_target_mode_stops_on_quality() {
        let model = Walk;
        let v = vf();
        let problem = Problem::new(&model, &v, 60);
        let base = GMlssConfig::new(
            PartitionPlan::new(vec![0.5]).unwrap(),
            RunControl::budget(1),
        );
        let res = run_parallel_to_target(
            problem,
            &base,
            QualityTarget::RelativeError {
                target: 0.25,
                reference: None,
            },
            2,
            13,
        );
        assert!(res.estimate.self_relative_error() <= 0.25);
    }
}
