//! Memoized partition plans for repeated durability queries.
//!
//! Deriving a level plan is the expensive prefix of every MLSS query: a
//! pilot run (thousands of `g` invocations) followed by a tail fit
//! ([`crate::partition::balanced_plan`]) or a greedy search
//! ([`crate::partition::greedy`]). A serving engine answering many
//! queries over the same model repeats that work verbatim — the paper's
//! DBMS integration (§6.4) calls `mlss_estimate` per query, and before
//! this cache each call re-ran the pilot from scratch.
//!
//! [`PlanCache`] memoizes derived plans keyed by **(model fingerprint,
//! method, level count)**. The fingerprint must capture everything the
//! plan depends on: the model parameters *and* the query shape (threshold
//! β and horizon), since the value function is `f = min{z/β, 1}` and the
//! pilot simulates to the horizon. [`fingerprint`] builds such a key with
//! FNV-1a over the canonical byte encoding of its inputs.
//!
//! Hit/miss counters are exposed raw and as an
//! [`crate::estimator::Diagnostics`] block so the serving layer can
//! surface cache effectiveness next to estimator health indicators.

use crate::estimator::Diagnostics;
use crate::levels::PartitionPlan;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cache key: model fingerprint × method name × requested level count.
pub type PlanKey = (u64, String, usize);

/// A cached plan plus the pilot's τ̂ extrapolation hint.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The memoized partition plan.
    pub plan: PartitionPlan,
    /// The pilot's (biased) τ̂ extrapolation, as returned by
    /// [`crate::partition::balanced_plan`]. NaN when not applicable.
    pub tau_hint: f64,
}

/// Result of a traced cache lookup ([`PlanCache::get_or_build_traced`]).
#[derive(Debug, Clone)]
pub struct PlanLookup {
    /// The (possibly freshly built) partition plan.
    pub plan: PartitionPlan,
    /// The pilot's τ̂ extrapolation hint.
    pub tau_hint: f64,
    /// Was this lookup answered from the cache (no pilot ran)?
    pub hit: bool,
}

/// A concurrent memo table of derived partition plans.
///
/// Thread-safe; `get_or_build` holds no lock while running the builder,
/// so concurrent misses on the *same* key may race and both run the
/// pilot — the first result wins and later ones are discarded. That keeps
/// slow pilots from serializing unrelated queries.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<BTreeMap<PlanKey, CachedPlan>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up the plan for `(fingerprint, method, levels)`, running
    /// `build` (pilot + partition search) on a miss and memoizing its
    /// result. Returns the plan and the pilot τ̂ hint.
    pub fn get_or_build(
        &self,
        fingerprint: u64,
        method: &str,
        levels: usize,
        build: impl FnOnce() -> (PartitionPlan, f64),
    ) -> (PartitionPlan, f64) {
        let lookup = self.get_or_build_traced(fingerprint, method, levels, build);
        (lookup.plan, lookup.tau_hint)
    }

    /// Like [`PlanCache::get_or_build`], but also reporting whether this
    /// particular lookup was answered from the cache — the per-query
    /// provenance the serving layer records in its `results` rows (the
    /// aggregate counters can't attribute a hit to a query).
    pub fn get_or_build_traced(
        &self,
        fingerprint: u64,
        method: &str,
        levels: usize,
        build: impl FnOnce() -> (PartitionPlan, f64),
    ) -> PlanLookup {
        let key = (fingerprint, method.to_string(), levels);
        if let Some(cached) = self.plans.lock().expect("plan cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return PlanLookup {
                plan: cached.plan.clone(),
                tau_hint: cached.tau_hint,
                hit: true,
            };
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (plan, tau_hint) = build();
        let mut plans = self.plans.lock().expect("plan cache lock");
        let entry = plans.entry(key).or_insert_with(|| CachedPlan {
            plan: plan.clone(),
            tau_hint,
        });
        PlanLookup {
            plan: entry.plan.clone(),
            tau_hint: entry.tau_hint,
            hit: false,
        }
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran the builder.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of memoized plans.
    pub fn len(&self) -> usize {
        self.plans.lock().expect("plan cache lock").len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all memoized plans (counters are retained).
    pub fn clear(&self) {
        self.plans.lock().expect("plan cache lock").clear();
    }

    /// Cache effectiveness as a [`Diagnostics`] block (`plan_cache_hits`,
    /// `plan_cache_misses`, `plan_cache_entries`).
    pub fn diagnostics(&self) -> Diagnostics {
        Diagnostics {
            estimator: "plan_cache",
            skip_events: 0,
            details: vec![
                ("plan_cache_hits".to_string(), self.hits() as f64),
                ("plan_cache_misses".to_string(), self.misses() as f64),
                ("plan_cache_entries".to_string(), self.len() as f64),
            ],
        }
    }
}

/// FNV-1a accumulator for building model fingerprints.
///
/// Fold in the model name, every parameter (sorted, name + value bits),
/// the query threshold β, and the horizon; the result keys the
/// [`PlanCache`]. Two queries with the same fingerprint may share a plan;
/// unequal fingerprints never collide on purpose (hash collisions are
/// 2⁻⁶⁴-level accidents, acceptable for a heuristic plan choice — a wrong
/// plan affects efficiency, never correctness).
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// FNV-1a offset basis.
    pub fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    /// Fold in raw bytes.
    pub fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self
    }

    /// Fold in a string (length-prefixed so `("ab","c")` ≠ `("a","bc")`).
    pub fn text(self, s: &str) -> Self {
        self.bytes(&(s.len() as u64).to_le_bytes())
            .bytes(s.as_bytes())
    }

    /// Fold in a float by bit pattern (`-0.0` normalized to `0.0`).
    pub fn f64(self, v: f64) -> Self {
        let v = if v == 0.0 { 0.0 } else { v };
        self.bytes(&v.to_bits().to_le_bytes())
    }

    /// Fold in an integer.
    pub fn u64(self, v: u64) -> Self {
        self.bytes(&v.to_le_bytes())
    }

    /// The finished fingerprint.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Fingerprint a named model with sorted `(param, value)` pairs plus the
/// query shape — the standard key for [`PlanCache::get_or_build`].
pub fn fingerprint<'a>(
    model: &str,
    params: impl IntoIterator<Item = (&'a str, f64)>,
    beta: f64,
    horizon: u64,
) -> u64 {
    let mut fp = Fingerprint::new().text(model);
    for (name, value) in params {
        fp = fp.text(name).f64(value);
    }
    fp.f64(beta).u64(horizon).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> (PartitionPlan, f64) {
        (PartitionPlan::new(vec![0.4, 0.7]).unwrap(), 0.01)
    }

    #[test]
    fn miss_then_hit() {
        let cache = PlanCache::new();
        let fp = fingerprint("queue", [("rate", 0.5)], 8.0, 100);
        let mut built = 0;
        let (p1, _) = cache.get_or_build(fp, "gmlss", 4, || {
            built += 1;
            plan()
        });
        let (p2, hint) = cache.get_or_build(fp, "gmlss", 4, || {
            built += 1;
            plan()
        });
        assert_eq!(built, 1, "second lookup must not rebuild");
        assert_eq!(p1, p2);
        assert_eq!(hint, 0.01);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn key_components_separate_entries() {
        let cache = PlanCache::new();
        let fp = fingerprint("queue", [("rate", 0.5)], 8.0, 100);
        let other = fingerprint("queue", [("rate", 0.6)], 8.0, 100);
        cache.get_or_build(fp, "gmlss", 4, plan);
        cache.get_or_build(fp, "smlss", 4, plan); // new method
        cache.get_or_build(fp, "gmlss", 5, plan); // new level count
        cache.get_or_build(other, "gmlss", 4, plan); // new fingerprint
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn fingerprint_sensitivity() {
        let base = fingerprint("cpp", [("a", 1.0), ("b", 2.0)], 25.0, 80);
        assert_eq!(base, fingerprint("cpp", [("a", 1.0), ("b", 2.0)], 25.0, 80));
        assert_ne!(base, fingerprint("cpp", [("a", 1.0), ("b", 2.5)], 25.0, 80));
        assert_ne!(base, fingerprint("cpp", [("a", 1.0), ("b", 2.0)], 26.0, 80));
        assert_ne!(base, fingerprint("cpp", [("a", 1.0), ("b", 2.0)], 25.0, 81));
        assert_ne!(base, fingerprint("ccp", [("a", 1.0), ("b", 2.0)], 25.0, 80));
        // Length-prefixed strings: shifting a byte between names differs.
        assert_ne!(
            fingerprint("m", [("ab", 1.0)], 1.0, 1),
            fingerprint("m", [("a", 1.0)], 1.0, 1)
        );
    }

    #[test]
    fn diagnostics_surface_counters() {
        let cache = PlanCache::new();
        cache.get_or_build(1, "gmlss", 4, plan);
        cache.get_or_build(1, "gmlss", 4, plan);
        let d = cache.diagnostics();
        assert_eq!(d.estimator, "plan_cache");
        let get = |k: &str| {
            d.details
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("plan_cache_hits"), 1.0);
        assert_eq!(get("plan_cache_misses"), 1.0);
        assert_eq!(get("plan_cache_entries"), 1.0);
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = PlanCache::new();
        cache.get_or_build(1, "g", 4, plan);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 1);
        cache.get_or_build(1, "g", 4, plan);
        assert_eq!(cache.misses(), 2, "cleared entries rebuild");
    }
}
