//! Memoized partition plans for repeated durability queries.
//!
//! Deriving a level plan is the expensive prefix of every MLSS query: a
//! pilot run (thousands of `g` invocations) followed by a tail fit
//! ([`crate::partition::balanced_plan`]) or a greedy search
//! ([`crate::partition::greedy`]). A serving engine answering many
//! queries over the same model repeats that work verbatim — the paper's
//! DBMS integration (§6.4) calls `mlss_estimate` per query, and before
//! this cache each call re-ran the pilot from scratch.
//!
//! [`PlanCache`] memoizes derived plans keyed by **(model fingerprint,
//! method, level count)**. The fingerprint must capture everything the
//! plan depends on: the model parameters *and* the query shape (threshold
//! β and horizon), since the value function is `f = min{z/β, 1}` and the
//! pilot simulates to the horizon. [`fingerprint`] builds such a key with
//! FNV-1a over the canonical byte encoding of its inputs.
//!
//! Hit/miss counters are exposed raw and as an
//! [`crate::estimator::Diagnostics`] block so the serving layer can
//! surface cache effectiveness next to estimator health indicators.

use crate::estimator::Diagnostics;
use crate::levels::PartitionPlan;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Callback invoked after every freshly built plan is memoized — the
/// durability layer journals plan entries through this. Seeded entries
/// ([`PlanCache::seed`], the replay path) are not reported. Runs outside
/// the cache lock; must not call back into the cache.
pub type PlanObserver = Arc<dyn Fn(u64, &str, usize, &CachedPlan) + Send + Sync>;

/// Cache key: model fingerprint × method name × requested level count.
pub type PlanKey = (u64, String, usize);

/// The shared hit/miss/evict counter surface of the serving-layer caches.
///
/// [`PlanCache`] and [`crate::shard_store::ShardStore`] both report
/// through this one type, so their [`Diagnostics`] blocks have the same
/// shape (`<name>_hits`, `<name>_misses`, `<name>_evictions`,
/// `<name>_entries`) and `SHOW DIAGNOSTICS` can render any cache the
/// same way. Counters are monotonic over the cache's lifetime; `clear()`
/// on the owning cache counts dropped entries as evictions.
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheCounters {
    /// All-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one lookup answered from the cache.
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one lookup the cache could not answer.
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` entries dropped to make room (or cleared).
    pub fn evicted(&self, n: u64) {
        self.evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups the cache could not answer.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped (capacity pressure or an explicit clear).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The counters plus a point-in-time entry count as a [`Diagnostics`]
    /// block named `name` (details are `<name>_hits`, `<name>_misses`,
    /// `<name>_evictions`, `<name>_entries`).
    pub fn diagnostics(&self, name: &'static str, entries: usize) -> Diagnostics {
        Diagnostics {
            estimator: name,
            skip_events: 0,
            details: vec![
                (format!("{name}_hits"), self.hits() as f64),
                (format!("{name}_misses"), self.misses() as f64),
                (format!("{name}_evictions"), self.evictions() as f64),
                (format!("{name}_entries"), entries as f64),
            ],
        }
    }
}

/// A cached plan plus the pilot's τ̂ extrapolation hint.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The memoized partition plan.
    pub plan: PartitionPlan,
    /// The pilot's (biased) τ̂ extrapolation, as returned by
    /// [`crate::partition::balanced_plan`]. NaN when not applicable.
    pub tau_hint: f64,
}

/// Result of a traced cache lookup ([`PlanCache::get_or_build_traced`]).
#[derive(Debug, Clone)]
pub struct PlanLookup {
    /// The (possibly freshly built) partition plan.
    pub plan: PartitionPlan,
    /// The pilot's τ̂ extrapolation hint.
    pub tau_hint: f64,
    /// Was this lookup answered from the cache (no pilot ran)?
    pub hit: bool,
}

/// A memo-table entry: either the finished plan or a marker that some
/// thread is currently running the pilot for this key.
#[derive(Debug)]
enum Entry {
    /// A builder is running; waiters block on the condvar.
    Building,
    /// The memoized plan.
    Ready(CachedPlan),
}

/// A concurrent memo table of derived partition plans.
///
/// Thread-safe and **single-flight**: concurrent lookups of the same key
/// run the builder exactly once — the first caller becomes the builder
/// (holding no lock while the pilot runs) and later callers block until
/// the plan is ready, then count as hits. This is what lets the
/// scheduler defer plan derivation to a query's first slice without N
/// identical cold submissions paying N pilots. If a builder panics, its
/// in-flight marker is removed and one waiter takes over as the builder.
#[derive(Default)]
pub struct PlanCache {
    plans: Mutex<BTreeMap<PlanKey, Entry>>,
    ready_cv: Condvar,
    counters: CacheCounters,
    observer: Mutex<Option<PlanObserver>>,
    /// Micro-probe results of the `batch_width=auto` policy, keyed by
    /// query fingerprint: the first auto query of a family pays the
    /// calibration burst, repeats read the winner here. A pure
    /// performance hint — never WAL-journaled, never part of plan
    /// identity (a lost entry only re-probes).
    widths: Mutex<BTreeMap<u64, WidthMemo>>,
}

/// A memoized `batch_width=auto` probe winner plus the cost regime it
/// was measured in, so the policy can notice when a family's workload
/// drifts away from what the probe saw and re-calibrate.
#[derive(Debug, Clone, Copy)]
pub struct WidthMemo {
    /// The calibrated winner.
    pub width: usize,
    /// Steps/root the family was running at when the probe was taken
    /// (`None` for the first probe, before any full run was observed).
    pub probed_regime: Option<f64>,
    /// Latest observed steps/root of a completed run of the family.
    pub observed_regime: Option<f64>,
}

impl WidthMemo {
    /// Has the observed regime drifted more than `factor`x from the
    /// probed one (either direction)? Unknown regimes never drift.
    pub fn drifted(&self, factor: f64) -> bool {
        match (self.probed_regime, self.observed_regime) {
            (Some(probed), Some(observed)) if probed > 0.0 && observed > 0.0 => {
                let ratio = observed / probed;
                ratio > factor || ratio < 1.0 / factor
            }
            _ => false,
        }
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("entries", &self.len())
            .finish_non_exhaustive()
    }
}

/// Removes a `Building` marker if the builder unwinds, so waiters can
/// take over instead of blocking forever.
struct BuildGuard<'a> {
    cache: &'a PlanCache,
    key: Option<PlanKey>,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            let mut plans = self.cache.lock();
            if matches!(plans.get(&key), Some(Entry::Building)) {
                plans.remove(&key);
            }
            drop(plans);
            self.cache.ready_cv.notify_all();
        }
    }
}

impl PlanCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<PlanKey, Entry>> {
        self.plans.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Install the [`PlanObserver`] (replacing any previous one).
    pub fn set_observer(&self, obs: PlanObserver) {
        *self.observer.lock().unwrap_or_else(PoisonError::into_inner) = Some(obs);
    }

    fn observer(&self) -> Option<PlanObserver> {
        self.observer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Insert a ready plan directly — the WAL replay path. Counts
    /// neither a hit nor a miss and does not notify the observer (the
    /// entry is already durable). Overwrites any resident entry.
    pub fn seed(&self, fingerprint: u64, method: &str, levels: usize, cached: CachedPlan) {
        let key = (fingerprint, method.to_string(), levels);
        self.lock().insert(key, Entry::Ready(cached));
        self.ready_cv.notify_all();
    }

    /// The memoized `batch_width=auto` probe winner for this query
    /// fingerprint, if one has been calibrated.
    pub fn cached_width(&self, fingerprint: u64) -> Option<usize> {
        self.width_memo(fingerprint).map(|m| m.width)
    }

    /// The full memoized probe entry (winner + regimes) for this query
    /// fingerprint.
    pub fn width_memo(&self, fingerprint: u64) -> Option<WidthMemo> {
        self.widths
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&fingerprint)
            .copied()
    }

    /// Memoize a `batch_width=auto` probe winner for `fingerprint`, so
    /// repeat queries of the family skip the calibration burst.
    /// `regime` records the steps/root the family was observed at when
    /// the probe ran (the drift baseline); a previously observed regime
    /// is carried forward as the new baseline on re-probe.
    pub fn memo_width(&self, fingerprint: u64, width: usize, regime: Option<f64>) {
        let mut widths = self.widths.lock().unwrap_or_else(PoisonError::into_inner);
        let probed_regime = regime.or_else(|| {
            widths
                .get(&fingerprint)
                .and_then(|m| m.observed_regime.or(m.probed_regime))
        });
        widths.insert(
            fingerprint,
            WidthMemo {
                width,
                probed_regime,
                observed_regime: probed_regime,
            },
        );
    }

    /// Record the steps/root a completed run of this family actually
    /// exhibited. A no-op for families with no memoized probe (static
    /// and requested widths have nothing to re-calibrate).
    pub fn observe_regime(&self, fingerprint: u64, steps_per_root: f64) {
        if !steps_per_root.is_finite() || steps_per_root <= 0.0 {
            return;
        }
        let mut widths = self.widths.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(memo) = widths.get_mut(&fingerprint) {
            memo.observed_regime = Some(steps_per_root);
            if memo.probed_regime.is_none() {
                // First observation after a cold probe anchors the
                // baseline the drift check compares against.
                memo.probed_regime = Some(steps_per_root);
            }
        }
    }

    /// Snapshot every ready entry — the compaction walk.
    pub fn entries(&self) -> Vec<(PlanKey, CachedPlan)> {
        self.lock()
            .iter()
            .filter_map(|(k, e)| match e {
                Entry::Ready(cached) => Some((k.clone(), cached.clone())),
                Entry::Building => None,
            })
            .collect()
    }

    /// Look up the plan for `(fingerprint, method, levels)`, running
    /// `build` (pilot + partition search) on a miss and memoizing its
    /// result. Returns the plan and the pilot τ̂ hint.
    pub fn get_or_build(
        &self,
        fingerprint: u64,
        method: &str,
        levels: usize,
        build: impl FnOnce() -> (PartitionPlan, f64),
    ) -> (PartitionPlan, f64) {
        let lookup = self.get_or_build_traced(fingerprint, method, levels, build);
        (lookup.plan, lookup.tau_hint)
    }

    /// Like [`PlanCache::get_or_build`], but also reporting whether this
    /// particular lookup was answered from the cache — the per-query
    /// provenance the serving layer records in its `results` rows (the
    /// aggregate counters can't attribute a hit to a query). A lookup
    /// that blocked on another thread's in-flight build counts as a hit:
    /// no pilot ran on its behalf.
    pub fn get_or_build_traced(
        &self,
        fingerprint: u64,
        method: &str,
        levels: usize,
        build: impl FnOnce() -> (PartitionPlan, f64),
    ) -> PlanLookup {
        let key = (fingerprint, method.to_string(), levels);
        let mut plans = self.lock();
        loop {
            match plans.get(&key) {
                Some(Entry::Ready(cached)) => {
                    self.counters.hit();
                    return PlanLookup {
                        plan: cached.plan.clone(),
                        tau_hint: cached.tau_hint,
                        hit: true,
                    };
                }
                Some(Entry::Building) => {
                    plans = self
                        .ready_cv
                        .wait(plans)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                None => {
                    plans.insert(key.clone(), Entry::Building);
                    break;
                }
            }
        }
        drop(plans);
        // Run the pilot outside the lock; the guard clears the Building
        // marker (waking waiters to take over) if `build` panics.
        self.counters.miss();
        let mut guard = BuildGuard {
            cache: self,
            key: Some(key.clone()),
        };
        let (plan, tau_hint) = build();
        guard.key = None;
        let cached = CachedPlan {
            plan: plan.clone(),
            tau_hint,
        };
        if let Some(obs) = self.observer() {
            obs(key.0, &key.1, key.2, &cached);
        }
        self.lock().insert(key, Entry::Ready(cached));
        self.ready_cv.notify_all();
        PlanLookup {
            plan,
            tau_hint,
            hit: false,
        }
    }

    /// Non-blocking lookup: the memoized plan if (and only if) it is
    /// ready, counted as a hit. Returns `None` — without waiting, and
    /// without counting a miss — when the key is absent or another
    /// thread is still building it. The submit path uses this to decide
    /// between dispatching immediately (warm plan) and scheduling plan
    /// derivation as the query's first slice.
    pub fn lookup_traced(
        &self,
        fingerprint: u64,
        method: &str,
        levels: usize,
    ) -> Option<PlanLookup> {
        let key = (fingerprint, method.to_string(), levels);
        let plans = self.lock();
        match plans.get(&key) {
            Some(Entry::Ready(cached)) => {
                self.counters.hit();
                Some(PlanLookup {
                    plan: cached.plan.clone(),
                    tau_hint: cached.tau_hint,
                    hit: true,
                })
            }
            _ => None,
        }
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.counters.hits()
    }

    /// Lookups that ran the builder.
    pub fn misses(&self) -> u64 {
        self.counters.misses()
    }

    /// Memoized plans dropped by [`PlanCache::clear`].
    pub fn evictions(&self) -> u64 {
        self.counters.evictions()
    }

    /// The shared counter surface (for callers aggregating several
    /// caches uniformly).
    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }

    /// Number of memoized (ready) plans.
    pub fn len(&self) -> usize {
        self.lock()
            .values()
            .filter(|e| matches!(e, Entry::Ready(_)))
            .count()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all memoized plans, counting them as evictions (hit/miss
    /// counters are retained; in-flight builds complete and re-memoize).
    pub fn clear(&self) {
        let mut plans = self.lock();
        let before = plans.len();
        plans.retain(|_, e| matches!(e, Entry::Building));
        let dropped = (before - plans.len()) as u64;
        drop(plans);
        self.counters.evicted(dropped);
    }

    /// Cache effectiveness as a [`Diagnostics`] block (`plan_cache_hits`,
    /// `plan_cache_misses`, `plan_cache_evictions`, `plan_cache_entries`
    /// — the shared [`CacheCounters`] shape).
    pub fn diagnostics(&self) -> Diagnostics {
        self.counters.diagnostics("plan_cache", self.len())
    }
}

/// FNV-1a accumulator for building model fingerprints.
///
/// Fold in the model name, every parameter (sorted, name + value bits),
/// the query threshold β, and the horizon; the result keys the
/// [`PlanCache`]. Two queries with the same fingerprint may share a plan;
/// unequal fingerprints never collide on purpose (hash collisions are
/// 2⁻⁶⁴-level accidents, acceptable for a heuristic plan choice — a wrong
/// plan affects efficiency, never correctness).
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// FNV-1a offset basis.
    pub fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    /// Fold in raw bytes.
    pub fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self
    }

    /// Fold in a string (length-prefixed so `("ab","c")` ≠ `("a","bc")`).
    pub fn text(self, s: &str) -> Self {
        self.bytes(&(s.len() as u64).to_le_bytes())
            .bytes(s.as_bytes())
    }

    /// Fold in a float by bit pattern (`-0.0` normalized to `0.0`).
    pub fn f64(self, v: f64) -> Self {
        let v = if v == 0.0 { 0.0 } else { v };
        self.bytes(&v.to_bits().to_le_bytes())
    }

    /// Fold in an integer.
    pub fn u64(self, v: u64) -> Self {
        self.bytes(&v.to_le_bytes())
    }

    /// The finished fingerprint.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Fingerprint a named model with sorted `(param, value)` pairs plus the
/// query shape — the standard key for [`PlanCache::get_or_build`].
pub fn fingerprint<'a>(
    model: &str,
    params: impl IntoIterator<Item = (&'a str, f64)>,
    beta: f64,
    horizon: u64,
) -> u64 {
    let mut fp = Fingerprint::new().text(model);
    for (name, value) in params {
        fp = fp.text(name).f64(value);
    }
    fp.f64(beta).u64(horizon).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> (PartitionPlan, f64) {
        (PartitionPlan::new(vec![0.4, 0.7]).unwrap(), 0.01)
    }

    #[test]
    fn miss_then_hit() {
        let cache = PlanCache::new();
        let fp = fingerprint("queue", [("rate", 0.5)], 8.0, 100);
        let mut built = 0;
        let (p1, _) = cache.get_or_build(fp, "gmlss", 4, || {
            built += 1;
            plan()
        });
        let (p2, hint) = cache.get_or_build(fp, "gmlss", 4, || {
            built += 1;
            plan()
        });
        assert_eq!(built, 1, "second lookup must not rebuild");
        assert_eq!(p1, p2);
        assert_eq!(hint, 0.01);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn key_components_separate_entries() {
        let cache = PlanCache::new();
        let fp = fingerprint("queue", [("rate", 0.5)], 8.0, 100);
        let other = fingerprint("queue", [("rate", 0.6)], 8.0, 100);
        cache.get_or_build(fp, "gmlss", 4, plan);
        cache.get_or_build(fp, "smlss", 4, plan); // new method
        cache.get_or_build(fp, "gmlss", 5, plan); // new level count
        cache.get_or_build(other, "gmlss", 4, plan); // new fingerprint
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn fingerprint_sensitivity() {
        let base = fingerprint("cpp", [("a", 1.0), ("b", 2.0)], 25.0, 80);
        assert_eq!(base, fingerprint("cpp", [("a", 1.0), ("b", 2.0)], 25.0, 80));
        assert_ne!(base, fingerprint("cpp", [("a", 1.0), ("b", 2.5)], 25.0, 80));
        assert_ne!(base, fingerprint("cpp", [("a", 1.0), ("b", 2.0)], 26.0, 80));
        assert_ne!(base, fingerprint("cpp", [("a", 1.0), ("b", 2.0)], 25.0, 81));
        assert_ne!(base, fingerprint("ccp", [("a", 1.0), ("b", 2.0)], 25.0, 80));
        // Length-prefixed strings: shifting a byte between names differs.
        assert_ne!(
            fingerprint("m", [("ab", 1.0)], 1.0, 1),
            fingerprint("m", [("a", 1.0)], 1.0, 1)
        );
    }

    #[test]
    fn diagnostics_surface_counters() {
        let cache = PlanCache::new();
        cache.get_or_build(1, "gmlss", 4, plan);
        cache.get_or_build(1, "gmlss", 4, plan);
        let d = cache.diagnostics();
        assert_eq!(d.estimator, "plan_cache");
        let get = |k: &str| {
            d.details
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("plan_cache_hits"), 1.0);
        assert_eq!(get("plan_cache_misses"), 1.0);
        assert_eq!(get("plan_cache_entries"), 1.0);
    }

    #[test]
    fn concurrent_lookups_are_single_flight() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let cache = Arc::new(PlanCache::new());
        let builds = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            let builds = Arc::clone(&builds);
            handles.push(std::thread::spawn(move || {
                cache.get_or_build_traced(9, "gmlss", 4, || {
                    builds.fetch_add(1, Ordering::SeqCst);
                    // Hold the build long enough that the other threads
                    // arrive while it is in flight.
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    plan()
                })
            }));
        }
        let lookups: Vec<PlanLookup> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(builds.load(Ordering::SeqCst), 1, "exactly one pilot runs");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 3, "waiters count as hits");
        assert_eq!(lookups.iter().filter(|l| !l.hit).count(), 1);
        for l in &lookups {
            assert_eq!(l.plan, plan().0);
        }
    }

    #[test]
    fn lookup_traced_never_builds() {
        let cache = PlanCache::new();
        assert!(cache.lookup_traced(5, "gmlss", 4).is_none());
        assert_eq!(cache.misses(), 0, "peek must not count a miss");
        cache.get_or_build(5, "gmlss", 4, plan);
        let l = cache.lookup_traced(5, "gmlss", 4).unwrap();
        assert!(l.hit);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn panicking_builder_hands_over_to_waiters() {
        use std::sync::Arc;
        // Keep the injected panic out of the test output (the scheduler
        // tests install the same filter; hooks chain safely).
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if !format!("{info}").contains("injected") {
                    default(info);
                }
            }));
        });
        let cache = Arc::new(PlanCache::new());
        let doomed = Arc::clone(&cache);
        let builder = std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                doomed.get_or_build_traced(3, "gmlss", 4, || {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    panic!("injected pilot panic");
                })
            }));
            assert!(result.is_err());
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        // This lookup arrives while the doomed build is in flight; after
        // the panic it must take over and build successfully.
        let lookup = cache.get_or_build_traced(3, "gmlss", 4, plan);
        builder.join().unwrap();
        assert_eq!(lookup.plan, plan().0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = PlanCache::new();
        cache.get_or_build(1, "g", 4, plan);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.evictions(), 1, "clear counts dropped plans");
        cache.get_or_build(1, "g", 4, plan);
        assert_eq!(cache.misses(), 2, "cleared entries rebuild");
    }
}
