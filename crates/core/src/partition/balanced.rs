//! Automated *balanced-growth* partition plans (§5.1).
//!
//! Theory ([L'Ecuyer et al. 2006], Eq. 12-13) says the best fixed-ratio
//! MLSS design makes all level advancement probabilities equal:
//! `p_i = τ^{1/m}`. The paper tunes such plans manually ("MLSS-BAL"); we
//! automate the tuning so benchmarks and users get the yardstick without
//! hand work:
//!
//! 1. run a pilot of SRS paths and record each path's maximum value
//!    `M = max_t f(x_t)`;
//! 2. fit a log-linear tail `ln P(M ≥ x) ≈ a + b·x` over the observable
//!    range (the standard rare-event extrapolation);
//! 3. place boundaries `β_i` so the fitted `ln P(M ≥ β_i)` are equally
//!    spaced between 0 and the extrapolated `ln P(M ≥ 1) = ln τ̂`.
//!
//! On processes with near-exponential max-value tails (queues, CPP, most
//! additive-noise models) this yields advancement probabilities within a
//! few percent of each other, which our tests verify.

use crate::levels::PartitionPlan;
use crate::model::SimulationModel;
use crate::query::{Problem, ValueFunction};
use crate::rng::SimRng;

/// Build a balanced-growth plan with `m` levels using `pilot_paths` SRS
/// pilot simulations.
///
/// Returns the plan plus the pilot-estimated `τ̂` extrapolation (useful as
/// a sanity hint; it is *not* an unbiased estimate).
pub fn balanced_plan<M, V>(
    problem: Problem<'_, M, V>,
    m: usize,
    pilot_paths: usize,
    rng: &mut SimRng,
) -> (PartitionPlan, f64)
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    assert!(m >= 1);
    assert!(pilot_paths >= 10, "need a non-trivial pilot");
    if m == 1 {
        return (PartitionPlan::trivial(), f64::NAN);
    }

    // 1. Pilot maxima.
    let mut maxima = Vec::with_capacity(pilot_paths);
    for _ in 0..pilot_paths {
        let mut state = problem.model.initial_state();
        let mut best = problem.value(&state);
        for t in 1..=problem.horizon {
            state = problem.model.step(&state, t, rng);
            let f = problem.value(&state);
            if f > best {
                best = f;
            }
            if f >= 1.0 {
                break;
            }
        }
        maxima.push(best);
    }
    maxima.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));

    // 2. Log-linear tail fit of the empirical survival function over the
    //    informative band S(x) ∈ [2%, 90%].
    let n = maxima.len();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (i, &x) in maxima.iter().enumerate() {
        let survival = (n - i) as f64 / n as f64;
        if !(0.02..=0.90).contains(&survival) || x >= 1.0 {
            continue;
        }
        xs.push(x);
        ys.push(survival.ln());
    }
    let (a, b) = if xs.len() >= 2 {
        linear_fit(&xs, &ys)
    } else {
        // Degenerate pilot (e.g. almost every path hits): spread uniformly.
        return (PartitionPlan::uniform(m), f64::NAN);
    };

    // Guard against a non-decaying fit (common-event queries): fall back
    // to uniform spacing.
    if b >= -1e-9 {
        return (PartitionPlan::uniform(m), f64::NAN);
    }

    // 3. Equal log-probability spacing. ln S(β_i) = (i/m)·ln τ̃ with
    //    ln τ̃ = a + b (extrapolated at x = 1).
    let ln_tau = a + b;
    let tau_hint = ln_tau.exp().clamp(0.0, 1.0);
    let mut boundaries = Vec::with_capacity(m - 1);
    for i in 1..m {
        let target_ln_s = ln_tau * i as f64 / m as f64;
        let beta = (target_ln_s - a) / b;
        boundaries.push(beta);
    }
    // Clamp into (0,1), keep strictly increasing with a minimum gap.
    let eps = 1e-6;
    let mut cleaned: Vec<f64> = Vec::with_capacity(boundaries.len());
    for b in boundaries {
        let mut v = b.clamp(eps, 1.0 - eps);
        if let Some(&last) = cleaned.last() {
            if v <= last {
                v = (last + eps).min(1.0 - eps);
            }
            if v <= last {
                continue;
            }
        }
        cleaned.push(v);
    }
    let plan = PartitionPlan::new(cleaned).unwrap_or_else(|_| PartitionPlan::uniform(m));
    (plan, tau_hint)
}

/// Ordinary least squares `y ≈ a + b·x`.
fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
    }
    if sxx == 0.0 {
        return (my, 0.0);
    }
    let b = sxy / sxx;
    (my - b * mx, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmlss::{GMlssConfig, GMlssSampler};
    use crate::model::Time;
    use crate::quality::RunControl;
    use crate::query::RatioValue;
    use crate::rng::rng_from_seed;
    use rand::RngExt;

    struct Walk {
        up: f64,
    }

    impl SimulationModel for Walk {
        type State = f64;

        fn initial_state(&self) -> f64 {
            0.0
        }

        fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            (s + if rng.random::<f64>() < self.up {
                0.04
            } else {
                -0.04
            })
            .clamp(0.0, 1.0)
        }
    }

    fn vf() -> RatioValue<fn(&f64) -> f64> {
        fn score(s: &f64) -> f64 {
            *s
        }
        RatioValue::new(score as fn(&f64) -> f64, 1.0)
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs = [0.1, 0.2, 0.3, 0.4];
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 - 5.0 * x).collect();
        let (a, b) = linear_fit(&xs, &ys);
        assert!((a - 2.0).abs() < 1e-10);
        assert!((b + 5.0).abs() < 1e-10);
    }

    #[test]
    fn balanced_plan_has_requested_levels() {
        let model = Walk { up: 0.45 };
        let v = vf();
        let problem = Problem::new(&model, &v, 400);
        let (plan, _) = balanced_plan(problem, 4, 3000, &mut rng_from_seed(2));
        assert_eq!(plan.num_levels(), 4);
        let b = plan.interior();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn balanced_plan_roughly_balances_advancement() {
        let model = Walk { up: 0.46 };
        let v = vf();
        let problem = Problem::new(&model, &v, 400);
        let (plan, _) = balanced_plan(problem, 3, 5000, &mut rng_from_seed(4));

        // Measure advancement probabilities under the plan.
        let cfg = GMlssConfig::new(plan, RunControl::budget(400_000));
        let res = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(5));
        let pis: Vec<f64> = res.pi_hats.iter().copied().filter(|p| *p > 0.0).collect();
        assert!(pis.len() >= 2, "need observable advancement: {pis:?}");
        let max = pis.iter().cloned().fold(f64::MIN, f64::max);
        let min = pis.iter().cloned().fold(f64::MAX, f64::min);
        // "Roughly the same": within a factor 3.5 on this smooth walk.
        assert!(
            max / min < 3.5,
            "advancement probabilities too unbalanced: {pis:?}"
        );
    }

    #[test]
    fn m_one_gives_trivial_plan() {
        let model = Walk { up: 0.5 };
        let v = vf();
        let problem = Problem::new(&model, &v, 50);
        let (plan, _) = balanced_plan(problem, 1, 100, &mut rng_from_seed(6));
        assert_eq!(plan, PartitionPlan::trivial());
    }

    #[test]
    fn degenerate_pilot_falls_back_to_uniform() {
        // Every path hits the target immediately: no tail to fit.
        struct Hit;
        impl SimulationModel for Hit {
            type State = f64;
            fn initial_state(&self) -> f64 {
                0.0
            }
            fn step(&self, _s: &f64, _t: Time, _rng: &mut SimRng) -> f64 {
                1.0
            }
        }
        let model = Hit;
        let v = vf();
        let problem = Problem::new(&model, &v, 10);
        let (plan, _) = balanced_plan(problem, 4, 100, &mut rng_from_seed(7));
        assert_eq!(plan.num_levels(), 4);
    }
}
