//! The adaptive greedy partition strategy (§5.2, Algorithm 1).
//!
//! Boundaries are placed one at a time. Each round generates a uniform
//! candidate grid inside the current refinement window, evaluates each
//! extension `B ∪ {v}` with a fixed-budget trial (Eq. 15), and keeps the
//! best candidate if it improves on the incumbent. The next window is the
//! level with the *smallest advancement probability* — the "obstacle"
//! level — mirroring the paper's two-fold intuition: focus effort on the
//! bottleneck, and converge toward balanced growth.
//!
//! Trial estimates are *not wasted* (§5.2): every trial returns an
//! unbiased estimate, and [`GreedyOutcome::pooled_estimate`] combines them
//! inverse-variance-weighted into a usable running answer.

use crate::estimate::Estimate;
use crate::levels::PartitionPlan;
use crate::model::SimulationModel;
use crate::partition::eval::{evaluate_plan, TrialOutcome};
use crate::query::{Problem, ValueFunction};
use crate::rng::SimRng;

/// Tuning knobs for Algorithm 1.
#[derive(Debug, Clone, Copy)]
pub struct GreedyConfig {
    /// Splitting ratio used in trials and by the produced plan.
    pub ratio: u32,
    /// Trial budget `t_0` in `g` invocations, per candidate evaluation.
    pub trial_budget: u64,
    /// Number of uniformly spaced candidates per round (Line 5).
    pub candidates_per_round: usize,
    /// Hard cap on rounds (safety valve; Algorithm 1 stops on its own when
    /// evaluations stop improving).
    pub max_rounds: usize,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        Self {
            ratio: 3,
            trial_budget: 100_000,
            candidates_per_round: 5,
            max_rounds: 8,
        }
    }
}

/// Result of the greedy search.
#[derive(Debug, Clone)]
pub struct GreedyOutcome {
    /// The selected partition plan.
    pub plan: PartitionPlan,
    /// Its surrogate cost `eval(B)`.
    pub eval: f64,
    /// Total `g` invocations spent on trial runs (the paper's
    /// "MLSS-G-Partition" search overhead).
    pub search_steps: u64,
    /// All trials performed, in order.
    pub trials: Vec<TrialOutcome>,
}

impl GreedyOutcome {
    /// Pool all trial estimates (inverse-variance weighting over trials
    /// with a finite positive variance) — the "trial runs are not wasted"
    /// estimate of §5.2.
    pub fn pooled_estimate(&self) -> Option<Estimate> {
        let mut wsum = 0.0;
        let mut tsum = 0.0;
        let mut steps = 0;
        let mut roots = 0;
        let mut hits = 0;
        for t in &self.trials {
            let e = &t.result.estimate;
            steps += e.steps;
            roots += e.n_roots;
            hits += e.hits;
            if e.variance.is_finite() && e.variance > 0.0 {
                let w = 1.0 / e.variance;
                wsum += w;
                tsum += w * e.tau;
            }
        }
        if wsum == 0.0 {
            return None;
        }
        Some(Estimate {
            tau: tsum / wsum,
            variance: 1.0 / wsum,
            n_roots: roots,
            steps,
            hits,
        })
    }
}

/// Algorithm 1 driver.
#[derive(Debug, Clone, Copy)]
pub struct GreedyPartition {
    /// Tuning configuration.
    pub config: GreedyConfig,
}

impl GreedyPartition {
    /// Create a driver.
    pub fn new(config: GreedyConfig) -> Self {
        assert!(config.candidates_per_round >= 1);
        assert!(config.trial_budget >= 1);
        Self { config }
    }

    /// Run the search for the given problem.
    pub fn search<M, V>(&self, problem: Problem<'_, M, V>, rng: &mut SimRng) -> GreedyOutcome
    where
        M: SimulationModel,
        V: ValueFunction<M::State>,
    {
        let mut plan = PartitionPlan::trivial();
        let mut opt_eval = f64::INFINITY;
        let mut window = (0.0_f64, 1.0_f64);
        let mut trials: Vec<TrialOutcome> = Vec::new();
        let mut search_steps = 0u64;

        for _round in 0..self.config.max_rounds {
            // Line 5: uniform candidate grid strictly inside the window.
            let k = self.config.candidates_per_round;
            let (lo, hi) = window;
            let width = hi - lo;
            let candidates: Vec<f64> = (1..=k)
                .map(|j| lo + width * j as f64 / (k + 1) as f64)
                .filter(|v| *v > 0.0 && *v < 1.0)
                .collect();

            // Lines 6-7: evaluate each extension, keep the best.
            let mut best: Option<(f64, f64, usize)> = None; // (eval, v, trial idx)
            for v in candidates {
                let Ok(cand) = plan.with_boundary(v) else {
                    continue; // duplicate boundary
                };
                let out = evaluate_plan(
                    problem,
                    &cand,
                    self.config.ratio,
                    self.config.trial_budget,
                    rng,
                );
                search_steps += out.result.estimate.steps;
                let idx = trials.len();
                let score = out.eval;
                trials.push(out);
                if best.is_none_or(|(e, _, _)| score < e) {
                    best = Some((score, v, idx));
                }
            }

            let Some((e_star, v_star, idx)) = best else {
                break;
            };

            // Lines 8-14: accept if improving, else stop.
            if e_star < opt_eval {
                plan = plan.with_boundary(v_star).expect("validated candidate");
                opt_eval = e_star;

                // Lines 11-12: refine the level with the smallest
                // advancement probability, as measured by the winning
                // trial's π̂ diagnostics. π̂_{i+1} corresponds to the
                // interval [β_i, β_{i+1}); π̂_1 to [0, β_1).
                let winning = &trials[idx];
                // Note: the winning trial ran on `plan` *after* the accept,
                // so its π̂ indices align with the new plan's levels.
                let pis = &winning.result.pi_hats;
                let mut min_p = f64::INFINITY;
                let mut min_level = 0usize;
                for (i, &p) in pis.iter().enumerate() {
                    if p < min_p {
                        min_p = p;
                        min_level = i; // transition into level i+1 ⇒ bisect L_i
                    }
                }
                window = plan.level_interval(min_level.min(plan.num_levels() - 1));
            } else {
                break;
            }
        }

        GreedyOutcome {
            plan,
            eval: opt_eval,
            search_steps,
            trials,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Time;
    use crate::query::RatioValue;
    use crate::rng::rng_from_seed;
    use rand::RngExt;

    struct Walk {
        up: f64,
    }

    impl SimulationModel for Walk {
        type State = f64;

        fn initial_state(&self) -> f64 {
            0.0
        }

        fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            (s + if rng.random::<f64>() < self.up {
                0.05
            } else {
                -0.05
            })
            .clamp(0.0, 1.0)
        }
    }

    fn vf() -> RatioValue<fn(&f64) -> f64> {
        fn score(s: &f64) -> f64 {
            *s
        }
        RatioValue::new(score as fn(&f64) -> f64, 1.0)
    }

    #[test]
    fn greedy_finds_multi_level_plan_for_rare_walk() {
        let model = Walk { up: 0.46 };
        let v = vf();
        let problem = Problem::new(&model, &v, 300);
        let driver = GreedyPartition::new(GreedyConfig {
            trial_budget: 150_000,
            ..Default::default()
        });
        let out = driver.search(problem, &mut rng_from_seed(17));
        assert!(
            out.plan.num_levels() >= 2,
            "rare-event walk should justify at least one boundary, got {}",
            out.plan
        );
        assert!(out.eval.is_finite());
        assert!(out.search_steps > 0);
        assert!(!out.trials.is_empty());
    }

    #[test]
    fn greedy_plan_is_valid() {
        let model = Walk { up: 0.48 };
        let v = vf();
        let problem = Problem::new(&model, &v, 150);
        let driver = GreedyPartition::new(GreedyConfig {
            trial_budget: 60_000,
            max_rounds: 4,
            ..Default::default()
        });
        let out = driver.search(problem, &mut rng_from_seed(23));
        let b = out.plan.interior();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert!(b.iter().all(|&x| x > 0.0 && x < 1.0));
    }

    #[test]
    fn pooled_estimate_available_after_search() {
        let model = Walk { up: 0.5 };
        let v = vf();
        let problem = Problem::new(&model, &v, 100);
        let driver = GreedyPartition::new(GreedyConfig {
            trial_budget: 50_000,
            max_rounds: 3,
            ..Default::default()
        });
        let out = driver.search(problem, &mut rng_from_seed(31));
        let pooled = out.pooled_estimate().expect("trials produce estimates");
        assert!(pooled.tau > 0.0 && pooled.tau < 1.0);
        assert!(pooled.variance.is_finite());
        assert!(pooled.steps >= out.search_steps);
    }

    #[test]
    fn search_is_reproducible() {
        let model = Walk { up: 0.47 };
        let v = vf();
        let problem = Problem::new(&model, &v, 200);
        let driver = GreedyPartition::new(GreedyConfig {
            trial_budget: 40_000,
            max_rounds: 3,
            ..Default::default()
        });
        let a = driver.search(problem, &mut rng_from_seed(5));
        let b = driver.search(problem, &mut rng_from_seed(5));
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.search_steps, b.search_steps);
    }
}
