//! Automatic MLSS level design (§5).
//!
//! Three pieces:
//! * [`eval`] — the empirical partition-plan cost surrogate `eval(B)`
//!   (Eq. 15), measured by trial runs;
//! * [`greedy`] — the adaptive greedy partition strategy (Algorithm 1)
//!   that places boundaries one by one, always bisecting the level with
//!   the smallest advancement probability;
//! * [`balanced`] — an automated constructor for *balanced-growth* plans
//!   (equal advancement probabilities, the paper's manually tuned
//!   "MLSS-BAL" yardstick), built from a pilot-run tail fit.

pub mod balanced;
pub mod eval;
pub mod greedy;

pub use balanced::balanced_plan;
pub use eval::{evaluate_plan, TrialOutcome};
pub use greedy::{GreedyConfig, GreedyOutcome, GreedyPartition};
