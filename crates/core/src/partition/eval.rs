//! Partition-plan evaluation `eval(B)` (§5.1, Eq. 15).
//!
//! For a candidate plan `B` with `m = |B| + 1` levels and splitting ratio
//! `r`, a trial run of fixed budget measures
//!
//! ```text
//! eval(B) = Var(N_m⟨1⟩) / r^{2(m-1)} · c_B / t_0
//! ```
//!
//! where `Var(N_m⟨1⟩)` is the variance of per-root target hits and `c_B`
//! the average simulation cost of one root path (offsprings included).
//! Because every trial uses the same budget `t_0`, comparisons drop the
//! constant `1/t_0`; we report `Var(N_m⟨1⟩) · c_B / r^{2(m-1)}`.

use crate::gmlss::{GMlssConfig, GMlssResult, GMlssSampler, VarianceMode};
use crate::levels::PartitionPlan;
use crate::model::SimulationModel;
use crate::quality::RunControl;
use crate::query::{Problem, ValueFunction};
use crate::rng::SimRng;

/// Outcome of one trial run used for plan evaluation.
#[derive(Debug, Clone)]
pub struct TrialOutcome {
    /// The evaluated plan.
    pub plan: PartitionPlan,
    /// The surrogate cost `eval(B)` (lower is better; `+∞` when the trial
    /// saw no target hit and the plan is unrankable).
    pub eval: f64,
    /// Average `g` invocations per root path under this plan, `c_B`.
    pub cost_per_root: f64,
    /// The trial's g-MLSS result — its estimate is *not wasted* (§5.2):
    /// the greedy driver pools it into a final answer.
    pub result: GMlssResult,
}

/// Run one fixed-budget trial of plan `plan` and compute `eval(B)`.
///
/// Trials use the g-MLSS sampler, so evaluation works on both smooth and
/// volatile (level-skipping) processes; the surrogate itself assumes the
/// no-skip regime as in the paper, which is fine because it only ranks
/// plans and never affects estimator correctness.
pub fn evaluate_plan<M, V>(
    problem: Problem<'_, M, V>,
    plan: &PartitionPlan,
    ratio: u32,
    trial_budget: u64,
    rng: &mut SimRng,
) -> TrialOutcome
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    let cfg = GMlssConfig::new(plan.clone(), RunControl::budget(trial_budget))
        .with_ratio(ratio)
        // Trials never need in-flight variance; the final bootstrap (if
        // skips occurred) is cheap relative to the trial budget.
        .with_variance(VarianceMode::Auto);
    let result = GMlssSampler::new(cfg).run(problem, rng);

    let est = &result.estimate;
    let m = plan.num_levels();
    let cost_per_root = est.cost_per_root();
    let eval = if est.hits == 0 || est.n_roots < 8 {
        // No hit at all — or so few roots that the per-root sample
        // variance is meaningless (one giant tree exhausting the budget
        // reports zero variance and would otherwise look like a perfect
        // plan): rank such plans last.
        f64::INFINITY
    } else {
        let r2 = (ratio as f64).powi(2 * (m as i32 - 1));
        result.root_hit_variance / r2 * cost_per_root
    };

    TrialOutcome {
        plan: plan.clone(),
        eval,
        cost_per_root,
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Time;
    use crate::query::RatioValue;
    use crate::rng::rng_from_seed;
    use rand::RngExt;

    struct Walk;

    impl SimulationModel for Walk {
        type State = f64;

        fn initial_state(&self) -> f64 {
            0.0
        }

        fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            (s + if rng.random::<f64>() < 0.47 {
                0.05
            } else {
                -0.05
            })
            .clamp(0.0, 1.0)
        }
    }

    fn vf() -> RatioValue<fn(&f64) -> f64> {
        fn score(s: &f64) -> f64 {
            *s
        }
        RatioValue::new(score as fn(&f64) -> f64, 1.0)
    }

    #[test]
    fn eval_is_finite_when_hits_occur() {
        let model = Walk;
        let v = vf();
        let problem = Problem::new(&model, &v, 200);
        let plan = PartitionPlan::new(vec![0.5]).unwrap();
        let out = evaluate_plan(problem, &plan, 3, 200_000, &mut rng_from_seed(8));
        assert!(out.result.estimate.hits > 0, "trial should see hits");
        assert!(out.eval.is_finite() && out.eval > 0.0);
        assert!(out.cost_per_root > 0.0);
    }

    #[test]
    fn eval_infinite_without_hits() {
        struct Stuck;
        impl SimulationModel for Stuck {
            type State = f64;
            fn initial_state(&self) -> f64 {
                0.0
            }
            fn step(&self, _s: &f64, _t: Time, _rng: &mut SimRng) -> f64 {
                0.1
            }
        }
        let model = Stuck;
        let v = vf();
        let problem = Problem::new(&model, &v, 10);
        let plan = PartitionPlan::trivial();
        let out = evaluate_plan(problem, &plan, 3, 1000, &mut rng_from_seed(1));
        assert!(out.eval.is_infinite());
    }

    #[test]
    fn multi_level_beats_srs_on_rare_walk() {
        // For a rare-event walk, a sensible 3-level plan should get a
        // strictly better (smaller) eval score than the trivial plan.
        let model = Walk;
        let v = vf();
        let problem = Problem::new(&model, &v, 200);
        let budget = 400_000;
        let trivial = evaluate_plan(
            problem,
            &PartitionPlan::trivial(),
            3,
            budget,
            &mut rng_from_seed(3),
        );
        let layered = evaluate_plan(
            problem,
            &PartitionPlan::new(vec![0.35, 0.65]).unwrap(),
            3,
            budget,
            &mut rng_from_seed(4),
        );
        assert!(
            layered.eval < trivial.eval,
            "layered {} should beat trivial {}",
            layered.eval,
            trivial.eval
        );
    }
}
