//! The cost-based **reuse planner**: given an incoming query's target
//! relative error and the [`ShardStore`]'s best entry for its key,
//! choose the cheapest of three candidate plans —
//!
//! * **cold** — simulate from scratch (the only option on a store miss);
//! * **warm** — resume from the stored shard through the existing
//!   `run_sequential_*_from` / `run_parallel_from` machinery, paying
//!   only the *marginal* roots between the stored RE and the target;
//! * **stored** — the stored shard already meets the target: answer
//!   with its estimate and simulate nothing.
//!
//! ## The cost model
//!
//! For every estimator here, RE ∝ 1/√n over the roots n (the variance of
//! a mean scales as 1/n), so reaching target r from a shard that
//! achieved rₛ over nₛ roots needs roughly
//!
//! ```text
//! n_required = nₛ · (rₛ / r)²        (cold cost, in roots)
//! n_marginal = n_required − nₛ       (warm cost)
//! ```
//!
//! — the pilot data behind these numbers is the stored shard itself,
//! which is the best available sample of both the cost per root and the
//! variance per root for this exact problem. Warm never costs more
//! roots than cold, so on any usable hit the planner picks warm (or
//! stored when `rₛ ≤ r`); the cost estimate is surfaced through
//! `EXPLAIN ESTIMATE` as `est_marginal_roots` so an operator can see
//! what the planner believed.
//!
//! Correctness never depends on the choice: cold and warm draw from the
//! same distribution (warm with a pinned seed is *bit-identical* to the
//! longer cold run, see [`crate::shard_store`]), and stored only serves
//! estimates that already met the target.

use crate::shard_store::{ShardKey, ShardStore, StoredShard};

/// The reuse decision for one query (see the module docs for the cost
/// model).
#[derive(Debug, Clone)]
pub enum ReusePlan {
    /// No usable stored shard: simulate from scratch.
    Cold,
    /// Resume from this stored shard and simulate the marginal roots.
    Warm {
        /// The checkpoint to resume from.
        entry: StoredShard,
        /// The relative error the stored shard achieved.
        stored_re: f64,
        /// Estimated additional roots to reach the target.
        est_marginal_roots: u64,
    },
    /// The stored shard already meets the target: serve its estimate.
    Stored {
        /// The checkpoint whose estimate answers the query.
        entry: StoredShard,
    },
}

impl ReusePlan {
    /// Provenance tag for `results` rows (`"cold"`, `"warm"`,
    /// `"stored"`).
    pub fn tag(&self) -> &'static str {
        match self {
            ReusePlan::Cold => "cold",
            ReusePlan::Warm { .. } => "warm",
            ReusePlan::Stored { .. } => "stored",
        }
    }

    /// Rendering for `EXPLAIN ESTIMATE`'s `reuse` row:
    /// `cold | warm(fingerprint=…, stored_re=…, est_marginal_roots=…) |
    /// stored`.
    pub fn describe(&self, fingerprint: u64) -> String {
        match self {
            ReusePlan::Cold => "cold".to_string(),
            ReusePlan::Warm {
                stored_re,
                est_marginal_roots,
                ..
            } => format!(
                "warm(fingerprint={fingerprint:#018x}, stored_re={stored_re:.6}, \
                 est_marginal_roots={est_marginal_roots})"
            ),
            ReusePlan::Stored { .. } => "stored".to_string(),
        }
    }
}

/// Roots needed to reach `target_re` given `n_stored` roots achieved
/// `stored_re`, under the 1/√n law (rounded up; saturates at `u64::MAX`
/// rather than overflowing for absurd ratios).
pub fn required_roots(n_stored: u64, stored_re: f64, target_re: f64) -> u64 {
    if n_stored == 0 || !(stored_re.is_finite() && target_re > 0.0) {
        return u64::MAX;
    }
    let ratio = stored_re / target_re;
    let required = (n_stored as f64) * ratio * ratio;
    if required >= u64::MAX as f64 {
        u64::MAX
    } else {
        required.ceil() as u64
    }
}

/// Consult the store and pick the cheapest plan for a query over `key`
/// targeting `target_re`. `pinned_seed` is the query's explicit seed, if
/// any — it restricts which entries may answer (see
/// [`ShardStore::lookup`]). A stored shard with no finite RE (τ̂ = 0, or
/// too few roots) is not costable and falls back to cold.
pub fn plan_reuse(
    store: &ShardStore,
    key: &ShardKey,
    target_re: f64,
    pinned_seed: Option<u64>,
) -> ReusePlan {
    let Some(entry) = store.lookup(key, pinned_seed) else {
        return ReusePlan::Cold;
    };
    let stored_re = entry.achieved_re();
    let n_stored = entry.estimate.n_roots;
    if !stored_re.is_finite() || n_stored == 0 {
        return ReusePlan::Cold;
    }
    if stored_re <= target_re {
        return ReusePlan::Stored { entry };
    }
    let required = required_roots(n_stored, stored_re, target_re);
    let est_marginal_roots = required.saturating_sub(n_stored);
    ReusePlan::Warm {
        entry,
        stored_re,
        est_marginal_roots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::Estimate;
    use crate::rng::rng_from_seed;
    use crate::shard_store::shard_key;
    use crate::srs::SrsShard;

    fn deposit(store: &ShardStore, fp: u64, n: u64, tau: f64, re: f64) {
        let shard = SrsShard {
            n,
            hits: (tau * n as f64) as u64,
            steps: n,
        };
        // Variance chosen so self_relative_error() = σ/τ̂ comes out at
        // exactly `re`.
        let sigma = re * tau;
        store.deposit(
            shard_key(fp, "srs", None),
            StoredShard::new(
                &shard,
                rng_from_seed(1),
                Estimate {
                    tau,
                    variance: sigma * sigma,
                    n_roots: n,
                    steps: n,
                    hits: shard.hits,
                },
                None,
                true,
            ),
        );
    }

    #[test]
    fn miss_plans_cold() {
        let store = ShardStore::new(4);
        let plan = plan_reuse(&store, &shard_key(1, "srs", None), 0.01, None);
        assert!(matches!(plan, ReusePlan::Cold));
        assert_eq!(plan.tag(), "cold");
        assert_eq!(plan.describe(1), "cold");
    }

    #[test]
    fn met_target_plans_stored() {
        let store = ShardStore::new(4);
        deposit(&store, 1, 10_000, 0.5, 0.01);
        let plan = plan_reuse(&store, &shard_key(1, "srs", None), 0.02, None);
        assert!(matches!(plan, ReusePlan::Stored { .. }));
        assert_eq!(plan.tag(), "stored");
    }

    #[test]
    fn tighter_target_plans_warm_with_quadratic_marginal() {
        let store = ShardStore::new(4);
        deposit(&store, 1, 10_000, 0.5, 0.02);
        let plan = plan_reuse(&store, &shard_key(1, "srs", None), 0.01, None);
        let ReusePlan::Warm {
            stored_re,
            est_marginal_roots,
            ..
        } = &plan
        else {
            panic!("expected warm, got {}", plan.tag());
        };
        // Halving the RE quadruples the required roots: marginal ≈ 3·n.
        assert!((stored_re - 0.02).abs() < 1e-9);
        let expected = required_roots(10_000, *stored_re, 0.01) - 10_000;
        assert_eq!(*est_marginal_roots, expected);
        assert!(
            (25_000..=35_000).contains(est_marginal_roots),
            "marginal {est_marginal_roots} should be ≈ 3× the stored 10k"
        );
        let rendered = plan.describe(0xabcd);
        assert!(rendered.starts_with("warm(fingerprint=0x"), "{rendered}");
        assert!(rendered.contains("est_marginal_roots="), "{rendered}");
    }

    #[test]
    fn uncostable_entries_fall_back_to_cold() {
        let store = ShardStore::new(4);
        deposit(&store, 1, 10_000, 0.0, 0.02); // τ̂ = 0 ⇒ RE not finite
        assert!(matches!(
            plan_reuse(&store, &shard_key(1, "srs", None), 0.01, None),
            ReusePlan::Cold
        ));
    }

    #[test]
    fn changed_fingerprint_never_hits() {
        let store = ShardStore::new(4);
        deposit(&store, 1, 10_000, 0.5, 0.02);
        assert!(matches!(
            plan_reuse(&store, &shard_key(2, "srs", None), 0.01, None),
            ReusePlan::Cold
        ));
    }

    #[test]
    fn required_roots_edge_cases() {
        assert_eq!(required_roots(0, 0.02, 0.01), u64::MAX);
        assert_eq!(required_roots(100, f64::INFINITY, 0.01), u64::MAX);
        assert_eq!(required_roots(100, 0.02, 0.02), 100);
        assert_eq!(required_roots(100, 0.02, 0.01), 400);
    }
}
