//! The cost-based **reuse planner**: given an incoming query's target
//! relative error and the [`ShardStore`]'s best entry for its key,
//! choose the cheapest of three candidate plans —
//!
//! * **cold** — simulate from scratch (the only option on a store miss);
//! * **warm** — resume from the stored shard through the existing
//!   `run_sequential_*_from` / `run_parallel_from` machinery, paying
//!   only the *marginal* roots between the stored RE and the target;
//! * **stored** — the stored shard already meets the target: answer
//!   with its estimate and simulate nothing.
//!
//! ## The cost model
//!
//! For every estimator here, RE ∝ 1/√n over the roots n (the variance of
//! a mean scales as 1/n), so reaching target r from a shard that
//! achieved rₛ over nₛ roots needs roughly
//!
//! ```text
//! n_required = nₛ · (rₛ / r)²        (cold cost, in roots)
//! n_marginal = n_required − nₛ       (warm cost)
//! ```
//!
//! — the pilot data behind these numbers is the stored shard itself,
//! which is the best available sample of both the cost per root and the
//! variance per root for this exact problem. Warm never costs more
//! roots than cold, so on any usable hit the planner picks warm (or
//! stored when `rₛ ≤ r`); the cost estimate is surfaced through
//! `EXPLAIN ESTIMATE` as `est_marginal_roots` so an operator can see
//! what the planner believed.
//!
//! ## Admission: what counts as a usable entry
//!
//! An entry is only costable — and only *trustworthy* — once it carries
//! real statistical weight. The planner requires at least
//! [`MIN_REUSE_ROOTS`] roots and a strictly positive variance before
//! admitting a stored or warm plan. Without the guard, a degenerate
//! checkpoint (e.g. an early scheduler pause whose few roots all hit,
//! so the SRS variance τ̂(1−τ̂)/n is exactly 0 and the self-RE is 0)
//! would satisfy every target forever — and since served queries never
//! simulate, nothing would ever improve it. Degenerate entries fall
//! back to cold, whose deposit then replaces them.
//!
//! ## Pinned seeds: the store-on/store-off guarantee
//!
//! A pinned-seed statement must be **bit-identical with or without a
//! store** (see `docs/planner.md`). Two rules enforce that, both on top
//! of [`ShardStore::lookup`]'s same-seed/bit-exact filter:
//!
//! * **Target discipline** — the query's target must be at least as
//!   tight as the entry's producing target
//!   ([`StoredShard::target_re`]). Every quality check before the
//!   stored checkpoint had RE above the producing target, hence above
//!   any equal-or-tighter query target too, so the checkpoint is a
//!   bit-exact prefix of the cold run the query would otherwise do. A
//!   *looser* query, by contrast, may stop at an earlier check than the
//!   checkpoint — serving or resuming stored state would change its
//!   bits, so it plans cold.
//! * **Replayable path only** — reuse is offered only to execution
//!   paths that replay the sequential target-mode cadence (the
//!   synchronous single-threaded driver). The parallel driver merges a
//!   stored shard a storeless session would never hold, and scheduler
//!   slices check quality at slice (not check-cadence) boundaries; a
//!   pinned query on either path plans cold without consulting the
//!   store. Unpinned queries reuse on every path — pooling independent
//!   samples is statistically sound regardless of cadence.
//!
//! Correctness therefore never depends on the choice: cold and warm
//! draw from the same distribution (warm with a pinned seed is
//! *bit-identical* to the longer cold run, see [`crate::shard_store`]),
//! and stored only serves estimates that already met the target.

use crate::shard_store::{ShardKey, ShardStore, StoredMeta, StoredShard};

/// Minimum root count a stored entry needs before the planner will
/// serve or warm-start from it. Entries below the floor (or with
/// non-positive variance) are degenerate: too little data to cost, and
/// possibly a zero self-RE that would satisfy every target. The floor
/// is deliberately well under the driver's check cadence
/// ([`crate::spec::TARGET_CHECK_EVERY`]): target-mode chunks are sized
/// in *steps* (≈ `check_every` roots' worth at the observed cost per
/// root), so a legitimate target-stopped MLSS run — whose roots cost
/// many steps each — can finish with far fewer roots than the cadence
/// and must still be admissible.
pub const MIN_REUSE_ROOTS: u64 = 64;

/// The reuse decision for one query (see the module docs for the cost
/// model) — the entry-free form, cheap to produce without touching the
/// store's counters or LRU order, which is what `EXPLAIN` previews via
/// [`peek_reuse`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReuseDecision {
    /// No usable stored shard: simulate from scratch.
    Cold,
    /// Resume from the stored shard and simulate the marginal roots.
    Warm {
        /// The relative error the stored shard achieved.
        stored_re: f64,
        /// Estimated additional roots to reach the target.
        est_marginal_roots: u64,
    },
    /// The stored shard already meets the target: serve its estimate.
    Stored,
}

impl ReuseDecision {
    /// Provenance tag (`"cold"`, `"warm"`, `"stored"`).
    pub fn tag(&self) -> &'static str {
        match self {
            ReuseDecision::Cold => "cold",
            ReuseDecision::Warm { .. } => "warm",
            ReuseDecision::Stored => "stored",
        }
    }

    /// Rendering for `EXPLAIN ESTIMATE`'s `reuse` row:
    /// `cold | warm(fingerprint=…, stored_re=…, est_marginal_roots=…) |
    /// stored`.
    pub fn describe(&self, fingerprint: u64) -> String {
        match self {
            ReuseDecision::Cold => "cold".to_string(),
            ReuseDecision::Warm {
                stored_re,
                est_marginal_roots,
            } => format!(
                "warm(fingerprint={fingerprint:#018x}, stored_re={stored_re:.6}, \
                 est_marginal_roots={est_marginal_roots})"
            ),
            ReuseDecision::Stored => "stored".to_string(),
        }
    }
}

/// The reuse plan for one query: the decision plus the stored entry the
/// executing driver needs to act on it.
#[derive(Debug, Clone)]
pub enum ReusePlan {
    /// No usable stored shard: simulate from scratch.
    Cold,
    /// Resume from this stored shard and simulate the marginal roots.
    Warm {
        /// The checkpoint to resume from.
        entry: StoredShard,
        /// The relative error the stored shard achieved.
        stored_re: f64,
        /// Estimated additional roots to reach the target.
        est_marginal_roots: u64,
    },
    /// The stored shard already meets the target: serve its estimate.
    Stored {
        /// The checkpoint whose estimate answers the query.
        entry: StoredShard,
    },
}

impl ReusePlan {
    /// The entry-free decision this plan embodies.
    pub fn decision(&self) -> ReuseDecision {
        match self {
            ReusePlan::Cold => ReuseDecision::Cold,
            ReusePlan::Warm {
                stored_re,
                est_marginal_roots,
                ..
            } => ReuseDecision::Warm {
                stored_re: *stored_re,
                est_marginal_roots: *est_marginal_roots,
            },
            ReusePlan::Stored { .. } => ReuseDecision::Stored,
        }
    }

    /// Provenance tag for `results` rows (`"cold"`, `"warm"`,
    /// `"stored"`).
    pub fn tag(&self) -> &'static str {
        self.decision().tag()
    }

    /// Rendering for `EXPLAIN ESTIMATE`'s `reuse` row (see
    /// [`ReuseDecision::describe`]).
    pub fn describe(&self, fingerprint: u64) -> String {
        self.decision().describe(fingerprint)
    }
}

/// Roots needed to reach `target_re` given `n_stored` roots achieved
/// `stored_re`, under the 1/√n law (rounded up; saturates at `u64::MAX`
/// rather than overflowing for absurd ratios).
pub fn required_roots(n_stored: u64, stored_re: f64, target_re: f64) -> u64 {
    if n_stored == 0 || !(stored_re.is_finite() && target_re > 0.0) {
        return u64::MAX;
    }
    let ratio = stored_re / target_re;
    let required = (n_stored as f64) * ratio * ratio;
    if required >= u64::MAX as f64 {
        u64::MAX
    } else {
        required.ceil() as u64
    }
}

/// The shared decision core: classify a seed-compatible entry against
/// the query's target. `pinned` applies the target-discipline rule (see
/// the module docs); callers are responsible for seed compatibility
/// ([`StoredMeta::answers`]) and the replayable-path rule.
// The negated comparisons are load-bearing: `!(x > 0.0)` and
// `!(a <= b)` must reject NaN operands (unknown producing target,
// uncostable variance), which the un-negated flips would silently admit.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn decide(meta: &StoredMeta, target_re: f64, pinned: bool) -> ReuseDecision {
    // Admission guard: degenerate entries (too few roots, or a zero
    // variance whose self-RE of 0 would satisfy every target) are not
    // costable and fall back to cold.
    if meta.n_roots < MIN_REUSE_ROOTS || !(meta.variance > 0.0) || !meta.stored_re.is_finite() {
        return ReuseDecision::Cold;
    }
    // Target discipline for pinned seeds: only an equal-or-tighter
    // query sees this checkpoint as a bit-exact prefix of its own cold
    // run. The negated form also rejects entries with an unknown (NaN)
    // producing target.
    if pinned && !(target_re <= meta.target_re) {
        return ReuseDecision::Cold;
    }
    if meta.stored_re <= target_re {
        return ReuseDecision::Stored;
    }
    let required = required_roots(meta.n_roots, meta.stored_re, target_re);
    ReuseDecision::Warm {
        stored_re: meta.stored_re,
        est_marginal_roots: required.saturating_sub(meta.n_roots),
    }
}

/// Consult the store and pick the cheapest plan for a query over `key`
/// targeting `target_re`. `pinned_seed` is the query's explicit seed, if
/// any — it restricts which entries may answer (see
/// [`ShardStore::lookup`] and the module docs). `replayable` says
/// whether the executing driver replays the sequential target-mode
/// cadence bit-exactly (the synchronous single-threaded path): a pinned
/// query on a non-replayable driver (parallel, scheduler) plans cold
/// without consulting the store at all, preserving store-on/store-off
/// bit-identity. Counts a store hit or miss when the store is consulted.
pub fn plan_reuse(
    store: &ShardStore,
    key: &ShardKey,
    target_re: f64,
    pinned_seed: Option<u64>,
    replayable: bool,
) -> ReusePlan {
    if pinned_seed.is_some() && !replayable {
        return ReusePlan::Cold;
    }
    let Some(entry) = store.lookup(key, pinned_seed) else {
        return ReusePlan::Cold;
    };
    match decide(&entry.meta(), target_re, pinned_seed.is_some()) {
        ReuseDecision::Cold => ReusePlan::Cold,
        ReuseDecision::Stored => ReusePlan::Stored { entry },
        ReuseDecision::Warm {
            stored_re,
            est_marginal_roots,
        } => ReusePlan::Warm {
            entry,
            stored_re,
            est_marginal_roots,
        },
    }
}

/// The non-mutating twin of [`plan_reuse`]: the identical decision,
/// produced from [`ShardStore::peek_meta`] — no hit/miss counters, no
/// LRU touch, no shard clone. This is what `EXPLAIN ESTIMATE` previews
/// with, so explaining a statement never perturbs `SHOW DIAGNOSTICS`
/// or the store's eviction order.
pub fn peek_reuse(
    store: &ShardStore,
    key: &ShardKey,
    target_re: f64,
    pinned_seed: Option<u64>,
    replayable: bool,
) -> ReuseDecision {
    if pinned_seed.is_some() && !replayable {
        return ReuseDecision::Cold;
    }
    match store.peek_meta(key) {
        Some(meta) if meta.answers(pinned_seed) => decide(&meta, target_re, pinned_seed.is_some()),
        _ => ReuseDecision::Cold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::Estimate;
    use crate::rng::rng_from_seed;
    use crate::shard_store::shard_key;
    use crate::srs::SrsShard;

    fn deposit_full(
        store: &ShardStore,
        fp: u64,
        n: u64,
        tau: f64,
        re: f64,
        producer_target: f64,
        seed: Option<u64>,
    ) {
        let shard = SrsShard {
            n,
            hits: (tau * n as f64) as u64,
            steps: n,
        };
        // Variance chosen so self_relative_error() = σ/τ̂ comes out at
        // exactly `re`.
        let sigma = re * tau;
        store.deposit(
            shard_key(fp, "srs", None),
            StoredShard::new(
                &shard,
                rng_from_seed(1),
                Estimate {
                    tau,
                    variance: sigma * sigma,
                    n_roots: n,
                    steps: n,
                    hits: shard.hits,
                },
                seed,
                producer_target,
                true,
            ),
        );
    }

    fn deposit(store: &ShardStore, fp: u64, n: u64, tau: f64, re: f64) {
        deposit_full(store, fp, n, tau, re, re, None);
    }

    #[test]
    fn miss_plans_cold() {
        let store = ShardStore::new(4);
        let plan = plan_reuse(&store, &shard_key(1, "srs", None), 0.01, None, true);
        assert!(matches!(plan, ReusePlan::Cold));
        assert_eq!(plan.tag(), "cold");
        assert_eq!(plan.describe(1), "cold");
    }

    #[test]
    fn met_target_plans_stored() {
        let store = ShardStore::new(4);
        deposit(&store, 1, 10_000, 0.5, 0.01);
        let plan = plan_reuse(&store, &shard_key(1, "srs", None), 0.02, None, true);
        assert!(matches!(plan, ReusePlan::Stored { .. }));
        assert_eq!(plan.tag(), "stored");
    }

    #[test]
    fn tighter_target_plans_warm_with_quadratic_marginal() {
        let store = ShardStore::new(4);
        deposit(&store, 1, 10_000, 0.5, 0.02);
        let plan = plan_reuse(&store, &shard_key(1, "srs", None), 0.01, None, true);
        let ReusePlan::Warm {
            stored_re,
            est_marginal_roots,
            ..
        } = &plan
        else {
            panic!("expected warm, got {}", plan.tag());
        };
        // Halving the RE quadruples the required roots: marginal ≈ 3·n.
        assert!((stored_re - 0.02).abs() < 1e-9);
        let expected = required_roots(10_000, *stored_re, 0.01) - 10_000;
        assert_eq!(*est_marginal_roots, expected);
        assert!(
            (25_000..=35_000).contains(est_marginal_roots),
            "marginal {est_marginal_roots} should be ≈ 3× the stored 10k"
        );
        let rendered = plan.describe(0xabcd);
        assert!(rendered.starts_with("warm(fingerprint=0x"), "{rendered}");
        assert!(rendered.contains("est_marginal_roots="), "{rendered}");
    }

    #[test]
    fn uncostable_entries_fall_back_to_cold() {
        let store = ShardStore::new(4);
        deposit(&store, 1, 10_000, 0.0, 0.02); // τ̂ = 0 ⇒ RE not finite
        assert!(matches!(
            plan_reuse(&store, &shard_key(1, "srs", None), 0.01, None, true),
            ReusePlan::Cold
        ));
    }

    #[test]
    fn degenerate_entries_fall_back_to_cold() {
        // Fewer roots than the admission floor: an early scheduler
        // pause's deposit must not answer anything.
        let store = ShardStore::new(4);
        deposit(&store, 1, MIN_REUSE_ROOTS - 1, 0.5, 0.02);
        assert!(matches!(
            plan_reuse(&store, &shard_key(1, "srs", None), 0.05, None, true),
            ReusePlan::Cold
        ));

        // τ̂ = 1 ⇒ SRS variance τ̂(1−τ̂)/n = 0 ⇒ self-RE = 0, which would
        // satisfy every target forever; the zero-variance guard rejects
        // it instead.
        let store = ShardStore::new(4);
        deposit(&store, 1, 10_000, 1.0, 0.0);
        assert!(matches!(
            plan_reuse(&store, &shard_key(1, "srs", None), 0.05, None, true),
            ReusePlan::Cold
        ));
    }

    #[test]
    fn changed_fingerprint_never_hits() {
        let store = ShardStore::new(4);
        deposit(&store, 1, 10_000, 0.5, 0.02);
        assert!(matches!(
            plan_reuse(&store, &shard_key(2, "srs", None), 0.01, None, true),
            ReusePlan::Cold
        ));
    }

    #[test]
    fn pinned_repeat_at_same_target_serves_stored() {
        let store = ShardStore::new(4);
        deposit_full(&store, 1, 10_000, 0.5, 0.009, 0.01, Some(7));
        let key = shard_key(1, "srs", None);
        assert!(matches!(
            plan_reuse(&store, &key, 0.01, Some(7), true),
            ReusePlan::Stored { .. }
        ));
        // Tighter-but-met ("lucky") pinned repeat is also a bit-exact
        // prefix: the first check meeting 0.0095 is the first check
        // meeting 0.01, i.e. exactly the stored checkpoint.
        assert!(matches!(
            plan_reuse(&store, &key, 0.0095, Some(7), true),
            ReusePlan::Stored { .. }
        ));
    }

    #[test]
    fn pinned_looser_target_falls_back_to_cold() {
        // Stored entry produced at target 1%; a same-seed query at 2%
        // would — storeless — stop at an *earlier* quality check, so
        // serving the stored estimate would change its bits: cold.
        let store = ShardStore::new(4);
        deposit_full(&store, 1, 10_000, 0.5, 0.009, 0.01, Some(7));
        let key = shard_key(1, "srs", None);
        assert!(matches!(
            plan_reuse(&store, &key, 0.02, Some(7), true),
            ReusePlan::Cold
        ));
        // The same looser query *unpinned* is pure statistical reuse
        // and still serves from the store.
        assert!(matches!(
            plan_reuse(&store, &key, 0.02, None, true),
            ReusePlan::Stored { .. }
        ));
    }

    #[test]
    fn pinned_reuse_requires_a_replayable_path() {
        // A pinned query on a parallel/scheduler driver plans cold
        // without even consulting the store (no counter traffic)…
        let store = ShardStore::new(4);
        deposit_full(&store, 1, 10_000, 0.5, 0.02, 0.03, Some(7));
        let key = shard_key(1, "srs", None);
        assert!(matches!(
            plan_reuse(&store, &key, 0.01, Some(7), false),
            ReusePlan::Cold
        ));
        assert_eq!((store.hits(), store.misses()), (0, 0));
        // …while an unpinned query on the same driver reuses freely.
        assert!(matches!(
            plan_reuse(&store, &key, 0.01, None, false),
            ReusePlan::Warm { .. }
        ));
    }

    #[test]
    fn peek_matches_plan_without_store_traffic() {
        let store = ShardStore::new(4);
        deposit(&store, 1, 10_000, 0.5, 0.02);
        let key = shard_key(1, "srs", None);
        let peeked = peek_reuse(&store, &key, 0.01, None, true);
        assert_eq!((store.hits(), store.misses()), (0, 0), "peek is free");
        let planned = plan_reuse(&store, &key, 0.01, None, true);
        assert_eq!(peeked, planned.decision());
        assert_eq!(peeked.describe(9), planned.describe(9));
        assert_eq!((store.hits(), store.misses()), (1, 0), "plan counts");
        assert_eq!(
            peek_reuse(&store, &shard_key(2, "srs", None), 0.01, None, true),
            ReuseDecision::Cold
        );
        assert_eq!((store.hits(), store.misses()), (1, 0));
    }

    #[test]
    fn required_roots_edge_cases() {
        assert_eq!(required_roots(0, 0.02, 0.01), u64::MAX);
        assert_eq!(required_roots(100, f64::INFINITY, 0.01), u64::MAX);
        assert_eq!(required_roots(100, 0.02, 0.02), 100);
        assert_eq!(required_roots(100, 0.02, 0.01), 400);
    }
}
