//! Bit-exact binary serialization for durable state.
//!
//! The WAL layer (`mlss_store`) journals shard checkpoints, RNG
//! positions, plan-cache entries, and estimates; a recovered session must
//! resume **bit-identically** to an uninterrupted run, so every codec
//! here is exact: floats round-trip through [`f64::to_bits`], the
//! 128-bit integer moment sums are written verbatim, and the ChaCha
//! stream position is stored as `(key, counter, words_remaining)` — the
//! buffered block is a pure function of the first two, so restoring is
//! O(1) with no keystream replay.
//!
//! The [`Persist`] impls for shard types live next to their struct
//! definitions (they serialize private fields); this module holds the
//! trait, the byte [`Reader`], the little-endian `put_*` helpers, and the
//! type-erased [`StoredShard`] codec used by the WAL's shard-deposit and
//! checkpoint records.
//!
//! Framing, CRCs, and record kinds are the WAL's concern, not this
//! module's: a `Persist` payload is only ever decoded after the WAL has
//! verified the enclosing record's checksum, so decode errors here
//! indicate a version mismatch (or a bug), never silent disk corruption.

use crate::estimate::Estimate;
use crate::gmlss::GmlssShard;
use crate::is::IsShard;
use crate::levels::PartitionPlan;
use crate::rng::SimRng;
use crate::shard_store::StoredShard;
use crate::smlss::SMlssShard;
use crate::srs::SrsShard;

/// Why a decode failed. Payloads are CRC-verified by the WAL before they
/// reach these codecs, so any of these means "foreign or incompatible
/// bytes", not bit rot.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// The buffer ended before the value did.
    Eof,
    /// Structurally invalid data (context in the message).
    Malformed(&'static str),
    /// A type-erased shard had an unknown or unsupported type tag.
    UnsupportedShard(u8),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Eof => write!(f, "unexpected end of persisted data"),
            PersistError::Malformed(what) => write!(f, "malformed persisted data: {what}"),
            PersistError::UnsupportedShard(tag) => {
                write!(f, "unsupported stored-shard type tag {tag}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

// ---- little-endian writers ----------------------------------------------

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i64`, little-endian.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u128`, little-endian (the exact integer moment sums).
pub fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its exact bit pattern (NaN payloads, signed zeros,
/// and infinities all round-trip).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, v: &str) {
    put_u32(out, v.len() as u32);
    out.extend_from_slice(v.as_bytes());
}

/// Append a length-prefixed `u32` slice.
pub fn put_u32s(out: &mut Vec<u8>, vs: &[u32]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_u32(out, v);
    }
}

/// Append a length-prefixed `u64` slice.
pub fn put_u64s(out: &mut Vec<u8>, vs: &[u64]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_u64(out, v);
    }
}

/// Append a length-prefixed `f64` slice (exact bit patterns).
pub fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_f64(out, v);
    }
}

// ---- reader -------------------------------------------------------------

/// Cursor over a persisted payload. Every getter advances; all reads are
/// bounds-checked and return [`PersistError::Eof`] past the end.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Eof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Next `u8`.
    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Next little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Next little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Next little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Next little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, PersistError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Next `f64` from its exact bit pattern.
    pub fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Next length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, PersistError> {
        let len = self.len_prefix()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PersistError::Malformed("non-UTF-8 string"))
    }

    /// Next length-prefixed `u32` slice.
    pub fn u32s(&mut self) -> Result<Vec<u32>, PersistError> {
        let len = self.len_prefix()?;
        (0..len).map(|_| self.u32()).collect()
    }

    /// Next length-prefixed `u64` slice.
    pub fn u64s(&mut self) -> Result<Vec<u64>, PersistError> {
        let len = self.len_prefix()?;
        (0..len).map(|_| self.u64()).collect()
    }

    /// Next length-prefixed `f64` slice.
    pub fn f64s(&mut self) -> Result<Vec<f64>, PersistError> {
        let len = self.len_prefix()?;
        (0..len).map(|_| self.f64()).collect()
    }

    fn len_prefix(&mut self) -> Result<usize, PersistError> {
        let len = self.u32()? as usize;
        // A length prefix can never legitimately exceed what's left: each
        // element is at least one byte. Rejecting here keeps a corrupt
        // prefix from attempting a huge allocation.
        if len > self.remaining() {
            return Err(PersistError::Eof);
        }
        Ok(len)
    }
}

// ---- the trait ----------------------------------------------------------

/// Exact binary serialization. `restore(persist(x)) == x` must hold
/// bit-for-bit for every observable field; in particular a restored shard
/// or RNG must continue a run with draws and estimates identical to the
/// original's.
pub trait Persist: Sized {
    /// Append this value's encoding to `out`.
    fn persist(&self, out: &mut Vec<u8>);

    /// Decode one value from the reader, advancing it.
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError>;
}

impl Persist for Estimate {
    fn persist(&self, out: &mut Vec<u8>) {
        put_f64(out, self.tau);
        put_f64(out, self.variance);
        put_u64(out, self.n_roots);
        put_u64(out, self.steps);
        put_u64(out, self.hits);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Estimate {
            tau: r.f64()?,
            variance: r.f64()?,
            n_roots: r.u64()?,
            steps: r.u64()?,
            hits: r.u64()?,
        })
    }
}

impl Persist for PartitionPlan {
    fn persist(&self, out: &mut Vec<u8>) {
        put_f64s(out, self.interior());
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        // A valid plan's interior boundaries are already sorted and
        // strictly increasing, so `new` neither reorders nor rejects a
        // faithful round-trip.
        PartitionPlan::new(r.f64s()?).map_err(|_| PersistError::Malformed("partition plan"))
    }
}

impl Persist for SimRng {
    fn persist(&self, out: &mut Vec<u8>) {
        let (key, counter, remaining) = self.state();
        for w in key {
            put_u32(out, w);
        }
        put_u64(out, counter);
        put_u8(out, remaining);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let mut key = [0u32; 8];
        for w in key.iter_mut() {
            *w = r.u32()?;
        }
        let counter = r.u64()?;
        let remaining = r.u8()?;
        if remaining as usize > SimRng::BLOCK_WORDS {
            return Err(PersistError::Malformed("rng words_remaining"));
        }
        Ok(SimRng::from_state(key, counter, remaining))
    }
}

// ---- type-erased stored-shard codec -------------------------------------

const TAG_SRS: u8 = 1;
const TAG_SMLSS: u8 = 2;
const TAG_GMLSS: u8 = 3;
const TAG_IS: u8 = 4;

/// Encode a type-erased [`StoredShard`] (shard + resume RNG + estimate +
/// seed provenance). The concrete shard type is discovered by downcast
/// and recorded as a tag byte; returns `UnsupportedShard` for shard types
/// outside the four in-tree estimators.
pub fn encode_stored_shard(entry: &StoredShard, out: &mut Vec<u8>) -> Result<(), PersistError> {
    if let Some(s) = entry.shard_as::<SrsShard>() {
        put_u8(out, TAG_SRS);
        s.persist(out);
    } else if let Some(s) = entry.shard_as::<SMlssShard>() {
        put_u8(out, TAG_SMLSS);
        s.persist(out);
    } else if let Some(s) = entry.shard_as::<GmlssShard>() {
        put_u8(out, TAG_GMLSS);
        s.persist(out);
    } else if let Some(s) = entry.shard_as::<IsShard>() {
        put_u8(out, TAG_IS);
        s.persist(out);
    } else {
        return Err(PersistError::UnsupportedShard(0));
    }
    entry.rng.persist(out);
    entry.estimate.persist(out);
    match entry.seed {
        Some(s) => {
            put_u8(out, 1);
            put_u64(out, s);
        }
        None => put_u8(out, 0),
    }
    put_f64(out, entry.target_re);
    put_u8(out, entry.bit_exact as u8);
    Ok(())
}

/// Decode a [`StoredShard`] produced by [`encode_stored_shard`].
pub fn decode_stored_shard(r: &mut Reader<'_>) -> Result<StoredShard, PersistError> {
    let tag = r.u8()?;
    // Decode the concrete shard first, then the shared envelope, then
    // re-erase through `StoredShard::new` (which also restores the cached
    // meta the store's planner reads).
    macro_rules! finish {
        ($shard:expr) => {{
            let shard = $shard;
            let rng = SimRng::restore(r)?;
            let estimate = Estimate::restore(r)?;
            let seed = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                _ => return Err(PersistError::Malformed("seed option tag")),
            };
            let target_re = r.f64()?;
            let bit_exact = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(PersistError::Malformed("bit_exact flag")),
            };
            Ok(StoredShard::new(
                &shard, rng, estimate, seed, target_re, bit_exact,
            ))
        }};
    }
    match tag {
        TAG_SRS => finish!(SrsShard::restore(r)?),
        TAG_SMLSS => finish!(SMlssShard::restore(r)?),
        TAG_GMLSS => finish!(GmlssShard::restore(r)?),
        TAG_IS => finish!(IsShard::restore(r)?),
        other => Err(PersistError::UnsupportedShard(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use rand::RngCore;

    #[test]
    fn primitive_roundtrip() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 3);
        put_i64(&mut out, -42);
        put_u128(&mut out, u128::MAX / 3);
        put_f64(&mut out, -0.0);
        put_f64(&mut out, f64::INFINITY);
        put_str(&mut out, "walk β=6");
        put_f64s(&mut out, &[0.25, 0.5, 0.75]);
        let mut r = Reader::new(&out);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap(), f64::INFINITY);
        assert_eq!(r.str().unwrap(), "walk β=6");
        assert_eq!(r.f64s().unwrap(), vec![0.25, 0.5, 0.75]);
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u8(), Err(PersistError::Eof));
    }

    #[test]
    fn corrupt_length_prefix_is_rejected_not_allocated() {
        let mut out = Vec::new();
        put_u32(&mut out, u32::MAX); // absurd element count
        let mut r = Reader::new(&out);
        assert_eq!(r.f64s(), Err(PersistError::Eof));
    }

    #[test]
    fn rng_roundtrip_is_draw_identical() {
        let mut rng = rng_from_seed(99);
        for _ in 0..37 {
            let _ = rng.next_u32();
        }
        let mut out = Vec::new();
        rng.persist(&mut out);
        let mut restored = SimRng::restore(&mut Reader::new(&out)).unwrap();
        for _ in 0..64 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn plan_roundtrip_is_exact() {
        let plan = PartitionPlan::new(vec![0.1, 0.30000000000000004, 0.7]).unwrap();
        let mut out = Vec::new();
        plan.persist(&mut out);
        let restored = PartitionPlan::restore(&mut Reader::new(&out)).unwrap();
        assert_eq!(plan, restored);
        let trivial = PartitionPlan::trivial();
        let mut out = Vec::new();
        trivial.persist(&mut out);
        assert_eq!(
            PartitionPlan::restore(&mut Reader::new(&out)).unwrap(),
            trivial
        );
    }
}
