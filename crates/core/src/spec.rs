//! The typed **query spec IR** behind the declarative `ESTIMATE` dialect.
//!
//! Every way of asking a durability question — the SQL statement
//! `ESTIMATE DURABILITY OF cpp(beta=500) WITHIN 1000 …`, the legacy
//! positional stored procedures (`mlss_estimate`, `mlss_submit`), and the
//! native `Session::submit` API — compiles down to one [`QuerySpec`]
//! value and flows through one dispatch path. The IR captures:
//!
//! * the **model reference**: a registered model name plus named
//!   parameter overrides (validated against the model's
//!   [`ModelSchema`]);
//! * the **method**: one of the four samplers (or `auto`), plus its
//!   level count;
//! * the **query shape**: threshold β, horizon, and the relative-error
//!   quality target;
//! * **execution options**: threads, frontier batch width, RNG seed,
//!   scheduler priority, and sync-vs-async mode.
//!
//! [`SpecError`] is the taxonomy of everything that can be wrong with a
//! spec — syntactic (with byte [`Span`]s pointing into the statement
//! text) or semantic (unknown model/parameter/option, out-of-range
//! values, missing clauses) — replacing the stringly-typed procedure
//! errors the positional interface produced.
//!
//! The module also hosts the spec-level scheduler integration:
//! [`resolve_method`] turns a [`Method`] plus a plan-cache lookup into
//! the concrete estimator choice (the `auto` rule), [`estimator_job`]
//! boxes any resolved method as a [`SliceableQuery`], and
//! [`DeferredPlanQuery`] schedules the **plan-derivation pilot as the
//! query's first slice** so an `ASYNC` submission never runs the pilot
//! synchronously on a plan-cache miss.

use crate::gmlss::GMlssConfig;
use crate::levels::PartitionPlan;
use crate::model::SimulationModel;
use crate::partition::balanced_plan;
use crate::plan_cache::{PlanCache, PlanLookup};
use crate::quality::{QualityTarget, RunControl};
use crate::query::{Problem, RatioValue, StateScore};
use crate::rng::rng_from_seed;
use crate::scheduler::{EstimatorQuery, SliceableQuery};
use crate::shard_store::{shard_key, ShardKey, StoredShard};
use crate::smlss::SMlssConfig;
use crate::srs::SrsEstimator;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Spans and the error taxonomy
// ---------------------------------------------------------------------

/// A byte range into the statement text an error refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First byte of the offending region.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }

    /// An empty span at a single position (e.g. "expected X here").
    pub fn at(pos: usize) -> Self {
        Self {
            start: pos,
            end: pos,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.start == self.end {
            write!(f, "byte {}", self.start)
        } else {
            write!(f, "bytes {}..{}", self.start, self.end)
        }
    }
}

/// What is wrong with a query spec.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecErrorKind {
    /// The statement text does not match the dialect grammar.
    Syntax {
        /// What the parser expected / found.
        message: String,
    },
    /// The model name is not registered.
    UnknownModel {
        /// The name as written.
        name: String,
        /// Registered model names (for the error message).
        known: Vec<String>,
    },
    /// The method name is not one of the samplers.
    UnknownMethod {
        /// The name as written.
        name: String,
    },
    /// A named model parameter the model's schema does not declare.
    UnknownParam {
        /// Model the parameter was given for.
        model: String,
        /// The parameter name as written.
        name: String,
    },
    /// A model parameter whose value has the wrong shape for its
    /// declared type (fractional for `int`, not 0/1 for `bool`).
    ParamWrongType {
        /// Model the parameter belongs to.
        model: String,
        /// Parameter name.
        name: String,
        /// The offending value.
        value: f64,
        /// The declared type.
        expected: ParamType,
    },
    /// A model parameter outside its schema range.
    ParamOutOfRange {
        /// Model the parameter belongs to.
        model: String,
        /// Parameter name.
        name: String,
        /// The offending value.
        value: f64,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// A `WITH (…)` or method option that does not exist.
    UnknownOption {
        /// The option name as written.
        name: String,
    },
    /// An option or clause with a value of the wrong shape or range.
    InvalidValue {
        /// Which field (`"horizon"`, `"threads"`, `"levels"`, …).
        field: &'static str,
        /// Why the value is rejected.
        message: String,
    },
    /// A required clause or parameter is absent.
    MissingClause {
        /// What is missing (`"beta"`, `"WITHIN"`, `"TARGET RE"`, …).
        clause: &'static str,
    },
    /// The same parameter or option was given twice.
    Duplicate {
        /// What kind of thing was duplicated.
        what: &'static str,
        /// The duplicated name.
        name: String,
    },
}

/// A spec failure: the [`SpecErrorKind`] taxonomy plus, when the spec
/// came from statement text, the byte [`Span`] of the offending region.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    /// What went wrong.
    pub kind: SpecErrorKind,
    /// Where in the statement text (None for specs built in code).
    pub span: Option<Span>,
}

impl SpecError {
    /// An error with no source location.
    pub fn new(kind: SpecErrorKind) -> Self {
        Self { kind, span: None }
    }

    /// An error pointing at `span` in the statement text.
    pub fn at(kind: SpecErrorKind, span: Span) -> Self {
        Self {
            kind,
            span: Some(span),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            SpecErrorKind::Syntax { message } => write!(f, "syntax error: {message}")?,
            SpecErrorKind::UnknownModel { name, known } => write!(
                f,
                "unknown model '{name}' (registered: {})",
                known.join(", ")
            )?,
            SpecErrorKind::UnknownMethod { name } => write!(
                f,
                "unknown method '{name}' (expected srs, smlss, mlss, gmlss, or auto)"
            )?,
            SpecErrorKind::UnknownParam { model, name } => {
                write!(f, "model '{model}' has no parameter '{name}'")?
            }
            SpecErrorKind::ParamWrongType {
                model,
                name,
                value,
                expected,
            } => {
                let shape = match expected {
                    ParamType::Float => "a number",
                    ParamType::Int => "an integer",
                    ParamType::Bool => "0 or 1",
                };
                write!(
                    f,
                    "parameter '{name}' of model '{model}' must be {shape}, got {value}"
                )?
            }
            SpecErrorKind::ParamOutOfRange {
                model,
                name,
                value,
                min,
                max,
            } => write!(
                f,
                "parameter '{name}' of model '{model}' must be in [{min}, {max}], got {value}"
            )?,
            SpecErrorKind::UnknownOption { name } => write!(f, "unknown option '{name}'")?,
            SpecErrorKind::InvalidValue { field, message } => {
                write!(f, "invalid {field}: {message}")?
            }
            SpecErrorKind::MissingClause { clause } => write!(f, "missing {clause}")?,
            SpecErrorKind::Duplicate { what, name } => write!(f, "duplicate {what} '{name}'")?,
        }
        if let Some(span) = self.span {
            write!(f, " at {span}")?;
        }
        Ok(())
    }
}

impl std::error::Error for SpecError {}

// ---------------------------------------------------------------------
// The IR
// ---------------------------------------------------------------------

/// A sampling method accepted by the dialect (`USING …`) and the
/// positional shims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Simple random sampling.
    Srs,
    /// s-MLSS over an automatically balanced plan.
    SMlss,
    /// g-MLSS over an automatically balanced plan (`"mlss"`/`"gmlss"`).
    GMlss,
    /// g-MLSS when a level plan is derivable from a pilot, SRS otherwise.
    Auto,
}

impl Method {
    /// Parse a SQL-facing method name.
    pub fn parse(name: &str) -> Result<Self, SpecError> {
        match name {
            "srs" => Ok(Method::Srs),
            "smlss" => Ok(Method::SMlss),
            "mlss" | "gmlss" => Ok(Method::GMlss),
            "auto" => Ok(Method::Auto),
            other => Err(SpecError::new(SpecErrorKind::UnknownMethod {
                name: other.to_string(),
            })),
        }
    }

    /// Canonical SQL-facing name (aliases collapse: `"mlss"` renders as
    /// `"gmlss"`).
    pub fn name(&self) -> &'static str {
        match self {
            Method::Srs => "srs",
            Method::SMlss => "smlss",
            Method::GMlss => "gmlss",
            Method::Auto => "auto",
        }
    }

    /// Does this method derive (and cache) a partition plan?
    pub fn needs_plan(&self) -> bool {
        !matches!(self, Method::Srs)
    }
}

/// Synchronous or scheduled execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Block until the quality target is reached (the default).
    #[default]
    Sync,
    /// Submit to the scheduler and return a query id immediately.
    Async,
}

/// Execution options (`WITH (…)` plus the `ASYNC` suffix).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOptions {
    /// Worker threads for the synchronous path (1 = sequential driver).
    pub threads: usize,
    /// Frontier batch width. `None` inherits the layer default (scalar
    /// for the sync driver, the scheduler's configured width for async);
    /// `Some(0)` forces scalar, `Some(w)` batched slices at width `w`,
    /// and `Some(`[`crate::width::AUTO_WIDTH`]`)` (`batch_width=auto`)
    /// asks the executor to resolve a width from the model's kernel
    /// class, probing and memoizing per query fingerprint. Widths never
    /// change results — `auto` is bit-identical to its resolved width.
    pub batch_width: Option<usize>,
    /// Pinned RNG seed (worker-0-canonical stream). `None` draws from
    /// the caller's stream.
    pub seed: Option<u64>,
    /// Scheduler priority (lower runs first; async only).
    pub priority: u8,
    /// Sync or async execution.
    pub mode: ExecMode,
    /// Fair-share tenant this query is charged to. Not part of the
    /// statement language — the serving layer stamps it from the
    /// connection's handshake identity, and `None` (every statement
    /// parsed from text) keeps the tenantless behavior.
    pub tenant: Option<String>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            batch_width: None,
            seed: None,
            priority: 0,
            mode: ExecMode::Sync,
            tenant: None,
        }
    }
}

/// Levels requested from automatic plan derivation when the statement
/// does not say (the paper finds 3–6 optimal; 4 is the serving default
/// and part of the plan-cache key).
pub const DEFAULT_PLAN_LEVELS: usize = 4;

/// Root paths in the plan-derivation pilot.
pub const PILOT_PATHS: usize = 2000;

/// Method component of the plan-cache key. Every built-in MLSS method —
/// s-MLSS, g-MLSS, and auto — derives its plan with the *same* balanced
/// pilot, so they share one key: a `gmlss` query after an `auto` query
/// over the same model must not re-run an identical pilot. A future
/// method with its own derivation (e.g. greedy) would use its own key.
pub const BALANCED_PLAN_KEY: &str = "balanced";

/// Seed salt for the pilot's private stream: the pilot must not consume
/// draws from a scheduled query's main stream, or plan-cache hits and
/// misses would produce different estimates.
pub const PILOT_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// The typed IR of one durability estimation query — what every entry
/// point (dialect statement, positional procedure, native API) compiles
/// to and what the single dispatch path executes.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Registered model name.
    pub model: String,
    /// Named parameter overrides, applied over the `models` table rows
    /// and the schema defaults.
    pub params: BTreeMap<String, f64>,
    /// Sampling method.
    pub method: Method,
    /// Levels requested from automatic plan derivation.
    pub levels: usize,
    /// Durability threshold β (the `beta=` entry of the model ref).
    pub beta: f64,
    /// Time horizon `s` (`WITHIN s`).
    pub horizon: u64,
    /// Relative-error quality target (`TARGET RE r` — `0.5%` is 0.005).
    pub target_re: f64,
    /// Execution options.
    pub options: ExecOptions,
}

impl QuerySpec {
    /// A spec with the given required fields and all options default
    /// (method `auto`, 4 levels, sync, sequential, scalar).
    pub fn new(model: impl Into<String>, beta: f64, horizon: u64, target_re: f64) -> Self {
        Self {
            model: model.into(),
            params: BTreeMap::new(),
            method: Method::Auto,
            levels: DEFAULT_PLAN_LEVELS,
            beta,
            horizon,
            target_re,
            options: ExecOptions::default(),
        }
    }

    /// Set the method (builder style).
    pub fn with_method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Validate the shape-level invariants every entry point must hold
    /// (model-schema validation is the registry's job). Checks the
    /// fields shared by all execution paths: β finite, horizon ≥ 1,
    /// target RE positive, threads ≥ 1, levels in range.
    pub fn validate(&self) -> Result<(), SpecError> {
        if !self.beta.is_finite() {
            return Err(SpecError::new(SpecErrorKind::InvalidValue {
                field: "beta",
                message: format!("must be finite, got {}", self.beta),
            }));
        }
        if self.horizon < 1 {
            return Err(SpecError::new(SpecErrorKind::InvalidValue {
                field: "horizon",
                message: "must be ≥ 1".into(),
            }));
        }
        if !(self.target_re.is_finite() && self.target_re > 0.0) {
            return Err(SpecError::new(SpecErrorKind::InvalidValue {
                field: "target_re",
                message: "must be positive".into(),
            }));
        }
        if self.options.threads < 1 {
            return Err(SpecError::new(SpecErrorKind::InvalidValue {
                field: "threads",
                message: "must be ≥ 1".into(),
            }));
        }
        if !(1..=64).contains(&self.levels) {
            return Err(SpecError::new(SpecErrorKind::InvalidValue {
                field: "levels",
                message: format!("must be in 1..=64, got {}", self.levels),
            }));
        }
        Ok(())
    }

    /// Render the canonical dialect statement for this spec.
    ///
    /// The rendering is a **fixed point** of the parser: parsing the
    /// rendered text yields a spec equal to `self` (with spans erased),
    /// and re-rendering that spec yields the identical string. Canonical
    /// choices: `beta` leads the model parameter list and overrides
    /// follow in sorted order, the method clause always spells its level
    /// count, the RE target is a raw fraction, and `WITH` lists only
    /// non-default options in alphabetical order.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("ESTIMATE DURABILITY OF ");
        s.push_str(&self.model);
        s.push_str(&format!("(beta={}", self.beta));
        for (k, v) in &self.params {
            s.push_str(&format!(", {k}={v}"));
        }
        s.push(')');
        s.push_str(&format!(" WITHIN {}", self.horizon));
        s.push_str(&format!(" USING {}", self.method.name()));
        if self.method.needs_plan() {
            s.push_str(&format!("(levels={})", self.levels));
        }
        s.push_str(&format!(" TARGET RE {}", self.target_re));
        let mut opts: Vec<String> = Vec::new();
        if let Some(w) = self.options.batch_width {
            if w == crate::width::AUTO_WIDTH {
                opts.push("batch_width=auto".to_string());
            } else {
                opts.push(format!("batch_width={w}"));
            }
        }
        if self.options.priority != 0 {
            opts.push(format!("priority={}", self.options.priority));
        }
        if let Some(seed) = self.options.seed {
            opts.push(format!("seed={seed}"));
        }
        if self.options.threads != 1 {
            opts.push(format!("threads={}", self.options.threads));
        }
        if !opts.is_empty() {
            s.push_str(&format!(" WITH ({})", opts.join(", ")));
        }
        if self.options.mode == ExecMode::Async {
            s.push_str(" ASYNC");
        }
        s
    }

    /// Render just the model-ref component (`model(beta=…, k=v, …)`) —
    /// the canonical arm label in `RANK BY` standings.
    pub fn model_ref(&self) -> String {
        let mut s = format!("{}(beta={}", self.model, self.beta);
        for (k, v) in &self.params {
            s.push_str(&format!(", {k}={v}"));
        }
        s.push(')');
        s
    }
}

// ---------------------------------------------------------------------
// Ranking queries (`RANK BY TOP k`)
// ---------------------------------------------------------------------

/// Default racing rounds for `RANK BY` (overridable per statement).
pub const DEFAULT_RANK_ROUNDS: usize = 12;

/// Default per-arm `g`-invocation budget per racing round.
pub const DEFAULT_RANK_ROUND_BUDGET: u64 = 50_000;

/// Default confidence level for the boundary-elimination tests.
pub const DEFAULT_RANK_CONFIDENCE: f64 = 0.95;

/// Cap on the number of arms a candidate list (after sweep expansion)
/// may produce — guards against runaway `SWEEP … STEP tiny` statements.
pub const MAX_RANK_ARMS: usize = 64;

/// The typed IR of one top-`k` ranking query: a field of per-arm
/// [`QuerySpec`]s raced under confidence-bound boundary elimination
/// (see `mlss_core::ranking`). Every arm shares the statement's
/// `WITHIN`/`USING`/`TARGET RE`/`WITH` clauses; arms differ only in
/// model ref (and swept parameters).
#[derive(Debug, Clone, PartialEq)]
pub struct RankSpec {
    /// One fully-formed spec per arm, in statement order. Arm execution
    /// options mirror [`RankSpec::options`]; the dispatcher derives each
    /// arm's pinned seed from the race seed.
    pub arms: Vec<QuerySpec>,
    /// Display labels, parallel to `arms` (canonical model refs).
    pub labels: Vec<String>,
    /// The `k` of `TOP k`.
    pub top_k: usize,
    /// Confidence level for the boundary tests.
    pub confidence: f64,
    /// Round cap.
    pub max_rounds: usize,
    /// Per-arm `g` budget per round.
    pub round_budget: u64,
    /// Race-level execution options (seed, mode, priority, tenant).
    pub options: ExecOptions,
}

impl RankSpec {
    /// Build a rank spec over arms with default race controls; labels
    /// are the arms' canonical model refs.
    pub fn new(arms: Vec<QuerySpec>, top_k: usize) -> Self {
        let labels = arms.iter().map(QuerySpec::model_ref).collect();
        let options = arms.first().map(|a| a.options.clone()).unwrap_or_default();
        Self {
            arms,
            labels,
            top_k,
            confidence: DEFAULT_RANK_CONFIDENCE,
            max_rounds: DEFAULT_RANK_ROUNDS,
            round_budget: DEFAULT_RANK_ROUND_BUDGET,
            options,
        }
    }

    /// Shape-level invariants shared by every execution path.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.arms.is_empty() {
            return Err(SpecError::new(SpecErrorKind::InvalidValue {
                field: "rank arms",
                message: "need at least one candidate".into(),
            }));
        }
        if self.arms.len() > MAX_RANK_ARMS {
            return Err(SpecError::new(SpecErrorKind::InvalidValue {
                field: "rank arms",
                message: format!(
                    "candidate field expands to {} arms, cap is {MAX_RANK_ARMS}",
                    self.arms.len()
                ),
            }));
        }
        if !(1..=self.arms.len()).contains(&self.top_k) {
            return Err(SpecError::new(SpecErrorKind::InvalidValue {
                field: "top_k",
                message: format!("must be in 1..={}, got {}", self.arms.len(), self.top_k),
            }));
        }
        if !(self.confidence > 0.5 && self.confidence < 1.0) {
            return Err(SpecError::new(SpecErrorKind::InvalidValue {
                field: "confidence",
                message: format!("must be in (0.5, 1), got {}", self.confidence),
            }));
        }
        if !(1..=10_000).contains(&self.max_rounds) {
            return Err(SpecError::new(SpecErrorKind::InvalidValue {
                field: "rounds",
                message: format!("must be in 1..=10000, got {}", self.max_rounds),
            }));
        }
        if self.round_budget < 1 {
            return Err(SpecError::new(SpecErrorKind::InvalidValue {
                field: "round_budget",
                message: "must be ≥ 1".into(),
            }));
        }
        if self.labels.len() != self.arms.len() {
            return Err(SpecError::new(SpecErrorKind::InvalidValue {
                field: "rank arms",
                message: "labels and arms must be parallel".into(),
            }));
        }
        let mut seen = std::collections::BTreeSet::new();
        for label in &self.labels {
            if !seen.insert(label.as_str()) {
                return Err(SpecError::new(SpecErrorKind::Duplicate {
                    what: "rank candidate",
                    name: label.clone(),
                }));
            }
        }
        for arm in &self.arms {
            arm.validate()?;
        }
        Ok(())
    }

    /// The race configuration the ranking engine runs with.
    pub fn race_config(&self) -> crate::ranking::RaceConfig {
        crate::ranking::RaceConfig {
            round_budget: self.round_budget,
            max_rounds: self.max_rounds,
            confidence: self.confidence,
            top_k: self.top_k,
            ..Default::default()
        }
    }

    /// Render the canonical dialect statement (parser fixed point, like
    /// [`QuerySpec::render`]). Shared clauses come from the first arm.
    pub fn render(&self) -> String {
        let Some(first) = self.arms.first() else {
            return String::new();
        };
        let refs: Vec<String> = self.arms.iter().map(QuerySpec::model_ref).collect();
        let mut s = format!("ESTIMATE DURABILITY OF {}", refs.join(", "));
        s.push_str(&format!(" WITHIN {}", first.horizon));
        s.push_str(&format!(" USING {}", first.method.name()));
        if first.method.needs_plan() {
            s.push_str(&format!("(levels={})", first.levels));
        }
        s.push_str(&format!(" TARGET RE {}", first.target_re));
        s.push_str(&format!(" RANK BY TOP {}", self.top_k));
        let mut ropts: Vec<String> = Vec::new();
        if self.confidence != DEFAULT_RANK_CONFIDENCE {
            ropts.push(format!("confidence={}", self.confidence));
        }
        if self.max_rounds != DEFAULT_RANK_ROUNDS {
            ropts.push(format!("rounds={}", self.max_rounds));
        }
        if self.round_budget != DEFAULT_RANK_ROUND_BUDGET {
            ropts.push(format!("round_budget={}", self.round_budget));
        }
        if !ropts.is_empty() {
            s.push_str(&format!(" ({})", ropts.join(", ")));
        }
        let mut opts: Vec<String> = Vec::new();
        if let Some(w) = self.options.batch_width {
            if w == crate::width::AUTO_WIDTH {
                opts.push("batch_width=auto".to_string());
            } else {
                opts.push(format!("batch_width={w}"));
            }
        }
        if self.options.priority != 0 {
            opts.push(format!("priority={}", self.options.priority));
        }
        if let Some(seed) = self.options.seed {
            opts.push(format!("seed={seed}"));
        }
        if self.options.threads != 1 {
            opts.push(format!("threads={}", self.options.threads));
        }
        if !opts.is_empty() {
            s.push_str(&format!(" WITH ({})", opts.join(", ")));
        }
        if self.options.mode == ExecMode::Async {
            s.push_str(" ASYNC");
        }
        s
    }
}

// ---------------------------------------------------------------------
// Model parameter schemas
// ---------------------------------------------------------------------

/// Declared type of a model parameter (informational plus validation:
/// `Int` values must be integral, `Bool` values 0 or 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamType {
    /// Any real value.
    Float,
    /// An integral value.
    Int,
    /// 0 or 1.
    Bool,
}

impl ParamType {
    /// SQL-facing type name.
    pub fn name(&self) -> &'static str {
        match self {
            ParamType::Float => "float",
            ParamType::Int => "int",
            ParamType::Bool => "bool",
        }
    }
}

/// One named parameter a model declares: name, type, default, inclusive
/// range, and a one-line description. Drives override validation and the
/// `SHOW MODELS` catalog.
#[derive(Debug, Clone)]
pub struct ParamSpec {
    /// Parameter name as it appears in the dialect and the `models` table.
    pub name: &'static str,
    /// Declared type.
    pub ty: ParamType,
    /// Default value (what `seed_default_models` writes).
    pub default: f64,
    /// Inclusive lower bound.
    pub min: f64,
    /// Inclusive upper bound.
    pub max: f64,
    /// One-line description.
    pub doc: &'static str,
}

impl ParamSpec {
    /// A float parameter.
    pub fn float(name: &'static str, default: f64, min: f64, max: f64, doc: &'static str) -> Self {
        Self {
            name,
            ty: ParamType::Float,
            default,
            min,
            max,
            doc,
        }
    }

    /// An integral parameter.
    pub fn int(name: &'static str, default: f64, min: f64, max: f64, doc: &'static str) -> Self {
        Self {
            name,
            ty: ParamType::Int,
            default,
            min,
            max,
            doc,
        }
    }

    /// A 0/1 flag parameter.
    pub fn flag(name: &'static str, default: f64, doc: &'static str) -> Self {
        Self {
            name,
            ty: ParamType::Bool,
            default,
            min: 0.0,
            max: 1.0,
            doc,
        }
    }

    /// Is `value` acceptable for this parameter? Shape violations
    /// (fractional `int`, non-0/1 `bool`, non-finite) report
    /// [`SpecErrorKind::ParamWrongType`]; in-shape values outside the
    /// inclusive range report [`SpecErrorKind::ParamOutOfRange`]. Public
    /// so the dialect parser can validate with spans without
    /// re-implementing the rules.
    pub fn check(&self, model: &str, value: f64) -> Result<(), SpecError> {
        let integral_ok = match self.ty {
            ParamType::Float => true,
            ParamType::Int | ParamType::Bool => value.fract() == 0.0,
        };
        if !(value.is_finite() && integral_ok) {
            return Err(SpecError::new(SpecErrorKind::ParamWrongType {
                model: model.to_string(),
                name: self.name.to_string(),
                value,
                expected: self.ty,
            }));
        }
        if !(value >= self.min && value <= self.max) {
            return Err(SpecError::new(SpecErrorKind::ParamOutOfRange {
                model: model.to_string(),
                name: self.name.to_string(),
                value,
                min: self.min,
                max: self.max,
            }));
        }
        Ok(())
    }
}

/// The named-parameter schema of one registered model.
#[derive(Debug, Clone)]
pub struct ModelSchema {
    /// Registered model name.
    pub name: &'static str,
    /// Declared parameters.
    pub params: Vec<ParamSpec>,
    /// One-line model description.
    pub doc: &'static str,
}

impl ModelSchema {
    /// Build a schema.
    pub fn new(name: &'static str, doc: &'static str, params: Vec<ParamSpec>) -> Self {
        Self { name, params, doc }
    }

    /// Look up a declared parameter.
    pub fn param(&self, name: &str) -> Option<&ParamSpec> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Validate a set of named overrides: every name must be declared
    /// and every value inside its range.
    pub fn validate_overrides(&self, overrides: &BTreeMap<String, f64>) -> Result<(), SpecError> {
        for (name, value) in overrides {
            let Some(p) = self.param(name) else {
                return Err(SpecError::new(SpecErrorKind::UnknownParam {
                    model: self.name.to_string(),
                    name: name.clone(),
                }));
            };
            p.check(self.name, *value)?;
        }
        Ok(())
    }

    /// The schema defaults as a parameter map.
    pub fn defaults(&self) -> BTreeMap<String, f64> {
        self.params
            .iter()
            .map(|p| (p.name.to_string(), p.default))
            .collect()
    }
}

// ---------------------------------------------------------------------
// Method resolution and scheduler integration
// ---------------------------------------------------------------------

/// The concrete estimator a [`Method`] resolves to once the plan lookup
/// has happened (the `auto` rule: g-MLSS when the pilot derives a usable
/// multi-level plan — finite τ hint and ≥ 2 levels — SRS otherwise).
#[derive(Debug, Clone)]
pub enum ResolvedMethod {
    /// Simple random sampling (no plan).
    Srs,
    /// s-MLSS over the given plan.
    SMlss(PartitionPlan),
    /// g-MLSS over the given plan.
    GMlss(PartitionPlan),
}

impl ResolvedMethod {
    /// Canonical name of the concrete estimator.
    pub fn name(&self) -> &'static str {
        match self {
            ResolvedMethod::Srs => "srs",
            ResolvedMethod::SMlss(_) => "smlss",
            ResolvedMethod::GMlss(_) => "gmlss",
        }
    }

    /// The partition plan, when the method has one.
    pub fn plan(&self) -> Option<&PartitionPlan> {
        match self {
            ResolvedMethod::Srs => None,
            ResolvedMethod::SMlss(p) | ResolvedMethod::GMlss(p) => Some(p),
        }
    }
}

/// Resolve a requested method against a plan lookup. `lookup` must be
/// `Some` exactly when [`Method::needs_plan`] holds.
pub fn resolve_method(method: Method, lookup: Option<&PlanLookup>) -> ResolvedMethod {
    match method {
        Method::Srs => ResolvedMethod::Srs,
        Method::SMlss => {
            ResolvedMethod::SMlss(lookup.expect("smlss needs a plan lookup").plan.clone())
        }
        Method::GMlss => {
            ResolvedMethod::GMlss(lookup.expect("gmlss needs a plan lookup").plan.clone())
        }
        Method::Auto => {
            let lookup = lookup.expect("auto needs a plan lookup");
            if lookup.tau_hint.is_finite() && lookup.plan.num_levels() >= 2 {
                ResolvedMethod::GMlss(lookup.plan.clone())
            } else {
                ResolvedMethod::Srs
            }
        }
    }
}

/// Box a resolved method as a scheduler job: an [`EstimatorQuery`] over
/// the concrete estimator, seeded worker-0-canonically and running its
/// slices at `batch_width` (0 = scalar). With `reuse_fingerprint`, the
/// job is tagged with its shard-store key so a store-attached scheduler
/// deposits its checkpoints for cross-query reuse.
#[allow(clippy::too_many_arguments)]
pub fn estimator_job<M, Z>(
    model: M,
    score: Z,
    beta: f64,
    horizon: u64,
    resolved: &ResolvedMethod,
    control: RunControl,
    seed: u64,
    batch_width: usize,
    reuse_fingerprint: Option<u64>,
) -> Box<dyn SliceableQuery>
where
    M: SimulationModel + Send + 'static,
    M::State: Send,
    Z: StateScore<M::State> + Copy + Send + Sync + 'static,
{
    fn tag<M, V, E>(
        query: EstimatorQuery<M, V, E>,
        key: Option<ShardKey>,
    ) -> Box<dyn SliceableQuery>
    where
        M: SimulationModel + Send + 'static,
        M::State: Send,
        V: crate::query::ValueFunction<M::State> + Send + 'static,
        E: crate::estimator::Estimator<M, V> + Send + 'static,
        E::Shard: Send + Clone + 'static,
    {
        match key {
            Some(key) => Box::new(query.with_reuse_key(key)),
            None => Box::new(query),
        }
    }

    let key = reuse_fingerprint.map(|fp| shard_key(fp, resolved.name(), resolved.plan()));
    let vf = RatioValue::new(score, beta);
    match resolved {
        ResolvedMethod::Srs => tag(
            EstimatorQuery::from_seed(model, vf, horizon, SrsEstimator, control, seed)
                .with_batch_width(batch_width),
            key,
        ),
        ResolvedMethod::SMlss(plan) => {
            let cfg = SMlssConfig::new(plan.clone(), control);
            tag(
                EstimatorQuery::from_seed(model, vf, horizon, cfg, control, seed)
                    .with_batch_width(batch_width),
                key,
            )
        }
        ResolvedMethod::GMlss(plan) => {
            let cfg = GMlssConfig::new(plan.clone(), control);
            tag(
                EstimatorQuery::from_seed(model, vf, horizon, cfg, control, seed)
                    .with_batch_width(batch_width),
                key,
            )
        }
    }
}

/// Box a resolved method as a **warm-started** scheduler job resuming
/// from a stored checkpoint: the job starts with `entry`'s shard and
/// RNG position and runs only the marginal work its control still
/// requires. Falls back to the cold job of [`estimator_job`] when the
/// stored shard's concrete type does not match `resolved` — unreachable
/// with a correct [`ShardKey`], but never worth failing a query over.
/// Returns the job plus whether the warm start actually applied.
#[allow(clippy::too_many_arguments)]
pub fn warm_estimator_job<M, Z>(
    model: M,
    score: Z,
    beta: f64,
    horizon: u64,
    resolved: &ResolvedMethod,
    control: RunControl,
    entry: &StoredShard,
    seed: u64,
    batch_width: usize,
    fingerprint: u64,
) -> (Box<dyn SliceableQuery>, bool)
where
    M: SimulationModel + Send + 'static,
    M::State: Send,
    Z: StateScore<M::State> + Copy + Send + Sync + 'static,
{
    let key = shard_key(fingerprint, resolved.name(), resolved.plan());
    let vf = RatioValue::new(score, beta);
    macro_rules! warm_or_cold {
        ($estimator:expr, $shard_ty:ty) => {
            match entry.shard_as::<$shard_ty>() {
                Some(shard) => (
                    Box::new(
                        EstimatorQuery::from_parts(
                            model,
                            vf,
                            horizon,
                            $estimator,
                            control,
                            shard.clone(),
                            entry.rng.clone(),
                        )
                        .with_batch_width(batch_width)
                        .with_reuse_key(key),
                    ) as Box<dyn SliceableQuery>,
                    true,
                ),
                None => (
                    estimator_job(
                        model,
                        score,
                        beta,
                        horizon,
                        resolved,
                        control,
                        seed,
                        batch_width,
                        Some(fingerprint),
                    ),
                    false,
                ),
            }
        };
    }
    match resolved {
        ResolvedMethod::Srs => warm_or_cold!(SrsEstimator, crate::srs::SrsShard),
        ResolvedMethod::SMlss(plan) => warm_or_cold!(
            SMlssConfig::new(plan.clone(), control),
            crate::smlss::SMlssShard
        ),
        ResolvedMethod::GMlss(plan) => warm_or_cold!(
            GMlssConfig::new(plan.clone(), control),
            crate::gmlss::GmlssShard
        ),
    }
}

/// Quality-check cadence (in root paths) of [`target_control`] — the
/// stopping rule every estimation entry point shares. Also the floor the
/// reuse planner requires of a stored checkpoint
/// ([`crate::planner::MIN_REUSE_ROOTS`]): a target-stopped run always
/// holds at least one cadence's worth of roots.
pub const TARGET_CHECK_EVERY: u64 = 256;

/// The stopping rule every estimation entry point uses for a
/// relative-error target.
pub fn target_control(target_re: f64) -> RunControl {
    RunControl::Target {
        target: QualityTarget::RelativeError {
            target: target_re,
            reference: None,
        },
        check_every: TARGET_CHECK_EVERY,
        max_steps: 2_000_000_000,
    }
}

/// A scheduler job whose **first slice derives the partition plan**.
///
/// On a plan-cache miss, the submit path used to run the pilot (2 000
/// SRS paths) synchronously before admitting the query — a bounded but
/// real head-of-line cost on every cold shape. `DeferredPlanQuery`
/// instead admits immediately: the first `run_slice` call performs the
/// (single-flight) cache lookup, running the pilot on this worker if no
/// other query built the plan first, resolves the method (`auto` picks
/// its estimator here), and hands the rest of the run to the inner
/// [`EstimatorQuery`].
///
/// The pilot draws from its own salted stream (`seed ^`
/// [`PILOT_SEED_SALT`]), exactly like the synchronous-submit path did,
/// so the query's main RNG stream — and therefore its estimate — is
/// bit-identical whether the plan came from the cache, an inline pilot,
/// or a deferred one.
pub struct DeferredPlanQuery<M, Z>
where
    M: SimulationModel + Send + 'static,
    M::State: Send,
    Z: StateScore<M::State> + Copy + Send + Sync + 'static,
{
    pending: Option<Pending<M, Z>>,
    inner: Option<Box<dyn SliceableQuery>>,
}

struct Pending<M, Z> {
    model: M,
    score: Z,
    beta: f64,
    horizon: u64,
    method: Method,
    levels: usize,
    control: RunControl,
    seed: u64,
    batch_width: usize,
    plans: Arc<PlanCache>,
    fingerprint: u64,
}

impl<M, Z> DeferredPlanQuery<M, Z>
where
    M: SimulationModel + Send + 'static,
    M::State: Send,
    Z: StateScore<M::State> + Copy + Send + Sync + 'static,
{
    /// Build a deferred-plan job. `method` must need a plan (SRS has
    /// nothing to defer — submit it directly).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        model: M,
        score: Z,
        beta: f64,
        horizon: u64,
        method: Method,
        levels: usize,
        control: RunControl,
        seed: u64,
        batch_width: usize,
        plans: Arc<PlanCache>,
        fingerprint: u64,
    ) -> Self {
        assert!(method.needs_plan(), "srs needs no deferred plan");
        Self {
            pending: Some(Pending {
                model,
                score,
                beta,
                horizon,
                method,
                levels,
                control,
                seed,
                batch_width,
                plans,
                fingerprint,
            }),
            inner: None,
        }
    }

    /// Derive the plan (through the single-flight cache) and build the
    /// inner estimator job. Runs at most once; a panic inside the pilot
    /// leaves `pending` in place so the scheduler's retry re-derives.
    fn activate(&mut self) {
        if self.inner.is_some() {
            return;
        }
        let lookup = {
            let p = self.pending.as_ref().expect("deferred job not activated");
            let vf = RatioValue::new(p.score, p.beta);
            let problem = Problem::new(&p.model, &vf, p.horizon);
            let mut pilot_rng = rng_from_seed(p.seed ^ PILOT_SEED_SALT);
            p.plans
                .get_or_build_traced(p.fingerprint, BALANCED_PLAN_KEY, p.levels, || {
                    balanced_plan(problem, p.levels, PILOT_PATHS, &mut pilot_rng)
                })
        };
        let p = self.pending.take().expect("deferred job not activated");
        let resolved = resolve_method(p.method, Some(&lookup));
        self.inner = Some(estimator_job(
            p.model,
            p.score,
            p.beta,
            p.horizon,
            &resolved,
            p.control,
            p.seed,
            p.batch_width,
            Some(p.fingerprint),
        ));
    }

    fn inner_mut(&mut self) -> &mut dyn SliceableQuery {
        self.inner.as_deref_mut().expect("activated")
    }
}

impl<M, Z> SliceableQuery for DeferredPlanQuery<M, Z>
where
    M: SimulationModel + Send + 'static,
    M::State: Send,
    Z: StateScore<M::State> + Copy + Send + Sync + 'static,
{
    fn name(&self) -> &'static str {
        match &self.inner {
            Some(inner) => inner.name(),
            None => "deferred-plan",
        }
    }

    fn run_slice(&mut self, budget: u64) -> crate::estimator::ChunkOutcome {
        self.activate();
        self.inner_mut().run_slice(budget)
    }

    fn finished(&mut self) -> bool {
        match self.inner.as_deref_mut() {
            Some(inner) => inner.finished(),
            None => false,
        }
    }

    fn estimate(&mut self) -> crate::estimate::Estimate {
        self.activate();
        self.inner_mut().estimate()
    }

    fn steps(&self) -> u64 {
        self.inner.as_deref().map_or(0, |i| i.steps())
    }

    fn n_roots(&self) -> u64 {
        self.inner.as_deref().map_or(0, |i| i.n_roots())
    }

    fn diagnostics(&self) -> crate::estimator::Diagnostics {
        match &self.inner {
            Some(inner) => inner.diagnostics(),
            None => crate::estimator::Diagnostics::none("deferred-plan"),
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }

    fn reuse_snapshot(&mut self) -> Option<(ShardKey, StoredShard)> {
        // Before activation there is nothing to deposit; afterwards the
        // inner job owns the shard and the reuse key.
        self.inner.as_deref_mut().and_then(|i| i.reuse_snapshot())
    }

    fn checkpoint(&mut self) -> Option<(&'static str, StoredShard)> {
        // Pre-activation there is no shard yet; recovery re-derives the
        // plan from the pinned pilot seed, which is deterministic.
        self.inner.as_deref_mut().and_then(|i| i.checkpoint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::RunControl;
    use crate::rng::SimRng;
    use crate::scheduler::{Scheduler, SchedulerConfig};

    #[test]
    fn method_parse_and_names() {
        assert_eq!(Method::parse("srs").unwrap(), Method::Srs);
        assert_eq!(Method::parse("mlss").unwrap(), Method::GMlss);
        assert_eq!(Method::parse("gmlss").unwrap(), Method::GMlss);
        assert_eq!(Method::parse("auto").unwrap(), Method::Auto);
        assert!(matches!(
            Method::parse("nope").unwrap_err().kind,
            SpecErrorKind::UnknownMethod { .. }
        ));
        assert_eq!(Method::GMlss.name(), "gmlss");
        assert!(!Method::Srs.needs_plan());
        assert!(Method::Auto.needs_plan());
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        let ok = QuerySpec::new("cpp", 50.0, 100, 0.1);
        assert!(ok.validate().is_ok());
        let mut bad = ok.clone();
        bad.horizon = 0;
        assert!(matches!(
            bad.validate().unwrap_err().kind,
            SpecErrorKind::InvalidValue {
                field: "horizon",
                ..
            }
        ));
        let mut bad = ok.clone();
        bad.target_re = -0.1;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.options.threads = 0;
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.levels = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn schema_validates_overrides() {
        let schema = ModelSchema::new(
            "toy",
            "test model",
            vec![
                ParamSpec::float("rate", 0.5, 0.0, 10.0, "a rate"),
                ParamSpec::int("count", 3.0, 1.0, 100.0, "a count"),
                ParamSpec::flag("on", 1.0, "a flag"),
            ],
        );
        let ok: BTreeMap<String, f64> = [("rate".to_string(), 2.0), ("count".to_string(), 7.0)]
            .into_iter()
            .collect();
        assert!(schema.validate_overrides(&ok).is_ok());
        let unknown: BTreeMap<String, f64> = [("nope".to_string(), 1.0)].into_iter().collect();
        assert!(matches!(
            schema.validate_overrides(&unknown).unwrap_err().kind,
            SpecErrorKind::UnknownParam { .. }
        ));
        let out: BTreeMap<String, f64> = [("rate".to_string(), 11.0)].into_iter().collect();
        assert!(matches!(
            schema.validate_overrides(&out).unwrap_err().kind,
            SpecErrorKind::ParamOutOfRange { .. }
        ));
        let frac: BTreeMap<String, f64> = [("count".to_string(), 2.5)].into_iter().collect();
        assert!(matches!(
            schema.validate_overrides(&frac).unwrap_err().kind,
            SpecErrorKind::ParamWrongType {
                expected: ParamType::Int,
                ..
            }
        ));
        let flag: BTreeMap<String, f64> = [("on".to_string(), 2.0)].into_iter().collect();
        assert!(matches!(
            schema.validate_overrides(&flag).unwrap_err().kind,
            SpecErrorKind::ParamOutOfRange { .. },
        ));
        assert_eq!(schema.defaults().len(), 3);
    }

    #[test]
    fn auto_resolution_rule() {
        let plan = PartitionPlan::new(vec![0.4, 0.7]).unwrap();
        let usable = PlanLookup {
            plan: plan.clone(),
            tau_hint: 0.01,
            hit: false,
        };
        assert!(matches!(
            resolve_method(Method::Auto, Some(&usable)),
            ResolvedMethod::GMlss(_)
        ));
        let useless = PlanLookup {
            plan: PartitionPlan::trivial(),
            tau_hint: f64::NAN,
            hit: false,
        };
        assert!(matches!(
            resolve_method(Method::Auto, Some(&useless)),
            ResolvedMethod::Srs
        ));
        assert!(matches!(
            resolve_method(Method::Srs, None),
            ResolvedMethod::Srs
        ));
    }

    #[derive(Clone)]
    struct Walk;

    impl SimulationModel for Walk {
        type State = f64;

        fn initial_state(&self) -> f64 {
            0.0
        }

        fn step(&self, s: &f64, _t: crate::model::Time, rng: &mut SimRng) -> f64 {
            use rand::RngExt;
            (s + if rng.random::<f64>() < 0.48 {
                0.05
            } else {
                -0.05
            })
            .clamp(0.0, 1.0)
        }
    }

    fn score(s: &f64) -> f64 {
        *s
    }

    #[test]
    fn deferred_plan_job_matches_inline_pilot_submission() {
        // Same seed, same shape: a job whose pilot runs as its first
        // slice must produce the bit-identical estimate to a job built
        // after deriving the plan up front (the pilot stream is salted
        // off the main stream either way).
        let seed = 77u64;
        let control = RunControl::budget(60_000);
        let fp = 42u64;

        // Inline: derive the plan first, then build the estimator job.
        let plans_a = Arc::new(PlanCache::new());
        let sf = score as fn(&f64) -> f64;
        let lookup = {
            let vf = RatioValue::new(sf, 1.0);
            let problem = Problem::new(&Walk, &vf, 80);
            let mut pilot_rng = rng_from_seed(seed ^ PILOT_SEED_SALT);
            plans_a.get_or_build_traced(fp, BALANCED_PLAN_KEY, 4, || {
                balanced_plan(problem, 4, PILOT_PATHS, &mut pilot_rng)
            })
        };
        let resolved = resolve_method(Method::GMlss, Some(&lookup));
        let inline = estimator_job(Walk, sf, 1.0, 80, &resolved, control, seed, 0, None);

        // Deferred: plan derivation is the first slice.
        let plans_b = Arc::new(PlanCache::new());
        let deferred = Box::new(DeferredPlanQuery::new(
            Walk,
            sf,
            1.0,
            80,
            Method::GMlss,
            4,
            control,
            seed,
            0,
            Arc::clone(&plans_b),
            fp,
        ));

        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            slice_budget: 8_192,
            max_retries: 0,
            batch_width: 0,
            tenant_weights: Vec::new(),
        });
        let a = sched.submit_query(inline, 0);
        let b = sched.submit_query(deferred, 0);
        let ea = *sched.wait(a).unwrap().estimate().unwrap();
        let eb = *sched.wait(b).unwrap().estimate().unwrap();
        assert_eq!(ea.tau.to_bits(), eb.tau.to_bits());
        assert_eq!(ea.steps, eb.steps);
        assert_eq!(ea.n_roots, eb.n_roots);
        // The deferred path really did build (and memoize) the plan.
        assert_eq!(plans_b.misses(), 1);
    }

    #[test]
    fn render_is_canonical() {
        let mut spec = QuerySpec::new("cpp", 500.0, 1000, 0.005).with_method(Method::GMlss);
        spec.levels = 5;
        spec.options.threads = 4;
        spec.options.batch_width = Some(64);
        spec.options.mode = ExecMode::Async;
        assert_eq!(
            spec.render(),
            "ESTIMATE DURABILITY OF cpp(beta=500) WITHIN 1000 USING gmlss(levels=5) \
             TARGET RE 0.005 WITH (batch_width=64, threads=4) ASYNC"
        );
        let plain = QuerySpec::new("walk", 6.0, 60, 0.25).with_method(Method::Srs);
        assert_eq!(
            plain.render(),
            "ESTIMATE DURABILITY OF walk(beta=6) WITHIN 60 USING srs TARGET RE 0.25"
        );
    }

    #[test]
    fn render_spells_auto_width() {
        // The sentinel renders as the keyword the parser accepts, so
        // render∘parse stays a fixed point for auto-width specs too.
        let mut spec = QuerySpec::new("gbm", 560.0, 500, 0.25).with_method(Method::Srs);
        spec.options.batch_width = Some(crate::width::AUTO_WIDTH);
        assert_eq!(
            spec.render(),
            "ESTIMATE DURABILITY OF gbm(beta=560) WITHIN 500 USING srs \
             TARGET RE 0.25 WITH (batch_width=auto)"
        );
    }
}
