//! The unified sampler abstraction — one execution spine for SRS, s-MLSS,
//! g-MLSS, and IS.
//!
//! The paper presents its four samplers as interchangeable answers to the
//! same durability prediction query `Q(q, s)`; this module makes that
//! interchangeability a compile-time fact. An [`Estimator`] advances a
//! mergeable [`Ledger`] shard in budgeted chunks of `g` invocations and
//! can turn any shard into an [`Estimate`] at any time. Everything above
//! this trait — the sequential driver [`run_sequential`], the parallel
//! driver [`crate::parallel::run_parallel`], the `mlss-bench` experiment
//! runners, and `mlss-db`'s `mlss_estimate` stored procedure — is generic
//! over it, so a new sampling strategy plugs into every layer by
//! implementing one trait.
//!
//! Implementations provided by this crate:
//!
//! | estimator | config type | shard |
//! |---|---|---|
//! | SRS (§2.2) | [`crate::srs::SrsEstimator`] | [`crate::srs::SrsShard`] |
//! | s-MLSS (§3) | [`crate::smlss::SMlssConfig`] | [`crate::smlss::SMlssShard`] |
//! | g-MLSS (§4) | [`crate::gmlss::GMlssConfig`] | [`crate::gmlss::GmlssShard`] |
//! | IS (§2.2) | [`crate::is::IsEstimator`] | [`crate::is::IsShard`] |
//!
//! Chunk contract: `run_chunk(problem, shard, budget, rng)` simulates
//! complete root paths (never truncating one mid-flight) until at least
//! `budget` additional `g` invocations have been spent, exactly mirroring
//! the paper's "stop at the first completion at or beyond the budget"
//! semantics. This keeps every estimator unbiased under chunking: a chunk
//! boundary is indistinguishable from a run boundary.

use crate::estimate::Estimate;
use crate::model::SimulationModel;
use crate::quality::RunControl;
use crate::query::{Problem, ValueFunction};
use crate::rng::SimRng;
use std::time::{Duration, Instant};

/// What one [`Estimator::run_chunk`] call accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkOutcome {
    /// `g` invocations spent in this chunk.
    pub steps: u64,
    /// Root paths completed in this chunk.
    pub roots: u64,
}

/// Mergeable sufficient statistics of a (partial) run.
///
/// A `Ledger` is everything an estimator needs to produce an estimate:
/// workers accumulate independent shards and reductions combine them with
/// [`Ledger::merge`], which must be exact (merging shards of two runs is
/// statistically identical to one run having done all the work).
pub trait Ledger: Send {
    /// Absorb another shard's roots.
    fn merge(&mut self, other: Self);

    /// Number of independent root paths accumulated.
    fn n_roots(&self) -> u64;

    /// Total `g` invocations accumulated.
    fn steps(&self) -> u64;
}

/// Estimator-specific run diagnostics (the paper's per-method health
/// indicators: skip counts for g-MLSS, effective sample size for IS, …).
#[derive(Debug, Clone)]
pub struct Diagnostics {
    /// Name of the estimator that produced the shard.
    pub estimator: &'static str,
    /// Level-skip events observed (0 for samplers without levels).
    pub skip_events: u64,
    /// Free-form named indicator values.
    pub details: Vec<(String, f64)>,
}

impl Diagnostics {
    /// Diagnostics with no indicators.
    pub fn none(estimator: &'static str) -> Self {
        Self {
            estimator,
            skip_events: 0,
            details: Vec::new(),
        }
    }
}

/// A durability-query sampling strategy, runnable in budgeted chunks.
///
/// The trait is deliberately not sealed: downstream crates can add
/// estimators (say, a quasi-Monte-Carlo or stratified sampler) and every
/// driver in this workspace — sequential, parallel, bench harness, SQL
/// procedure — accepts them unchanged.
pub trait Estimator<M, V>: Sync
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    /// The shard type this estimator accumulates.
    type Shard: Ledger;

    /// Short stable name (used in diagnostics and reports).
    fn name(&self) -> &'static str;

    /// A fresh, empty shard.
    fn shard(&self) -> Self::Shard;

    /// Simulate complete root paths into `shard` until at least `budget`
    /// additional `g` invocations have been spent.
    fn run_chunk(
        &self,
        problem: Problem<'_, M, V>,
        shard: &mut Self::Shard,
        budget: u64,
        rng: &mut SimRng,
    ) -> ChunkOutcome;

    /// Like [`Estimator::run_chunk`], but advancing a frontier of up to
    /// `width` root paths per `g` call over the model's batch kernel
    /// (`step_batch`), with **one RNG stream per root** so the committed
    /// shard is bit-identical at every width (see `docs/kernel.md`).
    ///
    /// Note the randomness scheme differs from `run_chunk` (which owes
    /// bit-compatibility to pre-frontier checkpoints): per-root streams
    /// are derived from `rng` by splitting, rather than threading `rng`
    /// through every step. The two paths are statistically identical but
    /// not bit-identical to each other; within the batched path, any two
    /// widths are.
    ///
    /// The default ignores `width` and runs the scalar chunk — estimators
    /// from downstream crates keep working; the four built-ins override.
    fn run_chunk_batched(
        &self,
        problem: Problem<'_, M, V>,
        shard: &mut Self::Shard,
        budget: u64,
        rng: &mut SimRng,
        width: usize,
    ) -> ChunkOutcome {
        let _ = width;
        self.run_chunk(problem, shard, budget, rng)
    }

    /// The estimate implied by `shard`. `rng` powers resampling-based
    /// variance estimation (bootstrap); closed-form estimators ignore it.
    fn estimate(&self, shard: &Self::Shard, rng: &mut SimRng) -> Estimate;

    /// The estimate used for *in-flight stopping checks*. Estimators with
    /// expensive variance evaluations may amortize here (g-MLSS honors
    /// its `bootstrap_every` cadence by caching the variance in the
    /// shard); the default is the full [`Estimator::estimate`]. The final
    /// reported estimate always comes from `estimate`.
    fn check_estimate(&self, shard: &mut Self::Shard, rng: &mut SimRng) -> Estimate {
        self.estimate(shard, rng)
    }

    /// Estimator-specific health indicators for `shard`.
    fn diagnostics(&self, shard: &Self::Shard) -> Diagnostics {
        let _ = shard;
        Diagnostics::none(self.name())
    }
}

/// A fresh shard for the estimator driving `problem`.
///
/// Equivalent to [`Estimator::shard`]; the `problem` argument exists to
/// pin the `M`/`V` type parameters when calling trait methods directly.
pub fn shard_for<M, V, E>(estimator: &E, _problem: &Problem<'_, M, V>) -> E::Shard
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
    E: Estimator<M, V>,
{
    estimator.shard()
}

/// The estimate implied by `shard` under `estimator`.
///
/// Equivalent to [`Estimator::estimate`]; the `problem` argument pins the
/// `M`/`V` type parameters when calling trait methods directly.
pub fn estimate_for<M, V, E>(
    estimator: &E,
    _problem: &Problem<'_, M, V>,
    shard: &E::Shard,
    rng: &mut SimRng,
) -> Estimate
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
    E: Estimator<M, V>,
{
    estimator.estimate(shard, rng)
}

/// Result of a sequential trait-level run.
#[derive(Debug, Clone)]
pub struct EstimatorRun<L> {
    /// Final estimate.
    pub estimate: Estimate,
    /// The accumulated shard (for diagnostics or further merging).
    pub shard: L,
    /// RNG stream position at the final chunk boundary, captured
    /// *before* the closing estimate evaluation (which may consume
    /// draws — e.g. a g-MLSS bootstrap variance). `(shard, resume_rng)`
    /// is the exact state a longer run of the same control would have
    /// continued from, which is what makes a stored shard warm-startable
    /// bit-exactly (see `mlss_core::shard_store`).
    pub resume_rng: SimRng,
    /// Wall-clock time spent simulating.
    pub sim_elapsed: Duration,
    /// Wall-clock time spent in estimate/variance evaluations.
    pub estimate_elapsed: Duration,
}

/// Run any estimator sequentially until `control` is satisfied.
///
/// Budget mode hands the estimator the entire remaining budget in one
/// chunk (the chunk contract already stops at the first root completing
/// at or past the budget). Target mode sizes chunks to roughly
/// `check_every` root paths using the observed cost per root, then
/// re-evaluates the quality target between chunks.
pub fn run_sequential<M, V, E>(
    estimator: &E,
    problem: Problem<'_, M, V>,
    control: RunControl,
    rng: &mut SimRng,
) -> EstimatorRun<E::Shard>
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
    E: Estimator<M, V>,
{
    run_sequential_from(estimator, problem, control, rng, estimator.shard())
}

/// Resume a sequential run from a previously accumulated shard (a
/// checkpoint): the run continues until `control` is satisfied over the
/// *combined* state — a shard checkpointed at 10k steps resumed under a
/// 50k budget runs 40k more. Because chunk boundaries are invisible
/// (shards merge exactly and every chunk completes its last root), a
/// paused-and-resumed run is statistically identical to an uninterrupted
/// one; with the same `rng` state it is bit-identical. This is the
/// primitive behind the scheduler's pause/checkpoint/resume support.
pub fn run_sequential_from<M, V, E>(
    estimator: &E,
    problem: Problem<'_, M, V>,
    control: RunControl,
    rng: &mut SimRng,
    shard: E::Shard,
) -> EstimatorRun<E::Shard>
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
    E: Estimator<M, V>,
{
    run_sequential_impl(estimator, problem, control, rng, shard, 0)
}

/// Run any estimator sequentially over the batched frontier: chunks go
/// through [`Estimator::run_chunk_batched`] at the given width (≥ 1), so
/// the model's native batch kernel carries the hot loop. Results are
/// bit-identical across widths (the per-root-stream invariant); width
/// only changes throughput.
pub fn run_sequential_batched<M, V, E>(
    estimator: &E,
    problem: Problem<'_, M, V>,
    control: RunControl,
    rng: &mut SimRng,
    width: usize,
) -> EstimatorRun<E::Shard>
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
    E: Estimator<M, V>,
{
    run_sequential_batched_from(estimator, problem, control, rng, estimator.shard(), width)
}

/// Resume a batched sequential run from a checkpointed shard — the
/// batched counterpart of [`run_sequential_from`]. A checkpoint taken
/// between chunks (even with frontier lanes in flight when it was cut:
/// chunks always drain their frontier, so the shard plus the RNG is the
/// complete state) resumes to the same estimate at any width.
pub fn run_sequential_batched_from<M, V, E>(
    estimator: &E,
    problem: Problem<'_, M, V>,
    control: RunControl,
    rng: &mut SimRng,
    shard: E::Shard,
    width: usize,
) -> EstimatorRun<E::Shard>
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
    E: Estimator<M, V>,
{
    run_sequential_impl(estimator, problem, control, rng, shard, width.max(1))
}

/// Shared driver body; `batch_width == 0` runs the scalar `run_chunk`
/// path, `>= 1` the frontier path at that width.
fn run_sequential_impl<M, V, E>(
    estimator: &E,
    problem: Problem<'_, M, V>,
    control: RunControl,
    rng: &mut SimRng,
    shard: E::Shard,
    batch_width: usize,
) -> EstimatorRun<E::Shard>
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
    E: Estimator<M, V>,
{
    let start = Instant::now();
    let mut shard = shard;
    let mut estimate_elapsed = Duration::ZERO;
    // Defense in depth: an unresolved `batch_width=auto` sentinel runs
    // at the static fallback width instead of a usize::MAX cohort.
    let batch_width = crate::width::effective(batch_width);

    loop {
        // Observed steps per root (before any root completes, assume the
        // worst case of one horizon per root). Sizes target-mode chunks
        // and the final-chunk width clamp below.
        let per_root = if shard.n_roots() > 0 {
            (shard.steps() / shard.n_roots()).max(1)
        } else {
            problem.horizon.max(1)
        };
        let budget = match control {
            RunControl::Budget(total) => {
                let remaining = total.saturating_sub(shard.steps());
                if remaining == 0 {
                    break;
                }
                remaining
            }
            RunControl::Target {
                check_every,
                max_steps,
                ..
            } => {
                if shard.steps() >= max_steps {
                    break;
                }
                // ≈ check_every roots' worth of steps.
                check_every
                    .max(1)
                    .saturating_mul(per_root)
                    .min(max_steps - shard.steps())
                    .max(1)
            }
        };
        if batch_width == 0 {
            estimator.run_chunk(problem, &mut shard, budget, rng);
        } else {
            // Budget-boundary shrink: the frontier launches a full
            // cohort up front, but lanes past the chunk's commit target
            // are speculation that gets discarded. When the remaining
            // budget only pays for fewer roots than the configured
            // width, narrow the final chunks — bit-identity across
            // widths makes this invisible to results.
            let roots_in_budget = usize::try_from(budget.div_ceil(per_root)).unwrap_or(usize::MAX);
            let width = batch_width.min(roots_in_budget).max(1);
            estimator.run_chunk_batched(problem, &mut shard, budget, rng, width);
        }
        if let RunControl::Target { target, .. } = control {
            let t0 = Instant::now();
            let est = estimator.check_estimate(&mut shard, rng);
            estimate_elapsed += t0.elapsed();
            if target.satisfied(&est) {
                break;
            }
        }
    }

    // Snapshot the stream before the closing estimate: g-MLSS bootstrap
    // variances draw from `rng`, and a warm start must continue from the
    // chunk boundary, not from after those draws.
    let resume_rng = rng.clone();
    let t0 = Instant::now();
    let estimate = estimator.estimate(&shard, rng);
    estimate_elapsed += t0.elapsed();
    let sim_elapsed = start.elapsed().saturating_sub(estimate_elapsed);
    EstimatorRun {
        estimate,
        shard,
        resume_rng,
        sim_elapsed,
        estimate_elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmlss::GMlssConfig;
    use crate::levels::PartitionPlan;
    use crate::model::Time;
    use crate::quality::QualityTarget;
    use crate::query::RatioValue;
    use crate::rng::rng_from_seed;
    use crate::smlss::SMlssConfig;
    use crate::srs::SrsEstimator;
    use rand::RngExt;

    pub(crate) struct ClampWalk {
        pub up: f64,
    }

    impl SimulationModel for ClampWalk {
        type State = f64;

        fn initial_state(&self) -> f64 {
            0.0
        }

        fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            (s + if rng.random::<f64>() < self.up {
                0.05
            } else {
                -0.05
            })
            .clamp(0.0, 1.0)
        }
    }

    fn vf() -> RatioValue<fn(&f64) -> f64> {
        fn score(s: &f64) -> f64 {
            *s
        }
        RatioValue::new(score as fn(&f64) -> f64, 1.0)
    }

    #[test]
    fn budget_semantics_match_the_samplers() {
        let model = ClampWalk { up: 0.48 };
        let v = vf();
        let problem = Problem::new(&model, &v, 100);
        let run = run_sequential(
            &SrsEstimator,
            problem,
            RunControl::budget(50_000),
            &mut rng_from_seed(1),
        );
        assert!(run.estimate.steps >= 50_000);
        assert!(run.estimate.steps < 50_000 + 100, "one-root overshoot only");
        assert_eq!(run.shard.n_roots(), run.estimate.n_roots);
    }

    #[test]
    fn target_mode_reaches_quality_through_the_trait() {
        let model = ClampWalk { up: 0.49 };
        let v = vf();
        let problem = Problem::new(&model, &v, 60);
        let control = RunControl::Target {
            target: QualityTarget::RelativeError {
                target: 0.2,
                reference: None,
            },
            check_every: 128,
            max_steps: 50_000_000,
        };
        let run = run_sequential(&SrsEstimator, problem, control, &mut rng_from_seed(2));
        assert!(run.estimate.self_relative_error() <= 0.2);
    }

    #[test]
    fn chunked_and_monolithic_runs_agree_exactly() {
        // Chunking must not change the sampled path sequence: two chunks
        // of 25k steps equal one 50k chunk, RNG state included.
        let model = ClampWalk { up: 0.48 };
        let v = vf();
        let problem = Problem::new(&model, &v, 80);
        let plan = PartitionPlan::new(vec![0.4, 0.7]).unwrap();
        let cfg = GMlssConfig::new(plan, RunControl::budget(1));

        let mut rng_a = rng_from_seed(9);
        let mut one = shard_for(&cfg, &problem);
        cfg.run_chunk(problem, &mut one, 50_000, &mut rng_a);

        let mut rng_b = rng_from_seed(9);
        let mut two = shard_for(&cfg, &problem);
        cfg.run_chunk(problem, &mut two, 25_000, &mut rng_b);
        let already = two.steps();
        cfg.run_chunk(problem, &mut two, 50_000 - already, &mut rng_b);

        assert_eq!(one.steps(), two.steps());
        assert_eq!(one.n_roots(), two.n_roots());
        let ea = estimate_for(&cfg, &problem, &one, &mut rng_from_seed(0));
        let eb = estimate_for(&cfg, &problem, &two, &mut rng_from_seed(0));
        assert_eq!(ea.tau, eb.tau);
        assert_eq!(ea.hits, eb.hits);
    }

    #[test]
    fn merged_shards_equal_one_big_shard() {
        let model = ClampWalk { up: 0.48 };
        let v = vf();
        let problem = Problem::new(&model, &v, 80);
        let plan = PartitionPlan::new(vec![0.5]).unwrap();
        let cfg = SMlssConfig::new(plan, RunControl::budget(1));

        // Two independent shards from different streams, merged.
        let mut a = shard_for(&cfg, &problem);
        cfg.run_chunk(problem, &mut a, 20_000, &mut rng_from_seed(5));
        let mut b = shard_for(&cfg, &problem);
        cfg.run_chunk(problem, &mut b, 20_000, &mut rng_from_seed(6));
        let (sa, sb) = (a.steps(), b.steps());
        let (na, nb) = (a.n_roots(), b.n_roots());
        a.merge(b);
        assert_eq!(a.steps(), sa + sb);
        assert_eq!(a.n_roots(), na + nb);
        let est = estimate_for(&cfg, &problem, &a, &mut rng_from_seed(0));
        assert!((0.0..=1.0).contains(&est.tau));
        assert!(est.variance.is_finite());
    }

    #[test]
    fn diagnostics_report_names() {
        let model = ClampWalk { up: 0.48 };
        let v = vf();
        let problem = Problem::new(&model, &v, 40);
        let shard = {
            let mut s = shard_for(&SrsEstimator, &problem);
            SrsEstimator.run_chunk(problem, &mut s, 1000, &mut rng_from_seed(3));
            s
        };
        type Vf = RatioValue<fn(&f64) -> f64>;
        let d = <SrsEstimator as Estimator<ClampWalk, Vf>>::diagnostics(&SrsEstimator, &shard);
        assert_eq!(d.estimator, "srs");
    }
}
