//! Portable wide-lane value types: `N` values advancing in lockstep.
//!
//! [`F64Lanes`] / [`U64Lanes`] / [`I64Lanes`] are plain arrays with
//! elementwise operators. Every operation is an IEEE-754
//! correctly-rounded scalar op (or exact integer op) applied per lane —
//! there is deliberately **no** FMA, no reassociation, no
//! approximate-math instruction — so a computation written over these
//! types produces identical bits at every width and on every backend.
//! The `#[target_feature]` instantiations in [`super::vmath`] compile
//! this exact code for wider registers; the types themselves never
//! change semantics.
//!
//! `F64x4`/`F64x8` are the widths the pipeline uses: 4 `f64` lanes fill
//! one AVX2 register, 8 fill two (letting the two halves pipeline).

/// `N` `f64` lanes in lockstep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64Lanes<const N: usize>(pub [f64; N]);

/// `N` `u64` lanes in lockstep (bit patterns of [`F64Lanes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct U64Lanes<const N: usize>(pub [u64; N]);

/// `N` `i64` lanes in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct I64Lanes<const N: usize>(pub [i64; N]);

/// Four `f64` lanes — one AVX2 register.
pub type F64x4 = F64Lanes<4>;
/// Eight `f64` lanes — two AVX2 registers, software-pipelined.
pub type F64x8 = F64Lanes<8>;

#[inline(always)]
fn map2<const N: usize>(a: [f64; N], b: [f64; N], f: impl Fn(f64, f64) -> f64) -> [f64; N] {
    let mut out = [0.0f64; N];
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = f(x, y);
    }
    out
}

impl<const N: usize> F64Lanes<N> {
    /// All lanes equal to `v`.
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        Self([v; N])
    }

    /// Lane-wise square root (IEEE-exact on every backend).
    #[inline(always)]
    pub fn sqrt(self) -> Self {
        let mut out = self.0;
        for o in &mut out {
            *o = o.sqrt();
        }
        Self(out)
    }

    /// Lane-wise bit patterns.
    #[inline(always)]
    pub fn to_bits(self) -> U64Lanes<N> {
        let mut out = [0u64; N];
        for (o, x) in out.iter_mut().zip(self.0) {
            *o = x.to_bits();
        }
        U64Lanes(out)
    }

    /// Lanes from bit patterns.
    #[inline(always)]
    pub fn from_bits(bits: U64Lanes<N>) -> Self {
        let mut out = [0.0f64; N];
        for (o, b) in out.iter_mut().zip(bits.0) {
            *o = f64::from_bits(b);
        }
        Self(out)
    }

    /// Lane-wise saturating cast to `i64` (Rust `as` semantics; NaN → 0).
    #[inline(always)]
    pub fn to_i64(self) -> I64Lanes<N> {
        let mut out = [0i64; N];
        for (o, x) in out.iter_mut().zip(self.0) {
            *o = x as i64;
        }
        I64Lanes(out)
    }

    /// Lane-wise `if mask { a } else { b }`.
    #[inline(always)]
    pub fn select(mask: [bool; N], a: Self, b: Self) -> Self {
        let mut out = [0.0f64; N];
        for ((o, m), (x, y)) in out.iter_mut().zip(mask).zip(a.0.into_iter().zip(b.0)) {
            *o = if m { x } else { y };
        }
        Self(out)
    }

    /// Lane-wise `self < rhs`.
    #[inline(always)]
    pub fn lt(self, rhs: Self) -> [bool; N] {
        let mut out = [false; N];
        for ((o, x), y) in out.iter_mut().zip(self.0).zip(rhs.0) {
            *o = x < y;
        }
        out
    }

    /// Lane-wise `self > rhs`.
    #[inline(always)]
    pub fn gt(self, rhs: Self) -> [bool; N] {
        let mut out = [false; N];
        for ((o, x), y) in out.iter_mut().zip(self.0).zip(rhs.0) {
            *o = x > y;
        }
        out
    }

    /// Lane-wise `self == rhs` (false for NaN lanes).
    #[inline(always)]
    pub fn eq_lanes(self, rhs: Self) -> [bool; N] {
        let mut out = [false; N];
        for ((o, x), y) in out.iter_mut().zip(self.0).zip(rhs.0) {
            *o = x == y;
        }
        out
    }

    /// Lane-wise NaN test.
    #[inline(always)]
    pub fn is_nan(self) -> [bool; N] {
        let mut out = [false; N];
        for (o, x) in out.iter_mut().zip(self.0) {
            *o = x.is_nan();
        }
        out
    }
}

impl<const N: usize> std::ops::Add for F64Lanes<N> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self(map2(self.0, rhs.0, |x, y| x + y))
    }
}

impl<const N: usize> std::ops::Sub for F64Lanes<N> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self(map2(self.0, rhs.0, |x, y| x - y))
    }
}

impl<const N: usize> std::ops::Mul for F64Lanes<N> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self(map2(self.0, rhs.0, |x, y| x * y))
    }
}

impl<const N: usize> std::ops::Div for F64Lanes<N> {
    type Output = Self;
    #[inline(always)]
    fn div(self, rhs: Self) -> Self {
        Self(map2(self.0, rhs.0, |x, y| x / y))
    }
}

impl<const N: usize> std::ops::Neg for F64Lanes<N> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        let mut out = self.0;
        for o in &mut out {
            *o = -*o;
        }
        Self(out)
    }
}

impl<const N: usize> U64Lanes<N> {
    /// All lanes equal to `v`.
    #[inline(always)]
    pub fn splat(v: u64) -> Self {
        Self([v; N])
    }

    /// Lane-wise wrapping add.
    #[inline(always)]
    pub fn wrapping_add(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, y) in out.iter_mut().zip(rhs.0) {
            *o = o.wrapping_add(y);
        }
        Self(out)
    }

    /// Lane-wise bitwise and with a constant.
    #[inline(always)]
    pub fn and(self, mask: u64) -> Self {
        let mut out = self.0;
        for o in &mut out {
            *o &= mask;
        }
        Self(out)
    }

    /// Lane-wise bitwise or.
    #[inline(always)]
    pub fn or(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, y) in out.iter_mut().zip(rhs.0) {
            *o |= y;
        }
        Self(out)
    }

    /// Reinterpret as signed lanes.
    #[inline(always)]
    pub fn as_i64(self) -> I64Lanes<N> {
        let mut out = [0i64; N];
        for (o, x) in out.iter_mut().zip(self.0) {
            *o = x as i64;
        }
        I64Lanes(out)
    }
}

impl<const N: usize> std::ops::Shr<u32> for U64Lanes<N> {
    type Output = Self;
    /// Lane-wise logical shift right by a constant.
    #[inline(always)]
    fn shr(self, by: u32) -> Self {
        let mut out = self.0;
        for o in &mut out {
            *o >>= by;
        }
        Self(out)
    }
}

impl<const N: usize> std::ops::Shl<u32> for U64Lanes<N> {
    type Output = Self;
    /// Lane-wise shift left by a constant.
    #[inline(always)]
    fn shl(self, by: u32) -> Self {
        let mut out = self.0;
        for o in &mut out {
            *o <<= by;
        }
        Self(out)
    }
}

impl<const N: usize> I64Lanes<N> {
    /// All lanes equal to `v`.
    #[inline(always)]
    pub fn splat(v: i64) -> Self {
        Self([v; N])
    }

    /// Lane-wise wrapping add.
    #[inline(always)]
    pub fn wrapping_add(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, y) in out.iter_mut().zip(rhs.0) {
            *o = o.wrapping_add(y);
        }
        Self(out)
    }

    /// Lane-wise wrapping subtract.
    #[inline(always)]
    pub fn wrapping_sub(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, y) in out.iter_mut().zip(rhs.0) {
            *o = o.wrapping_sub(y);
        }
        Self(out)
    }

    /// Lane-wise arithmetic shift right by a constant.
    #[inline(always)]
    pub fn sar(self, by: u32) -> Self {
        let mut out = self.0;
        for o in &mut out {
            *o >>= by;
        }
        Self(out)
    }

    /// Lane-wise `& 3` and so on.
    #[inline(always)]
    pub fn and(self, mask: i64) -> Self {
        let mut out = self.0;
        for o in &mut out {
            *o &= mask;
        }
        Self(out)
    }

    /// Lane-wise equality against a constant.
    #[inline(always)]
    pub fn eq_const(self, v: i64) -> [bool; N] {
        let mut out = [false; N];
        for (o, x) in out.iter_mut().zip(self.0) {
            *o = x == v;
        }
        out
    }

    /// Reinterpret as unsigned lanes.
    #[inline(always)]
    pub fn as_u64(self) -> U64Lanes<N> {
        let mut out = [0u64; N];
        for (o, x) in out.iter_mut().zip(self.0) {
            *o = x as u64;
        }
        U64Lanes(out)
    }

    /// Lane-wise conversion to `f64` (exact for |x| < 2^53).
    #[inline(always)]
    pub fn to_f64(self) -> F64Lanes<N> {
        let mut out = [0.0f64; N];
        for (o, x) in out.iter_mut().zip(self.0) {
            *o = x as f64;
        }
        F64Lanes(out)
    }
}

impl<const N: usize> std::ops::Shl<u32> for I64Lanes<N> {
    type Output = Self;
    /// Lane-wise shift left (as bits) by a constant.
    #[inline(always)]
    fn shl(self, by: u32) -> Self {
        let mut out = self.0;
        for o in &mut out {
            *o = ((*o as u64) << by) as i64;
        }
        Self(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_ops_match_scalars() {
        let a = F64Lanes([1.5, -2.0, 0.25, 1e300]);
        let b = F64Lanes([0.5, 4.0, -8.0, 1e-300]);
        assert_eq!((a + b).0, [2.0, 2.0, -7.75, 1e300]);
        assert_eq!((a * b).0, [0.75, -8.0, -2.0, 1.0]);
        assert_eq!((a / b).0[1], -0.5);
        assert_eq!(F64Lanes::splat(4.0).sqrt().0, [2.0; 4]);
    }

    #[test]
    fn select_and_masks() {
        let a = F64x4::splat(1.0);
        let b = F64x4::splat(2.0);
        let m = F64Lanes([0.0, 3.0, f64::NAN, -1.0]).gt(F64x4::splat(0.5));
        assert_eq!(m, [false, true, false, false]);
        assert_eq!(F64x4::select(m, a, b).0, [2.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn bit_round_trips() {
        let a = F64Lanes([0.1, -0.0, f64::INFINITY, 5e-324]);
        assert_eq!(F64Lanes::from_bits(a.to_bits()).0, a.0);
        assert_eq!(F64Lanes([2.5, -2.5, 1e20, f64::NAN]).to_i64().0[3], 0);
    }
}
