//! Multi-stream ChaCha12 block generation: K independent lanes' next
//! blocks in one vectorized pass.
//!
//! Each frontier lane owns a private [`SimRng`] (ChaCha12) stream — that
//! is the draw-identity invariant, and it never changes here. What this
//! module vectorizes is the *block function*: vector register `w` holds
//! word `w` of K different streams' states, and the double-round
//! schedule runs once for all K. Because ChaCha is pure wrapping-`u32`
//! arithmetic, lane `k`'s output is `chacha12_block(key_k, counter_k)`
//! bit for bit on every backend; the lanes stay fully independent (their
//! own keys, their own counters, their own read positions).
//!
//! Two front ends feed kernels:
//!
//! * [`gather_u64`] — for models with a *fixed* number of draws per step
//!   (`walk`: 1, `gbm`: 2): pull `per_lane` `u64` words from every
//!   listed lane into a lane-major buffer, refilling all lanes that
//!   would run dry in one vectorized [`compute_blocks`] pass.
//! * [`stage_refills`] + [`draw_u64`] — for models with data-dependent
//!   draw counts (`cpp`'s Knuth loop): precompute the next block of
//!   every lane that is running low, then let the per-lane loop install
//!   the staged block the moment the lane drains. A lane that outruns
//!   its staged block (a rare long Knuth/jump tail) falls back to the
//!   scalar refill inside `next_u32` — still bit-identical, just not
//!   vectorized for that tail.
//!
//! Word extraction mirrors `ChaCha12Rng::next_u64` exactly (low word
//! first, refill checked before every word), so a lane's draw sequence
//! is indistinguishable from scalar stepping at any interleaving.

use super::{Backend, KernelScratch};
use crate::rng::SimRng;
use rand::RngCore;
use rand_chacha::chacha12_block;

/// Words per ChaCha block (16 × `u32`).
pub const BLOCK_WORDS: usize = 16;

/// Compute the next block of each stream `(keys[i], counters[i])` into
/// `out[i]`, using the process-wide active backend.
pub fn compute_blocks(keys: &[[u32; 8]], counters: &[u64], out: &mut [[u32; BLOCK_WORDS]]) {
    compute_blocks_with(Backend::active(), keys, counters, out)
}

/// [`compute_blocks`] on an explicit backend — the test harness uses
/// this to pin cross-backend bit-equality.
pub fn compute_blocks_with(
    backend: Backend,
    keys: &[[u32; 8]],
    counters: &[u64],
    out: &mut [[u32; BLOCK_WORDS]],
) {
    assert_eq!(keys.len(), counters.len());
    assert_eq!(keys.len(), out.len());
    let mut done = 0;
    #[cfg(target_arch = "x86_64")]
    {
        if backend >= Backend::Avx2 {
            while keys.len() - done >= 8 {
                // SAFETY: Backend::Avx2 is only reachable when AVX2 was
                // detected (Backend::active/available cap at detect()).
                unsafe {
                    blocks8_avx2(
                        &keys[done..done + 8],
                        &counters[done..done + 8],
                        &mut out[done..done + 8],
                    )
                };
                done += 8;
            }
        }
        if backend >= Backend::Sse2 {
            while keys.len() - done >= 4 {
                // SAFETY: SSE2 is part of the x86_64 baseline.
                unsafe {
                    blocks4_sse2(
                        &keys[done..done + 4],
                        &counters[done..done + 4],
                        &mut out[done..done + 4],
                    )
                };
                done += 4;
            }
        }
    }
    let _ = backend;
    for i in done..keys.len() {
        out[i] = chacha12_block(&keys[i], counters[i]);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn blocks8_avx2(keys: &[[u32; 8]], counters: &[u64], out: &mut [[u32; BLOCK_WORDS]]) {
    use std::arch::x86_64::*;

    macro_rules! rotl {
        ($x:expr, $n:literal) => {
            _mm256_or_si256(_mm256_slli_epi32($x, $n), _mm256_srli_epi32($x, 32 - $n))
        };
    }
    macro_rules! qr {
        ($v:ident, $a:literal, $b:literal, $c:literal, $d:literal) => {
            $v[$a] = _mm256_add_epi32($v[$a], $v[$b]);
            $v[$d] = rotl!(_mm256_xor_si256($v[$d], $v[$a]), 16);
            $v[$c] = _mm256_add_epi32($v[$c], $v[$d]);
            $v[$b] = rotl!(_mm256_xor_si256($v[$b], $v[$c]), 12);
            $v[$a] = _mm256_add_epi32($v[$a], $v[$b]);
            $v[$d] = rotl!(_mm256_xor_si256($v[$d], $v[$a]), 8);
            $v[$c] = _mm256_add_epi32($v[$c], $v[$d]);
            $v[$b] = rotl!(_mm256_xor_si256($v[$b], $v[$c]), 7);
        };
    }

    // Transpose the 8 stream states in: vector w = word w of all streams.
    let mut tmp = [0u32; 8];
    let mut v = [_mm256_setzero_si256(); BLOCK_WORDS];
    const CONSTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];
    for (w, c) in CONSTS.iter().enumerate() {
        v[w] = _mm256_set1_epi32(*c as i32);
    }
    for w in 0..8 {
        for s in 0..8 {
            tmp[s] = keys[s][w];
        }
        v[4 + w] = _mm256_loadu_si256(tmp.as_ptr() as *const __m256i);
    }
    for s in 0..8 {
        tmp[s] = counters[s] as u32;
    }
    v[12] = _mm256_loadu_si256(tmp.as_ptr() as *const __m256i);
    for s in 0..8 {
        tmp[s] = (counters[s] >> 32) as u32;
    }
    v[13] = _mm256_loadu_si256(tmp.as_ptr() as *const __m256i);
    // v[14], v[15] stay zero (nonce words).

    let init = v;
    for _ in 0..6 {
        qr!(v, 0, 4, 8, 12);
        qr!(v, 1, 5, 9, 13);
        qr!(v, 2, 6, 10, 14);
        qr!(v, 3, 7, 11, 15);
        qr!(v, 0, 5, 10, 15);
        qr!(v, 1, 6, 11, 12);
        qr!(v, 2, 7, 8, 13);
        qr!(v, 3, 4, 9, 14);
    }
    for (w, vec) in v.iter_mut().enumerate() {
        *vec = _mm256_add_epi32(*vec, init[w]);
        _mm256_storeu_si256(tmp.as_mut_ptr() as *mut __m256i, *vec);
        for s in 0..8 {
            out[s][w] = tmp[s];
        }
    }
}

// Deliberately a 4-lane mirror of `blocks8_avx2` (same round schedule,
// same transpose, same counter packing) rather than one width-generic
// macro — keep the two in lockstep when editing either. Every CI leg
// exercises both: the 4-wide path also runs as the remainder chunk of
// AVX2 refill sets, and `compute_blocks_matches_scalar_on_every_backend`
// pins each against the scalar block function.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn blocks4_sse2(keys: &[[u32; 8]], counters: &[u64], out: &mut [[u32; BLOCK_WORDS]]) {
    use std::arch::x86_64::*;

    macro_rules! rotl {
        ($x:expr, $n:literal) => {
            _mm_or_si128(_mm_slli_epi32($x, $n), _mm_srli_epi32($x, 32 - $n))
        };
    }
    macro_rules! qr {
        ($v:ident, $a:literal, $b:literal, $c:literal, $d:literal) => {
            $v[$a] = _mm_add_epi32($v[$a], $v[$b]);
            $v[$d] = rotl!(_mm_xor_si128($v[$d], $v[$a]), 16);
            $v[$c] = _mm_add_epi32($v[$c], $v[$d]);
            $v[$b] = rotl!(_mm_xor_si128($v[$b], $v[$c]), 12);
            $v[$a] = _mm_add_epi32($v[$a], $v[$b]);
            $v[$d] = rotl!(_mm_xor_si128($v[$d], $v[$a]), 8);
            $v[$c] = _mm_add_epi32($v[$c], $v[$d]);
            $v[$b] = rotl!(_mm_xor_si128($v[$b], $v[$c]), 7);
        };
    }

    let mut tmp = [0u32; 4];
    let mut v = [_mm_setzero_si128(); BLOCK_WORDS];
    const CONSTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];
    for (w, c) in CONSTS.iter().enumerate() {
        v[w] = _mm_set1_epi32(*c as i32);
    }
    for w in 0..8 {
        for s in 0..4 {
            tmp[s] = keys[s][w];
        }
        v[4 + w] = _mm_loadu_si128(tmp.as_ptr() as *const __m128i);
    }
    for s in 0..4 {
        tmp[s] = counters[s] as u32;
    }
    v[12] = _mm_loadu_si128(tmp.as_ptr() as *const __m128i);
    for s in 0..4 {
        tmp[s] = (counters[s] >> 32) as u32;
    }
    v[13] = _mm_loadu_si128(tmp.as_ptr() as *const __m128i);

    let init = v;
    for _ in 0..6 {
        qr!(v, 0, 4, 8, 12);
        qr!(v, 1, 5, 9, 13);
        qr!(v, 2, 6, 10, 14);
        qr!(v, 3, 7, 11, 15);
        qr!(v, 0, 5, 10, 15);
        qr!(v, 1, 6, 11, 12);
        qr!(v, 2, 7, 8, 13);
        qr!(v, 3, 4, 9, 14);
    }
    for (w, vec) in v.iter_mut().enumerate() {
        *vec = _mm_add_epi32(*vec, init[w]);
        _mm_storeu_si128(tmp.as_mut_ptr() as *mut __m128i, *vec);
        for s in 0..4 {
            out[s][w] = tmp[s];
        }
    }
}

/// Read one `u32` word from the lane's stream, installing the staged
/// block if the lane just drained (otherwise `next_u32` scalar-refills —
/// bit-identical either way).
#[inline(always)]
fn next_word(rng: &mut SimRng, pending: &mut Option<[u32; BLOCK_WORDS]>) -> u32 {
    if rng.words_remaining() == 0 {
        if let Some(block) = pending.take() {
            rng.install_block(block);
        }
    }
    rng.next_u32()
}

/// Draw one `u64` from the lane's stream — exactly
/// `ChaCha12Rng::next_u64` (low word, then high word, refill checked
/// before each) with staged-refill support.
#[inline(always)]
pub fn draw_u64(rng: &mut SimRng, pending: &mut Option<[u32; BLOCK_WORDS]>) -> u64 {
    let lo = next_word(rng, pending) as u64;
    let hi = next_word(rng, pending) as u64;
    (hi << 32) | lo
}

/// Stage vectorized refills: record every listed lane whose current
/// block holds fewer than `min_words` unread words into `sc.idxs`, and
/// compute those lanes' next blocks into `sc.blocks` in one
/// [`compute_blocks`] pass. `sc.idxs` preserves the order of `lanes`.
pub fn stage_refills(rngs: &[SimRng], lanes: &[usize], min_words: usize, sc: &mut KernelScratch) {
    sc.idxs.clear();
    sc.keys.clear();
    sc.counters.clear();
    for &i in lanes {
        if rngs[i].words_remaining() < min_words {
            sc.idxs.push(i);
            sc.keys.push(rngs[i].block_key());
            sc.counters.push(rngs[i].block_counter());
        }
    }
    sc.blocks.clear();
    sc.blocks.resize(sc.idxs.len(), [0u32; BLOCK_WORDS]);
    compute_blocks(&sc.keys, &sc.counters, &mut sc.blocks);
}

/// Stage refills with the per-lane pending-block cache: like
/// [`stage_refills`], but a lane whose next block was already computed
/// by an earlier pass (and is still valid — same key, same counter) is
/// served from `sc.pending` instead of being recomputed, so every SIMD
/// block compute is eventually consumed exactly once. Used by kernels
/// with data-dependent draw counts, where a staged block may not be
/// installed on the step that computed it.
pub fn stage_refills_cached(
    rngs: &[SimRng],
    lanes: &[usize],
    min_words: usize,
    sc: &mut KernelScratch,
) {
    if let Some(&max) = lanes.iter().max() {
        if sc.pending.len() <= max {
            sc.pending.resize(max + 1, None);
        }
    }
    sc.idxs.clear();
    sc.keys.clear();
    sc.counters.clear();
    for &i in lanes {
        if rngs[i].words_remaining() < min_words {
            let key = rngs[i].block_key();
            let counter = rngs[i].block_counter();
            let cached = matches!(
                &sc.pending[i],
                Some(p) if p.key == key && p.counter == counter
            );
            if !cached {
                sc.idxs.push(i);
                sc.keys.push(key);
                sc.counters.push(counter);
            }
        }
    }
    sc.blocks.clear();
    sc.blocks.resize(sc.idxs.len(), [0u32; BLOCK_WORDS]);
    compute_blocks(&sc.keys, &sc.counters, &mut sc.blocks);
    for (j, &i) in sc.idxs.iter().enumerate() {
        sc.pending[i] = Some(super::PendingBlock {
            key: sc.keys[j],
            counter: sc.counters[j],
            block: sc.blocks[j],
        });
    }
}

/// Take lane `i`'s staged next block out of the cache, if it is still
/// valid for the lane's current stream position. Pair with
/// [`restore_pending`] when the lane ends up not consuming it.
#[inline]
pub fn take_pending(
    rng: &SimRng,
    i: usize,
    sc_pending: &mut [Option<super::PendingBlock>],
) -> Option<[u32; BLOCK_WORDS]> {
    match sc_pending.get_mut(i).and_then(|p| p.take()) {
        Some(p) if p.key == rng.block_key() && p.counter == rng.block_counter() => Some(p.block),
        _ => None,
    }
}

/// Put an unconsumed staged block back into the cache (it is still the
/// lane's next block — the lane simply did not drain this step).
#[inline]
pub fn restore_pending(
    rng: &SimRng,
    i: usize,
    block: [u32; BLOCK_WORDS],
    sc_pending: &mut [Option<super::PendingBlock>],
) {
    sc_pending[i] = Some(super::PendingBlock {
        key: rng.block_key(),
        counter: rng.block_counter(),
        block,
    });
}

/// Gather `per_lane` `u64` draws from each lane in `lanes` into
/// `sc.words`, lane-major (`sc.words[j * per_lane + d]` is draw `d` of
/// the `j`-th listed lane). Bit-identical to `per_lane` scalar
/// `next_u64()` calls on each lane's RNG; every block refill this
/// requires is computed in one vectorized pass up front, and lanes with
/// enough buffered words copy straight out of their block.
///
/// `per_lane` must be at most 8 (one block refill per lane per call).
pub fn gather_u64(rngs: &mut [SimRng], lanes: &[usize], per_lane: usize, sc: &mut KernelScratch) {
    assert!(
        per_lane * 2 <= BLOCK_WORDS,
        "gather_u64 supports at most {} draws per lane per call",
        BLOCK_WORDS / 2
    );
    stage_refills(rngs, lanes, per_lane * 2, sc);
    sc.words.clear();
    sc.words.resize(lanes.len() * per_lane, 0);
    let (words, idxs, blocks) = (&mut sc.words, &sc.idxs, &sc.blocks);
    let mut ri = 0;
    for (j, &i) in lanes.iter().enumerate() {
        let out = &mut words[j * per_lane..(j + 1) * per_lane];
        let rng = &mut rngs[i];
        if ri < idxs.len() && idxs[ri] == i {
            // This lane drains mid-gather: word-by-word with the staged
            // block installed the moment the buffer empties.
            ri += 1;
            let mut pending = Some(blocks[ri - 1]);
            for o in out {
                *o = draw_u64(rng, &mut pending);
            }
            debug_assert!(pending.is_none());
        } else {
            // Fast path: the current block covers the whole request
            // (stage_refills listed every lane it would not).
            if !rng.try_fill_u64(out) {
                debug_assert!(false, "stage_refills guarantees buffered words");
                let mut none = None;
                for o in out {
                    *o = draw_u64(rng, &mut none);
                }
            }
        }
    }
    debug_assert_eq!(ri, idxs.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{rng_from_seed, split_rng};
    use rand::RngExt;

    #[test]
    fn compute_blocks_matches_scalar_on_every_backend() {
        let mut seeder = rng_from_seed(101);
        for n in [0usize, 1, 3, 4, 5, 8, 13, 32] {
            let streams: Vec<SimRng> = (0..n).map(|_| split_rng(&mut seeder)).collect();
            let keys: Vec<[u32; 8]> = streams.iter().map(|r| r.block_key()).collect();
            let counters: Vec<u64> = streams.iter().map(|r| r.block_counter()).collect();
            let expect: Vec<[u32; 16]> = keys
                .iter()
                .zip(&counters)
                .map(|(k, &c)| chacha12_block(k, c))
                .collect();
            for backend in Backend::available() {
                let mut out = vec![[0u32; 16]; n];
                compute_blocks_with(backend, &keys, &counters, &mut out);
                assert_eq!(out, expect, "backend {backend}, n={n}");
            }
        }
    }

    #[test]
    fn gather_matches_scalar_draws_across_block_boundaries() {
        // Lanes at staggered positions, drawn repeatedly: gathered words
        // must equal per-lane scalar next_u64 sequences.
        let mut gathered: Vec<SimRng> = (0..7).map(|k| rng_from_seed(500 + k)).collect();
        let mut scalar = gathered.clone();
        // Stagger read positions.
        for (k, rng) in gathered.iter_mut().enumerate() {
            for _ in 0..k {
                let _ = rng.random::<u64>();
            }
        }
        for (k, rng) in scalar.iter_mut().enumerate() {
            for _ in 0..k {
                let _ = rng.random::<u64>();
            }
        }
        let lanes: Vec<usize> = (0..7).collect();
        let mut sc = KernelScratch::default();
        for per_lane in [1usize, 2, 3, 8] {
            for _ in 0..10 {
                gather_u64(&mut gathered, &lanes, per_lane, &mut sc);
                for (j, &i) in lanes.iter().enumerate() {
                    for d in 0..per_lane {
                        assert_eq!(
                            sc.words[j * per_lane + d],
                            scalar[i].random::<u64>(),
                            "lane {i} draw {d} (per_lane {per_lane})"
                        );
                    }
                }
            }
        }
        // Final positions agree too.
        for (a, b) in gathered.iter_mut().zip(scalar.iter_mut()) {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn staged_draws_match_scalar_with_data_dependent_consumption() {
        // Variable draws per lane per round (the cpp pattern): staged
        // refills + draw_u64 equal scalar sequences.
        let mut staged: Vec<SimRng> = (0..5).map(|k| rng_from_seed(900 + k)).collect();
        let mut scalar = staged.clone();
        let lanes: Vec<usize> = (0..5).collect();
        let mut sc = KernelScratch::default();
        let mut pattern = rng_from_seed(1);
        for _ in 0..50 {
            stage_refills(&staged, &lanes, 8, &mut sc);
            let mut ri = 0;
            for &i in &lanes {
                let mut pending = if ri < sc.idxs.len() && sc.idxs[ri] == i {
                    ri += 1;
                    Some(sc.blocks[ri - 1])
                } else {
                    None
                };
                let n = pattern.random_range(0u64..6);
                for _ in 0..n {
                    assert_eq!(
                        draw_u64(&mut staged[i], &mut pending),
                        scalar[i].random::<u64>()
                    );
                }
            }
        }
    }
}
