//! Multi-stream ChaCha12 block generation: K independent lanes' next
//! blocks in one vectorized pass.
//!
//! Each frontier lane owns a private [`SimRng`] (ChaCha12) stream — that
//! is the draw-identity invariant, and it never changes here. What this
//! module vectorizes is the *block function*: vector register `w` holds
//! word `w` of K different streams' states, and the double-round
//! schedule runs once for all K. Because ChaCha is pure wrapping-`u32`
//! arithmetic, lane `k`'s output is `chacha12_block(key_k, counter_k)`
//! bit for bit on every backend; the lanes stay fully independent (their
//! own keys, their own counters, their own read positions).
//!
//! Two front ends feed kernels:
//!
//! * [`gather_u64`] — for models with a *fixed* number of draws per step
//!   (`walk`: 1, `gbm`: 2): pull `per_lane` `u64` words from every
//!   listed lane into a lane-major buffer, refilling all lanes that
//!   would run dry in one vectorized [`compute_blocks`] pass.
//! * [`stage_refills`] + [`draw_u64`] — for models with data-dependent
//!   draw counts (`cpp`'s Knuth loop): precompute the next block of
//!   every lane that is running low, then let the per-lane loop install
//!   the staged block the moment the lane drains. A lane that outruns
//!   its staged block (a rare long Knuth/jump tail) falls back to the
//!   scalar refill inside `next_u32` — still bit-identical, just not
//!   vectorized for that tail.
//!
//! Word extraction mirrors `ChaCha12Rng::next_u64` exactly (low word
//! first, refill checked before every word), so a lane's draw sequence
//! is indistinguishable from scalar stepping at any interleaving.

use super::{Backend, KernelScratch};
use crate::rng::SimRng;
use rand::RngCore;
use rand_chacha::chacha12_block;

/// Words per ChaCha block (16 × `u32`).
pub const BLOCK_WORDS: usize = 16;

/// Compute the next block of each stream `(keys[i], counters[i])` into
/// `out[i]`, using the process-wide active backend.
pub fn compute_blocks(keys: &[[u32; 8]], counters: &[u64], out: &mut [[u32; BLOCK_WORDS]]) {
    compute_blocks_with(Backend::active(), keys, counters, out)
}

/// [`compute_blocks`] on an explicit backend — the test harness uses
/// this to pin cross-backend bit-equality.
pub fn compute_blocks_with(
    backend: Backend,
    keys: &[[u32; 8]],
    counters: &[u64],
    out: &mut [[u32; BLOCK_WORDS]],
) {
    assert_eq!(keys.len(), counters.len());
    assert_eq!(keys.len(), out.len());
    let mut done = 0;
    #[cfg(target_arch = "x86_64")]
    {
        if backend >= Backend::Avx512 {
            while keys.len() - done >= 16 {
                // SAFETY: Backend::Avx512 is only reachable when AVX-512F
                // was detected (Backend::active/available cap at detect()).
                unsafe {
                    blocks16_avx512(
                        &keys[done..done + 16],
                        &counters[done..done + 16],
                        &mut out[done..done + 16],
                    )
                };
                done += 16;
            }
            // Ragged tails: the wide pass is latency-bound (near-flat
            // cost regardless of how many streams are real), so one
            // padded 16-wide pass beats the narrower cascade for most
            // remainder sizes. Sizes the narrower passes serve better
            // (4 → SSE2, 8 → AVX2, tiny → scalar) fall through.
            let rem = keys.len() - done;
            if rem >= 5 && rem != 8 {
                let mut pk = [[0u32; 8]; 16];
                let mut pc = [0u64; 16];
                pk[..rem].copy_from_slice(&keys[done..]);
                pc[..rem].copy_from_slice(&counters[done..]);
                let mut pout = [[0u32; BLOCK_WORDS]; 16];
                // SAFETY: Backend::Avx512 is only reachable when AVX-512F
                // was detected (Backend::active/available cap at detect()).
                unsafe { blocks16_avx512(&pk, &pc, &mut pout) };
                out[done..].copy_from_slice(&pout[..rem]);
                done = keys.len();
            }
        }
        if backend >= Backend::Avx2 {
            while keys.len() - done >= 8 {
                // SAFETY: Backend::Avx2 is only reachable when AVX2 was
                // detected (Backend::active/available cap at detect()).
                unsafe {
                    blocks8_avx2(
                        &keys[done..done + 8],
                        &counters[done..done + 8],
                        &mut out[done..done + 8],
                    )
                };
                done += 8;
            }
        }
        if backend >= Backend::Sse2 {
            while keys.len() - done >= 4 {
                // SAFETY: SSE2 is part of the x86_64 baseline.
                unsafe {
                    blocks4_sse2(
                        &keys[done..done + 4],
                        &counters[done..done + 4],
                        &mut out[done..done + 4],
                    )
                };
                done += 4;
            }
        }
    }
    let _ = backend;
    for i in done..keys.len() {
        out[i] = chacha12_block(&keys[i], counters[i]);
    }
}

// In-register 16×16 `u32` transpose (the canonical unpack/unpack/
// shuffle_i32x4 ladder, 64 shuffles): `v[r]` holds row `r` in, column
// `r` out. Both ends of `blocks16_avx512` are transposes — states in,
// keystream out — and doing them in registers is what makes the 16-wide
// pass worth it (element-by-element extraction costs more than the
// rounds themselves).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn transpose16(v: &mut [std::arch::x86_64::__m512i; 16]) {
    use std::arch::x86_64::*;
    // Stage 1: interleave row pairs at u32 granularity.
    let mut t = [_mm512_setzero_si512(); 16];
    for k in 0..8 {
        t[2 * k] = _mm512_unpacklo_epi32(v[2 * k], v[2 * k + 1]);
        t[2 * k + 1] = _mm512_unpackhi_epi32(v[2 * k], v[2 * k + 1]);
    }
    // Stage 2: interleave pair-groups at u64 granularity. s[4g + c] now
    // holds, for row group g (rows 4g..4g+4), columns {c, c+4, c+8,
    // c+12} as four 128-bit chunks.
    let mut s = [_mm512_setzero_si512(); 16];
    for g in 0..4 {
        let b = 4 * g;
        s[b] = _mm512_unpacklo_epi64(t[b], t[b + 2]);
        s[b + 1] = _mm512_unpackhi_epi64(t[b], t[b + 2]);
        s[b + 2] = _mm512_unpacklo_epi64(t[b + 1], t[b + 3]);
        s[b + 3] = _mm512_unpackhi_epi64(t[b + 1], t[b + 3]);
    }
    // Stages 3+4: gather matching 128-bit chunks across row groups.
    for c in 0..4 {
        let a = _mm512_shuffle_i32x4::<0x88>(s[c], s[4 + c]);
        let b = _mm512_shuffle_i32x4::<0xdd>(s[c], s[4 + c]);
        let d = _mm512_shuffle_i32x4::<0x88>(s[8 + c], s[12 + c]);
        let e = _mm512_shuffle_i32x4::<0xdd>(s[8 + c], s[12 + c]);
        v[c] = _mm512_shuffle_i32x4::<0x88>(a, d);
        v[c + 4] = _mm512_shuffle_i32x4::<0x88>(b, e);
        v[c + 8] = _mm512_shuffle_i32x4::<0xdd>(a, d);
        v[c + 12] = _mm512_shuffle_i32x4::<0xdd>(b, e);
    }
}

// The 16-lane mirror of `blocks8_avx2` below (same round schedule, same
// counter packing) at `__m512i` width — 16 independent streams' next
// blocks per pass. AVX-512F has a native rotate (`vprold`), so `rotl!`
// is one instruction instead of shift/shift/or, and both transposes run
// in-register (`transpose16`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn blocks16_avx512(keys: &[[u32; 8]], counters: &[u64], out: &mut [[u32; BLOCK_WORDS]]) {
    use std::arch::x86_64::*;

    macro_rules! rotl {
        ($x:expr, $n:literal) => {
            _mm512_rol_epi32::<$n>($x)
        };
    }
    macro_rules! qr {
        ($v:ident, $a:literal, $b:literal, $c:literal, $d:literal) => {
            $v[$a] = _mm512_add_epi32($v[$a], $v[$b]);
            $v[$d] = rotl!(_mm512_xor_si512($v[$d], $v[$a]), 16);
            $v[$c] = _mm512_add_epi32($v[$c], $v[$d]);
            $v[$b] = rotl!(_mm512_xor_si512($v[$b], $v[$c]), 12);
            $v[$a] = _mm512_add_epi32($v[$a], $v[$b]);
            $v[$d] = rotl!(_mm512_xor_si512($v[$d], $v[$a]), 8);
            $v[$c] = _mm512_add_epi32($v[$c], $v[$d]);
            $v[$b] = rotl!(_mm512_xor_si512($v[$b], $v[$c]), 7);
        };
    }

    const CONSTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];
    // Build each stream's full 16-word state row contiguously, then
    // transpose in-register: vector w = word w of all 16 streams.
    let mut rows = [[0u32; BLOCK_WORDS]; 16];
    for (s, row) in rows.iter_mut().enumerate() {
        row[..4].copy_from_slice(&CONSTS);
        row[4..12].copy_from_slice(&keys[s]);
        row[12] = counters[s] as u32;
        row[13] = (counters[s] >> 32) as u32;
        // Words 14, 15 stay zero (nonce words).
    }
    let mut v = [_mm512_setzero_si512(); BLOCK_WORDS];
    for (s, row) in rows.iter().enumerate() {
        v[s] = _mm512_loadu_si512(row.as_ptr() as *const __m512i);
    }
    transpose16(&mut v);

    let init = v;
    for _ in 0..6 {
        qr!(v, 0, 4, 8, 12);
        qr!(v, 1, 5, 9, 13);
        qr!(v, 2, 6, 10, 14);
        qr!(v, 3, 7, 11, 15);
        qr!(v, 0, 5, 10, 15);
        qr!(v, 1, 6, 11, 12);
        qr!(v, 2, 7, 8, 13);
        qr!(v, 3, 4, 9, 14);
    }
    for (w, vec) in v.iter_mut().enumerate() {
        *vec = _mm512_add_epi32(*vec, init[w]);
    }
    // Transpose back: row s = stream s's keystream block, one store each.
    transpose16(&mut v);
    for (s, o) in out.iter_mut().enumerate() {
        _mm512_storeu_si512(o.as_mut_ptr() as *mut __m512i, v[s]);
    }
}

// In-register 8×8 `u32` transpose (unpack/unpack/permute2x128 ladder,
// 24 shuffles): `v[r]` holds row `r` in, column `r` out.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn transpose8(v: &mut [std::arch::x86_64::__m256i; 8]) {
    use std::arch::x86_64::*;
    let mut t = [_mm256_setzero_si256(); 8];
    for k in 0..4 {
        t[2 * k] = _mm256_unpacklo_epi32(v[2 * k], v[2 * k + 1]);
        t[2 * k + 1] = _mm256_unpackhi_epi32(v[2 * k], v[2 * k + 1]);
    }
    let mut s = [_mm256_setzero_si256(); 8];
    for g in 0..2 {
        let b = 4 * g;
        s[b] = _mm256_unpacklo_epi64(t[b], t[b + 2]);
        s[b + 1] = _mm256_unpackhi_epi64(t[b], t[b + 2]);
        s[b + 2] = _mm256_unpacklo_epi64(t[b + 1], t[b + 3]);
        s[b + 3] = _mm256_unpackhi_epi64(t[b + 1], t[b + 3]);
    }
    for c in 0..4 {
        v[c] = _mm256_permute2x128_si256::<0x20>(s[c], s[4 + c]);
        v[c + 4] = _mm256_permute2x128_si256::<0x31>(s[c], s[4 + c]);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn blocks8_avx2(keys: &[[u32; 8]], counters: &[u64], out: &mut [[u32; BLOCK_WORDS]]) {
    use std::arch::x86_64::*;

    macro_rules! rotl {
        ($x:expr, $n:literal) => {
            _mm256_or_si256(_mm256_slli_epi32($x, $n), _mm256_srli_epi32($x, 32 - $n))
        };
    }
    macro_rules! qr {
        ($v:ident, $a:literal, $b:literal, $c:literal, $d:literal) => {
            $v[$a] = _mm256_add_epi32($v[$a], $v[$b]);
            $v[$d] = rotl!(_mm256_xor_si256($v[$d], $v[$a]), 16);
            $v[$c] = _mm256_add_epi32($v[$c], $v[$d]);
            $v[$b] = rotl!(_mm256_xor_si256($v[$b], $v[$c]), 12);
            $v[$a] = _mm256_add_epi32($v[$a], $v[$b]);
            $v[$d] = rotl!(_mm256_xor_si256($v[$d], $v[$a]), 8);
            $v[$c] = _mm256_add_epi32($v[$c], $v[$d]);
            $v[$b] = rotl!(_mm256_xor_si256($v[$b], $v[$c]), 7);
        };
    }

    const CONSTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];
    // Build each stream's full 16-word state row, then transpose the two
    // 8×8 halves in-register: vector w = word w of all 8 streams.
    let mut rows = [[0u32; BLOCK_WORDS]; 8];
    for (s, row) in rows.iter_mut().enumerate() {
        row[..4].copy_from_slice(&CONSTS);
        row[4..12].copy_from_slice(&keys[s]);
        row[12] = counters[s] as u32;
        row[13] = (counters[s] >> 32) as u32;
        // Words 14, 15 stay zero (nonce words).
    }
    let mut lo = [_mm256_setzero_si256(); 8];
    let mut hi = [_mm256_setzero_si256(); 8];
    for s in 0..8 {
        lo[s] = _mm256_loadu_si256(rows[s].as_ptr() as *const __m256i);
        hi[s] = _mm256_loadu_si256(rows[s].as_ptr().add(8) as *const __m256i);
    }
    transpose8(&mut lo);
    transpose8(&mut hi);
    let mut v = [_mm256_setzero_si256(); BLOCK_WORDS];
    v[..8].copy_from_slice(&lo);
    v[8..].copy_from_slice(&hi);

    let init = v;
    for _ in 0..6 {
        qr!(v, 0, 4, 8, 12);
        qr!(v, 1, 5, 9, 13);
        qr!(v, 2, 6, 10, 14);
        qr!(v, 3, 7, 11, 15);
        qr!(v, 0, 5, 10, 15);
        qr!(v, 1, 6, 11, 12);
        qr!(v, 2, 7, 8, 13);
        qr!(v, 3, 4, 9, 14);
    }
    for (w, vec) in v.iter_mut().enumerate() {
        *vec = _mm256_add_epi32(*vec, init[w]);
    }
    // Transpose back: row s = stream s's keystream block, two stores.
    lo.copy_from_slice(&v[..8]);
    hi.copy_from_slice(&v[8..]);
    transpose8(&mut lo);
    transpose8(&mut hi);
    for (s, o) in out.iter_mut().enumerate() {
        _mm256_storeu_si256(o.as_mut_ptr() as *mut __m256i, lo[s]);
        _mm256_storeu_si256(o.as_mut_ptr().add(8) as *mut __m256i, hi[s]);
    }
}

// In-register 4×4 `u32` transpose (8 shuffles): `v[r]` holds row `r`
// in, column `r` out.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
#[inline]
unsafe fn transpose4(v: &mut [std::arch::x86_64::__m128i; 4]) {
    use std::arch::x86_64::*;
    let t0 = _mm_unpacklo_epi32(v[0], v[1]);
    let t1 = _mm_unpackhi_epi32(v[0], v[1]);
    let t2 = _mm_unpacklo_epi32(v[2], v[3]);
    let t3 = _mm_unpackhi_epi32(v[2], v[3]);
    v[0] = _mm_unpacklo_epi64(t0, t2);
    v[1] = _mm_unpackhi_epi64(t0, t2);
    v[2] = _mm_unpacklo_epi64(t1, t3);
    v[3] = _mm_unpackhi_epi64(t1, t3);
}

// Deliberately a 4-lane mirror of `blocks8_avx2` (same round schedule,
// same counter packing) rather than one width-generic macro — keep the
// two in lockstep when editing either. Every CI leg exercises both: the
// 4-wide path also runs as the remainder chunk of AVX2 refill sets, and
// `compute_blocks_matches_scalar_on_every_backend` pins each against
// the scalar block function.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn blocks4_sse2(keys: &[[u32; 8]], counters: &[u64], out: &mut [[u32; BLOCK_WORDS]]) {
    use std::arch::x86_64::*;

    macro_rules! rotl {
        ($x:expr, $n:literal) => {
            _mm_or_si128(_mm_slli_epi32($x, $n), _mm_srli_epi32($x, 32 - $n))
        };
    }
    macro_rules! qr {
        ($v:ident, $a:literal, $b:literal, $c:literal, $d:literal) => {
            $v[$a] = _mm_add_epi32($v[$a], $v[$b]);
            $v[$d] = rotl!(_mm_xor_si128($v[$d], $v[$a]), 16);
            $v[$c] = _mm_add_epi32($v[$c], $v[$d]);
            $v[$b] = rotl!(_mm_xor_si128($v[$b], $v[$c]), 12);
            $v[$a] = _mm_add_epi32($v[$a], $v[$b]);
            $v[$d] = rotl!(_mm_xor_si128($v[$d], $v[$a]), 8);
            $v[$c] = _mm_add_epi32($v[$c], $v[$d]);
            $v[$b] = rotl!(_mm_xor_si128($v[$b], $v[$c]), 7);
        };
    }

    const CONSTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];
    // Build each stream's full 16-word state row, then transpose the
    // four 4×4 quarters in-register: vector w = word w of all 4 streams.
    let mut rows = [[0u32; BLOCK_WORDS]; 4];
    for (s, row) in rows.iter_mut().enumerate() {
        row[..4].copy_from_slice(&CONSTS);
        row[4..12].copy_from_slice(&keys[s]);
        row[12] = counters[s] as u32;
        row[13] = (counters[s] >> 32) as u32;
        // Words 14, 15 stay zero (nonce words).
    }
    let mut v = [_mm_setzero_si128(); BLOCK_WORDS];
    for q in 0..4 {
        let mut quad = [_mm_setzero_si128(); 4];
        for s in 0..4 {
            quad[s] = _mm_loadu_si128(rows[s].as_ptr().add(4 * q) as *const __m128i);
        }
        transpose4(&mut quad);
        v[4 * q..4 * q + 4].copy_from_slice(&quad);
    }

    let init = v;
    for _ in 0..6 {
        qr!(v, 0, 4, 8, 12);
        qr!(v, 1, 5, 9, 13);
        qr!(v, 2, 6, 10, 14);
        qr!(v, 3, 7, 11, 15);
        qr!(v, 0, 5, 10, 15);
        qr!(v, 1, 6, 11, 12);
        qr!(v, 2, 7, 8, 13);
        qr!(v, 3, 4, 9, 14);
    }
    for (w, vec) in v.iter_mut().enumerate() {
        *vec = _mm_add_epi32(*vec, init[w]);
    }
    // Transpose back quarter by quarter: row s = stream s's words.
    for q in 0..4 {
        let mut quad = [_mm_setzero_si128(); 4];
        quad.copy_from_slice(&v[4 * q..4 * q + 4]);
        transpose4(&mut quad);
        for (s, o) in out.iter_mut().enumerate() {
            _mm_storeu_si128(o.as_mut_ptr().add(4 * q) as *mut __m128i, quad[s]);
        }
    }
}

/// Read one `u32` word from the lane's stream, installing the staged
/// block if the lane just drained (otherwise `next_u32` scalar-refills —
/// bit-identical either way).
#[inline(always)]
fn next_word(rng: &mut SimRng, pending: &mut Option<[u32; BLOCK_WORDS]>) -> u32 {
    if rng.words_remaining() == 0 {
        if let Some(block) = pending.take() {
            rng.install_block(block);
        }
    }
    rng.next_u32()
}

/// Draw one `u64` from the lane's stream — exactly
/// `ChaCha12Rng::next_u64` (low word, then high word, refill checked
/// before each) with staged-refill support.
#[inline(always)]
pub fn draw_u64(rng: &mut SimRng, pending: &mut Option<[u32; BLOCK_WORDS]>) -> u64 {
    let lo = next_word(rng, pending) as u64;
    let hi = next_word(rng, pending) as u64;
    (hi << 32) | lo
}

/// Sentinel cursor value: the lane outran its view, its consumption has
/// been committed, and further draws go through the mutating
/// [`draw_u64`] path.
pub const VIEW_COMMITTED: u32 = u32::MAX;

/// Words per lane view row: the lane's whole current block followed by
/// its staged next block.
pub const VIEW_STRIDE: usize = 2 * BLOCK_WORDS;

/// Synchronize the *persistent* per-lane draw views with the streams'
/// current positions, staging next blocks in the same pass. Row `i` of
/// `sc.views` is lane `i`'s current block followed by its staged next
/// block, pinned to an exact stream position by `(sc.view_stream[i],
/// sc.view_ctr0[i])` — equal stream identities imply equal keys, so
/// matching tags mean the row bytes *are* the lane's keystream and the
/// row survives from the previous step untouched. Only three cases do
/// any work:
///
/// * stale tags (first step, a reseeded/replaced lane, or an external
///   block crossing): the current block is recopied (64 B);
/// * a missing staged half (after a rebase in [`commit_view`], or a
///   fresh row): the next block is computed — all such lanes in one
///   [`compute_blocks`] pass — and scattered into the row;
/// * everything else: the cursor is recomputed from the stream (two
///   loads), nothing is copied.
///
/// Draws then become pure loads against the row ([`view_row_u64`]) with
/// a single [`commit_view`] per lane at the end of the step — no
/// per-draw stream mutation, no per-step row rebuild.
pub fn sync_views(rngs: &[SimRng], lanes: &[usize], sc: &mut KernelScratch) {
    let n_lanes = rngs.len();
    if sc.views.len() < n_lanes {
        sc.views.resize(n_lanes, [0u32; VIEW_STRIDE]);
        sc.view_stream.resize(n_lanes, u64::MAX);
        sc.view_ctr0.resize(n_lanes, 0);
        sc.view_staged.resize(n_lanes, false);
        sc.cursors.resize(n_lanes, 0);
    }
    // Here `idxs` holds the lanes whose staged half needs computing.
    sc.idxs.clear();
    sc.keys.clear();
    sc.counters.clear();
    let KernelScratch {
        views,
        view_stream,
        view_ctr0,
        view_staged,
        cursors,
        idxs,
        keys,
        counters,
        blocks,
        ..
    } = sc;
    for &i in lanes {
        let rng = &rngs[i];
        let rem = rng.words_remaining();
        // The counter of the *current* (possibly partially read) block.
        // A never-filled stream wraps to `counter - 1` of garbage — but
        // there `rem == 0`, the cursor starts past the first half, and
        // the tag still pins the staged half correctly.
        let ctr0 = rng.block_counter().wrapping_sub(1);
        cursors[i] = (BLOCK_WORDS - rem) as u32;
        if view_stream[i] != rng.stream_id() || view_ctr0[i] != ctr0 {
            views[i][..BLOCK_WORDS].copy_from_slice(rng.current_block());
            view_stream[i] = rng.stream_id();
            view_ctr0[i] = ctr0;
            view_staged[i] = false;
        }
        if !view_staged[i] {
            idxs.push(i);
            keys.push(*rng.block_key());
            counters.push(rng.block_counter());
            view_staged[i] = true;
        }
    }
    let n = idxs.len();
    if n > 0 {
        if blocks.len() < n {
            blocks.resize(n, [0u32; BLOCK_WORDS]);
        }
        compute_blocks(keys, counters, &mut blocks[..n]);
        for (k, &i) in idxs.iter().enumerate() {
            views[i][BLOCK_WORDS..].copy_from_slice(&blocks[k]);
        }
    }
}

/// One `u64` from a lane's view row, advancing only the local `cursor` —
/// `None` when the row cannot cover another draw (caller commits and
/// falls back to [`draw_u64`]). Word order is exactly `next_u64`'s (low
/// word, then high), so a committed view is bit-identical to mutating
/// draws.
#[inline(always)]
pub fn view_row_u64(row: &[u32; VIEW_STRIDE], cursor: &mut u32) -> Option<u64> {
    let c = *cursor as usize;
    if c + 2 > VIEW_STRIDE {
        return None;
    }
    let lo = row[c] as u64;
    let hi = row[c + 1] as u64;
    *cursor += 2;
    Some((hi << 32) | lo)
}

/// Commit a lane's view consumption to its stream: skip within the
/// current block, or — when the cursor crossed into the staged half —
/// install the staged block and *rebase* the row (the staged half
/// becomes the current half, 64 B, and the tag advances) so the row
/// stays valid for the next step's [`sync_views`] with only its staged
/// half to refill. After this, mutating draws continue seamlessly from
/// the cursor position.
#[inline]
pub fn commit_view(
    rng: &mut SimRng,
    i: usize,
    views: &mut [[u32; VIEW_STRIDE]],
    view_ctr0: &mut [u64],
    view_staged: &mut [bool],
    cursor: u32,
) {
    let c = cursor as usize;
    let rem = rng.words_remaining();
    let start = BLOCK_WORDS - rem;
    debug_assert!(c >= start, "cursor behind the stream position");
    if c <= BLOCK_WORDS {
        rng.skip_words(c - start);
    } else {
        rng.skip_words(rem);
        debug_assert!(view_staged[i], "view crossed into an unstaged half");
        let row = &mut views[i];
        let staged: [u32; BLOCK_WORDS] = row[BLOCK_WORDS..].try_into().unwrap();
        rng.install_block(staged);
        rng.skip_words(c - BLOCK_WORDS);
        row.copy_within(BLOCK_WORDS.., 0);
        view_ctr0[i] = view_ctr0[i].wrapping_add(1);
        view_staged[i] = false;
    }
}

/// Stage vectorized refills: record every listed lane whose current
/// block holds fewer than `min_words` unread words into `sc.idxs`, and
/// compute those lanes' next blocks into `sc.blocks` in one
/// [`compute_blocks`] pass. `sc.idxs` preserves the order of `lanes`.
pub fn stage_refills(rngs: &[SimRng], lanes: &[usize], min_words: usize, sc: &mut KernelScratch) {
    sc.idxs.clear();
    sc.keys.clear();
    sc.counters.clear();
    for &i in lanes {
        if rngs[i].words_remaining() < min_words {
            sc.idxs.push(i);
            sc.keys.push(*rngs[i].block_key());
            sc.counters.push(rngs[i].block_counter());
        }
    }
    let n = sc.idxs.len();
    if sc.blocks.len() < n {
        sc.blocks.resize(n, [0u32; BLOCK_WORDS]);
    }
    compute_blocks(&sc.keys, &sc.counters, &mut sc.blocks[..n]);
}

/// Stage refills with the per-lane pending-block cache: like
/// [`stage_refills`], but a lane whose next block was already computed
/// by an earlier pass (and is still valid — same key, same counter) is
/// served from `sc.pending` instead of being recomputed, so every SIMD
/// block compute is eventually consumed exactly once. Used by kernels
/// with data-dependent draw counts, where a staged block may not be
/// installed on the step that computed it.
pub fn stage_refills_cached(
    rngs: &[SimRng],
    lanes: &[usize],
    min_words: usize,
    sc: &mut KernelScratch,
) {
    if let Some(&max) = lanes.iter().max() {
        if sc.pending.len() <= max {
            sc.pending.resize(max + 1, None);
        }
    }
    sc.idxs.clear();
    sc.keys.clear();
    sc.counters.clear();
    for &i in lanes {
        if rngs[i].words_remaining() < min_words {
            let counter = rngs[i].block_counter();
            let cached = matches!(
                &sc.pending[i],
                Some(p) if p.counter == counter && p.stream == rngs[i].stream_id()
            );
            if !cached {
                sc.idxs.push(i);
                sc.keys.push(*rngs[i].block_key());
                sc.counters.push(counter);
            }
        }
    }
    let n = sc.idxs.len();
    if sc.blocks.len() < n {
        sc.blocks.resize(n, [0u32; BLOCK_WORDS]);
    }
    compute_blocks(&sc.keys, &sc.counters, &mut sc.blocks[..n]);
    for (j, &i) in sc.idxs.iter().enumerate() {
        sc.pending[i] = Some(super::PendingBlock {
            stream: rngs[i].stream_id(),
            counter: sc.counters[j],
            block: sc.blocks[j],
        });
    }
}

/// Take lane `i`'s staged next block out of the cache, if it is still
/// valid for the lane's current stream position. Pair with
/// [`restore_pending`] when the lane ends up not consuming it.
#[inline]
pub fn take_pending(
    rng: &SimRng,
    i: usize,
    sc_pending: &mut [Option<super::PendingBlock>],
) -> Option<[u32; BLOCK_WORDS]> {
    match sc_pending.get_mut(i).and_then(|p| p.take()) {
        Some(p) if p.stream == rng.stream_id() && p.counter == rng.block_counter() => Some(p.block),
        _ => None,
    }
}

/// Put an unconsumed staged block back into the cache (it is still the
/// lane's next block — the lane simply did not drain this step).
#[inline]
pub fn restore_pending(
    rng: &SimRng,
    i: usize,
    block: [u32; BLOCK_WORDS],
    sc_pending: &mut [Option<super::PendingBlock>],
) {
    sc_pending[i] = Some(super::PendingBlock {
        stream: rng.stream_id(),
        counter: rng.block_counter(),
        block,
    });
}

/// Gather `per_lane` `u64` draws from each lane in `lanes` into
/// `sc.words`, lane-major (`sc.words[j * per_lane + d]` is draw `d` of
/// the `j`-th listed lane). Bit-identical to `per_lane` scalar
/// `next_u64()` calls on each lane's RNG; every block refill this
/// requires is computed in one vectorized pass up front, and lanes with
/// enough buffered words copy straight out of their block.
///
/// `per_lane` must be at most 8 (one block refill per lane per call).
pub fn gather_u64(rngs: &mut [SimRng], lanes: &[usize], per_lane: usize, sc: &mut KernelScratch) {
    assert!(
        per_lane * 2 <= BLOCK_WORDS,
        "gather_u64 supports at most {} draws per lane per call",
        BLOCK_WORDS / 2
    );
    stage_refills(rngs, lanes, per_lane * 2, sc);
    sc.words.clear();
    sc.words.resize(lanes.len() * per_lane, 0);
    let (words, idxs, blocks) = (&mut sc.words, &sc.idxs, &sc.blocks);
    let mut ri = 0;
    for (j, &i) in lanes.iter().enumerate() {
        let out = &mut words[j * per_lane..(j + 1) * per_lane];
        let rng = &mut rngs[i];
        if ri < idxs.len() && idxs[ri] == i {
            // This lane drains mid-gather: word-by-word with the staged
            // block installed the moment the buffer empties.
            ri += 1;
            let mut pending = Some(blocks[ri - 1]);
            for o in out {
                *o = draw_u64(rng, &mut pending);
            }
            debug_assert!(pending.is_none());
        } else {
            // Fast path: the current block covers the whole request
            // (stage_refills listed every lane it would not).
            if !rng.try_fill_u64(out) {
                debug_assert!(false, "stage_refills guarantees buffered words");
                let mut none = None;
                for o in out {
                    *o = draw_u64(rng, &mut none);
                }
            }
        }
    }
    debug_assert_eq!(ri, idxs.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{rng_from_seed, split_rng};
    use rand::RngExt;

    #[test]
    fn compute_blocks_matches_scalar_on_every_backend() {
        let mut seeder = rng_from_seed(101);
        for n in [0usize, 1, 3, 4, 5, 8, 13, 32] {
            let streams: Vec<SimRng> = (0..n).map(|_| split_rng(&mut seeder)).collect();
            let keys: Vec<[u32; 8]> = streams.iter().map(|r| *r.block_key()).collect();
            let counters: Vec<u64> = streams.iter().map(|r| r.block_counter()).collect();
            let expect: Vec<[u32; 16]> = keys
                .iter()
                .zip(&counters)
                .map(|(k, &c)| chacha12_block(k, c))
                .collect();
            for backend in Backend::available() {
                let mut out = vec![[0u32; 16]; n];
                compute_blocks_with(backend, &keys, &counters, &mut out);
                assert_eq!(out, expect, "backend {backend}, n={n}");
            }
        }
    }

    #[test]
    fn gather_matches_scalar_draws_across_block_boundaries() {
        // Lanes at staggered positions, drawn repeatedly: gathered words
        // must equal per-lane scalar next_u64 sequences.
        let mut gathered: Vec<SimRng> = (0..7).map(|k| rng_from_seed(500 + k)).collect();
        let mut scalar = gathered.clone();
        // Stagger read positions.
        for (k, rng) in gathered.iter_mut().enumerate() {
            for _ in 0..k {
                let _ = rng.random::<u64>();
            }
        }
        for (k, rng) in scalar.iter_mut().enumerate() {
            for _ in 0..k {
                let _ = rng.random::<u64>();
            }
        }
        let lanes: Vec<usize> = (0..7).collect();
        let mut sc = KernelScratch::default();
        for per_lane in [1usize, 2, 3, 8] {
            for _ in 0..10 {
                gather_u64(&mut gathered, &lanes, per_lane, &mut sc);
                for (j, &i) in lanes.iter().enumerate() {
                    for d in 0..per_lane {
                        assert_eq!(
                            sc.words[j * per_lane + d],
                            scalar[i].random::<u64>(),
                            "lane {i} draw {d} (per_lane {per_lane})"
                        );
                    }
                }
            }
        }
        // Final positions agree too.
        for (a, b) in gathered.iter_mut().zip(scalar.iter_mut()) {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn staged_draws_match_scalar_with_data_dependent_consumption() {
        // Variable draws per lane per round (the cpp pattern): staged
        // refills + draw_u64 equal scalar sequences.
        let mut staged: Vec<SimRng> = (0..5).map(|k| rng_from_seed(900 + k)).collect();
        let mut scalar = staged.clone();
        let lanes: Vec<usize> = (0..5).collect();
        let mut sc = KernelScratch::default();
        let mut pattern = rng_from_seed(1);
        for _ in 0..50 {
            stage_refills(&staged, &lanes, 8, &mut sc);
            let mut ri = 0;
            for &i in &lanes {
                let mut pending = if ri < sc.idxs.len() && sc.idxs[ri] == i {
                    ri += 1;
                    Some(sc.blocks[ri - 1])
                } else {
                    None
                };
                let n = pattern.random_range(0u64..6);
                for _ in 0..n {
                    assert_eq!(
                        draw_u64(&mut staged[i], &mut pending),
                        scalar[i].random::<u64>()
                    );
                }
            }
        }
    }
}
