//! Bit-exact vector math: `exp`, `ln`, `cos_tau`, and the standard-normal
//! transform, one implementation at every width.
//!
//! ## The contract
//!
//! Each function is written **once** as branch-free elementwise lane code
//! over [`F64Lanes`] and instantiated per backend: the public scalar
//! functions are the width-1 instantiation, the slice functions process
//! 8-lane chunks (re-compiled under `#[target_feature(enable = "avx2")]`
//! when that backend is active). Every operation involved is an
//! IEEE-754 correctly-rounded scalar operation applied lane-wise — add,
//! sub, mul, div, sqrt, integer bit manipulation, compare-and-select —
//! and **no FMA** is used, so results are bit-identical across widths
//! and backends by construction. Edge cases (±0, subnormals, ±∞, NaN,
//! out-of-range) are handled with the same lane-wise selects everywhere,
//! so they are bit-identical too.
//!
//! ## The ULP budget
//!
//! Accuracy against the libm reference (`f64::exp` / `f64::ln`), pinned
//! by `tests/draw_identity.rs`:
//!
//! * `exp`: argument reduction `x = n·ln2 + r` with a hi/lo split of
//!   `ln2` and a degree-13 Taylor polynomial on |r| ≤ ln2/2; observed
//!   error **≤ 2 ULP** over the seeded test grid (the polynomial's
//!   truncation error is < 1e-17 relative; the budget is dominated by
//!   the two final additions).
//! * `ln`: the fdlibm `e_log` scheme (mantissa centered on
//!   [√2/2, √2), `atanh`-series in `s = f/(2+f)`); observed error
//!   **≤ 2 ULP** (fdlibm documents < 1 ULP for the core scheme).
//! * `cos_tau(u)` = cos(2πu): quadrant reduction in the *turn* domain
//!   (exact — `u - round(u)` and `t - q/4` are exact float ops), then
//!   the fdlibm `k_cos`/`k_sin` kernels on [-π/4, π/4]. There is no
//!   libm reference for the turn domain; against `cos(2πu)` computed in
//!   extended precision the error is ≲ 2 ULP. This is the transform the
//!   normal draw uses — *both* the scalar `step` paths and the SIMD
//!   kernels call it, which is what keeps them bit-identical.

// The polynomial/reduction coefficients below are quoted verbatim from
// fdlibm (Sun Microsystems' freely distributable libm); truncating them
// to the shortest round-trip literal would invite transcription bugs.
#![allow(clippy::excessive_precision)]

use super::wide::{F64Lanes, I64Lanes, U64Lanes};
use super::Backend;
use rand::RngCore;

// ---- shared constants (fdlibm) --------------------------------------------

const INV_LN2: f64 = std::f64::consts::LOG2_E; // 1/ln(2) = log2(e)
const LN2_HI: f64 = 6.931_471_803_691_238_16e-01;
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
/// 1.5·2^52 — adding and subtracting rounds to nearest-even integer.
const ROUND_MAGIC: f64 = 6_755_399_441_055_744.0;

/// 2π with one rounding (the angle scaling in `cos_tau`).
const TAU: f64 = std::f64::consts::TAU;

// exp: Taylor coefficients 1/n! for n = 2..=13.
const EXP_C: [f64; 12] = [
    0.5,
    1.0 / 6.0,
    1.0 / 24.0,
    1.0 / 120.0,
    1.0 / 720.0,
    1.0 / 5_040.0,
    1.0 / 40_320.0,
    1.0 / 362_880.0,
    1.0 / 3_628_800.0,
    1.0 / 39_916_800.0,
    1.0 / 479_001_600.0,
    1.0 / 6_227_020_800.0,
];
/// Above this, exp overflows (clamp to +∞).
const EXP_HI: f64 = 709.782712893384;
/// Below this, exp underflows (clamp to 0; the natural path already
/// rounds to 0 down to ≈ −1418 — the clamp covers the far range where
/// the scale bit-twiddling wraps).
const EXP_LO: f64 = -745.5;

// ln: fdlibm e_log polynomial.
const LG: [f64; 7] = [
    6.666_666_666_666_735_1e-01,
    3.999_999_999_940_941_9e-01,
    2.857_142_874_366_239_1e-01,
    2.222_219_843_214_978_4e-01,
    1.818_357_216_161_805_0e-01,
    1.531_383_769_920_937_3e-01,
    1.479_819_860_511_658_6e-01,
];

// fdlibm k_cos / k_sin kernel coefficients.
const KC: [f64; 6] = [
    4.166_666_666_666_660_2e-02,
    -1.388_888_888_887_411_0e-03,
    2.480_158_728_947_673_0e-05,
    -2.755_731_435_139_066_3e-07,
    2.087_572_321_298_174_8e-09,
    -1.135_964_755_778_819_5e-11,
];
const KS: [f64; 6] = [
    -1.666_666_666_666_663_2e-01,
    8.333_333_333_322_489_5e-03,
    -1.984_126_982_985_794_9e-04,
    2.755_731_370_707_006_8e-06,
    -2.505_076_025_340_686_3e-08,
    1.589_690_995_211_550_1e-10,
];

#[inline(always)]
fn mask_and<const N: usize>(a: [bool; N], b: [bool; N]) -> [bool; N] {
    let mut out = [false; N];
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x && y;
    }
    out
}

#[inline(always)]
fn mask_or<const N: usize>(a: [bool; N], b: [bool; N]) -> [bool; N] {
    let mut out = [false; N];
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x || y;
    }
    out
}

/// Round to nearest integer (ties to even) — valid for |x| < 2^51.
#[inline(always)]
fn round_even<const N: usize>(x: F64Lanes<N>) -> F64Lanes<N> {
    let magic = F64Lanes::splat(ROUND_MAGIC);
    (x + magic) - magic
}

// ---- lane-generic implementations -----------------------------------------

#[inline(always)]
fn exp_lanes<const N: usize>(x: F64Lanes<N>) -> F64Lanes<N> {
    let nf = round_even(x * F64Lanes::splat(INV_LN2));
    let r = (x - nf * F64Lanes::splat(LN2_HI)) - nf * F64Lanes::splat(LN2_LO);
    // q(r) ≈ (exp(r) − 1 − r) / r², Horner over 1/n!.
    let mut q = F64Lanes::splat(EXP_C[11]);
    for &c in EXP_C[..11].iter().rev() {
        q = q * r + F64Lanes::splat(c);
    }
    let y = F64Lanes::splat(1.0) + r + (r * r) * q;
    // 2^n in two exact power-of-two scalings (reaches subnormals).
    let ni = nf.to_i64();
    let n1 = ni.sar(1);
    let n2 = ni.wrapping_sub(n1);
    let bias = I64Lanes::splat(1023);
    let s1 = F64Lanes::from_bits((n1.wrapping_add(bias) << 52).as_u64());
    let s2 = F64Lanes::from_bits((n2.wrapping_add(bias) << 52).as_u64());
    let res = y * s1 * s2;
    // Edge clamps: the natural path already rounds to ∞/0 near the
    // thresholds; these selects cover the far ranges where the scale
    // bit-twiddling wraps. NaN inputs fail both compares and propagate.
    let res = F64Lanes::select(
        x.gt(F64Lanes::splat(EXP_HI)),
        F64Lanes::splat(f64::INFINITY),
        res,
    );
    F64Lanes::select(x.lt(F64Lanes::splat(EXP_LO)), F64Lanes::splat(0.0), res)
}

#[inline(always)]
fn ln_lanes<const N: usize>(x: F64Lanes<N>) -> F64Lanes<N> {
    // Scale subnormal inputs into the normal range (ln(x·2^54) − 54·ln2).
    let tiny = mask_and(
        x.gt(F64Lanes::splat(0.0)),
        x.lt(F64Lanes::splat(f64::MIN_POSITIVE)),
    );
    let xs = F64Lanes::select(tiny, x * F64Lanes::splat(18_014_398_509_481_984.0), x); // 2^54
    let kadj = F64Lanes::select(tiny, F64Lanes::splat(-54.0), F64Lanes::splat(0.0));
    // Center the mantissa on [√2/2, √2): m = xs · 2^-k.
    let bits = xs.to_bits();
    let hx = (bits >> 32).wrapping_add(U64Lanes::splat(0x3ff0_0000 - 0x3fe6_a09e));
    let k = (hx >> 20).as_i64().wrapping_sub(I64Lanes::splat(1023));
    let mhi = hx
        .and(0x000f_ffff)
        .wrapping_add(U64Lanes::splat(0x3fe6_a09e));
    let m = F64Lanes::from_bits((mhi << 32).or(bits.and(0xffff_ffff)));
    // fdlibm e_log on m ∈ [√2/2, √2).
    let f = m - F64Lanes::splat(1.0);
    let hfsq = F64Lanes::splat(0.5) * f * f;
    let s = f / (F64Lanes::splat(2.0) + f);
    let z = s * s;
    let w = z * z;
    let t1 =
        w * (F64Lanes::splat(LG[1]) + w * (F64Lanes::splat(LG[3]) + w * F64Lanes::splat(LG[5])));
    let t2 = z
        * (F64Lanes::splat(LG[0])
            + w * (F64Lanes::splat(LG[2])
                + w * (F64Lanes::splat(LG[4]) + w * F64Lanes::splat(LG[6]))));
    let r = t2 + t1;
    let dk = k.to_f64() + kadj;
    let res = dk * F64Lanes::splat(LN2_HI)
        - ((hfsq - (s * (hfsq + r) + dk * F64Lanes::splat(LN2_LO))) - f);
    // Edges: ln(±0) = −∞, ln(x<0) = NaN, ln(∞) = ∞, NaN propagates.
    let res = F64Lanes::select(
        x.eq_lanes(F64Lanes::splat(0.0)),
        F64Lanes::splat(f64::NEG_INFINITY),
        res,
    );
    let res = F64Lanes::select(x.lt(F64Lanes::splat(0.0)), F64Lanes::splat(f64::NAN), res);
    let res = F64Lanes::select(
        x.eq_lanes(F64Lanes::splat(f64::INFINITY)),
        F64Lanes::splat(f64::INFINITY),
        res,
    );
    F64Lanes::select(x.is_nan(), x, res)
}

#[inline(always)]
fn cos_tau_lanes<const N: usize>(u: F64Lanes<N>) -> F64Lanes<N> {
    // Reduce in the *turn* domain, where reduction is exact:
    // t ∈ [-1/2, 1/2], quadrant q ∈ {-2..2}, residue r ∈ [-1/8, 1/8].
    let t = u - round_even(u);
    let qf = round_even(t * F64Lanes::splat(4.0));
    let r = t - qf * F64Lanes::splat(0.25);
    let th = r * F64Lanes::splat(TAU); // angle ∈ [-π/4, π/4]
    let z = th * th;
    // fdlibm k_cos.
    let rc = z
        * (F64Lanes::splat(KC[0])
            + z * (F64Lanes::splat(KC[1])
                + z * (F64Lanes::splat(KC[2])
                    + z * (F64Lanes::splat(KC[3])
                        + z * (F64Lanes::splat(KC[4]) + z * F64Lanes::splat(KC[5]))))));
    let hz = F64Lanes::splat(0.5) * z;
    let wc = F64Lanes::splat(1.0) - hz;
    let cosv = wc + (((F64Lanes::splat(1.0) - wc) - hz) + z * rc);
    // fdlibm k_sin (zero-tail branch).
    let rs = F64Lanes::splat(KS[1])
        + z * (F64Lanes::splat(KS[2])
            + z * (F64Lanes::splat(KS[3])
                + z * (F64Lanes::splat(KS[4]) + z * F64Lanes::splat(KS[5]))));
    let v = z * th;
    let sinv = th + v * (F64Lanes::splat(KS[0]) + z * rs);
    // cos(π·q/2 + θ): q≡0 → cos θ, q≡1 → −sin θ, q≡2 → −cos θ, q≡3 → sin θ.
    let qi = qf.to_i64().and(3);
    let use_sin = qi.and(1).eq_const(1);
    let negate = mask_or(qi.eq_const(1), qi.eq_const(2));
    let val = F64Lanes::select(use_sin, sinv, cosv);
    F64Lanes::select(negate, -val, val)
}

/// The Box–Muller-style transform both the scalar and SIMD draw paths
/// share: `z = √(−2·ln(u1)) · cos_tau(u2)` with `u1` open-(0,1] from
/// `w1` and `u2` uniform-[0,1) from `w2`.
#[inline(always)]
fn normal_lanes<const N: usize>(w1: U64Lanes<N>, w2: U64Lanes<N>) -> F64Lanes<N> {
    let scale = F64Lanes::splat(1.0 / (1u64 << 53) as f64);
    let u1 = (w1 >> 11)
        .wrapping_add(U64Lanes::splat(1))
        .as_i64()
        .to_f64()
        * scale;
    let u2 = (w2 >> 11).as_i64().to_f64() * scale;
    let radius = (F64Lanes::splat(-2.0) * ln_lanes(u1)).sqrt();
    radius * cos_tau_lanes(u2)
}

// ---- scalar entry points (width-1 instantiations) -------------------------

/// `e^x`, bit-identical to the SIMD instantiations at every width.
#[inline]
pub fn exp(x: f64) -> f64 {
    exp_lanes(F64Lanes([x])).0[0]
}

/// `ln x`, bit-identical to the SIMD instantiations at every width.
#[inline]
pub fn ln(x: f64) -> f64 {
    ln_lanes(F64Lanes([x])).0[0]
}

/// `cos(2πu)` ("cosine of u turns"), bit-identical across widths.
#[inline]
pub fn cos_tau(u: f64) -> f64 {
    cos_tau_lanes(F64Lanes([u])).0[0]
}

/// Uniform [0,1) with 53 bits from one raw `u64` word (the `rand` shim's
/// standard `f64` mapping).
#[inline]
pub fn u01(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform (0,1] from one raw word (safe `ln` argument; the `rand_distr`
/// shim's `uniform_open01` mapping).
#[inline]
pub fn open01(word: u64) -> f64 {
    ((word >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Standard-normal draw from two raw words — the scalar form of the
/// shared transform.
#[inline]
pub fn normal01_words(w1: u64, w2: u64) -> f64 {
    normal_lanes(U64Lanes([w1]), U64Lanes([w2])).0[0]
}

/// Standard-normal draw consuming two `u64` draws from `rng` — what the
/// scalar `step` paths of the vectorized models call. Draw order (two
/// `next_u64`s) matches the batched kernels' gathered words exactly.
#[inline]
pub fn normal01_draw<R: RngCore>(rng: &mut R) -> f64 {
    let w1 = rng.next_u64();
    let w2 = rng.next_u64();
    normal01_words(w1, w2)
}

// ---- slice entry points (backend-dispatched) ------------------------------

const CHUNK: usize = 8;

macro_rules! slice_kernels {
    ($generic:ident, $avx2:ident, $avx512:ident, $with:ident, $public:ident, $lanes_fn:ident, $doc:literal) => {
        #[inline(always)]
        fn $generic(xs: &mut [f64]) {
            let mut chunks = xs.chunks_exact_mut(CHUNK);
            for c in &mut chunks {
                let mut a = [0.0f64; CHUNK];
                a.copy_from_slice(c);
                c.copy_from_slice(&$lanes_fn(F64Lanes(a)).0);
            }
            for x in chunks.into_remainder() {
                *x = $lanes_fn(F64Lanes([*x])).0[0];
            }
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $avx2(xs: &mut [f64]) {
            $generic(xs)
        }

        // The 8-lane chunks vectorize to full 512-bit `f64` registers
        // here; the arithmetic (and therefore every bit of the result)
        // is identical to the generic instantiation.
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f")]
        unsafe fn $avx512(xs: &mut [f64]) {
            $generic(xs)
        }

        /// The slice kernel on an explicit backend (test harness hook).
        pub fn $with(backend: Backend, xs: &mut [f64]) {
            #[cfg(target_arch = "x86_64")]
            {
                if backend >= Backend::Avx512 {
                    // SAFETY: Avx512 is only offered when detected.
                    unsafe { $avx512(xs) };
                    return;
                }
                if backend >= Backend::Avx2 {
                    // SAFETY: Avx2 is only offered when detected.
                    unsafe { $avx2(xs) };
                    return;
                }
            }
            let _ = backend;
            $generic(xs)
        }

        #[doc = $doc]
        ///
        /// In place over the slice; bit-identical to the scalar function
        /// per element on every backend.
        pub fn $public(xs: &mut [f64]) {
            $with(Backend::active(), xs)
        }
    };
}

slice_kernels!(
    exp_slice_generic,
    exp_slice_avx2,
    exp_slice_avx512,
    exp_slice_with,
    exp_slice,
    exp_lanes,
    "`xs[i] ← exp(xs[i])` for every element."
);
slice_kernels!(
    ln_slice_generic,
    ln_slice_avx2,
    ln_slice_avx512,
    ln_slice_with,
    ln_slice,
    ln_lanes,
    "`xs[i] ← ln(xs[i])` for every element."
);
slice_kernels!(
    cos_tau_slice_generic,
    cos_tau_slice_avx2,
    cos_tau_slice_avx512,
    cos_tau_slice_with,
    cos_tau_slice,
    cos_tau_lanes,
    "`xs[i] ← cos(2π·xs[i])` for every element."
);

#[inline(always)]
fn u01_slice_generic(words: &[u64], out: &mut [f64]) {
    debug_assert_eq!(words.len(), out.len());
    let scale = F64Lanes::<CHUNK>::splat(1.0 / (1u64 << 53) as f64);
    let mut chunks = out.chunks_exact_mut(CHUNK);
    let mut base = 0;
    for c in &mut chunks {
        let mut w = [0u64; CHUNK];
        w.copy_from_slice(&words[base..base + CHUNK]);
        let u = (U64Lanes(w) >> 11).as_i64().to_f64() * scale;
        c.copy_from_slice(&u.0);
        base += CHUNK;
    }
    for (k, o) in chunks.into_remainder().iter_mut().enumerate() {
        *o = u01(words[base + k]);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn u01_slice_avx2(words: &[u64], out: &mut [f64]) {
    u01_slice_generic(words, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn u01_slice_avx512(words: &[u64], out: &mut [f64]) {
    u01_slice_generic(words, out)
}

/// [`u01_slice`] on an explicit backend (test harness hook).
pub fn u01_slice_with(backend: Backend, words: &[u64], out: &mut [f64]) {
    assert_eq!(words.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    {
        if backend >= Backend::Avx512 {
            // SAFETY: Avx512 is only offered when detected.
            unsafe { u01_slice_avx512(words, out) };
            return;
        }
        if backend >= Backend::Avx2 {
            // SAFETY: Avx2 is only offered when detected.
            unsafe { u01_slice_avx2(words, out) };
            return;
        }
    }
    let _ = backend;
    u01_slice_generic(words, out)
}

/// `out[i] = u01(words[i])` — the raw-word → uniform-[0,1) mapping over
/// a whole cohort, vectorized.
pub fn u01_slice(words: &[u64], out: &mut [f64]) {
    u01_slice_with(Backend::active(), words, out)
}

#[inline(always)]
fn open01_slice_generic(words: &[u64], out: &mut [f64]) {
    debug_assert_eq!(words.len(), out.len());
    let scale = F64Lanes::<CHUNK>::splat(1.0 / (1u64 << 53) as f64);
    let one = U64Lanes::<CHUNK>::splat(1);
    let mut chunks = out.chunks_exact_mut(CHUNK);
    let mut base = 0;
    for c in &mut chunks {
        let mut w = [0u64; CHUNK];
        w.copy_from_slice(&words[base..base + CHUNK]);
        let u = (U64Lanes(w) >> 11).wrapping_add(one).as_i64().to_f64() * scale;
        c.copy_from_slice(&u.0);
        base += CHUNK;
    }
    for (k, o) in chunks.into_remainder().iter_mut().enumerate() {
        *o = open01(words[base + k]);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn open01_slice_avx2(words: &[u64], out: &mut [f64]) {
    open01_slice_generic(words, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn open01_slice_avx512(words: &[u64], out: &mut [f64]) {
    open01_slice_generic(words, out)
}

/// [`open01_slice`] on an explicit backend (test harness hook).
pub fn open01_slice_with(backend: Backend, words: &[u64], out: &mut [f64]) {
    assert_eq!(words.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    {
        if backend >= Backend::Avx512 {
            // SAFETY: Avx512 is only offered when detected.
            unsafe { open01_slice_avx512(words, out) };
            return;
        }
        if backend >= Backend::Avx2 {
            // SAFETY: Avx2 is only offered when detected.
            unsafe { open01_slice_avx2(words, out) };
            return;
        }
    }
    let _ = backend;
    open01_slice_generic(words, out)
}

/// `out[i] = open01(words[i])` — the raw-word → uniform-(0,1] mapping
/// over a whole cohort, vectorized (the cpp Knuth-product factor).
pub fn open01_slice(words: &[u64], out: &mut [f64]) {
    open01_slice_with(Backend::active(), words, out)
}

#[inline(always)]
fn normal_slice_generic(words: &[u64], out: &mut [f64]) {
    debug_assert_eq!(words.len(), 2 * out.len());
    let mut chunks = out.chunks_exact_mut(CHUNK);
    let mut base = 0;
    for c in &mut chunks {
        let mut w1 = [0u64; CHUNK];
        let mut w2 = [0u64; CHUNK];
        for k in 0..CHUNK {
            w1[k] = words[2 * (base + k)];
            w2[k] = words[2 * (base + k) + 1];
        }
        c.copy_from_slice(&normal_lanes(U64Lanes(w1), U64Lanes(w2)).0);
        base += CHUNK;
    }
    for (k, o) in chunks.into_remainder().iter_mut().enumerate() {
        *o = normal01_words(words[2 * (base + k)], words[2 * (base + k) + 1]);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn normal_slice_avx2(words: &[u64], out: &mut [f64]) {
    normal_slice_generic(words, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn normal_slice_avx512(words: &[u64], out: &mut [f64]) {
    normal_slice_generic(words, out)
}

/// [`normal_from_words`] on an explicit backend (test harness hook).
pub fn normal_from_words_with(backend: Backend, words: &[u64], out: &mut [f64]) {
    assert_eq!(words.len(), 2 * out.len());
    #[cfg(target_arch = "x86_64")]
    {
        if backend >= Backend::Avx512 {
            // SAFETY: Avx512 is only offered when detected.
            unsafe { normal_slice_avx512(words, out) };
            return;
        }
        if backend >= Backend::Avx2 {
            // SAFETY: Avx2 is only offered when detected.
            unsafe { normal_slice_avx2(words, out) };
            return;
        }
    }
    let _ = backend;
    normal_slice_generic(words, out)
}

/// One standard-normal draw per interleaved word pair:
/// `out[i] = normal01_words(words[2i], words[2i+1])`, vectorized.
pub fn normal_from_words(words: &[u64], out: &mut [f64]) {
    normal_from_words_with(Backend::active(), words, out)
}

#[cfg(test)]
mod tests {
    //! Fast dev-loop smoke checks only. The *contract* — the ≤ 2 ULP
    //! budget against libm and the exhaustive scalar-vs-SIMD bit-equality
    //! grid over every available backend — lives in
    //! `tests/draw_identity.rs` (the documented harness); keeping a
    //! second full copy here would invite the two drifting apart.

    use super::*;
    use crate::rng::rng_from_seed;
    use rand::RngExt;

    fn ulp_diff(a: f64, b: f64) -> u64 {
        if a == b {
            return 0;
        }
        if a.is_nan() || b.is_nan() {
            return u64::MAX;
        }
        let (ia, ib) = (a.to_bits() as i64, b.to_bits() as i64);
        // Map to a monotone integer line (two's-complement trick).
        let ma = if ia < 0 { i64::MIN - ia } else { ia };
        let mb = if ib < 0 { i64::MIN - ib } else { ib };
        ma.abs_diff(mb)
    }

    #[test]
    fn exp_ln_smoke_against_libm() {
        for x in [0.0, 1.0, -1.0, 0.5, -0.5, 20.0, -20.0, 700.0, -700.0] {
            assert!(ulp_diff(exp(x), x.exp()) <= 2, "exp({x})");
        }
        for x in [1.0, 2.0, 0.5, 1e-10, 1e10, 1.0 - 1e-16] {
            assert!(ulp_diff(ln(x), x.ln()) <= 2, "ln({x})");
        }
    }

    #[test]
    fn edge_cases_match_ieee() {
        assert_eq!(exp(f64::INFINITY), f64::INFINITY);
        assert_eq!(exp(f64::NEG_INFINITY), 0.0);
        assert_eq!(exp(1000.0), f64::INFINITY);
        assert_eq!(exp(-1000.0), 0.0);
        assert!(exp(f64::NAN).is_nan());
        assert_eq!(ln(0.0), f64::NEG_INFINITY);
        assert_eq!(ln(-0.0), f64::NEG_INFINITY);
        assert!(ln(-1.0).is_nan());
        assert_eq!(ln(f64::INFINITY), f64::INFINITY);
        assert!(ln(f64::NAN).is_nan());
        // Subnormal arguments take the rescaled path.
        let sub = 5e-324;
        assert!(ulp_diff(ln(sub), sub.ln()) <= 2, "ln(5e-324) = {}", ln(sub));
    }

    #[test]
    fn cos_tau_hits_the_lattice() {
        assert_eq!(cos_tau(0.0), 1.0);
        assert_eq!(cos_tau(0.25), 0.0);
        assert_eq!(cos_tau(0.5), -1.0);
        assert_eq!(cos_tau(0.75), 0.0);
        assert_eq!(cos_tau(1.0), 1.0);
        let mut rng = rng_from_seed(3);
        for _ in 0..5_000 {
            let u = rng.random::<f64>();
            let d = (cos_tau(u) - (TAU * u).cos()).abs();
            assert!(d < 1e-14, "u={u} diff={d}");
        }
    }

    #[test]
    fn normal_moments_sane() {
        let mut rng = rng_from_seed(4);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let z = normal01_draw(&mut rng);
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn slices_match_scalar_smoke() {
        // One small mixed batch per backend; the exhaustive grid lives
        // in tests/draw_identity.rs.
        let mut rng = rng_from_seed(5);
        let xs: Vec<f64> = (0..19)
            .map(|_| (rng.random::<f64>() - 0.5) * 100.0)
            .collect();
        for backend in Backend::available() {
            let mut e = xs.clone();
            exp_slice_with(backend, &mut e);
            for (k, &x) in xs.iter().enumerate() {
                assert_eq!(e[k].to_bits(), exp(x).to_bits(), "{backend} exp({x})");
            }
        }
    }
}
