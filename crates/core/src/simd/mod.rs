//! The vectorized draw pipeline: wide lanes, multi-stream ChaCha blocks,
//! and bit-exact vector math.
//!
//! The closed-form simulation models (`cpp`, `gbm`, `walk`) are RNG- and
//! transcendental-bound: after the batched SoA frontier (PR 3) their
//! native kernels sat at ~1x in `kernel_bench` because every lane still
//! paid a scalar ChaCha block and scalar `exp`/`ln`/`cos` per step. This
//! module is the ROADMAP follow-up: a pipeline that computes **K lanes'
//! next ChaCha blocks in one vectorized pass** and evaluates the
//! transcendental transforms **4–8 lanes at a time**, while preserving
//! the workspace's defining invariant — *per-lane draw-identity*. Every
//! lane keeps its own independent stream and its own bit-exact values;
//! vectorization changes wall-clock, never results.
//!
//! ## Why bit-identity holds across backends
//!
//! Two mechanisms, one per half of the pipeline:
//!
//! * **ChaCha is exact integer arithmetic.** The block function is
//!   wrapping `u32` adds, xors, and rotates — operations with one defined
//!   result on every ISA. The multi-stream generator in [`chacha`] holds
//!   word `w` of K independent streams in one vector register and runs
//!   the identical double-round schedule, so lane `k`'s output block *is*
//!   `chacha12_block(key_k, counter_k)`, bit for bit (pinned by
//!   `stream_equivalence` tests against N scalar streams).
//! * **One polynomial, one operation order, per lane.** The [`vmath`]
//!   transcendentals are written once as branch-free elementwise lane
//!   code ([`wide::F64Lanes`]) and instantiated per backend
//!   (`#[target_feature]`). Every operation is an IEEE-754
//!   correctly-rounded scalar op applied lane-wise (add/mul/div/sqrt,
//!   integer bit manipulation, compare-and-select), and none of them
//!   change result by vector width — so the scalar fallback and the
//!   SIMD instantiations agree on every bit, including NaN propagation
//!   and edge clamps. No FMA is used anywhere (fused rounding differs
//!   from mul-then-add, and not all backends have it).
//!
//! ## Backend selection
//!
//! [`Backend::active`] picks the widest available backend at first use:
//! AVX-512 (16-wide `u32` / 8-wide `f64`) when the CPU supports it, AVX2
//! (8-wide `u32` / 4-wide `f64`), SSE2 (4-wide `u32`) on any `x86_64`,
//! and the portable scalar path everywhere else. The `MLSS_SIMD`
//! environment variable overrides the choice (`scalar`, `sse2`, `avx2`,
//! `avx512`, or `auto`); forcing a backend the CPU lacks falls back to
//! the widest supported one — so an `MLSS_SIMD=avx512` CI leg degrades
//! gracefully on a runner without the ISA. CI runs the whole test suite
//! under `MLSS_SIMD=scalar` *and* the auto backend — because results are
//! bit-identical, the flag is purely a throughput knob (and a debugging
//! aid).

pub mod chacha;
pub mod vmath;
pub mod wide;

use std::sync::OnceLock;

/// Cohorts below this size are not worth routing through the vectorized
/// pipeline — the staging/dispatch overhead outweighs the SIMD win, most
/// acutely at width 1 (the `FrontierMode::Shared` compatibility path).
/// Native kernels fall back to their scalar per-lane loop under this
/// threshold; results are bit-identical either way, so the cutoff is a
/// pure throughput choice.
pub const MIN_SIMD_COHORT: usize = 8;

/// True when the vectorized *draw* pipeline should engage for a cohort
/// of this size: wide enough to amortize staging, and a real SIMD
/// backend active. On the pure-scalar backend the staged multi-stream
/// machinery is overhead with nothing to amortize it, so RNG-bound
/// kernels (walk, cpp) take their scalar loop instead; kernels whose
/// win comes from the chunked `vmath` transforms (gbm) engage on cohort
/// size alone. Either way the results are bit-identical — this is a
/// pure throughput gate.
pub fn pipeline_engaged(cohort: usize) -> bool {
    cohort >= MIN_SIMD_COHORT && Backend::active() > Backend::Scalar
}

/// A vector instruction set the draw pipeline can run on.
///
/// Ordered narrow-to-wide; see the module docs for what each backend
/// vectorizes. All backends are bit-identical — selection is a pure
/// throughput choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Backend {
    /// Portable elementwise code, no `std::arch` — the fallback on every
    /// architecture and the reference the others are tested against.
    Scalar,
    /// `x86_64` SSE2: 4-wide `u32` ChaCha blocks (`__m128i`).
    Sse2,
    /// `x86_64` AVX2: 8-wide `u32` ChaCha blocks (`__m256i`) and 256-bit
    /// `f64` vector math.
    Avx2,
    /// `x86_64` AVX-512F: 16-wide `u32` ChaCha blocks (`__m512i`, 16
    /// independent streams per pass) and 512-bit `f64` vector math.
    Avx512,
}

impl Backend {
    /// The widest backend this CPU supports.
    pub fn detect() -> Backend {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return Backend::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return Backend::Avx2;
            }
            // SSE2 is part of the x86_64 baseline.
            Backend::Sse2
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Backend::Scalar
        }
    }

    /// The process-wide active backend: `min(detected, MLSS_SIMD)`,
    /// resolved once. `MLSS_SIMD=scalar|sse2|avx2|avx512` caps the
    /// backend; `auto` (or unset, or unparseable) uses the detected one.
    pub fn active() -> Backend {
        static ACTIVE: OnceLock<Backend> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            let detected = Backend::detect();
            match std::env::var("MLSS_SIMD").ok().as_deref() {
                Some("scalar") => Backend::Scalar,
                Some("sse2") => detected.min(Backend::Sse2),
                Some("avx2") => detected.min(Backend::Avx2),
                Some("avx512") => detected.min(Backend::Avx512),
                _ => detected,
            }
        })
    }

    /// Every backend this CPU can run, narrowest first — the test
    /// harness iterates this to pin cross-backend bit-equality.
    pub fn available() -> Vec<Backend> {
        let mut v = vec![Backend::Scalar];
        for candidate in [Backend::Sse2, Backend::Avx2, Backend::Avx512] {
            if Backend::detect() >= candidate {
                v.push(candidate);
            }
        }
        v
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
            Backend::Avx512 => "avx512",
        })
    }
}

/// Reusable per-thread scratch for native batch kernels: draw buffers and
/// staging for the vectorized pipeline, so `step_batch` calls allocate
/// nothing in steady state.
#[derive(Debug, Default)]
pub struct KernelScratch {
    /// Gathered `u64` draws, lane-major.
    pub words: Vec<u64>,
    /// General `f64` staging (kernel-defined meaning).
    pub f1: Vec<f64>,
    /// Second `f64` staging buffer.
    pub f2: Vec<f64>,
    /// Precomputed ChaCha blocks for refilling lanes.
    pub blocks: Vec<[u32; 16]>,
    /// Lane-index staging (which lanes need a refill, etc.).
    pub idxs: Vec<usize>,
    /// Gathered stream keys for [`chacha::compute_blocks`].
    pub keys: Vec<[u32; 8]>,
    /// Gathered stream counters for [`chacha::compute_blocks`].
    pub counters: Vec<u64>,
    /// Per-lane staged-next-block cache (see
    /// [`chacha::stage_refills_cached`]): a block computed ahead of need
    /// stays here, validated by (key, counter), until the lane installs
    /// it — so no SIMD block compute is ever wasted.
    pub pending: Vec<Option<PendingBlock>>,
    /// Per-cohort-position `u64` counters (kernel-defined meaning — the
    /// cpp kernel keeps its per-lane Poisson counts here).
    pub counts: Vec<u64>,
    /// Per-lane *persistent* draw views (see [`chacha::sync_views`]):
    /// row `i` is lane `i`'s current block followed by its staged next
    /// block, read as pure loads. Rows survive across steps — a step
    /// revalidates each row against its tags instead of rebuilding it,
    /// and a lane that crossed a block boundary rebases its row (64 B)
    /// rather than recopying every lane every step. Fixed-size rows let
    /// the draw loop elide bounds checks.
    pub views: Vec<[u32; chacha::VIEW_STRIDE]>,
    /// Per-lane view validity tag: the `stream_id()` of the RNG the row
    /// was built for (`u64::MAX` = never built).
    pub view_stream: Vec<u64>,
    /// Per-lane view validity tag: the counter of the block in the
    /// row's first half. Together with `view_stream` this pins the row
    /// to an exact stream position — equal identities imply equal keys,
    /// so matching tags mean the row bytes are the lane's keystream.
    pub view_ctr0: Vec<u64>,
    /// Per-lane flag: the row's second half holds the staged next block
    /// (`view_ctr0 + 1`). Cleared on rebase, refilled by the next
    /// [`chacha::sync_views`] pass in one SIMD block compute.
    pub view_staged: Vec<bool>,
    /// Per-lane view cursors: words consumed from the lane's view,
    /// committed to the stream once per step
    /// ([`chacha::commit_view`]).
    pub cursors: Vec<u32>,
}

/// One staged ChaCha block, tagged with the stream position it is the
/// next block *of* (so a recycled lane slot can never install a stale
/// block). The tag is the stream's process-unique identity rather than
/// its 32-byte key — equal identities imply equal keys (the shim never
/// mutates a key after construction), and the one-word compare keeps
/// the per-lane cache-validity scan cheap.
#[derive(Debug, Clone, Copy)]
pub struct PendingBlock {
    /// The stream's identity (`stream_id()`) at staging time.
    pub stream: u64,
    /// The counter this block was computed for.
    pub counter: u64,
    /// The computed keystream block.
    pub block: [u32; 16],
}

/// Run `f` with the calling thread's [`KernelScratch`].
///
/// Kernels must not nest `with_scratch` calls; if one ever does (e.g. a
/// wrapper model whose batch kernel drives another native kernel), the
/// inner call transparently falls back to a fresh scratch.
pub fn with_scratch<R>(f: impl FnOnce(&mut KernelScratch) -> R) -> R {
    use std::cell::RefCell;
    thread_local! {
        static SCRATCH: RefCell<KernelScratch> = RefCell::new(KernelScratch::default());
    }
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut KernelScratch::default()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_stable_and_available_contains_scalar() {
        assert_eq!(Backend::detect(), Backend::detect());
        let av = Backend::available();
        assert_eq!(av[0], Backend::Scalar);
        assert!(av.contains(&Backend::detect()));
        // Narrowest-first ordering.
        let mut sorted = av.clone();
        sorted.sort();
        assert_eq!(av, sorted);
    }

    #[test]
    fn active_is_at_most_detected() {
        assert!(Backend::active() <= Backend::detect());
    }

    #[test]
    fn scratch_nesting_does_not_panic() {
        let out = with_scratch(|outer| {
            outer.words.push(1);
            with_scratch(|inner| {
                inner.words.push(2);
                inner.words.len()
            })
        });
        assert_eq!(out, 1, "inner call sees a fresh scratch");
    }
}
