//! Small statistics toolkit used by the estimators.
//!
//! We implement exactly what the paper's quality measures need — running
//! moments (Welford), normal quantiles for confidence intervals, and a few
//! helpers — rather than pulling in a statistics crate.

/// Numerically stable running mean/variance accumulator (Welford's
/// algorithm). Used for the per-root-path variance estimator of Eq. (6).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningMoments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningMoments {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (Bessel-corrected); 0 when `n < 2`.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (divide by `n`); 0 when `n == 0`.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
    }
}

/// Exact moment accumulator for *integer* observations (per-root target-hit
/// counts). Sums are kept in 128-bit integers, so accumulation and
/// [`HitMoments::merge`] are associative and commutative **bit-for-bit** —
/// merging shards in any permutation yields the identical variance, which
/// the Welford accumulator above cannot guarantee (its float merge is
/// order-sensitive in the last ulp). This is what makes the parallel
/// driver's sharded reduction and the scheduler's slice merging produce
/// estimates independent of merge order.
#[derive(Debug, Clone, Copy, Default)]
pub struct HitMoments {
    n: u64,
    sum: u128,
    sum_sq: u128,
}

impl HitMoments {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one integer observation.
    pub fn push(&mut self, x: u32) {
        self.n += 1;
        self.sum += x as u128;
        self.sum_sq += (x as u128) * (x as u128);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }

    /// Unbiased sample variance (Bessel-corrected); 0 when `n < 2`.
    /// Computed from the exact integer sums, clamped at 0 against float
    /// cancellation in the final division.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let n = self.n as f64;
        // n·Σx² − (Σx)² is exact in u128 for any realistic hit counts
        // (hits per root are u32, roots ≤ 2^63), so the only rounding is
        // the final conversion + division — identical for identical sums.
        let num = (self.n as u128 * self.sum_sq).saturating_sub(self.sum * self.sum);
        (num as f64 / n / (n - 1.0)).max(0.0)
    }

    /// Merge another accumulator (exact, order-insensitive).
    pub fn merge(&mut self, other: &HitMoments) {
        self.n += other.n;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }
}

/// Full-precision float summation (Shewchuk expansions, the algorithm
/// behind Python's `math.fsum`). The accumulator keeps the running sum as
/// a list of non-overlapping partials whose exact sum equals the exact
/// mathematical sum of everything added; [`ExactSum::value`] rounds that
/// exact sum to the nearest `f64` once. Addition and [`ExactSum::merge`]
/// are therefore associative and commutative up to the final rounding,
/// making float-weighted ledgers (importance sampling) merge-order
/// insensitive — verified bit-for-bit by the merge-permutation property
/// test.
#[derive(Debug, Clone, Default)]
pub struct ExactSum {
    partials: Vec<f64>,
}

impl ExactSum {
    /// Empty sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one term exactly.
    pub fn add(&mut self, mut x: f64) {
        let mut i = 0;
        for j in 0..self.partials.len() {
            let mut y = self.partials[j];
            if x.abs() < y.abs() {
                std::mem::swap(&mut x, &mut y);
            }
            let hi = x + y;
            let lo = y - (hi - x);
            if lo != 0.0 {
                self.partials[i] = lo;
                i += 1;
            }
            x = hi;
        }
        self.partials.truncate(i);
        self.partials.push(x);
    }

    /// Absorb another exact sum (exact — no rounding).
    pub fn merge(&mut self, other: &ExactSum) {
        for &p in &other.partials {
            self.add(p);
        }
    }

    /// The exact sum correctly rounded to the nearest `f64` (round half
    /// to even), independent of the internal partials representation.
    ///
    /// A naive fold over the partials can round the wrong way on exact
    /// half-ulp ties (and different insertion orders can produce
    /// different non-overlapping representations of the same exact sum,
    /// making the naive fold order-sensitive in exactly those cases).
    /// This is `math.fsum`'s tail correction: sum from the largest
    /// partial down until the addition becomes inexact, then resolve the
    /// tie using the sign of the next partial below the roundoff.
    pub fn value(&self) -> f64 {
        let p = &self.partials;
        let mut n = p.len();
        if n == 0 {
            return 0.0;
        }
        n -= 1;
        let mut hi = p[n];
        let mut lo = 0.0;
        while n > 0 {
            let x = hi;
            n -= 1;
            let y = p[n];
            hi = x + y;
            let yr = hi - x;
            lo = y - yr;
            if lo != 0.0 {
                break;
            }
        }
        // Half-even correction: if the remaining tail has the same sign
        // as the roundoff, the exact sum lies strictly beyond the
        // half-ulp point and the addition above rounded the wrong way.
        if n > 0 && ((lo < 0.0 && p[n - 1] < 0.0) || (lo > 0.0 && p[n - 1] > 0.0)) {
            let y = lo * 2.0;
            let x = hi + y;
            let yr = x - hi;
            if y == yr {
                hi = x;
            }
        }
        hi
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance of a slice (0 when fewer than two elements).
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation of a slice.
pub fn sample_std(xs: &[f64]) -> f64 {
    sample_variance(xs).sqrt()
}

/// Standard normal CDF, via `erf`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function (Abramowitz & Stegun 7.1.26; |err| < 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal quantile (inverse CDF), Acklam's rational approximation
/// refined by one Halley step; good to ~1e-9 over (0, 1).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step using the CDF above.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Two-sided normal critical value `z_{α/2}` for the given confidence level
/// (e.g. `0.95 → 1.959964`). This is the `z` of the paper's CI construction.
pub fn z_critical(confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1), got {confidence}"
    );
    normal_quantile(1.0 - (1.0 - confidence) / 2.0)
}

// ---- durability codecs --------------------------------------------------
//
// The moment accumulators are part of every checkpointable shard, so they
// must round-trip exactly: `HitMoments` is three integers; `ExactSum`
// serializes its non-overlapping partials verbatim (the partials list *is*
// the exact value, and `add`/`value` are deterministic functions of it).

impl crate::persist::Persist for HitMoments {
    fn persist(&self, out: &mut Vec<u8>) {
        crate::persist::put_u64(out, self.n);
        crate::persist::put_u128(out, self.sum);
        crate::persist::put_u128(out, self.sum_sq);
    }

    fn restore(r: &mut crate::persist::Reader<'_>) -> Result<Self, crate::persist::PersistError> {
        Ok(Self {
            n: r.u64()?,
            sum: r.u128()?,
            sum_sq: r.u128()?,
        })
    }
}

impl crate::persist::Persist for ExactSum {
    fn persist(&self, out: &mut Vec<u8>) {
        crate::persist::put_f64s(out, &self.partials);
    }

    fn restore(r: &mut crate::persist::Reader<'_>) -> Result<Self, crate::persist::PersistError> {
        Ok(Self {
            partials: r.f64s()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_batch() {
        let xs = [1.0, 4.0, 2.0, 8.0, 5.0, 7.0];
        let mut acc = RunningMoments::new();
        for &x in &xs {
            acc.push(x);
        }
        assert!((acc.mean() - mean(&xs)).abs() < 1e-12);
        assert!((acc.sample_variance() - sample_variance(&xs)).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_matches_sequential() {
        let xs = [1.0, 4.0, 2.0];
        let ys = [8.0, 5.0, 7.0, 3.0];
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        xs.iter().for_each(|&x| a.push(x));
        ys.iter().for_each(|&y| b.push(y));
        a.merge(&b);

        let all: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        assert_eq!(a.count(), all.len() as u64);
        assert!((a.mean() - mean(&all)).abs() < 1e-12);
        assert!((a.sample_variance() - sample_variance(&all)).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningMoments::new();
        a.push(3.0);
        a.push(5.0);
        let before = (a.count(), a.mean(), a.sample_variance());
        a.merge(&RunningMoments::new());
        assert_eq!(before, (a.count(), a.mean(), a.sample_variance()));

        let mut e = RunningMoments::new();
        let mut b = RunningMoments::new();
        b.push(1.0);
        e.merge(&b);
        assert_eq!(e.count(), 1);
        assert_eq!(e.mean(), 1.0);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        let mut acc = RunningMoments::new();
        for _ in 0..10 {
            acc.push(2.5);
        }
        assert!(acc.sample_variance().abs() < 1e-15);
    }

    #[test]
    fn hit_moments_match_batch_formulas() {
        let xs: [u32; 6] = [1, 4, 2, 8, 5, 7];
        let mut acc = HitMoments::new();
        for &x in &xs {
            acc.push(x);
        }
        let fx: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
        assert_eq!(acc.count(), 6);
        assert!((acc.mean() - mean(&fx)).abs() < 1e-12);
        assert!((acc.sample_variance() - sample_variance(&fx)).abs() < 1e-12);
    }

    #[test]
    fn hit_moments_merge_is_permutation_insensitive() {
        let shards: [&[u32]; 3] = [&[0, 0, 3, 1], &[9, 0], &[2, 2, 2, 2, 2]];
        let build = |order: &[usize]| {
            let mut acc = HitMoments::new();
            for &i in order {
                let mut part = HitMoments::new();
                shards[i].iter().for_each(|&x| part.push(x));
                acc.merge(&part);
            }
            acc
        };
        let a = build(&[0, 1, 2]);
        for order in [[1, 0, 2], [2, 1, 0], [2, 0, 1]] {
            let b = build(&order);
            assert_eq!(a.count(), b.count());
            assert_eq!(a.mean().to_bits(), b.mean().to_bits());
            assert_eq!(a.sample_variance().to_bits(), b.sample_variance().to_bits());
        }
    }

    #[test]
    fn exact_sum_fixes_naive_cancellation() {
        // 1 + 1e100 + 1 - 1e100 = 2 exactly; naive f64 summation gives 0.
        let mut s = ExactSum::new();
        for x in [1.0, 1e100, 1.0, -1e100] {
            s.add(x);
        }
        assert_eq!(s.value(), 2.0);
    }

    #[test]
    fn exact_sum_rounds_half_ulp_ties_order_insensitively() {
        // Regression: these shards land the exact sum on a half-ulp tie;
        // a naive fold over the partials rounds differently depending on
        // merge order, the fsum-style correction must not.
        let shards: [&[f64]; 3] = [
            &[1.0, 1.0],
            &[1.0, 3.3306690738754696e-16],
            &[-1.1102230246251565e-16, 2.465190328815662e-32],
        ];
        let build = |order: &[usize]| {
            let mut acc = ExactSum::new();
            for &i in order {
                let mut part = ExactSum::new();
                shards[i].iter().for_each(|&x| part.add(x));
                acc.merge(&part);
            }
            acc.value()
        };
        let reference = build(&[0, 1, 2]);
        for order in [[1, 0, 2], [2, 1, 0], [0, 2, 1], [2, 0, 1], [1, 2, 0]] {
            assert_eq!(
                reference.to_bits(),
                build(&order).to_bits(),
                "order {order:?}: {reference:e} vs {:e}",
                build(&order)
            );
        }
        // And flat insertion in any order agrees too.
        let flat: Vec<f64> = shards.iter().flat_map(|s| s.iter().copied()).collect();
        let mut rev = ExactSum::new();
        flat.iter().rev().for_each(|&x| rev.add(x));
        assert_eq!(reference.to_bits(), rev.value().to_bits());
    }

    #[test]
    fn exact_sum_merge_is_permutation_insensitive() {
        let shards: [&[f64]; 3] = [
            &[0.1, 1e16, -0.3],
            &[2.5e-17, 7.25],
            &[-1e16, 0.30000000000000004],
        ];
        let build = |order: &[usize]| {
            let mut acc = ExactSum::new();
            for &i in order {
                let mut part = ExactSum::new();
                shards[i].iter().for_each(|&x| part.add(x));
                acc.merge(&part);
            }
            acc.value()
        };
        let a = build(&[0, 1, 2]);
        for order in [[1, 0, 2], [2, 1, 0], [0, 2, 1], [2, 0, 1], [1, 2, 0]] {
            assert_eq!(a.to_bits(), build(&order).to_bits());
        }
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.959964) - 0.975).abs() < 1e-5);
        assert!((normal_cdf(-1.959964) - 0.025).abs() < 1e-5);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999] {
            let x = normal_quantile(p);
            assert!(
                (normal_cdf(x) - p).abs() < 1e-6,
                "p={p} x={x} cdf={}",
                normal_cdf(x)
            );
        }
    }

    #[test]
    fn z_critical_95_is_1_96() {
        assert!((z_critical(0.95) - 1.959_964).abs() < 1e-4);
        assert!((z_critical(0.99) - 2.575_829).abs() < 1e-4);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_out_of_range() {
        normal_quantile(1.0);
    }
}
