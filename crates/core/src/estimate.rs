//! Point estimates with statistical quality measures (§6 "Evaluation
//! Metric").

use crate::stats::z_critical;
use serde::{Deserialize, Serialize};

/// An unbiased estimate `τ̂` of a durability query answer together with an
/// estimated variance and the cost spent producing it.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Estimate {
    /// The point estimate `τ̂`.
    pub tau: f64,
    /// Estimated variance of `τ̂` (not of one path label).
    pub variance: f64,
    /// Number of independent root paths simulated (`N_0`).
    pub n_roots: u64,
    /// Total invocations of the simulation procedure `g`.
    pub steps: u64,
    /// Number of target-level hits observed (`N_m`).
    pub hits: u64,
}

impl Estimate {
    /// Standard error `√Var(τ̂)`.
    pub fn std_err(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }

    /// Half-width of the normal-approximation confidence interval at the
    /// given confidence level: `z_{α/2} · √Var` (§6 metric (1)).
    pub fn ci_half_width(&self, confidence: f64) -> f64 {
        z_critical(confidence) * self.std_err()
    }

    /// The confidence interval `[τ̂ - h, τ̂ + h]`, clamped to `[0, 1]`.
    pub fn ci(&self, confidence: f64) -> (f64, f64) {
        let h = self.ci_half_width(confidence);
        ((self.tau - h).max(0.0), (self.tau + h).min(1.0))
    }

    /// Relative error `√Var / μ` (§6 metric (2)). `truth` is the reference
    /// probability; pass the estimate itself when the truth is unknown
    /// (the practical fallback the paper describes). Returns `+∞` when the
    /// reference is zero.
    pub fn relative_error(&self, truth: f64) -> f64 {
        if truth <= 0.0 {
            f64::INFINITY
        } else {
            self.std_err() / truth
        }
    }

    /// Relative error against the estimate itself.
    pub fn self_relative_error(&self) -> f64 {
        self.relative_error(self.tau)
    }

    /// Average number of `g` invocations per root path.
    pub fn cost_per_root(&self) -> f64 {
        if self.n_roots == 0 {
            0.0
        } else {
            self.steps as f64 / self.n_roots as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(tau: f64, var: f64) -> Estimate {
        Estimate {
            tau,
            variance: var,
            n_roots: 100,
            steps: 5000,
            hits: 10,
        }
    }

    #[test]
    fn ci_widths() {
        let e = est(0.5, 0.0001);
        let h = e.ci_half_width(0.95);
        assert!((h - 1.96 * 0.01).abs() < 1e-3);
        let (lo, hi) = e.ci(0.95);
        assert!(lo < 0.5 && hi > 0.5);
        assert!((hi - lo - 2.0 * h).abs() < 1e-12);
    }

    #[test]
    fn ci_clamped_to_unit_interval() {
        let e = est(0.001, 0.01);
        let (lo, hi) = e.ci(0.95);
        assert_eq!(lo, 0.0);
        assert!(hi <= 1.0);
    }

    #[test]
    fn relative_error_cases() {
        let e = est(0.01, 1e-6);
        assert!((e.relative_error(0.01) - 0.1).abs() < 1e-9);
        assert!(e.relative_error(0.0).is_infinite());
        assert!((e.self_relative_error() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn negative_variance_guard() {
        // Tiny negative variance from floating-point cancellation must not
        // produce NaN standard errors.
        let e = est(0.5, -1e-18);
        assert_eq!(e.std_err(), 0.0);
    }

    #[test]
    fn cost_per_root() {
        let e = est(0.5, 0.0);
        assert!((e.cost_per_root() - 50.0).abs() < 1e-12);
        let z = Estimate { n_roots: 0, ..e };
        assert_eq!(z.cost_per_root(), 0.0);
    }
}
