//! Cross-query **shard store**: completed (and paused) estimator shards,
//! kept so later queries over the same problem can reuse the simulation
//! work instead of re-running it from scratch.
//!
//! PR 2 made every estimator's [`Ledger`] shard bit-exactly mergeable,
//! and the plan cache gave every query a model **fingerprint** covering
//! everything its samples depend on (model parameters, threshold β,
//! horizon). Together those make a finished shard a *reusable
//! sub-result*: a query over the same fingerprint, method, and level
//! plan can
//!
//! * **serve** straight from the store when the stored shard already
//!   meets its relative-error target (zero simulation), or
//! * **warm-start** from the stored shard plus its RNG position through
//!   the existing `run_sequential_*_from` resume machinery, paying only
//!   the marginal roots between the stored RE and the target.
//!
//! [`crate::planner`] makes that choice with a cost model; this module is
//! the storage: a capacity-capped LRU map from [`ShardKey`] to
//! [`StoredShard`] (type-erased shard + RNG provenance + achieved
//! estimate), with the hit/miss/evict counter surface shared with the
//! plan cache ([`CacheCounters`]).
//!
//! ## Keying and seed discipline
//!
//! The key is `(fingerprint, method, plan digest)` — two queries agree
//! on all three exactly when their samples are drawn from the same
//! distribution *and* the shard statistics have the same shape (an
//! s-MLSS shard over a different level plan is a different type of
//! result even for the same model). Reuse across different RNG seeds is
//! statistically sound (independent samples merge into a valid pooled
//! estimate), so unpinned queries may reuse any entry. A query that
//! **pins** a seed is asking for reproducibility, so
//! [`ShardStore::lookup`] only answers it with an entry that (a) was
//! produced from the same pinned seed and (b) is flagged
//! [`StoredShard::bit_exact`] — deposited by the sequential target-mode
//! driver, whose check cadence a warm-started continuation replays
//! exactly. Scheduler deposits are *not* bit-exact (slice boundaries
//! stop at different root counts) and never answer pinned lookups.
//! [`crate::planner`] layers a further pinned rule on top of this
//! filter: the consuming query's target must be at least as tight as
//! the entry's producing target ([`StoredShard::target_re`]), and only
//! execution paths that replay the sequential cadence may reuse at all.

use crate::estimate::Estimate;
use crate::estimator::{Diagnostics, Ledger};
use crate::levels::PartitionPlan;
use crate::plan_cache::{CacheCounters, Fingerprint};
use crate::rng::SimRng;
use std::any::Any;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Callback invoked with every *accepted* deposit — the durability layer
/// journals deposits through this. Discarded deposits (shorter than the
/// resident entry, capacity 0) are not reported. The callback runs with
/// the store lock held and must not call back into the store.
pub type DepositObserver = Arc<dyn Fn(&ShardKey, &StoredShard) + Send + Sync>;

/// Identity of a reusable shard: model fingerprint × concrete estimator
/// name × level-plan digest.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardKey {
    /// The plan-cache model fingerprint (model name, sorted parameters,
    /// β, horizon — everything the sample distribution depends on).
    pub fingerprint: u64,
    /// Concrete estimator name (`"srs"`, `"smlss"`, `"gmlss"`, `"is"`) —
    /// the *resolved* method, so an `auto` query lands on the same key
    /// as the explicit spelling it resolved to.
    pub method: String,
    /// FNV-1a digest of the level plan's interior boundary bit patterns
    /// (0 for planless methods): shards over different partitions never
    /// alias.
    pub plan_digest: u64,
}

/// Build a [`ShardKey`] for a resolved method over a fingerprinted model.
pub fn shard_key(fingerprint: u64, method: &str, plan: Option<&PartitionPlan>) -> ShardKey {
    let plan_digest = match plan {
        None => 0,
        Some(p) => {
            let mut fp = Fingerprint::new();
            for &b in p.interior() {
                fp = fp.f64(b);
            }
            fp.finish()
        }
    };
    ShardKey {
        fingerprint,
        method: method.to_string(),
        plan_digest,
    }
}

/// Object-safe view of a stored [`Ledger`] shard: clonable and
/// downcastable back to its concrete type by a reader that knows it
/// (the method name in the key pins that type).
pub trait ShardSnapshot: Send {
    /// Deep-copy the snapshot (shards are plain data).
    fn clone_snapshot(&self) -> Box<dyn ShardSnapshot>;
    /// Downcasting escape hatch.
    fn as_any(&self) -> &dyn Any;
    /// Root paths accumulated. (Named to avoid shadowing
    /// [`Ledger::n_roots`] on concrete shards via the blanket impl.)
    fn snapshot_n_roots(&self) -> u64;
    /// `g` invocations accumulated.
    fn snapshot_steps(&self) -> u64;
}

impl<T> ShardSnapshot for T
where
    T: Ledger + Clone + 'static,
{
    fn clone_snapshot(&self) -> Box<dyn ShardSnapshot> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn snapshot_n_roots(&self) -> u64 {
        Ledger::n_roots(self)
    }

    fn snapshot_steps(&self) -> u64 {
        Ledger::steps(self)
    }
}

/// One reusable checkpoint: the merged shard, the RNG position that
/// continues it, and the estimate it achieved.
pub struct StoredShard {
    shard: Box<dyn ShardSnapshot>,
    /// RNG stream position *at the shard's last chunk boundary* — before
    /// any final estimate evaluation consumed draws — so a warm start
    /// continues the exact stream a longer cold run would have used.
    pub rng: SimRng,
    /// The estimate the shard achieved when deposited (its
    /// [`Estimate::self_relative_error`] is the stored RE the planner
    /// costs against).
    pub estimate: Estimate,
    /// The pinned seed the producing query ran under (`None` when the
    /// seed came from the session stream).
    pub seed: Option<u64>,
    /// The RE target the producing run stopped against (`NaN` when
    /// unknown — e.g. a budget-mode scheduler snapshot). Pinned-seed
    /// reuse requires the consuming query's target to be at least as
    /// tight as this (see [`crate::planner`]): a storeless cold run at a
    /// *looser* target stops at an earlier quality check than this
    /// checkpoint, so serving it would change pinned bits.
    pub target_re: f64,
    /// Was this deposited by the sequential target-mode driver, whose
    /// quality-check cadence a warm-started continuation replays
    /// bit-exactly? Required for answering pinned-seed lookups.
    pub bit_exact: bool,
}

impl Clone for StoredShard {
    fn clone(&self) -> Self {
        Self {
            shard: self.shard.clone_snapshot(),
            rng: self.rng.clone(),
            estimate: self.estimate,
            seed: self.seed,
            target_re: self.target_re,
            bit_exact: self.bit_exact,
        }
    }
}

impl std::fmt::Debug for StoredShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoredShard")
            .field("estimate", &self.estimate)
            .field("seed", &self.seed)
            .field("target_re", &self.target_re)
            .field("bit_exact", &self.bit_exact)
            .finish_non_exhaustive()
    }
}

/// Cheap, copyable summary of a [`StoredShard`] — everything the reuse
/// planner's decision depends on, none of the shard payload. Obtainable
/// without counter traffic or an LRU touch via
/// [`ShardStore::peek_meta`], which is what makes a non-mutating
/// `EXPLAIN` preview possible.
#[derive(Debug, Clone, Copy)]
pub struct StoredMeta {
    /// [`Estimate::self_relative_error`] of the stored estimate.
    pub stored_re: f64,
    /// Variance of the stored estimate.
    pub variance: f64,
    /// Root paths behind the stored estimate.
    pub n_roots: u64,
    /// The producing query's pinned seed, if any.
    pub seed: Option<u64>,
    /// The producing run's RE target (`NaN` when unknown).
    pub target_re: f64,
    /// Sequential target-mode provenance (see [`StoredShard::bit_exact`]).
    pub bit_exact: bool,
}

impl StoredMeta {
    /// May this entry answer a query with the given pinned seed? Pinned
    /// lookups only match bit-exact entries produced under the same
    /// seed; unpinned lookups match anything (see the module docs).
    pub fn answers(&self, pinned_seed: Option<u64>) -> bool {
        match pinned_seed {
            None => true,
            Some(seed) => self.bit_exact && self.seed == Some(seed),
        }
    }
}

impl StoredShard {
    /// Package a shard checkpoint for deposit. `target_re` is the RE
    /// target the producing run stopped against (`NaN` when unknown).
    pub fn new<S>(
        shard: &S,
        rng: SimRng,
        estimate: Estimate,
        seed: Option<u64>,
        target_re: f64,
        bit_exact: bool,
    ) -> Self
    where
        S: Ledger + Clone + 'static,
    {
        Self {
            shard: Box::new(shard.clone()),
            rng,
            estimate,
            seed,
            target_re,
            bit_exact,
        }
    }

    /// The planner-facing summary of this checkpoint.
    pub fn meta(&self) -> StoredMeta {
        StoredMeta {
            stored_re: self.achieved_re(),
            variance: self.estimate.variance,
            n_roots: self.estimate.n_roots,
            seed: self.seed,
            target_re: self.target_re,
            bit_exact: self.bit_exact,
        }
    }

    /// The stored shard as its concrete type (`None` on a type mismatch,
    /// which a correct [`ShardKey`] makes unreachable).
    pub fn shard_as<S: 'static>(&self) -> Option<&S> {
        self.shard.as_any().downcast_ref::<S>()
    }

    /// The relative error the stored shard achieved.
    pub fn achieved_re(&self) -> f64 {
        self.estimate.self_relative_error()
    }

    /// Root paths in the stored shard.
    pub fn n_roots(&self) -> u64 {
        self.shard.snapshot_n_roots()
    }

    /// `g` invocations in the stored shard.
    pub fn steps(&self) -> u64 {
        self.shard.snapshot_steps()
    }
}

struct Slot {
    entry: StoredShard,
    last_used: u64,
}

struct Inner {
    map: BTreeMap<ShardKey, Slot>,
    /// Monotonic LRU clock: bumped on every lookup hit and deposit.
    tick: u64,
}

/// A capacity-capped, LRU-evicting map from [`ShardKey`] to the best
/// [`StoredShard`] seen for that key. Thread-safe; counters follow the
/// [`CacheCounters`] shape shared with the plan cache.
pub struct ShardStore {
    inner: Mutex<Inner>,
    capacity: usize,
    counters: CacheCounters,
    observer: Mutex<Option<DepositObserver>>,
}

impl std::fmt::Debug for ShardStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardStore")
            .field("capacity", &self.capacity)
            .field("entries", &self.len())
            .finish_non_exhaustive()
    }
}

impl ShardStore {
    /// An empty store holding at most `capacity` entries (0 stores
    /// nothing — every deposit is dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: BTreeMap::new(),
                tick: 0,
            }),
            capacity,
            counters: CacheCounters::new(),
            observer: Mutex::new(None),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Install the [`DepositObserver`] (replacing any previous one).
    pub fn set_observer(&self, obs: DepositObserver) {
        *self.observer.lock().unwrap_or_else(PoisonError::into_inner) = Some(obs);
    }

    fn observer(&self) -> Option<DepositObserver> {
        self.observer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Snapshot every resident entry (deep-copied under the lock) —
    /// the compaction walk.
    pub fn entries(&self) -> Vec<(ShardKey, StoredShard)> {
        self.lock()
            .map
            .iter()
            .map(|(k, s)| (k.clone(), s.entry.clone()))
            .collect()
    }

    /// Deposit a checkpoint, keeping per key whichever entry has the
    /// most accumulated steps (a longer shard answers strictly more
    /// targets). Evicts the least-recently-used key when over capacity.
    /// Returns whether the incoming entry was stored — `false` when the
    /// store is disabled (capacity 0) or the entry was discarded for
    /// holding fewer steps than the resident one.
    pub fn deposit(&self, key: ShardKey, entry: StoredShard) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let observer = self.observer();
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(slot) = inner.map.get_mut(&key) {
            // Replace only with at least as much work; on a tie prefer
            // the newer entry (fresher RNG provenance).
            if entry.steps() < slot.entry.steps() {
                return false;
            }
            if let Some(obs) = &observer {
                obs(&key, &entry);
            }
            slot.entry = entry;
            slot.last_used = tick;
            return true;
        }
        if let Some(obs) = &observer {
            obs(&key, &entry);
        }
        inner.map.insert(
            key,
            Slot {
                entry,
                last_used: tick,
            },
        );
        let mut evicted = 0u64;
        while inner.map.len() > self.capacity {
            let lru = inner
                .map
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty map over capacity");
            inner.map.remove(&lru);
            evicted += 1;
        }
        drop(inner);
        self.counters.evicted(evicted);
        true
    }

    /// Look up a reusable shard for `key`. `pinned_seed` is the query's
    /// explicit seed, if any: pinned lookups only match bit-exact
    /// entries deposited under the same seed (see the module docs);
    /// unpinned lookups match any entry. Counts a hit or a miss.
    pub fn lookup(&self, key: &ShardKey, pinned_seed: Option<u64>) -> Option<StoredShard> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let found = match inner.map.get_mut(key) {
            Some(slot) => {
                if slot.entry.meta().answers(pinned_seed) {
                    slot.last_used = tick;
                    Some(slot.entry.clone())
                } else {
                    None
                }
            }
            None => None,
        };
        drop(inner);
        match &found {
            Some(_) => self.counters.hit(),
            None => self.counters.miss(),
        }
        found
    }

    /// Does the store hold an entry for `key` (no counter traffic, no
    /// LRU touch)?
    pub fn contains(&self, key: &ShardKey) -> bool {
        self.lock().map.contains_key(key)
    }

    /// Non-mutating preview of the entry stored for `key`: no hit/miss
    /// counters, no LRU touch, no shard clone. This is the read the
    /// `EXPLAIN` path uses ([`crate::planner::peek_reuse`]), so
    /// previewing a statement never perturbs `SHOW DIAGNOSTICS` or the
    /// eviction order.
    pub fn peek_meta(&self, key: &ShardKey) -> Option<StoredMeta> {
        self.lock().map.get(key).map(|slot| slot.entry.meta())
    }

    /// Lookups answered from the store.
    pub fn hits(&self) -> u64 {
        self.counters.hits()
    }

    /// Lookups the store could not answer.
    pub fn misses(&self) -> u64 {
        self.counters.misses()
    }

    /// Entries dropped under capacity pressure or by a clear.
    pub fn evictions(&self) -> u64 {
        self.counters.evictions()
    }

    /// The shared counter surface.
    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }

    /// Stored entries.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drop every entry, counting them as evictions.
    pub fn clear(&self) {
        let mut inner = self.lock();
        let dropped = inner.map.len() as u64;
        inner.map.clear();
        drop(inner);
        self.counters.evicted(dropped);
    }

    /// Store effectiveness as a [`Diagnostics`] block
    /// (`shard_store_hits`, `shard_store_misses`,
    /// `shard_store_evictions`, `shard_store_entries` — the shared
    /// [`CacheCounters`] shape).
    pub fn diagnostics(&self) -> Diagnostics {
        self.counters.diagnostics("shard_store", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use crate::srs::SrsShard;

    fn entry(steps: u64, seed: Option<u64>, bit_exact: bool) -> StoredShard {
        let shard = SrsShard {
            n: steps, // SRS: one step per root in this toy shape
            hits: steps / 2,
            steps,
        };
        StoredShard::new(
            &shard,
            rng_from_seed(9),
            Estimate {
                tau: 0.5,
                variance: 0.25 / steps.max(1) as f64,
                n_roots: steps,
                steps,
                hits: steps / 2,
            },
            seed,
            0.1,
            bit_exact,
        )
    }

    fn key(fp: u64) -> ShardKey {
        shard_key(fp, "srs", None)
    }

    #[test]
    fn deposit_then_lookup_roundtrips() {
        let store = ShardStore::new(4);
        assert!(store.deposit(key(1), entry(100, None, true)));
        let got = store.lookup(&key(1), None).expect("stored");
        assert_eq!(got.steps(), 100);
        assert_eq!(got.shard_as::<SrsShard>().unwrap().steps, 100);
        assert_eq!(store.hits(), 1);
        assert!(store.lookup(&key(2), None).is_none());
        assert_eq!(store.misses(), 1);
    }

    #[test]
    fn plan_digest_separates_keys() {
        let a = shard_key(
            1,
            "gmlss",
            Some(&PartitionPlan::new(vec![0.4, 0.7]).unwrap()),
        );
        let b = shard_key(
            1,
            "gmlss",
            Some(&PartitionPlan::new(vec![0.4, 0.8]).unwrap()),
        );
        let c = shard_key(
            1,
            "smlss",
            Some(&PartitionPlan::new(vec![0.4, 0.7]).unwrap()),
        );
        assert_ne!(a, b, "different boundaries differ");
        assert_ne!(a, c, "different methods differ");
        assert_eq!(
            a,
            shard_key(
                1,
                "gmlss",
                Some(&PartitionPlan::new(vec![0.4, 0.7]).unwrap())
            )
        );
        assert_eq!(shard_key(1, "srs", None).plan_digest, 0);
    }

    #[test]
    fn replace_keeps_the_longer_shard() {
        let store = ShardStore::new(4);
        assert!(store.deposit(key(1), entry(200, None, true)));
        // Shorter: discarded, and the discard is reported.
        assert!(!store.deposit(key(1), entry(100, None, true)));
        assert_eq!(store.lookup(&key(1), None).unwrap().steps(), 200);
        // Longer: replaces.
        assert!(store.deposit(key(1), entry(300, None, true)));
        assert_eq!(store.lookup(&key(1), None).unwrap().steps(), 300);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn peek_meta_is_non_mutating() {
        let store = ShardStore::new(2);
        store.deposit(key(1), entry(100, Some(7), true));
        store.deposit(key(2), entry(100, None, false));
        let meta = store.peek_meta(&key(1)).expect("stored");
        assert_eq!(meta.n_roots, 100);
        assert_eq!(meta.seed, Some(7));
        assert!(meta.bit_exact);
        assert!(meta.answers(Some(7)) && meta.answers(None));
        assert!(!meta.answers(Some(8)));
        assert!(store.peek_meta(&key(9)).is_none());
        // No counter traffic from any of the peeks…
        assert_eq!((store.hits(), store.misses()), (0, 0));
        // …and no LRU touch: key 1's peek above must not have saved it
        // from eviction when key 3 arrives (key 2 was deposited later).
        store.deposit(key(3), entry(100, None, true));
        assert!(!store.contains(&key(1)), "peek must not refresh LRU");
        assert!(store.contains(&key(2)));
    }

    #[test]
    fn lru_eviction_under_capacity_pressure() {
        let store = ShardStore::new(2);
        store.deposit(key(1), entry(10, None, true));
        store.deposit(key(2), entry(10, None, true));
        // Touch key 1 so key 2 becomes the LRU.
        store.lookup(&key(1), None);
        store.deposit(key(3), entry(10, None, true));
        assert_eq!(store.len(), 2);
        assert_eq!(store.evictions(), 1);
        assert!(store.contains(&key(1)), "recently used survives");
        assert!(!store.contains(&key(2)), "LRU evicted");
        assert!(store.contains(&key(3)));
    }

    #[test]
    fn pinned_lookups_require_bit_exact_same_seed() {
        let store = ShardStore::new(4);
        store.deposit(key(1), entry(100, Some(7), true));
        store.deposit(key(2), entry(100, Some(7), false)); // scheduler deposit
        store.deposit(key(3), entry(100, None, true)); // unpinned producer
        assert!(store.lookup(&key(1), Some(7)).is_some());
        assert!(store.lookup(&key(1), Some(8)).is_none(), "other seed");
        assert!(store.lookup(&key(2), Some(7)).is_none(), "not bit-exact");
        assert!(store.lookup(&key(3), Some(7)).is_none(), "unpinned entry");
        // All three answer unpinned queries.
        for fp in 1..=3 {
            assert!(store.lookup(&key(fp), None).is_some());
        }
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let store = ShardStore::new(0);
        assert!(!store.deposit(key(1), entry(10, None, true)));
        assert!(store.is_empty());
    }

    #[test]
    fn diagnostics_use_the_shared_counter_shape() {
        let store = ShardStore::new(2);
        store.deposit(key(1), entry(10, None, true));
        store.lookup(&key(1), None);
        store.lookup(&key(9), None);
        store.clear();
        let d = store.diagnostics();
        assert_eq!(d.estimator, "shard_store");
        let get = |k: &str| {
            d.details
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("shard_store_hits"), 1.0);
        assert_eq!(get("shard_store_misses"), 1.0);
        assert_eq!(get("shard_store_evictions"), 1.0);
        assert_eq!(get("shard_store_entries"), 0.0);
    }
}
