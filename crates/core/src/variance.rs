//! Closed-form variance results from the paper (§3.1, §4.2, §5.1).

/// Variance of the s-MLSS estimator under *balanced growth* (Eq. 13):
/// with `m` levels, equal advancement probability `p = τ^{1/m}`, and `N_0`
/// root paths,
/// `Var(τ̂) = m (1 − p) p^{2m−1} / N_0`.
///
/// Used by the optimizer as a theoretical yardstick and by tests.
pub fn balanced_growth_variance(tau: f64, m: usize, n0: u64) -> f64 {
    assert!((0.0..=1.0).contains(&tau), "τ must be a probability");
    assert!(m >= 1);
    assert!(n0 >= 1);
    if tau == 0.0 || tau == 1.0 {
        return 0.0;
    }
    let p = tau.powf(1.0 / m as f64);
    m as f64 * (1.0 - p) * p.powi(2 * m as i32 - 1) / n0 as f64
}

/// The paper's two-level level-skipping variance (Eq. 11):
///
/// ```text
/// Var(τ̂) = p²₁₂ · p₀₁(1−p₀₁)/N₀  +  p₀₁ · Var(N₂⟨1⟩)/(N₀ r²)
///          + p₀₂(1−p₀₂)/N₀
/// ```
///
/// where `p01` is the probability a root lands in `L_1`, `p12` the
/// probability a split offspring then reaches the target, `p02` the
/// probability of skipping straight from `L_0` to the target,
/// `var_n2_root` the variance of target hits from one split's offsprings,
/// and `r` the splitting ratio.
#[allow(clippy::too_many_arguments)]
pub fn two_level_skip_variance(
    p01: f64,
    p12: f64,
    p02: f64,
    var_n2_root: f64,
    n0: u64,
    r: u32,
) -> f64 {
    assert!(n0 >= 1);
    assert!(r >= 1);
    let n0 = n0 as f64;
    let r = r as f64;
    p12 * p12 * p01 * (1.0 - p01) / n0 + p01 * var_n2_root / (n0 * r * r) + p02 * (1.0 - p02) / n0
}

/// SRS estimator variance `τ(1−τ)/n` for reference.
pub fn srs_variance(tau: f64, n: u64) -> f64 {
    assert!(n >= 1);
    tau * (1.0 - tau) / n as f64
}

/// Expected number of `g` invocations SRS needs to reach a target relative
/// error `re` on a query with answer `τ` and average path cost `c` —
/// the `n ≈ (1−τ)/(τ · re²)` rule that makes SRS explode as `τ → 0`
/// (§1, §2.2).
pub fn srs_cost_for_relative_error(tau: f64, re: f64, cost_per_path: f64) -> f64 {
    assert!(tau > 0.0 && tau < 1.0);
    assert!(re > 0.0);
    (1.0 - tau) / (tau * re * re) * cost_per_path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_growth_decreases_with_levels() {
        let tau = 1e-4;
        let v1 = balanced_growth_variance(tau, 1, 1000);
        let v3 = balanced_growth_variance(tau, 3, 1000);
        let v6 = balanced_growth_variance(tau, 6, 1000);
        assert!(v1 > v3 && v3 > v6, "{v1} {v3} {v6}");
    }

    #[test]
    fn balanced_growth_m1_is_srs() {
        // One level: p = τ, Var = (1−τ)τ/N₀ — the SRS variance.
        let tau = 0.02;
        let v = balanced_growth_variance(tau, 1, 500);
        assert!((v - srs_variance(tau, 500)).abs() < 1e-15);
    }

    #[test]
    fn balanced_growth_edge_probabilities() {
        assert_eq!(balanced_growth_variance(0.0, 3, 10), 0.0);
        assert_eq!(balanced_growth_variance(1.0, 3, 10), 0.0);
    }

    #[test]
    fn two_level_degenerates_without_skipping() {
        // p02 = 0 and p01 = 1 reduces Eq. 11 to Var(N₂⟨1⟩)/(N₀ r²) — the
        // no-skip form of Eq. 5 with m = 2.
        let v = two_level_skip_variance(1.0, 0.3, 0.0, 0.7, 100, 3);
        assert!((v - 0.7 / (100.0 * 9.0)).abs() < 1e-15);
    }

    #[test]
    fn two_level_pure_skip_is_binomial() {
        // p01 = 0: only skip paths contribute, a Bernoulli(p02) per root.
        let v = two_level_skip_variance(0.0, 0.0, 0.2, 0.0, 50, 3);
        assert!((v - 0.2 * 0.8 / 50.0).abs() < 1e-15);
    }

    #[test]
    fn srs_cost_blows_up_for_rare_events() {
        let c_common = srs_cost_for_relative_error(0.1, 0.1, 500.0);
        let c_rare = srs_cost_for_relative_error(1e-4, 0.1, 500.0);
        assert!(c_rare / c_common > 500.0);
    }
}
