//! The simulation-model abstraction — the paper's step-wise procedure `g`.
//!
//! §2.1 formalizes a discrete-time stochastic process `{X_t}` driven by a
//! procedure `g(x_{<t}, t)` that produces the next state from the history.
//! We encode history-dependence *inside* the state type: an AR(m) model
//! stores its last `m` values in its state, an RNN stores its hidden and
//! cell vectors, and so on. This keeps the sampler interface
//! Markov-in-state while supporting the full generality of the paper
//! (any `g`, including black boxes).
//!
//! ## Batched stepping
//!
//! [`SimulationModel::step_batch`] advances a whole *cohort* of
//! independent paths per call — the hot-path contract behind the batched
//! estimator frontier (see `docs/kernel.md`). The provided default is the
//! **scalar→batch adapter**: it loops the scalar `step` over the alive
//! lanes, so every existing model works unchanged. Models with profitable
//! batch structure (contiguous `f64` lanes, shared distribution setup, a
//! batched GEMM in the RNN case) override it with a native kernel.
//!
//! The contract native kernels must honor:
//!
//! * **lane isolation** — lane `i` reads and writes only `lanes[i]`,
//!   `ts[i]`, `rngs[i]`; lanes are independent root paths.
//! * **draw-identity** — lane `i` must consume exactly the random draws
//!   the scalar `step(lanes[i], ts[i], rngs[i])` would, in the same
//!   order, so batched and scalar execution are bit-identical per lane
//!   (lanes may be processed in any order: each has its own RNG).
//! * **mask semantics** — lanes not listed in `alive` must not be
//!   touched at all (their state may belong to a retired path).
//!
//! Kernels on the vectorized draw pipeline ([`crate::simd`]) satisfy
//! draw-identity *by construction*: lane RNG blocks are computed
//! multi-stream but word-for-word equal to scalar refills, and the
//! transcendental transforms are one shared `vmath` implementation whose
//! scalar and SIMD instantiations are bit-equal (the scalar `step` of
//! those models calls the same functions). `tests/draw_identity.rs` pins
//! all of this at widths {1, 3, 8, 64} under partial masks.

use crate::rng::SimRng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Discrete simulation time (the paper's `t ∈ T = {0, 1, 2, ...}`).
pub type Time = u64;

/// A step-wise simulation model: the paper's `g`.
///
/// Implementations must be `Sync` so samplers can run root paths on
/// multiple threads; models are immutable during sampling (all mutability
/// lives in the `State` values and the RNG).
pub trait SimulationModel: Sync {
    /// One state of the process. Clones must be cheap-ish: splitting
    /// duplicates entrance states `r` times.
    type State: Clone + Send;

    /// The initial state `x_0`.
    fn initial_state(&self) -> Self::State;

    /// Simulate one step: given the state at time `t - 1`, return the state
    /// at time `t`. `t` is the *target* time of the produced state, so the
    /// first invocation on a fresh path receives `t = 1`.
    fn step(&self, state: &Self::State, t: Time, rng: &mut SimRng) -> Self::State;

    /// Advance every alive lane one step in place:
    /// `lanes[i] ← g(lanes[i], ts[i])` drawing from `rngs[i]`, for each
    /// `i` in `alive`.
    ///
    /// The default is the scalar→batch adapter (a loop over `step`);
    /// override with a native kernel where batch structure pays — the
    /// override must be per-lane bit-identical to the scalar `step` (see
    /// the module docs for the full contract).
    fn step_batch(
        &self,
        lanes: &mut [Self::State],
        ts: &[Time],
        rngs: &mut [SimRng],
        alive: &[usize],
    ) {
        for &i in alive {
            lanes[i] = self.step(&lanes[i], ts[i], &mut rngs[i]);
        }
    }

    /// The model's cost shape, used by the `batch_width=auto` policy to
    /// pick a launch width (and the candidate set its micro-probe
    /// times). The default matches the default `step_batch`: the scalar
    /// adapter loop, where mid widths amortize dispatch but nothing
    /// vectorizes. Models on the vectorized draw pipeline declare
    /// [`crate::width::KernelClass::SimdHot`]; table-lookup models
    /// declare `Cheap`. Purely advisory — widths never change results.
    fn kernel_class(&self) -> crate::width::KernelClass {
        crate::width::KernelClass::Adapter
    }
}

/// Blanket implementation so `&M` is itself a model (lets samplers borrow).
impl<M: SimulationModel> SimulationModel for &M {
    type State = M::State;

    fn initial_state(&self) -> Self::State {
        (**self).initial_state()
    }

    fn step(&self, state: &Self::State, t: Time, rng: &mut SimRng) -> Self::State {
        (**self).step(state, t, rng)
    }

    fn step_batch(
        &self,
        lanes: &mut [Self::State],
        ts: &[Time],
        rngs: &mut [SimRng],
        alive: &[usize],
    ) {
        (**self).step_batch(lanes, ts, rngs, alive)
    }

    fn kernel_class(&self) -> crate::width::KernelClass {
        (**self).kernel_class()
    }
}

/// Forces the scalar→batch adapter: wraps a model and *hides* its native
/// `step_batch` override, so `step_batch` always loops the scalar `step`.
///
/// Two uses: benchmarking a native batch kernel against the adapter
/// (`kernel_bench`), and property-testing that a native kernel is
/// per-lane bit-identical to scalar stepping.
#[derive(Debug, Clone, Copy)]
pub struct ScalarAdapter<M>(pub M);

impl<M: SimulationModel> SimulationModel for ScalarAdapter<M> {
    type State = M::State;

    fn initial_state(&self) -> Self::State {
        self.0.initial_state()
    }

    fn step(&self, state: &Self::State, t: Time, rng: &mut SimRng) -> Self::State {
        self.0.step(state, t, rng)
    }

    // No step_batch override: the provided scalar loop is the point.
}

/// Wraps a model and meters invocations of `g` — the paper's cost unit
/// ("we measure the cost of the algorithm by the total number of
/// invocations of g").
///
/// The counter is a relaxed atomic so metered models stay `Sync` and can
/// be shared with the parallel driver; the count is exact because each
/// increment is independent. Batched stepping pays **one** atomic
/// `add(k)` per batch call — a batch of `k` alive lanes counts exactly
/// `k` invocations of `g`, with none of the per-step cache-line traffic
/// the scalar path incurs.
pub struct StepCounter<M> {
    inner: M,
    count: AtomicU64,
}

impl<M: SimulationModel> StepCounter<M> {
    /// Wrap `inner`, starting the counter at zero.
    pub fn new(inner: M) -> Self {
        Self {
            inner,
            count: AtomicU64::new(0),
        }
    }

    /// Number of `g` invocations so far.
    pub fn steps(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Reset the counter to zero.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
    }

    /// Access the wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Meter one invocation of `g` (used by trait impls in other modules,
    /// e.g. the tilted stepping of `crate::is`).
    pub(crate) fn count_one(&self) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Meter `k` invocations of `g` with one atomic add.
    pub(crate) fn count_many(&self, k: u64) {
        self.count.fetch_add(k, Ordering::Relaxed);
    }
}

impl<M: SimulationModel> SimulationModel for StepCounter<M> {
    type State = M::State;

    fn initial_state(&self) -> Self::State {
        self.inner.initial_state()
    }

    fn step(&self, state: &Self::State, t: Time, rng: &mut SimRng) -> Self::State {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.step(state, t, rng)
    }

    fn step_batch(
        &self,
        lanes: &mut [Self::State],
        ts: &[Time],
        rngs: &mut [SimRng],
        alive: &[usize],
    ) {
        // One atomic op per batch step, counting exactly the alive lanes;
        // forwards to the inner model so native kernels stay engaged.
        self.count.fetch_add(alive.len() as u64, Ordering::Relaxed);
        self.inner.step_batch(lanes, ts, rngs, alive);
    }
}

/// A recorded sample path: the sequence `x_0, x_1, ..., x_T` of one
/// simulation, plus its score trace. Returned by diagnostic utilities and
/// materialized into tables by `mlss-db`.
#[derive(Debug, Clone)]
pub struct SamplePath<S> {
    /// States, index `i` holding `x_i`.
    pub states: Vec<S>,
}

impl<S> SamplePath<S> {
    /// Length in time steps (number of transitions).
    pub fn len(&self) -> usize {
        self.states.len().saturating_sub(1)
    }

    /// True when the path holds only the initial state.
    pub fn is_empty(&self) -> bool {
        self.states.len() <= 1
    }

    /// Final state of the path.
    pub fn last(&self) -> Option<&S> {
        self.states.last()
    }
}

/// Simulate a full path of `horizon` steps from the initial state.
pub fn simulate_path<M: SimulationModel>(
    model: &M,
    horizon: Time,
    rng: &mut SimRng,
) -> SamplePath<M::State> {
    let mut states = Vec::with_capacity(horizon as usize + 1);
    let mut cur = model.initial_state();
    states.push(cur.clone());
    for t in 1..=horizon {
        cur = model.step(&cur, t, rng);
        states.push(cur.clone());
    }
    SamplePath { states }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use rand::RngExt;

    /// A deterministic counting model used across core tests.
    pub(crate) struct CountUp;

    impl SimulationModel for CountUp {
        type State = u64;

        fn initial_state(&self) -> u64 {
            0
        }

        fn step(&self, state: &u64, _t: Time, _rng: &mut SimRng) -> u64 {
            state + 1
        }
    }

    struct NoisyWalk;

    impl SimulationModel for NoisyWalk {
        type State = f64;

        fn initial_state(&self) -> f64 {
            0.0
        }

        fn step(&self, state: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            state + rng.random::<f64>() - 0.5
        }
    }

    #[test]
    fn step_counter_counts() {
        let m = StepCounter::new(CountUp);
        let mut rng = rng_from_seed(0);
        let p = simulate_path(&m, 10, &mut rng);
        assert_eq!(m.steps(), 10);
        assert_eq!(p.states.len(), 11);
        assert_eq!(*p.last().unwrap(), 10);
        m.reset();
        assert_eq!(m.steps(), 0);
    }

    #[test]
    fn simulate_path_is_reproducible() {
        let m = NoisyWalk;
        let a = simulate_path(&m, 50, &mut rng_from_seed(3));
        let b = simulate_path(&m, 50, &mut rng_from_seed(3));
        assert_eq!(a.states, b.states);
        let c = simulate_path(&m, 50, &mut rng_from_seed(4));
        assert_ne!(a.states, c.states);
    }

    #[test]
    fn empty_path_properties() {
        let m = CountUp;
        let p = simulate_path(&m, 0, &mut rng_from_seed(0));
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(*p.last().unwrap(), 0);
    }

    #[test]
    fn borrowed_model_is_a_model() {
        let m = CountUp;
        let r = &m;
        let p = simulate_path(&r, 3, &mut rng_from_seed(0));
        assert_eq!(*p.last().unwrap(), 3);
    }
}
