//! Simple Random Sampling — the standard Monte Carlo baseline (§2.2).
//!
//! SRS simulates `n` independent sample paths, labels each with whether it
//! satisfied the query condition by the horizon, and estimates
//! `τ̂ = Σ l(SP_i) / n` with variance `τ̂(1 − τ̂)/n`. It is also the
//! degenerate case of MLSS with splitting ratio `r = 1` (§3.1), which our
//! test suite checks.

use crate::estimate::Estimate;
use crate::estimator::{ChunkOutcome, Estimator, Ledger};
use crate::frontier::{run_frontier, FrontierMode, RootKernel, SegmentStatus};
use crate::model::{SimulationModel, Time};
use crate::quality::RunControl;
use crate::query::{Problem, ValueFunction};
use crate::rng::SimRng;

/// Simulate one SRS root path; returns `(hit, steps_spent)`.
pub(crate) fn simulate_root<M, V>(problem: &Problem<'_, M, V>, rng: &mut SimRng) -> (bool, u64)
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    let mut state = problem.model.initial_state();
    let mut steps = 0;
    for t in 1..=problem.horizon {
        state = problem.model.step(&state, t, rng);
        steps += 1;
        if problem.satisfied(&state) {
            return (true, steps);
        }
    }
    (false, steps)
}

/// Accumulated SRS counts — the sampler's [`Ledger`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SrsShard {
    /// Root paths simulated (`N_0`).
    pub n: u64,
    /// Query-satisfying paths.
    pub hits: u64,
    /// `g` invocations spent.
    pub steps: u64,
}

impl Ledger for SrsShard {
    fn merge(&mut self, other: Self) {
        self.n += other.n;
        self.hits += other.hits;
        self.steps += other.steps;
    }

    fn n_roots(&self) -> u64 {
        self.n
    }

    fn steps(&self) -> u64 {
        self.steps
    }
}

// Durability codec: three counters.
impl crate::persist::Persist for SrsShard {
    fn persist(&self, out: &mut Vec<u8>) {
        crate::persist::put_u64(out, self.n);
        crate::persist::put_u64(out, self.hits);
        crate::persist::put_u64(out, self.steps);
    }

    fn restore(r: &mut crate::persist::Reader<'_>) -> Result<Self, crate::persist::PersistError> {
        Ok(Self {
            n: r.u64()?,
            hits: r.u64()?,
            steps: r.u64()?,
        })
    }
}

/// Frontier kernel for SRS: one segment per root, retired on the first
/// query-satisfying state or at the horizon — the batched form of
/// [`simulate_root`].
pub(crate) struct SrsKernel;

/// Per-root scratch: did this root hit?
#[derive(Default)]
pub(crate) struct SrsScratch {
    hit: bool,
}

impl<M, V> RootKernel<M, V> for SrsKernel
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    type Scratch = SrsScratch;
    type Outcome = (bool, u64);
    type Shard = SrsShard;

    fn new_scratch(&self) -> SrsScratch {
        SrsScratch::default()
    }

    fn begin_root(
        &self,
        problem: &Problem<'_, M, V>,
        scratch: &mut SrsScratch,
    ) -> (M::State, Time) {
        scratch.hit = false;
        (problem.model.initial_state(), 0)
    }

    fn on_step(
        &self,
        problem: &Problem<'_, M, V>,
        scratch: &mut SrsScratch,
        state: &M::State,
        _t: Time,
    ) -> SegmentStatus {
        if problem.satisfied(state) {
            scratch.hit = true;
            SegmentStatus::SegmentDone
        } else {
            SegmentStatus::Running
        }
    }

    fn next_segment(&self, _scratch: &mut SrsScratch) -> Option<(M::State, Time)> {
        None
    }

    fn finish_root(&self, scratch: &mut SrsScratch, steps: u64) -> (bool, u64) {
        (scratch.hit, steps)
    }

    fn commit(&self, shard: &mut SrsShard, (hit, steps): (bool, u64)) {
        shard.n += 1;
        shard.steps += steps;
        shard.hits += hit as u64;
    }
}

/// The SRS strategy as a pluggable [`Estimator`] (it has no knobs).
#[derive(Debug, Clone, Copy, Default)]
pub struct SrsEstimator;

impl<M, V> Estimator<M, V> for SrsEstimator
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    type Shard = SrsShard;

    fn name(&self) -> &'static str {
        "srs"
    }

    fn shard(&self) -> SrsShard {
        SrsShard::default()
    }

    fn run_chunk(
        &self,
        problem: Problem<'_, M, V>,
        shard: &mut SrsShard,
        budget: u64,
        rng: &mut SimRng,
    ) -> ChunkOutcome {
        run_frontier(
            &SrsKernel,
            &problem,
            shard,
            budget,
            rng,
            FrontierMode::Shared,
        )
    }

    fn run_chunk_batched(
        &self,
        problem: Problem<'_, M, V>,
        shard: &mut SrsShard,
        budget: u64,
        rng: &mut SimRng,
        width: usize,
    ) -> ChunkOutcome {
        run_frontier(
            &SrsKernel,
            &problem,
            shard,
            budget,
            rng,
            FrontierMode::PerRoot(width),
        )
    }

    fn estimate(&self, shard: &SrsShard, _rng: &mut SimRng) -> Estimate {
        estimate_from_counts(shard.n, shard.hits, shard.steps)
    }
}

/// Result of one SRS run.
#[derive(Debug, Clone)]
pub struct SrsResult {
    /// Final estimate.
    pub estimate: Estimate,
    /// Wall-clock simulation time.
    pub elapsed: std::time::Duration,
}

/// The SRS sampler.
#[derive(Debug, Clone, Copy)]
pub struct SrsSampler {
    /// Stopping criterion.
    pub control: RunControl,
}

impl SrsSampler {
    /// Sampler with the given stopping criterion.
    pub fn new(control: RunControl) -> Self {
        Self { control }
    }

    /// Run to completion.
    pub fn run<M, V>(&self, problem: Problem<'_, M, V>, rng: &mut SimRng) -> SrsResult
    where
        M: SimulationModel,
        V: ValueFunction<M::State>,
    {
        self.run_observed(problem, rng, |_| {})
    }

    /// Run, invoking `observe` with the running estimate after every root
    /// path (used to trace convergence for Figure 8).
    pub fn run_observed<M, V>(
        &self,
        problem: Problem<'_, M, V>,
        rng: &mut SimRng,
        mut observe: impl FnMut(&Estimate),
    ) -> SrsResult
    where
        M: SimulationModel,
        V: ValueFunction<M::State>,
    {
        let start = std::time::Instant::now();
        let mut shard = SrsShard::default();
        let mut since_check: u64 = 0;

        loop {
            let est = estimate_from_counts(shard.n, shard.hits, shard.steps);
            if shard.n > 0 {
                observe(&est);
            }
            if !self.control.should_continue(&est, &mut since_check) {
                break;
            }

            let (hit, steps) = simulate_root(&problem, rng);
            shard.n += 1;
            shard.steps += steps;
            shard.hits += hit as u64;
            since_check += 1;
        }

        SrsResult {
            estimate: estimate_from_counts(shard.n, shard.hits, shard.steps),
            elapsed: start.elapsed(),
        }
    }
}

/// Build the SRS estimate from counts: `τ̂ = hits/n`,
/// `Var(τ̂) = τ̂(1 − τ̂)/n`.
pub fn estimate_from_counts(n: u64, hits: u64, steps: u64) -> Estimate {
    let (tau, variance) = if n == 0 {
        (0.0, f64::INFINITY)
    } else {
        let tau = hits as f64 / n as f64;
        (tau, tau * (1.0 - tau) / n as f64)
    };
    Estimate {
        tau,
        variance,
        n_roots: n,
        steps,
        hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Time;
    use crate::query::RatioValue;
    use crate::rng::rng_from_seed;
    use rand::RngExt;

    /// Bernoulli "process": jumps straight to the target with probability
    /// `p` on the first step, else stays at 0 forever.
    pub(crate) struct Jump {
        pub p: f64,
    }

    impl SimulationModel for Jump {
        type State = f64;

        fn initial_state(&self) -> f64 {
            0.0
        }

        fn step(&self, state: &f64, t: Time, rng: &mut SimRng) -> f64 {
            if t == 1 && rng.random::<f64>() < self.p {
                1.0
            } else {
                *state
            }
        }
    }

    #[test]
    fn srs_estimates_bernoulli() {
        let model = Jump { p: 0.3 };
        let vf = RatioValue::new(|s: &f64| *s, 1.0);
        let problem = Problem::new(&model, &vf, 5);
        let sampler = SrsSampler::new(RunControl::budget(100_000));
        let res = sampler.run(problem, &mut rng_from_seed(11));
        let est = res.estimate;
        assert!(
            (est.tau - 0.3).abs() < 0.02,
            "tau = {} should be near 0.3",
            est.tau
        );
        // Variance formula sanity: p(1-p)/n.
        let expect_var = est.tau * (1.0 - est.tau) / est.n_roots as f64;
        assert!((est.variance - expect_var).abs() < 1e-15);
    }

    #[test]
    fn srs_budget_respected() {
        let model = Jump { p: 0.0 };
        let vf = RatioValue::new(|s: &f64| *s, 1.0);
        let problem = Problem::new(&model, &vf, 10);
        let sampler = SrsSampler::new(RunControl::budget(1000));
        let res = sampler.run(problem, &mut rng_from_seed(1));
        // Never-hitting paths cost exactly `horizon` steps each; the run
        // stops at the first completion at or beyond the budget.
        assert!(res.estimate.steps >= 1000);
        assert!(res.estimate.steps < 1000 + 10);
        assert_eq!(res.estimate.hits, 0);
        assert_eq!(res.estimate.tau, 0.0);
    }

    #[test]
    fn srs_stops_early_on_hit() {
        let model = Jump { p: 1.0 };
        let vf = RatioValue::new(|s: &f64| *s, 1.0);
        let problem = Problem::new(&model, &vf, 100);
        let sampler = SrsSampler::new(RunControl::budget(10));
        let res = sampler.run(problem, &mut rng_from_seed(1));
        // Every path hits at t=1, so each costs 1 step.
        assert_eq!(res.estimate.steps, res.estimate.n_roots);
        assert_eq!(res.estimate.tau, 1.0);
    }

    #[test]
    fn srs_quality_target_mode() {
        let model = Jump { p: 0.5 };
        let vf = RatioValue::new(|s: &f64| *s, 1.0);
        let problem = Problem::new(&model, &vf, 3);
        let sampler = SrsSampler::new(RunControl::Target {
            target: crate::quality::QualityTarget::RelativeError {
                target: 0.10,
                reference: None,
            },
            check_every: 64,
            max_steps: 10_000_000,
        });
        let res = sampler.run(problem, &mut rng_from_seed(5));
        assert!(res.estimate.self_relative_error() <= 0.10);
        // RE 10% on p=0.5 needs around (1-p)/p / 0.01 = 100 roots.
        assert!(res.estimate.n_roots >= 64);
    }

    #[test]
    fn observer_sees_monotone_steps() {
        let model = Jump { p: 0.2 };
        let vf = RatioValue::new(|s: &f64| *s, 1.0);
        let problem = Problem::new(&model, &vf, 4);
        let sampler = SrsSampler::new(RunControl::budget(500));
        let mut last = 0;
        let mut calls = 0;
        sampler.run_observed(problem, &mut rng_from_seed(2), |e| {
            assert!(e.steps >= last);
            last = e.steps;
            calls += 1;
        });
        assert!(calls > 0);
    }

    #[test]
    fn zero_root_estimate_is_safe() {
        let e = estimate_from_counts(0, 0, 0);
        assert_eq!(e.tau, 0.0);
        assert!(e.variance.is_infinite());
    }

    #[test]
    fn sampler_and_estimator_trait_agree_exactly() {
        // The sampler's scalar `simulate_root` loop and the frontier's
        // `SrsKernel` are two implementations of the same root program:
        // pin them bit-exactly so they cannot drift apart.
        let model = Jump { p: 0.2 };
        let vf = RatioValue::new(|s: &f64| *s, 1.0);
        let problem = Problem::new(&model, &vf, 6);
        let sampler = SrsSampler::new(RunControl::budget(20_000));
        let res = sampler.run(problem, &mut rng_from_seed(13));

        let mut rng = rng_from_seed(13);
        let mut shard = SrsShard::default();
        SrsEstimator.run_chunk(problem, &mut shard, 20_000, &mut rng);
        assert_eq!(shard.steps, res.estimate.steps);
        assert_eq!(shard.n, res.estimate.n_roots);
        assert_eq!(shard.hits, res.estimate.hits);
    }
}
