//! Split-tree tracing — the anatomy of one MLSS root path (Figure 1).
//!
//! [`trace_root_tree`] replays the g-MLSS splitting procedure on a single
//! root path while recording every segment: its parent, level, time span,
//! value trace, and outcome. Examples and `mlss-db` materialize these
//! traces so users can inspect the "possible worlds" behind an estimate —
//! the interpretability by-product §2.2 argues for.

use crate::levels::PartitionPlan;
use crate::model::{SimulationModel, Time};
use crate::query::{Problem, ValueFunction};
use crate::rng::SimRng;

/// Why a traced segment stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentOutcome {
    /// Landed in a higher level and split into offsprings.
    Split,
    /// Reached the target level (query satisfied).
    Hit,
    /// Ran to the horizon without advancing.
    Horizon,
}

/// One traced path segment.
#[derive(Debug, Clone)]
pub struct TracedSegment {
    /// Index of the parent segment, `None` for the root.
    pub parent: Option<usize>,
    /// Level of the split that spawned this segment (0 for the root).
    pub level: usize,
    /// Time at which the segment started.
    pub start: Time,
    /// `(t, f(x_t))` points along the segment, starting after `start`.
    pub points: Vec<(Time, f64)>,
    /// How the segment ended.
    pub outcome: SegmentOutcome,
}

/// A traced split tree of one root path.
#[derive(Debug, Clone)]
pub struct SplitTree {
    /// All segments in creation order; index 0 is the root.
    pub segments: Vec<TracedSegment>,
    /// Number of target hits in the tree.
    pub hits: u64,
    /// Total `g` invocations spent.
    pub steps: u64,
}

impl SplitTree {
    /// Depth of the tree in split generations.
    pub fn depth(&self) -> usize {
        self.segments.iter().map(|s| s.level).max().unwrap_or(0)
    }

    /// Render an indented text sketch of the tree (used by the
    /// `split_tree` example and the `fig1_tree` binary).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(0, 0, &mut out);
        out
    }

    fn render_node(&self, idx: usize, indent: usize, out: &mut String) {
        let seg = &self.segments[idx];
        let end = seg.points.last().map(|p| p.0).unwrap_or(seg.start);
        let peak = seg
            .points
            .iter()
            .map(|p| p.1)
            .fold(f64::NEG_INFINITY, f64::max);
        out.push_str(&"  ".repeat(indent));
        out.push_str(&format!(
            "L{} [t{}..t{}] peak f={:.3} → {:?}\n",
            seg.level,
            seg.start,
            end,
            if peak.is_finite() { peak } else { 0.0 },
            seg.outcome
        ));
        for (i, s) in self.segments.iter().enumerate() {
            if s.parent == Some(idx) {
                self.render_node(i, indent + 1, out);
            }
        }
    }
}

/// Trace the full splitting tree of one root path under `plan`/`ratio`.
pub fn trace_root_tree<M, V>(
    problem: Problem<'_, M, V>,
    plan: &PartitionPlan,
    ratio: u32,
    rng: &mut SimRng,
) -> SplitTree
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    let m = plan.num_levels();
    let mut segments: Vec<TracedSegment> = Vec::new();
    let mut hits = 0u64;
    let mut steps = 0u64;

    struct Work<S> {
        state: S,
        t: Time,
        crossed_max: usize,
        parent: Option<usize>,
        level: usize,
    }

    let init = problem.model.initial_state();
    let init_level = plan.level_of(problem.value(&init)).min(m - 1);
    let mut stack = vec![Work {
        state: init,
        t: 0,
        crossed_max: init_level,
        parent: None,
        level: init_level,
    }];

    while let Some(w) = stack.pop() {
        let seg_idx = segments.len();
        segments.push(TracedSegment {
            parent: w.parent,
            level: w.level,
            start: w.t,
            points: Vec::new(),
            outcome: SegmentOutcome::Horizon,
        });

        let mut state = w.state;
        for t in (w.t + 1)..=problem.horizon {
            state = problem.model.step(&state, t, rng);
            steps += 1;
            let f = problem.value(&state);
            segments[seg_idx].points.push((t, f));
            let lvl = plan.level_of(f);
            if lvl <= w.crossed_max {
                continue;
            }
            if lvl == m {
                segments[seg_idx].outcome = SegmentOutcome::Hit;
                hits += 1;
            } else {
                segments[seg_idx].outcome = SegmentOutcome::Split;
                for _ in 0..ratio {
                    stack.push(Work {
                        state: state.clone(),
                        t,
                        crossed_max: lvl,
                        parent: Some(seg_idx),
                        level: lvl,
                    });
                }
            }
            break;
        }
    }

    SplitTree {
        segments,
        hits,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::RatioValue;
    use crate::rng::rng_from_seed;
    use rand::RngExt;

    struct Walk;

    impl SimulationModel for Walk {
        type State = f64;

        fn initial_state(&self) -> f64 {
            0.0
        }

        fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            (s + if rng.random::<f64>() < 0.52 {
                0.05
            } else {
                -0.05
            })
            .clamp(0.0, 1.0)
        }
    }

    fn vf() -> RatioValue<fn(&f64) -> f64> {
        fn score(s: &f64) -> f64 {
            *s
        }
        RatioValue::new(score as fn(&f64) -> f64, 1.0)
    }

    #[test]
    fn tree_structure_is_consistent() {
        let model = Walk;
        let v = vf();
        let problem = Problem::new(&model, &v, 200);
        let plan = PartitionPlan::new(vec![0.4, 0.67]).unwrap();
        let tree = trace_root_tree(problem, &plan, 3, &mut rng_from_seed(12));

        assert!(!tree.segments.is_empty());
        assert_eq!(tree.segments[0].parent, None);
        // Every split spawns exactly `ratio` children.
        for (i, s) in tree.segments.iter().enumerate() {
            let children = tree.segments.iter().filter(|c| c.parent == Some(i)).count();
            match s.outcome {
                SegmentOutcome::Split => assert_eq!(children, 3, "segment {i}"),
                _ => assert_eq!(children, 0, "segment {i}"),
            }
        }
        // Steps equal total recorded points.
        let points: usize = tree.segments.iter().map(|s| s.points.len()).sum();
        assert_eq!(tree.steps as usize, points);
    }

    #[test]
    fn children_levels_increase() {
        let model = Walk;
        let v = vf();
        let problem = Problem::new(&model, &v, 200);
        let plan = PartitionPlan::new(vec![0.3, 0.6]).unwrap();
        let tree = trace_root_tree(problem, &plan, 2, &mut rng_from_seed(99));
        for s in &tree.segments {
            if let Some(p) = s.parent {
                assert!(s.level > tree.segments[p].level);
            }
        }
    }

    #[test]
    fn render_mentions_levels() {
        let model = Walk;
        let v = vf();
        let problem = Problem::new(&model, &v, 100);
        let plan = PartitionPlan::new(vec![0.5]).unwrap();
        let tree = trace_root_tree(problem, &plan, 2, &mut rng_from_seed(3));
        let txt = tree.render();
        assert!(txt.contains("L0"));
        assert!(txt.lines().count() == tree.segments.len());
    }
}
