//! Durability ranking: race *several* candidate queries on their
//! confidence intervals and find the top-`k` most durable ones.
//!
//! The paper's related work traces durability notions to durable top-k
//! queries over historical data (§7); the predictive analogue — "which of
//! these designs has the highest probability of surviving the horizon?"
//! — is the decision question the introduction's examples ultimately ask.
//! This module answers it with a *racing* scheme from the
//! best-arm-identification literature: candidates share a simulation
//! budget, rounds of sampling tighten each candidate's confidence
//! interval, and a candidate freezes as soon as its interval clears the
//! top-`k` **boundary** — either it is certainly in (at least `n-k` arms
//! sit entirely below it) or certainly out (at least `k` arms sit
//! entirely above it). Budget then concentrates on the arms whose seat is
//! still ambiguous.
//!
//! Design notes that fix the prototype's three racing bugs:
//!
//! * **Boundary elimination, not all-vs-all separation.** Two overlapping
//!   contenders that are both safely inside the top-`k` freeze anyway —
//!   their mutual order is not the question the query asks. The old rule
//!   required every pair of intervals to disjoin, so one tied pair
//!   deadlocked the entire field into `max_rounds`.
//! * **Zero variance is definitive, not discarded.** Pooling is done by
//!   accumulating every round into one persistent per-arm shard and
//!   estimating over the cumulative shard — exact pooling by
//!   construction. A pooled variance of exactly 0 (every root hit, or no
//!   root ever hit) classifies as a *point* interval `[τ̂, τ̂]`: the arm
//!   freezes immediately instead of burning budget, and its point
//!   interval is the sharpest possible comparator for everyone else. The
//!   old inverse-variance pool dropped those rounds, so a never-hitting
//!   arm reported τ̂=0 with infinite pooled variance and (because
//!   non-finite variance vetoed every separation test) blocked every
//!   other arm's freeze until `max_rounds`.
//! * **Deterministic standings.** Sorting uses `f64::total_cmp` with a
//!   label tiebreak (NaN ranks last), so a pinned seed yields a
//!   bit-stable order; the old `partial_cmp(..).expect(..)` panicked on
//!   NaN and left exact ties nondeterministic.
//!
//! Two front ends share the same freeze rule:
//!
//! * [`RaceQuery`] — the serving path. Each arm is any
//!   [`SliceableQuery`] (the same job type the scheduler runs), and the
//!   race itself is a `SliceableQuery`: one slice advances one unfrozen
//!   arm by `round_budget`, so a race time-slices under
//!   least-attained-service, composes with per-tenant fair sharing, and
//!   supports ASYNC submit/poll. The synchronous path drives the
//!   identical `run_slice` loop inline, which is what makes sequential
//!   and scheduler execution bit-identical at a pinned seed.
//! * [`rank_by_durability`] — the embedded/library path over borrowed
//!   [`Problem`]s, sampling each lane with a persistent g-MLSS shard.

use crate::estimate::Estimate;
use crate::estimator::{ChunkOutcome, Diagnostics, Estimator};
use crate::gmlss::GMlssConfig;
use crate::levels::PartitionPlan;
use crate::model::SimulationModel;
use crate::quality::RunControl;
use crate::query::{Problem, ValueFunction};
use crate::rng::{split_rng, SimRng};
use crate::scheduler::SliceableQuery;
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Configuration of a ranking race.
#[derive(Debug, Clone, Copy)]
pub struct RaceConfig {
    /// Simulation steps granted to every *active* candidate per round.
    pub round_budget: u64,
    /// Maximum number of rounds.
    pub max_rounds: usize,
    /// Confidence level for the boundary tests (e.g. 0.95).
    pub confidence: f64,
    /// Splitting ratio for the per-candidate samplers
    /// ([`rank_by_durability`] only; [`RaceQuery`] arms carry their own
    /// samplers).
    pub ratio: u32,
    /// The `k` of the top-`k` boundary the race decides.
    pub top_k: usize,
}

impl Default for RaceConfig {
    fn default() -> Self {
        Self {
            round_budget: 50_000,
            max_rounds: 12,
            confidence: 0.95,
            ratio: 3,
            top_k: 1,
        }
    }
}

/// Why an arm stopped sampling — freeze provenance, surfaced in
/// standings rows and `EXPLAIN`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreezeReason {
    /// Certainly inside the top-`k`: at least `n-k` other arms' intervals
    /// sit entirely below this arm's interval.
    In,
    /// Certainly outside the top-`k`: at least `k` other arms' intervals
    /// sit entirely above this arm's interval.
    Out,
    /// Pooled variance is exactly zero — the interval is a point; more
    /// rounds cannot move the boundary test for this arm.
    Definitive,
    /// The arm's own stopping rule (e.g. its target relative error) was
    /// satisfied before the boundary decided it.
    Resolved,
    /// The race hit `max_rounds` with this arm still undecided.
    Budget,
}

impl FreezeReason {
    /// Stable lowercase name (used in standings rows and diagnostics).
    pub fn as_str(&self) -> &'static str {
        match self {
            FreezeReason::In => "in",
            FreezeReason::Out => "out",
            FreezeReason::Definitive => "definitive",
            FreezeReason::Resolved => "resolved",
            FreezeReason::Budget => "budget",
        }
    }
}

/// Final standing of one candidate.
#[derive(Debug, Clone)]
pub struct Standing {
    /// Caller-supplied label.
    pub label: String,
    /// Pooled estimate across all rounds (cumulative shard).
    pub estimate: Estimate,
    /// Round after which the candidate was frozen (None = raced to the
    /// round cap).
    pub frozen_at: Option<usize>,
    /// Why the candidate stopped sampling.
    pub reason: FreezeReason,
    /// Lower edge of the candidate's final confidence interval.
    pub ci_lo: f64,
    /// Upper edge of the candidate's final confidence interval.
    pub ci_hi: f64,
}

/// Outcome of a race: standings sorted by durability, most durable first.
#[derive(Debug, Clone)]
pub struct RaceOutcome {
    /// Sorted standings.
    pub standings: Vec<Standing>,
    /// Total `g` invocations spent across all arms.
    pub total_steps: u64,
    /// Rounds the race ran before every arm froze (or the cap).
    pub rounds: usize,
}

impl RaceOutcome {
    /// Labels of the top-`k` most durable candidates.
    pub fn top(&self, k: usize) -> Vec<&str> {
        self.standings
            .iter()
            .take(k)
            .map(|s| s.label.as_str())
            .collect()
    }
}

/// How an arm's current interval participates in the boundary test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalKind {
    /// Zero pooled variance: the interval is the point `[τ̂, τ̂]`.
    Definitive,
    /// No usable evidence yet (no completed roots, or a non-finite
    /// variance): the interval is the vacuous `[0, 1]`. It cannot freeze
    /// itself, and because it is never *entirely* below or above
    /// anything, it blocks IN freezes but never an OUT elimination.
    Uninformative,
    /// A finite-width normal interval from [`Estimate::ci`].
    Normal,
}

/// One arm's classified confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArmInterval {
    /// Lower edge (clamped to `[0, 1]`).
    pub lo: f64,
    /// Upper edge (clamped to `[0, 1]`).
    pub hi: f64,
    /// Classification driving the freeze rule.
    pub kind: IntervalKind,
}

/// Classify a pooled estimate into the interval the boundary test uses.
pub fn classify_interval(e: &Estimate, confidence: f64) -> ArmInterval {
    if e.n_roots == 0 || !e.variance.is_finite() || e.tau.is_nan() {
        return ArmInterval {
            lo: 0.0,
            hi: 1.0,
            kind: IntervalKind::Uninformative,
        };
    }
    if e.variance == 0.0 {
        let t = e.tau.clamp(0.0, 1.0);
        return ArmInterval {
            lo: t,
            hi: t,
            kind: IntervalKind::Definitive,
        };
    }
    let (lo, hi) = e.ci(confidence);
    ArmInterval {
        lo,
        hi,
        kind: IntervalKind::Normal,
    }
}

/// Apply the top-`k` boundary rule to the whole field.
///
/// For each not-yet-frozen arm `i` (with `n` arms total), counting over
/// **all** other arms — frozen arms keep serving as comparators at their
/// freeze-time interval:
///
/// * `Definitive` interval → freeze now (reason
///   [`FreezeReason::Definitive`]);
/// * at least `k` arms entirely above (`lo_j > hi_i`) → certainly out of
///   the top-`k` (reason [`FreezeReason::Out`]);
/// * at least `n-k` arms entirely below (`hi_j < lo_i`) → certainly in
///   (reason [`FreezeReason::In`]).
///
/// Returns one entry per arm: `Some(reason)` if the arm freezes this
/// round, `None` otherwise (already-frozen arms always get `None`).
pub fn boundary_freezes(
    intervals: &[ArmInterval],
    frozen: &[bool],
    k: usize,
) -> Vec<Option<FreezeReason>> {
    let n = intervals.len();
    let k = k.clamp(1, n.max(1));
    (0..n)
        .map(|i| {
            if frozen[i] {
                return None;
            }
            let me = intervals[i];
            if me.kind == IntervalKind::Definitive {
                return Some(FreezeReason::Definitive);
            }
            if me.kind == IntervalKind::Uninformative {
                return None;
            }
            let mut above = 0usize;
            let mut below = 0usize;
            for (j, other) in intervals.iter().enumerate() {
                if j == i {
                    continue;
                }
                if other.lo > me.hi {
                    above += 1;
                } else if other.hi < me.lo {
                    below += 1;
                }
            }
            if above >= k {
                Some(FreezeReason::Out)
            } else if below >= n - k {
                Some(FreezeReason::In)
            } else {
                None
            }
        })
        .collect()
}

/// Sort standings most-durable-first, deterministically: descending τ̂ by
/// `f64::total_cmp`, NaN estimates last, exact ties broken by label.
pub fn sort_standings(standings: &mut [Standing]) {
    standings.sort_by(|a, b| {
        let (ta, tb) = (a.estimate.tau, b.estimate.tau);
        match (ta.is_nan(), tb.is_nan()) {
            (true, true) => a.label.cmp(&b.label),
            (true, false) => std::cmp::Ordering::Greater,
            (false, true) => std::cmp::Ordering::Less,
            (false, false) => tb.total_cmp(&ta).then_with(|| a.label.cmp(&b.label)),
        }
    });
}

// ---------------------------------------------------------------------
// Process-wide race totals — the `ranking` block in SHOW DIAGNOSTICS.
// ---------------------------------------------------------------------

static G_RACES: AtomicU64 = AtomicU64::new(0);
static G_ARMS: AtomicU64 = AtomicU64::new(0);
static G_FROZEN_EARLY: AtomicU64 = AtomicU64::new(0);
static G_ROUNDS: AtomicU64 = AtomicU64::new(0);
static G_STEPS: AtomicU64 = AtomicU64::new(0);

/// Process-wide ranking-race counters (relaxed snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankStats {
    /// Races completed.
    pub races: u64,
    /// Arms raced, summed over races.
    pub arms: u64,
    /// Arms frozen before the round cap (in/out/definitive/resolved).
    pub frozen_early: u64,
    /// Rounds run, summed over races.
    pub rounds: u64,
    /// `g` invocations spent in races.
    pub steps: u64,
}

fn record_race(arms: u64, frozen_early: u64, rounds: u64, steps: u64) {
    G_RACES.fetch_add(1, Ordering::Relaxed);
    G_ARMS.fetch_add(arms, Ordering::Relaxed);
    G_FROZEN_EARLY.fetch_add(frozen_early, Ordering::Relaxed);
    G_ROUNDS.fetch_add(rounds, Ordering::Relaxed);
    G_STEPS.fetch_add(steps, Ordering::Relaxed);
}

/// Snapshot the process-wide ranking counters.
pub fn snapshot() -> RankStats {
    RankStats {
        races: G_RACES.load(Ordering::Relaxed),
        arms: G_ARMS.load(Ordering::Relaxed),
        frozen_early: G_FROZEN_EARLY.load(Ordering::Relaxed),
        rounds: G_ROUNDS.load(Ordering::Relaxed),
        steps: G_STEPS.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------
// RaceQuery: the race as a scheduler job over sliceable arms.
// ---------------------------------------------------------------------

/// One arm of a [`RaceQuery`]: a label plus any sliceable job (the same
/// job type [`crate::scheduler::Scheduler`] runs, so arms come out of the
/// exact submit construction path — plan-cache pilots included).
pub struct RaceArm {
    /// Display label (model ref with parameters, in the SQL path).
    pub label: String,
    /// The arm's sampler job; its accumulated shard is the pooled state.
    pub job: Box<dyn SliceableQuery>,
}

struct ArmState {
    label: String,
    job: Box<dyn SliceableQuery>,
    frozen_at: Option<usize>,
    reason: Option<FreezeReason>,
    last: Option<Estimate>,
}

/// A top-`k` confidence-bound race, itself a [`SliceableQuery`].
///
/// One slice advances exactly one unfrozen arm by
/// [`RaceConfig::round_budget`] `g` invocations — the race's atomic unit
/// of progress — regardless of the scheduler's slice budget (a smaller
/// slice would split a round across scheduler decisions and make the
/// round structure depend on scheduler configuration). When the last
/// unfrozen arm of a round has been advanced, the same slice evaluates
/// every active arm's pooled estimate over its cumulative shard and
/// applies [`boundary_freezes`]. Because the scheduler advances any one
/// job on one worker at a time, the arm order, evaluation points, and
/// RNG consumption are identical to the synchronous
/// [`RaceQuery::run_to_completion`] loop — pinned seeds give bit-stable
/// standings on both paths.
pub struct RaceQuery {
    arms: Vec<ArmState>,
    cfg: RaceConfig,
    round: usize,
    cursor: usize,
    total_steps: u64,
    done: bool,
    outcome: Arc<Mutex<Option<RaceOutcome>>>,
}

impl RaceQuery {
    /// Build a race over sliceable arms. `cfg.top_k` is clamped to the
    /// field size.
    pub fn new(arms: Vec<RaceArm>, cfg: RaceConfig) -> Self {
        assert!(!arms.is_empty(), "a race needs at least one arm");
        let mut cfg = cfg;
        cfg.top_k = cfg.top_k.clamp(1, arms.len());
        cfg.max_rounds = cfg.max_rounds.max(1);
        Self {
            arms: arms
                .into_iter()
                .map(|a| ArmState {
                    label: a.label,
                    job: a.job,
                    frozen_at: None,
                    reason: None,
                    last: None,
                })
                .collect(),
            cfg,
            round: 0,
            cursor: 0,
            total_steps: 0,
            done: false,
            outcome: Arc::new(Mutex::new(None)),
        }
    }

    /// Handle the caller keeps to read the standings after an ASYNC race
    /// completes (the scheduler only hands back an [`Estimate`]).
    pub fn outcome_handle(&self) -> Arc<Mutex<Option<RaceOutcome>>> {
        Arc::clone(&self.outcome)
    }

    /// Drive the race to completion on the calling thread — the
    /// synchronous path, same slice loop the scheduler runs.
    pub fn run_to_completion(&mut self) -> RaceOutcome {
        while !self.done {
            self.run_slice(0);
        }
        self.outcome
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
            .expect("race finalized")
    }

    fn evaluate_round(&mut self) {
        for arm in self.arms.iter_mut().filter(|a| a.frozen_at.is_none()) {
            arm.last = Some(arm.job.estimate());
        }
        let intervals: Vec<ArmInterval> = self
            .arms
            .iter()
            .map(|a| match &a.last {
                Some(e) => classify_interval(e, self.cfg.confidence),
                None => ArmInterval {
                    lo: 0.0,
                    hi: 1.0,
                    kind: IntervalKind::Uninformative,
                },
            })
            .collect();
        let frozen: Vec<bool> = self.arms.iter().map(|a| a.frozen_at.is_some()).collect();
        let freezes = boundary_freezes(&intervals, &frozen, self.cfg.top_k);
        for (arm, freeze) in self.arms.iter_mut().zip(freezes) {
            if let Some(reason) = freeze {
                arm.frozen_at = Some(self.round);
                arm.reason = Some(reason);
            }
        }
        self.round += 1;
        self.cursor = 0;
        let all_frozen = self.arms.iter().all(|a| a.frozen_at.is_some());
        if all_frozen || self.round >= self.cfg.max_rounds {
            self.finalize();
        }
    }

    fn finalize(&mut self) {
        let confidence = self.cfg.confidence;
        let mut standings: Vec<Standing> = self
            .arms
            .iter_mut()
            .map(|arm| {
                let estimate = arm.last.unwrap_or_else(|| arm.job.estimate());
                let iv = classify_interval(&estimate, confidence);
                Standing {
                    label: arm.label.clone(),
                    estimate,
                    frozen_at: arm.frozen_at,
                    reason: arm.reason.unwrap_or(FreezeReason::Budget),
                    ci_lo: iv.lo,
                    ci_hi: iv.hi,
                }
            })
            .collect();
        sort_standings(&mut standings);
        let frozen_early = standings.iter().filter(|s| s.frozen_at.is_some()).count() as u64;
        record_race(
            self.arms.len() as u64,
            frozen_early,
            self.round as u64,
            self.total_steps,
        );
        let outcome = RaceOutcome {
            standings,
            total_steps: self.total_steps,
            rounds: self.round,
        };
        *self.outcome.lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
        self.done = true;
    }

    fn summary_estimate(&mut self) -> Estimate {
        let (steps, n_roots, hits) = self.arms.iter().fold((0u64, 0u64, 0u64), |acc, a| {
            let e = a.last.as_ref();
            (
                acc.0 + e.map_or(0, |e| e.steps),
                acc.1 + e.map_or(0, |e| e.n_roots),
                acc.2 + e.map_or(0, |e| e.hits),
            )
        });
        let leader = self
            .arms
            .iter()
            .filter_map(|a| a.last.as_ref())
            .max_by(|a, b| a.tau.total_cmp(&b.tau))
            .cloned();
        match leader {
            Some(e) => Estimate {
                steps: self.total_steps.max(steps),
                n_roots,
                hits,
                ..e
            },
            None => Estimate {
                tau: 0.0,
                variance: f64::INFINITY,
                n_roots: 0,
                steps: self.total_steps,
                hits: 0,
            },
        }
    }
}

impl SliceableQuery for RaceQuery {
    fn name(&self) -> &'static str {
        "rank-race"
    }

    fn run_slice(&mut self, _budget: u64) -> ChunkOutcome {
        if self.done {
            return ChunkOutcome::default();
        }
        // Find the next unfrozen arm this round.
        let next = (self.cursor..self.arms.len()).find(|&i| self.arms[i].frozen_at.is_none());
        let Some(idx) = next else {
            // Nothing left to advance this round (every arm at or past
            // the cursor froze): close the round out.
            self.evaluate_round();
            return ChunkOutcome::default();
        };
        let round_budget = self.cfg.round_budget;
        let out = self.arms[idx].job.run_slice(round_budget);
        self.total_steps += out.steps;
        if self.arms[idx].job.finished() {
            // The arm's own stopping rule (target RE) is satisfied: it
            // leaves the race with its evidence as a fixed comparator.
            self.arms[idx].last = Some(self.arms[idx].job.estimate());
            self.arms[idx].frozen_at = Some(self.round);
            self.arms[idx].reason = Some(FreezeReason::Resolved);
        }
        self.cursor = idx + 1;
        let more = (self.cursor..self.arms.len()).any(|i| self.arms[i].frozen_at.is_none());
        if !more {
            self.evaluate_round();
        }
        out
    }

    fn finished(&mut self) -> bool {
        self.done
    }

    fn estimate(&mut self) -> Estimate {
        if let Some(outcome) = &*self.outcome.lock().unwrap_or_else(|e| e.into_inner()) {
            let mut e = outcome
                .standings
                .first()
                .map(|s| s.estimate)
                .unwrap_or(Estimate {
                    tau: 0.0,
                    variance: f64::INFINITY,
                    n_roots: 0,
                    steps: 0,
                    hits: 0,
                });
            e.steps = outcome.total_steps;
            return e;
        }
        self.summary_estimate()
    }

    fn steps(&self) -> u64 {
        self.total_steps
    }

    fn n_roots(&self) -> u64 {
        self.arms.iter().map(|a| a.job.n_roots()).sum()
    }

    fn diagnostics(&self) -> Diagnostics {
        let frozen = self.arms.iter().filter(|a| a.frozen_at.is_some()).count();
        Diagnostics {
            estimator: "rank-race",
            skip_events: 0,
            details: vec![
                ("arms".to_string(), self.arms.len() as f64),
                ("frozen".to_string(), frozen as f64),
                ("rounds".to_string(), self.round as f64),
            ],
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

// ---------------------------------------------------------------------
// rank_by_durability: the embedded/library path over borrowed Problems.
// ---------------------------------------------------------------------

/// One candidate in the race: a problem plus the plan to sample it with.
pub struct Candidate<'a, M: SimulationModel, V> {
    /// Display label.
    pub label: String,
    /// The durability query.
    pub problem: Problem<'a, M, V>,
    /// Level plan for the candidate's g-MLSS sampler.
    pub plan: PartitionPlan,
}

/// Run the race and rank candidates by estimated durability.
///
/// Each lane keeps one persistent g-MLSS shard across rounds: a round is
/// a [`Estimator::run_chunk`] continuation of the same shard with the
/// same RNG stream — no cold restarts, and pooling across rounds is
/// exact by construction. The freeze rule is the same top-`k`
/// [`boundary_freezes`] the scheduler path uses.
pub fn rank_by_durability<M, V>(
    candidates: Vec<Candidate<'_, M, V>>,
    cfg: RaceConfig,
    rng: &mut SimRng,
) -> RaceOutcome
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    assert!(!candidates.is_empty());
    let top_k = cfg.top_k.clamp(1, candidates.len());
    let max_rounds = cfg.max_rounds.max(1);

    struct Lane<'a, M: SimulationModel, V> {
        cand: Candidate<'a, M, V>,
        estimator: GMlssConfig,
        shard: crate::gmlss::GmlssShard,
        rng: SimRng,
        frozen_at: Option<usize>,
        reason: Option<FreezeReason>,
        last: Option<Estimate>,
    }

    let mut lanes: Vec<Lane<'_, M, V>> = candidates
        .into_iter()
        .map(|cand| {
            let estimator =
                GMlssConfig::new(cand.plan.clone(), RunControl::budget(cfg.round_budget))
                    .with_ratio(cfg.ratio);
            let shard = Estimator::<M, V>::shard(&estimator);
            Lane {
                cand,
                estimator,
                shard,
                rng: split_rng(rng),
                frozen_at: None,
                reason: None,
                last: None,
            }
        })
        .collect();

    let mut total_steps = 0u64;
    let mut rounds = 0usize;
    for round in 0..max_rounds {
        rounds = round + 1;
        // Advance every active lane's persistent shard by one round.
        for lane in lanes.iter_mut().filter(|l| l.frozen_at.is_none()) {
            let out = lane.estimator.run_chunk(
                lane.cand.problem,
                &mut lane.shard,
                cfg.round_budget,
                &mut lane.rng,
            );
            total_steps += out.steps;
            lane.last = Some(<GMlssConfig as Estimator<M, V>>::estimate(
                &lane.estimator,
                &lane.shard,
                &mut lane.rng,
            ));
        }

        let intervals: Vec<ArmInterval> = lanes
            .iter()
            .map(|l| match &l.last {
                Some(e) => classify_interval(e, cfg.confidence),
                None => ArmInterval {
                    lo: 0.0,
                    hi: 1.0,
                    kind: IntervalKind::Uninformative,
                },
            })
            .collect();
        let frozen: Vec<bool> = lanes.iter().map(|l| l.frozen_at.is_some()).collect();
        for (lane, freeze) in lanes
            .iter_mut()
            .zip(boundary_freezes(&intervals, &frozen, top_k))
        {
            if let Some(reason) = freeze {
                lane.frozen_at = Some(round);
                lane.reason = Some(reason);
            }
        }

        if lanes.iter().all(|l| l.frozen_at.is_some()) {
            break;
        }
    }

    let mut standings: Vec<Standing> = lanes
        .iter()
        .map(|lane| {
            let estimate = lane.last.unwrap_or(Estimate {
                tau: 0.0,
                variance: f64::INFINITY,
                n_roots: 0,
                steps: 0,
                hits: 0,
            });
            let iv = classify_interval(&estimate, cfg.confidence);
            Standing {
                label: lane.cand.label.clone(),
                estimate,
                frozen_at: lane.frozen_at,
                reason: lane.reason.unwrap_or(FreezeReason::Budget),
                ci_lo: iv.lo,
                ci_hi: iv.hi,
            }
        })
        .collect();
    sort_standings(&mut standings);
    let frozen_early = standings.iter().filter(|s| s.frozen_at.is_some()).count() as u64;
    record_race(lanes.len() as u64, frozen_early, rounds as u64, total_steps);
    RaceOutcome {
        standings,
        total_steps,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Time;
    use crate::query::RatioValue;
    use crate::rng::rng_from_seed;
    use rand::RngExt;

    struct Walk {
        up: f64,
    }

    impl SimulationModel for Walk {
        type State = f64;

        fn initial_state(&self) -> f64 {
            0.0
        }

        fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            (s + if rng.random::<f64>() < self.up {
                0.05
            } else {
                -0.05
            })
            .clamp(0.0, 1.0)
        }
    }

    fn iv(lo: f64, hi: f64) -> ArmInterval {
        ArmInterval {
            lo,
            hi,
            kind: IntervalKind::Normal,
        }
    }

    fn standing(label: &str, tau: f64) -> Standing {
        Standing {
            label: label.into(),
            estimate: Estimate {
                tau,
                variance: 0.01,
                n_roots: 10,
                steps: 100,
                hits: 5,
            },
            frozen_at: None,
            reason: FreezeReason::Budget,
            ci_lo: 0.0,
            ci_hi: 1.0,
        }
    }

    #[test]
    fn race_orders_candidates_by_durability() {
        let fast = Walk { up: 0.52 };
        let mid = Walk { up: 0.47 };
        let slow = Walk { up: 0.42 };
        let vf = RatioValue::new(|s: &f64| *s, 1.0);
        let plan = PartitionPlan::new(vec![0.4, 0.7]).unwrap();
        let candidates = vec![
            Candidate {
                label: "slow".into(),
                problem: Problem::new(&slow, &vf, 150),
                plan: plan.clone(),
            },
            Candidate {
                label: "fast".into(),
                problem: Problem::new(&fast, &vf, 150),
                plan: plan.clone(),
            },
            Candidate {
                label: "mid".into(),
                problem: Problem::new(&mid, &vf, 150),
                plan,
            },
        ];
        let outcome = rank_by_durability(
            candidates,
            RaceConfig {
                round_budget: 40_000,
                max_rounds: 8,
                ..Default::default()
            },
            &mut rng_from_seed(5),
        );
        let labels: Vec<&str> = outcome.standings.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["fast", "mid", "slow"]);
        assert_eq!(outcome.top(1), vec!["fast"]);
        assert!(outcome.total_steps > 0);
        // Durabilities are strictly ordered.
        assert!(outcome.standings[0].estimate.tau > outcome.standings[2].estimate.tau);
    }

    #[test]
    fn clearly_separated_candidates_freeze_early() {
        let huge = Walk { up: 0.60 };
        let tiny = Walk { up: 0.44 };
        let vf = RatioValue::new(|s: &f64| *s, 1.0);
        let plan = PartitionPlan::new(vec![0.5]).unwrap();
        let candidates = vec![
            Candidate {
                label: "huge".into(),
                problem: Problem::new(&huge, &vf, 120),
                plan: plan.clone(),
            },
            Candidate {
                label: "tiny".into(),
                problem: Problem::new(&tiny, &vf, 120),
                plan,
            },
        ];
        let outcome = rank_by_durability(
            candidates,
            RaceConfig {
                round_budget: 60_000,
                max_rounds: 10,
                ..Default::default()
            },
            &mut rng_from_seed(9),
        );
        // Both freeze (boundary decided) before the round cap.
        for s in &outcome.standings {
            assert!(
                s.frozen_at.is_some(),
                "{} should freeze (frozen_at {:?})",
                s.label,
                s.frozen_at
            );
        }
    }

    #[test]
    fn single_candidate_race_is_fine() {
        let m = Walk { up: 0.5 };
        let vf = RatioValue::new(|s: &f64| *s, 1.0);
        let candidates = vec![Candidate {
            label: "only".into(),
            problem: Problem::new(&m, &vf, 80),
            plan: PartitionPlan::trivial(),
        }];
        let outcome = rank_by_durability(
            candidates,
            RaceConfig {
                round_budget: 20_000,
                max_rounds: 3,
                ..Default::default()
            },
            &mut rng_from_seed(2),
        );
        assert_eq!(outcome.standings.len(), 1);
        assert!(outcome.standings[0].estimate.tau > 0.0);
    }

    // --- regression: zero-variance rounds are definitive, not dropped ---

    #[test]
    fn zero_variance_arm_is_definitive_not_discarded() {
        // `sure` climbs deterministically to 1.0 and hits every round:
        // pooled variance is exactly 0. The old inverse-variance pool
        // dropped every such round, reporting τ̂ = 0 with infinite
        // variance; it must instead report τ̂ = 1 and freeze immediately.
        let sure = Walk { up: 1.0 };
        let coin = Walk { up: 0.50 };
        let vf = RatioValue::new(|s: &f64| *s, 1.0);
        let plan = PartitionPlan::new(vec![0.5]).unwrap();
        let candidates = vec![
            Candidate {
                label: "sure".into(),
                problem: Problem::new(&sure, &vf, 120),
                plan: plan.clone(),
            },
            Candidate {
                label: "coin".into(),
                problem: Problem::new(&coin, &vf, 120),
                plan,
            },
        ];
        let outcome = rank_by_durability(
            candidates,
            RaceConfig {
                round_budget: 20_000,
                max_rounds: 6,
                ..Default::default()
            },
            &mut rng_from_seed(11),
        );
        let sure = outcome
            .standings
            .iter()
            .find(|s| s.label == "sure")
            .unwrap();
        assert_eq!(sure.estimate.tau, 1.0, "exact rounds must pool");
        assert_eq!(sure.frozen_at, Some(0));
        assert_eq!(sure.reason, FreezeReason::Definitive);
        assert_eq!(outcome.top(1), vec!["sure"]);
    }

    #[test]
    fn dead_arm_does_not_block_the_field() {
        // `dead` never hits (τ̂ = 0, zero variance). Under the old rule
        // its non-finite pooled variance vetoed every separation test and
        // the whole field burned to max_rounds; now it freezes
        // definitively at round 0 and the live arms still freeze early.
        let dead = Walk { up: 0.0 };
        let live_hi = Walk { up: 0.58 };
        let live_lo = Walk { up: 0.42 };
        let vf = RatioValue::new(|s: &f64| *s, 1.0);
        let plan = PartitionPlan::new(vec![0.5]).unwrap();
        let candidates = vec![
            Candidate {
                label: "dead".into(),
                problem: Problem::new(&dead, &vf, 120),
                plan: plan.clone(),
            },
            Candidate {
                label: "hi".into(),
                problem: Problem::new(&live_hi, &vf, 120),
                plan: plan.clone(),
            },
            Candidate {
                label: "lo".into(),
                problem: Problem::new(&live_lo, &vf, 120),
                plan,
            },
        ];
        let outcome = rank_by_durability(
            candidates,
            RaceConfig {
                round_budget: 60_000,
                max_rounds: 10,
                ..Default::default()
            },
            &mut rng_from_seed(3),
        );
        let dead = outcome
            .standings
            .iter()
            .find(|s| s.label == "dead")
            .unwrap();
        assert_eq!(dead.reason, FreezeReason::Definitive);
        assert_eq!(dead.frozen_at, Some(0));
        for s in &outcome.standings {
            assert!(
                s.frozen_at.is_some(),
                "{} must freeze before the cap (frozen_at {:?})",
                s.label,
                s.frozen_at
            );
        }
        assert!(
            outcome.rounds < 10,
            "field must decide early, ran {} rounds",
            outcome.rounds
        );
    }

    // --- boundary rule unit tests (no simulation) ---

    #[test]
    fn overlapping_contenders_inside_top_k_still_freeze() {
        // A and B overlap each other but both sit entirely above C: with
        // k = 2 all three freeze in one pass. The old all-vs-all rule
        // deadlocked A and B forever.
        let intervals = [iv(0.60, 0.80), iv(0.55, 0.75), iv(0.10, 0.30)];
        let frozen = [false, false, false];
        let freezes = boundary_freezes(&intervals, &frozen, 2);
        assert_eq!(freezes[0], Some(FreezeReason::In));
        assert_eq!(freezes[1], Some(FreezeReason::In));
        assert_eq!(freezes[2], Some(FreezeReason::Out));
    }

    #[test]
    fn uninformative_arm_blocks_in_but_not_out() {
        let unknown = ArmInterval {
            lo: 0.0,
            hi: 1.0,
            kind: IntervalKind::Uninformative,
        };
        // The unknown arm could still be best: nobody can claim the top-1
        // seat yet…
        let intervals = [iv(0.60, 0.80), iv(0.10, 0.30), unknown];
        let frozen = [false, false, false];
        let freezes = boundary_freezes(&intervals, &frozen, 1);
        assert_eq!(freezes[0], None, "IN must wait for the unknown arm");
        // …but the clearly-dominated arm is out regardless (arm 0 is
        // entirely above it), and the unknown arm itself never freezes on
        // a vacuous interval.
        assert_eq!(freezes[1], Some(FreezeReason::Out));
        assert_eq!(freezes[2], None);
    }

    #[test]
    fn frozen_arms_still_serve_as_comparators() {
        let intervals = [iv(0.60, 0.80), iv(0.10, 0.30)];
        // Arm 0 froze in an earlier round; arm 1 must still be eliminated
        // against arm 0's frozen interval.
        let frozen = [true, false];
        let freezes = boundary_freezes(&intervals, &frozen, 1);
        assert_eq!(freezes[0], None);
        assert_eq!(freezes[1], Some(FreezeReason::Out));
    }

    // --- sort determinism (regression: NaN panicked, ties were unstable) ---

    #[test]
    fn sort_is_total_nan_ranks_last_ties_break_by_label() {
        let mut standings = vec![
            standing("b-tied", 0.5),
            standing("nan", f64::NAN),
            standing("a-tied", 0.5),
            standing("top", 0.9),
        ];
        // Must not panic despite the NaN (the old partial_cmp did).
        sort_standings(&mut standings);
        let labels: Vec<&str> = standings.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["top", "a-tied", "b-tied", "nan"]);
    }

    #[test]
    fn classify_interval_kinds() {
        let normal = Estimate {
            tau: 0.5,
            variance: 0.01,
            n_roots: 100,
            steps: 1000,
            hits: 50,
        };
        assert_eq!(classify_interval(&normal, 0.95).kind, IntervalKind::Normal);
        let exact = Estimate {
            tau: 1.0,
            variance: 0.0,
            n_roots: 100,
            steps: 1000,
            hits: 100,
        };
        let iv = classify_interval(&exact, 0.95);
        assert_eq!(iv.kind, IntervalKind::Definitive);
        assert_eq!((iv.lo, iv.hi), (1.0, 1.0));
        let empty = Estimate {
            tau: 0.0,
            variance: f64::INFINITY,
            n_roots: 0,
            steps: 0,
            hits: 0,
        };
        let iv = classify_interval(&empty, 0.95);
        assert_eq!(iv.kind, IntervalKind::Uninformative);
        assert_eq!((iv.lo, iv.hi), (0.0, 1.0));
    }
}
