//! Durability ranking: compare *several* candidate queries and find the
//! most (or least) durable ones.
//!
//! The paper's related work traces durability notions to durable top-k
//! queries over historical data (§7); the predictive analogue — "which of
//! these k designs has the highest probability of surviving the horizon?"
//! — is the decision question the introduction's examples ultimately ask.
//! This module answers it with a *racing* scheme: all candidates share a
//! simulation budget, rounds of sampling tighten each candidate's
//! confidence interval, and candidates whose intervals separate from the
//! current top-`k` boundary are frozen early, concentrating effort on the
//! contenders.
//!
//! Works with any estimator; we use g-MLSS per candidate so rare-event
//! candidates stay cheap.

use crate::estimate::Estimate;
use crate::gmlss::{GMlssConfig, GMlssSampler};
use crate::levels::PartitionPlan;
use crate::model::SimulationModel;
use crate::quality::RunControl;
use crate::query::{Problem, ValueFunction};
use crate::rng::{split_rng, SimRng};
use crate::stats::z_critical;

/// Configuration of a ranking race.
#[derive(Debug, Clone, Copy)]
pub struct RaceConfig {
    /// Simulation steps granted to every *active* candidate per round.
    pub round_budget: u64,
    /// Maximum number of rounds.
    pub max_rounds: usize,
    /// Confidence level for separation tests (e.g. 0.95).
    pub confidence: f64,
    /// Splitting ratio for the per-candidate samplers.
    pub ratio: u32,
}

impl Default for RaceConfig {
    fn default() -> Self {
        Self {
            round_budget: 50_000,
            max_rounds: 12,
            confidence: 0.95,
            ratio: 3,
        }
    }
}

/// Final standing of one candidate.
#[derive(Debug, Clone)]
pub struct Standing {
    /// Caller-supplied label.
    pub label: String,
    /// Combined estimate across rounds.
    pub estimate: Estimate,
    /// Round after which the candidate was frozen (None = raced to the
    /// end).
    pub frozen_at: Option<usize>,
}

/// Outcome of a race: standings sorted by durability, most durable first.
#[derive(Debug, Clone)]
pub struct RaceOutcome {
    /// Sorted standings.
    pub standings: Vec<Standing>,
    /// Total `g` invocations spent.
    pub total_steps: u64,
}

impl RaceOutcome {
    /// Labels of the top-`k` most durable candidates.
    pub fn top(&self, k: usize) -> Vec<&str> {
        self.standings
            .iter()
            .take(k)
            .map(|s| s.label.as_str())
            .collect()
    }
}

/// One candidate in the race: a problem plus the plan to sample it with.
pub struct Candidate<'a, M: SimulationModel, V> {
    /// Display label.
    pub label: String,
    /// The durability query.
    pub problem: Problem<'a, M, V>,
    /// Level plan for the candidate's g-MLSS sampler.
    pub plan: PartitionPlan,
}

/// Run the race and rank candidates by estimated durability.
pub fn rank_by_durability<M, V>(
    candidates: Vec<Candidate<'_, M, V>>,
    cfg: RaceConfig,
    rng: &mut SimRng,
) -> RaceOutcome
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    assert!(!candidates.is_empty());
    let z = z_critical(cfg.confidence);

    struct Lane<'a, M: SimulationModel, V> {
        cand: Candidate<'a, M, V>,
        rng: SimRng,
        // Accumulated counts across rounds (inverse-variance pooling).
        weight_sum: f64,
        weighted_tau: f64,
        steps: u64,
        n_roots: u64,
        hits: u64,
        frozen_at: Option<usize>,
    }

    let mut lanes: Vec<Lane<'_, M, V>> = candidates
        .into_iter()
        .map(|cand| Lane {
            cand,
            rng: split_rng(rng),
            weight_sum: 0.0,
            weighted_tau: 0.0,
            steps: 0,
            n_roots: 0,
            hits: 0,
            frozen_at: None,
        })
        .collect();

    let pooled = |lane: &Lane<'_, M, V>| -> (f64, f64) {
        if lane.weight_sum > 0.0 {
            (lane.weighted_tau / lane.weight_sum, 1.0 / lane.weight_sum)
        } else {
            (0.0, f64::INFINITY)
        }
    };

    let mut total_steps = 0u64;
    for round in 0..cfg.max_rounds {
        // Sample every active lane.
        for lane in lanes.iter_mut().filter(|l| l.frozen_at.is_none()) {
            let gcfg =
                GMlssConfig::new(lane.cand.plan.clone(), RunControl::budget(cfg.round_budget))
                    .with_ratio(cfg.ratio);
            let res = GMlssSampler::new(gcfg).run(lane.cand.problem, &mut lane.rng);
            let e = res.estimate;
            total_steps += e.steps;
            lane.steps += e.steps;
            lane.n_roots += e.n_roots;
            lane.hits += e.hits;
            if e.variance.is_finite() && e.variance > 0.0 {
                let w = 1.0 / e.variance;
                lane.weight_sum += w;
                lane.weighted_tau += w * e.tau;
            }
        }

        // Freeze lanes whose CI is separated from every still-active lane.
        let snapshots: Vec<(f64, f64)> = lanes.iter().map(&pooled).collect();
        for i in 0..lanes.len() {
            if lanes[i].frozen_at.is_some() {
                continue;
            }
            let (ti, vi) = snapshots[i];
            if !vi.is_finite() {
                continue;
            }
            let hi = z * vi.sqrt();
            let separated = (0..lanes.len()).all(|j| {
                if i == j {
                    return true;
                }
                let (tj, vj) = snapshots[j];
                if !vj.is_finite() {
                    return false;
                }
                let hj = z * vj.sqrt();
                // Intervals must not overlap.
                (ti + hi < tj - hj) || (tj + hj < ti - hi)
            });
            if separated {
                lanes[i].frozen_at = Some(round);
            }
        }

        if lanes.iter().all(|l| l.frozen_at.is_some()) {
            break;
        }
    }

    let mut standings: Vec<Standing> = lanes
        .iter()
        .map(|lane| {
            let (tau, variance) = pooled(lane);
            Standing {
                label: lane.cand.label.clone(),
                estimate: Estimate {
                    tau,
                    variance,
                    n_roots: lane.n_roots,
                    steps: lane.steps,
                    hits: lane.hits,
                },
                frozen_at: lane.frozen_at,
            }
        })
        .collect();
    standings.sort_by(|a, b| {
        b.estimate
            .tau
            .partial_cmp(&a.estimate.tau)
            .expect("finite estimates")
    });
    RaceOutcome {
        standings,
        total_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Time;
    use crate::query::RatioValue;
    use crate::rng::rng_from_seed;
    use rand::RngExt;

    struct Walk {
        up: f64,
    }

    impl SimulationModel for Walk {
        type State = f64;

        fn initial_state(&self) -> f64 {
            0.0
        }

        fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            (s + if rng.random::<f64>() < self.up {
                0.05
            } else {
                -0.05
            })
            .clamp(0.0, 1.0)
        }
    }

    #[test]
    fn race_orders_candidates_by_durability() {
        let fast = Walk { up: 0.52 };
        let mid = Walk { up: 0.47 };
        let slow = Walk { up: 0.42 };
        let vf = RatioValue::new(|s: &f64| *s, 1.0);
        let plan = PartitionPlan::new(vec![0.4, 0.7]).unwrap();
        let candidates = vec![
            Candidate {
                label: "slow".into(),
                problem: Problem::new(&slow, &vf, 150),
                plan: plan.clone(),
            },
            Candidate {
                label: "fast".into(),
                problem: Problem::new(&fast, &vf, 150),
                plan: plan.clone(),
            },
            Candidate {
                label: "mid".into(),
                problem: Problem::new(&mid, &vf, 150),
                plan,
            },
        ];
        let outcome = rank_by_durability(
            candidates,
            RaceConfig {
                round_budget: 40_000,
                max_rounds: 8,
                ..Default::default()
            },
            &mut rng_from_seed(5),
        );
        let labels: Vec<&str> = outcome.standings.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["fast", "mid", "slow"]);
        assert_eq!(outcome.top(1), vec!["fast"]);
        assert!(outcome.total_steps > 0);
        // Durabilities are strictly ordered.
        assert!(outcome.standings[0].estimate.tau > outcome.standings[2].estimate.tau);
    }

    #[test]
    fn clearly_separated_candidates_freeze_early() {
        let huge = Walk { up: 0.60 };
        let tiny = Walk { up: 0.44 };
        let vf = RatioValue::new(|s: &f64| *s, 1.0);
        let plan = PartitionPlan::new(vec![0.5]).unwrap();
        let candidates = vec![
            Candidate {
                label: "huge".into(),
                problem: Problem::new(&huge, &vf, 120),
                plan: plan.clone(),
            },
            Candidate {
                label: "tiny".into(),
                problem: Problem::new(&tiny, &vf, 120),
                plan,
            },
        ];
        let outcome = rank_by_durability(
            candidates,
            RaceConfig {
                round_budget: 60_000,
                max_rounds: 10,
                ..Default::default()
            },
            &mut rng_from_seed(9),
        );
        // Both freeze (mutually separated) before the round cap.
        for s in &outcome.standings {
            assert!(
                s.frozen_at.is_some(),
                "{} should freeze (frozen_at {:?})",
                s.label,
                s.frozen_at
            );
        }
    }

    #[test]
    fn single_candidate_race_is_fine() {
        let m = Walk { up: 0.5 };
        let vf = RatioValue::new(|s: &f64| *s, 1.0);
        let candidates = vec![Candidate {
            label: "only".into(),
            problem: Problem::new(&m, &vf, 80),
            plan: PartitionPlan::trivial(),
        }];
        let outcome = rank_by_durability(
            candidates,
            RaceConfig {
                round_budget: 20_000,
                max_rounds: 3,
                ..Default::default()
            },
            &mut rng_from_seed(2),
        );
        assert_eq!(outcome.standings.len(), 1);
        assert!(outcome.standings[0].estimate.tau > 0.0);
    }
}
