//! The batched simulation frontier — one engine behind every estimator's
//! chunk loop.
//!
//! All four samplers used to advance one root path at a time: a scalar
//! `step`, a state clone, an atomic bump. This module replaces those
//! inner loops with a **frontier of in-flight root paths** stepped as one
//! cohort per [`crate::model::SimulationModel::step_batch`] call, which
//! amortizes dispatch and bookkeeping and lets models run native batch
//! kernels (contiguous `f64` lanes for the closed-form models, a batched
//! matrix forward pass for the RNN). The estimator-specific logic — what
//! a root *is*, when it splits, what it commits — plugs in through the
//! [`RootKernel`] trait.
//!
//! ## Bit-identity across widths
//!
//! The engine's defining invariant: **the committed shard is a pure
//! function of the caller's RNG state and the budget, independent of the
//! frontier width.** Width changes wall-clock, never results. Three
//! mechanisms deliver that:
//!
//! * **one RNG stream per root** ([`FrontierMode::PerRoot`]) — root `k`
//!   draws its private ChaCha stream from the master RNG at launch
//!   (exactly [`crate::rng::split_rng`]); every random draw of the root's
//!   whole splitting tree comes from that stream, so a root's outcome
//!   does not depend on which other roots run concurrently.
//! * **in-order commits** — roots retire out of order at width > 1, but
//!   outcomes are buffered and folded into the shard strictly in root
//!   launch order, so shard contents (including per-root ledgers and
//!   hit-moment sequences) match the width-1 execution bit for bit.
//! * **the scalar commit rule with speculation discard** — root `k`
//!   commits iff the steps committed before it are below the chunk
//!   target, exactly the classic "stop at the first completion at or
//!   beyond the budget" rule. Lanes launched speculatively past that
//!   point are discarded, and the master RNG is rewound to "as if only
//!   the committed launches drew from it".
//!
//! [`FrontierMode::Shared`] runs the same engine at width 1 with all
//! draws taken from the caller's RNG directly — the pre-frontier scalar
//! semantics, kept so `run_chunk` stays bit-compatible with every shard,
//! checkpoint, and determinism guarantee shipped before this layer.
//!
//! The engine itself is width-policy only: the per-step SIMD work —
//! multi-stream ChaCha refills, vectorized `exp`/`ln`/normal transforms
//! — lives in the models' native `step_batch`/`step_tilted_batch`
//! kernels on [`crate::simd`], which see the whole alive cohort through
//! one call and stay bit-identical to scalar stepping (so everything
//! this module guarantees about widths holds on every SIMD backend,
//! including the forced-scalar one).
//!
//! See `docs/kernel.md` for the full contract.

use crate::estimator::{ChunkOutcome, Ledger};
use crate::model::{SimulationModel, Time};
use crate::query::{Problem, ValueFunction};
use crate::rng::{rng_from_seed, split_rng, SimRng};
use rand::RngExt;
use std::collections::BTreeMap;

/// Verdict of [`RootKernel::on_step`] for the lane's current segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SegmentStatus {
    /// The segment keeps stepping.
    Running,
    /// The segment ended (crossing, hit, or estimator-specific stop);
    /// the engine pulls the root's next segment or retires the root.
    SegmentDone,
}

/// Estimator-specific root-path program run by the frontier engine.
///
/// A *root* is one independent sample (with its whole splitting tree, for
/// the MLSS samplers); a *segment* is one contiguous simulated stretch of
/// it (a path between split points). The engine owns lane scheduling,
/// step accounting, commit ordering, and the budget rule; the kernel owns
/// everything the estimator defines: segment transitions, split
/// bookkeeping, and how a finished root folds into the shard.
///
/// Equivalence contract: driving a kernel through the engine at
/// [`FrontierMode::Shared`] must be bit-identical to the estimator's
/// historical scalar loop — same draws from the same RNG, same shard.
pub(crate) trait RootKernel<M, V>
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
{
    /// Per-root scratch (splitting stack, weight accumulators, …).
    type Scratch;
    /// Everything one finished root contributes to the shard.
    type Outcome;
    /// The estimator's shard type.
    type Shard: Ledger;

    /// A fresh scratch (reused across roots via [`RootKernel::begin_root`]).
    fn new_scratch(&self) -> Self::Scratch;

    /// Reset `scratch` for a new root and return its first segment
    /// `(base state, base time)`. The first step will target `t + 1`.
    fn begin_root(
        &self,
        problem: &Problem<'_, M, V>,
        scratch: &mut Self::Scratch,
    ) -> (M::State, Time);

    /// Advance every alive lane one step. The default delegates to the
    /// model's (possibly native) batch kernel; estimators with their own
    /// stepping rule (importance sampling's tilted proposal) override.
    fn step_lanes(
        &self,
        problem: &Problem<'_, M, V>,
        lanes: &mut [M::State],
        ts: &[Time],
        rngs: &mut [SimRng],
        alive: &[usize],
        scratches: &mut [Self::Scratch],
    ) {
        let _ = scratches;
        problem.model.step_batch(lanes, ts, rngs, alive);
    }

    /// Inspect a lane after one step (`state` is the freshly produced
    /// state at time `t`); record estimator bookkeeping in `scratch`.
    fn on_step(
        &self,
        problem: &Problem<'_, M, V>,
        scratch: &mut Self::Scratch,
        state: &M::State,
        t: Time,
    ) -> SegmentStatus;

    /// The root's next pending segment, or `None` when the root is done.
    fn next_segment(&self, scratch: &mut Self::Scratch) -> Option<(M::State, Time)>;

    /// Package the finished root; `steps` is its total `g` invocations.
    fn finish_root(&self, scratch: &mut Self::Scratch, steps: u64) -> Self::Outcome;

    /// Fold a committed root into the shard. Called strictly in root
    /// launch order; must add the root's steps to the shard's step count.
    fn commit(&self, shard: &mut Self::Shard, outcome: Self::Outcome);
}

/// How the frontier sources randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrontierMode {
    /// Width 1, every draw taken from the caller's RNG directly — the
    /// historical scalar chunk semantics, bit-compatible with all
    /// pre-frontier shards and checkpoints.
    Shared,
    /// Per-root streams at the given width (clamped to ≥ 1). Results are
    /// bit-identical at every width.
    PerRoot(usize),
}

/// Run the kernel until at least `budget` additional `g` invocations have
/// been *committed* into `shard` (the chunk contract: stop at the first
/// root completing at or beyond the budget).
pub(crate) fn run_frontier<M, V, K>(
    kernel: &K,
    problem: &Problem<'_, M, V>,
    shard: &mut K::Shard,
    budget: u64,
    rng: &mut SimRng,
    mode: FrontierMode,
) -> ChunkOutcome
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
    K: RootKernel<M, V>,
{
    let target = shard.steps().saturating_add(budget);
    let mut chunk = ChunkOutcome::default();
    if shard.steps() >= target {
        return chunk;
    }
    let (per_root, width) = match mode {
        FrontierMode::Shared => (false, 1),
        FrontierMode::PerRoot(w) => (true, w.max(1)),
    };
    let horizon = problem.horizon;

    // Master-RNG handling. PerRoot: remember the entry state so the exit
    // state can be set to "exactly one seed draw per committed root",
    // independent of speculative launches. Shared: the single lane *is*
    // the master stream; move it in and back out.
    let rng_entry = per_root.then(|| rng.clone());
    let mut shared_master = (!per_root).then(|| std::mem::replace(rng, rng_from_seed(0)));

    // Lane-parallel storage (allocated up to `width` slots, recycled).
    let mut lanes: Vec<M::State> = Vec::with_capacity(width);
    let mut ts: Vec<Time> = Vec::with_capacity(width);
    let mut rngs: Vec<SimRng> = Vec::with_capacity(width);
    let mut scratches: Vec<K::Scratch> = Vec::with_capacity(width);
    let mut root_of: Vec<u64> = Vec::with_capacity(width);
    let mut steps_of: Vec<u64> = Vec::with_capacity(width);
    let mut alive: Vec<usize> = Vec::with_capacity(width);
    let mut free: Vec<usize> = Vec::new();

    let mut next_root: u64 = 0; // launch counter (== master seed draws in PerRoot)
    let mut next_commit: u64 = 0; // next root index to fold into the shard
    let mut pending: BTreeMap<u64, (K::Outcome, u64)> = BTreeMap::new();
    // Steps taken by alive lanes plus retired-but-uncommitted roots;
    // bounds speculation in the launch gate below.
    let mut inflight_steps: u64 = 0;

    'outer: loop {
        // ---- launch: keep lanes busy while known work is below target --
        while (!free.is_empty() || lanes.len() < width)
            && shard.steps().saturating_add(inflight_steps) < target
        {
            let slot = match free.pop() {
                Some(s) => s,
                None => {
                    let s = lanes.len();
                    scratches.push(kernel.new_scratch());
                    // Placeholder values; overwritten below.
                    lanes.push(problem.model.initial_state());
                    ts.push(0);
                    rngs.push(if per_root {
                        rng_from_seed(0)
                    } else {
                        shared_master.take().expect("shared master present")
                    });
                    root_of.push(0);
                    steps_of.push(0);
                    s
                }
            };
            if per_root {
                // The per-root stream: one seed draw from the master.
                rngs[slot] = split_rng(rng);
            }
            let (state, t0) = kernel.begin_root(problem, &mut scratches[slot]);
            debug_assert!(t0 < horizon, "roots must have at least one step");
            lanes[slot] = state;
            ts[slot] = t0;
            root_of[slot] = next_root;
            steps_of[slot] = 0;
            next_root += 1;
            alive.push(slot);
        }

        // ---- step the cohort ------------------------------------------
        if !alive.is_empty() {
            for &i in &alive {
                ts[i] += 1; // target time of the state being produced
            }
            kernel.step_lanes(problem, &mut lanes, &ts, &mut rngs, &alive, &mut scratches);
            let mut k = 0;
            while k < alive.len() {
                let i = alive[k];
                steps_of[i] += 1;
                inflight_steps += 1;
                let status = kernel.on_step(problem, &mut scratches[i], &lanes[i], ts[i]);
                if status == SegmentStatus::SegmentDone || ts[i] >= horizon {
                    // Install the next runnable segment (segments born at
                    // or past the horizon run zero steps — skip them).
                    let mut retired = true;
                    while let Some((s, t)) = kernel.next_segment(&mut scratches[i]) {
                        if t < horizon {
                            lanes[i] = s;
                            ts[i] = t;
                            retired = false;
                            break;
                        }
                    }
                    if retired {
                        let out = kernel.finish_root(&mut scratches[i], steps_of[i]);
                        pending.insert(root_of[i], (out, steps_of[i]));
                        free.push(i);
                        alive.swap_remove(k);
                        continue;
                    }
                }
                k += 1;
            }
        }

        // ---- commit in root order -------------------------------------
        while let Some((out, steps)) = pending.remove(&next_commit) {
            if shard.steps() >= target {
                // The scalar rule would never have launched this root —
                // discard it (and, transitively, everything after it).
                break 'outer;
            }
            inflight_steps -= steps;
            let before = shard.steps();
            kernel.commit(shard, out);
            chunk.steps += shard.steps() - before;
            chunk.roots += 1;
            next_commit += 1;
        }
        if shard.steps() >= target {
            break;
        }
    }

    // ---- speculation ledger ---------------------------------------------
    // Roots launched past the last committed one are discarded work —
    // the cost of running a frontier wider than the chunk's remaining
    // commit target. The width policy's boundary shrink exists to drive
    // this to zero; the counters let tests and SHOW DIAGNOSTICS see it.
    crate::width::record_frontier(width, next_root, next_commit);

    // ---- restore the master RNG -----------------------------------------
    if per_root {
        // Exactly one seed draw per *committed* root, as the width-1
        // execution would have left it.
        *rng = rng_entry.expect("saved entry state");
        for _ in 0..next_commit {
            let _ = rng.random::<u64>();
        }
    } else {
        // The (single) lane held the master stream; hand it back.
        *rng = if rngs.is_empty() {
            shared_master.take().expect("never launched")
        } else {
            rngs.swap_remove(0)
        };
    }
    chunk
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::Estimator;
    use crate::gmlss::GMlssConfig;
    use crate::levels::PartitionPlan;
    use crate::quality::RunControl;
    use crate::query::RatioValue;
    use crate::rng::rng_from_seed;
    use crate::srs::SrsEstimator;

    struct JumpyWalk;

    impl SimulationModel for JumpyWalk {
        type State = f64;

        fn initial_state(&self) -> f64 {
            0.0
        }

        fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            let mut v = s + if rng.random::<f64>() < 0.5 {
                0.05
            } else {
                -0.05
            };
            if rng.random::<f64>() < 0.02 {
                v += 0.5;
            }
            v.clamp(0.0, 1.0)
        }
    }

    type Vf = RatioValue<fn(&f64) -> f64>;

    fn vf() -> Vf {
        fn score(s: &f64) -> f64 {
            *s
        }
        RatioValue::new(score as fn(&f64) -> f64, 1.0)
    }

    #[test]
    fn widths_are_bit_identical_and_rewind_the_rng() {
        let model = JumpyWalk;
        let v = vf();
        let problem = Problem::new(&model, &v, 60);
        let mut reference: Option<(u64, u64, u64, u64)> = None;
        for width in [1usize, 3, 17, 64] {
            let mut rng = rng_from_seed(42);
            let mut shard = <SrsEstimator as Estimator<JumpyWalk, Vf>>::shard(&SrsEstimator);
            SrsEstimator.run_chunk_batched(problem, &mut shard, 40_000, &mut rng, width);
            let sig = (shard.n, shard.hits, shard.steps, rng.random::<u64>());
            match &reference {
                None => reference = Some(sig),
                Some(r) => assert_eq!(*r, sig, "width {width} diverged"),
            }
        }
    }

    #[test]
    fn batched_chunk_boundaries_are_invisible() {
        // Two batched chunks must equal one big batched chunk — shard and
        // master RNG state both — at a width that forces speculation
        // discard at each boundary.
        let model = JumpyWalk;
        let v = vf();
        let problem = Problem::new(&model, &v, 60);
        let plan = PartitionPlan::new(vec![0.4, 0.7]).unwrap();
        let cfg = GMlssConfig::new(plan, RunControl::budget(1));

        let mut rng_a = rng_from_seed(7);
        let mut one = crate::estimator::shard_for(&cfg, &problem);
        cfg.run_chunk_batched(problem, &mut one, 50_000, &mut rng_a, 32);

        let mut rng_b = rng_from_seed(7);
        let mut two = crate::estimator::shard_for(&cfg, &problem);
        cfg.run_chunk_batched(problem, &mut two, 20_000, &mut rng_b, 32);
        let already = two.steps();
        cfg.run_chunk_batched(problem, &mut two, 50_000 - already, &mut rng_b, 32);

        assert_eq!(one.steps(), two.steps());
        assert_eq!(one.n_roots(), two.n_roots());
        assert_eq!(one.hits, two.hits);
        assert_eq!(one.tau().to_bits(), two.tau().to_bits());
        assert_eq!(rng_a.random::<u64>(), rng_b.random::<u64>());
    }

    #[test]
    fn overshoot_stays_one_root_at_any_width() {
        // The commit rule is the scalar stopping rule at every width:
        // never more than one root past the budget.
        let model = JumpyWalk;
        let v = vf();
        let problem = Problem::new(&model, &v, 50);
        for width in [1usize, 64] {
            let mut rng = rng_from_seed(3);
            let mut shard = <SrsEstimator as Estimator<JumpyWalk, Vf>>::shard(&SrsEstimator);
            SrsEstimator.run_chunk_batched(problem, &mut shard, 10_000, &mut rng, width);
            assert!(shard.steps >= 10_000);
            assert!(shard.steps < 10_000 + 50, "width {width}: {}", shard.steps);
        }
    }
}
