//! Stopping criteria: simulation budgets and quality targets (§2.1, §6).
//!
//! The paper runs samplers either (a) until a fixed budget of `g`
//! invocations is exhausted, or (b) until the estimate reaches a target
//! quality — a confidence-interval width or a relative error. Both are
//! expressed here as a [`RunControl`] consumed by every sampler.

use crate::estimate::Estimate;
use serde::{Deserialize, Serialize};

/// A quality target for an estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QualityTarget {
    /// Stop when the normal-approximation CI half-width at `confidence`
    /// drops to `rel_width × reference` (the paper's "1% CI with 95%
    /// confidence", interpreted relative to the answer probability as in
    /// Figure 8). `reference = None` uses the running estimate.
    ConfidenceInterval {
        /// Confidence level, e.g. 0.95.
        confidence: f64,
        /// Target half-width as a fraction of the reference probability.
        rel_width: f64,
        /// Optional known reference probability (ground truth).
        reference: Option<f64>,
    },
    /// Stop when `√Var / reference ≤ target` (the paper's "10% RE").
    /// `reference = None` uses the running estimate — the practical
    /// fallback described in §6.
    RelativeError {
        /// Target relative error, e.g. 0.10.
        target: f64,
        /// Optional known reference probability.
        reference: Option<f64>,
    },
}

impl QualityTarget {
    /// The paper's default CI target: 1% relative half-width, 95%
    /// confidence.
    pub fn paper_ci() -> Self {
        QualityTarget::ConfidenceInterval {
            confidence: 0.95,
            rel_width: 0.01,
            reference: None,
        }
    }

    /// The paper's default RE target: 10% relative error.
    pub fn paper_re() -> Self {
        QualityTarget::RelativeError {
            target: 0.10,
            reference: None,
        }
    }

    /// Is the target satisfied by `est`? A zero/unknown reference (e.g. no
    /// hits yet) never satisfies the target.
    pub fn satisfied(&self, est: &Estimate) -> bool {
        match *self {
            QualityTarget::ConfidenceInterval {
                confidence,
                rel_width,
                reference,
            } => {
                let reference = reference.unwrap_or(est.tau);
                if reference <= 0.0 || est.hits == 0 {
                    return false;
                }
                est.ci_half_width(confidence) <= rel_width * reference
            }
            QualityTarget::RelativeError { target, reference } => {
                let reference = reference.unwrap_or(est.tau);
                if reference <= 0.0 || est.hits == 0 {
                    return false;
                }
                est.relative_error(reference) <= target
            }
        }
    }
}

/// How long a sampler runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RunControl {
    /// Run until (at least) this many `g` invocations have been spent.
    /// The paper's fixed-budget mode.
    Budget(u64),
    /// Run until the quality target holds, re-checking after every
    /// `check_every` root paths. `max_steps` is a hard safety valve.
    Target {
        /// The quality target to reach.
        target: QualityTarget,
        /// Check cadence in root paths.
        check_every: u64,
        /// Upper bound on `g` invocations regardless of quality.
        max_steps: u64,
    },
}

impl RunControl {
    /// Target mode with sensible defaults (check every 256 roots, 10^10
    /// step valve).
    pub fn until(target: QualityTarget) -> Self {
        RunControl::Target {
            target,
            check_every: 256,
            max_steps: 10_000_000_000,
        }
    }

    /// Budget mode.
    pub fn budget(steps: u64) -> Self {
        RunControl::Budget(steps)
    }

    /// Decide whether to keep sampling given the current state.
    pub fn should_continue(&self, est: &Estimate, roots_since_check: &mut u64) -> bool {
        match self {
            RunControl::Budget(b) => est.steps < *b,
            RunControl::Target {
                target,
                check_every,
                max_steps,
            } => {
                if est.steps >= *max_steps {
                    return false;
                }
                if *roots_since_check < *check_every {
                    return true;
                }
                *roots_since_check = 0;
                !target.satisfied(est)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(tau: f64, var: f64, hits: u64, steps: u64) -> Estimate {
        Estimate {
            tau,
            variance: var,
            n_roots: 100,
            steps,
            hits,
        }
    }

    #[test]
    fn ci_target_satisfaction() {
        let t = QualityTarget::ConfidenceInterval {
            confidence: 0.95,
            rel_width: 0.01,
            reference: None,
        };
        // half width 1.96e-4 ≤ 0.01*0.5? yes.
        assert!(t.satisfied(&est(0.5, 1e-8, 10, 0)));
        // Way too wide.
        assert!(!t.satisfied(&est(0.5, 1e-2, 10, 0)));
        // No hits -> never satisfied even with zero variance.
        assert!(!t.satisfied(&est(0.0, 0.0, 0, 0)));
    }

    #[test]
    fn re_target_satisfaction() {
        let t = QualityTarget::paper_re();
        assert!(t.satisfied(&est(0.01, 1e-7, 3, 0))); // RE ≈ 0.0316/... wait: sqrt(1e-7)=3.16e-4, /0.01 = 3.2% ≤ 10%
        assert!(!t.satisfied(&est(0.01, 1e-5, 3, 0))); // RE ≈ 31.6%
    }

    #[test]
    fn re_target_with_reference() {
        let t = QualityTarget::RelativeError {
            target: 0.10,
            reference: Some(0.02),
        };
        // sqrt(4e-6)=2e-3, / 0.02 = 0.1 → satisfied (boundary).
        assert!(t.satisfied(&est(0.5, 4e-6, 1, 0)));
        assert!(!t.satisfied(&est(0.5, 5e-6, 1, 0)));
    }

    #[test]
    fn budget_control() {
        let c = RunControl::budget(1000);
        let mut since = 0;
        assert!(c.should_continue(&est(0.1, 1.0, 1, 999), &mut since));
        assert!(!c.should_continue(&est(0.1, 1.0, 1, 1000), &mut since));
    }

    #[test]
    fn target_control_checks_cadence() {
        let c = RunControl::Target {
            target: QualityTarget::paper_re(),
            check_every: 10,
            max_steps: 1_000_000,
        };
        // Quality already met, but cadence not reached: keep going.
        let good = est(0.01, 1e-9, 5, 100);
        let mut since = 5;
        assert!(c.should_continue(&good, &mut since));
        // Cadence reached: stop (target met) and reset counter.
        let mut since = 10;
        assert!(!c.should_continue(&good, &mut since));
        assert_eq!(since, 0);
        // Safety valve.
        let mut since = 0;
        assert!(!c.should_continue(&est(0.0, 1.0, 0, 1_000_000), &mut since));
    }
}
