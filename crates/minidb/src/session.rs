//! Concurrent serving sessions: the asynchronous face of the §6.4 DBMS
//! integration.
//!
//! `mlss_estimate` is synchronous — the SQL call blocks until the
//! relative-error target is reached, which can take seconds for tight
//! targets. A [`Session`] instead fronts a shared
//! [`mlss_core::scheduler::Scheduler`]: queries are **submitted**,
//! time-sliced alongside each other, and **polled** for results, so many
//! clients share one engine without head-of-line blocking.
//!
//! Three stored procedures wrap the lifecycle (all also available as
//! native methods):
//!
//! * `mlss_submit(model, method, beta, horizon, target_re [, priority [, seed]])`
//!   → query id (integer). Lower priority runs first; the seed pins the
//!   query's RNG stream for reproducibility (drawn from the session
//!   stream when omitted).
//! * `mlss_poll(id)` → the estimate `τ̂` (float) once done — the first
//!   such poll also appends the standard `results` row — or a status
//!   string (`'queued'`, `'running'`, `'paused'`, `'cancelled'`,
//!   `'failed: …'`) while not.
//! * `mlss_cancel(id)` → 1 if the cancellation took effect, 0 if the
//!   query was already terminal.
//!
//! Sessions share one [`PlanCache`] across the synchronous and scheduled
//! paths, so a submit after an estimate (or vice versa) of the same
//! (model, β, horizon, method) reuses the derived partition plan instead
//! of re-running the pilot. [`Session::diagnostics`] surfaces the cache
//! and pool counters.
//!
//! Known trade-off: on a plan-cache **miss**, `mlss_submit` runs the
//! pilot (2 000 SRS paths) synchronously before admitting the query —
//! a bounded, horizon-proportional cost paid once per query shape;
//! warm submits return immediately. Scheduling the pilot as the query's
//! first slice would remove even that cost and is left as future work.

use crate::engine::{Database, DbError};
use crate::proc::{
    arg_f64, arg_i64, arg_text, results_schema, seed_default_models, PlanContext, ProcRegistry,
    StoredProcedure,
};
use crate::value::Value;
use mlss_core::estimator::Diagnostics;
use mlss_core::plan_cache::PlanCache;
use mlss_core::prelude::SimRng;
use mlss_core::rng::{rng_from_seed, split_rng};
use mlss_core::scheduler::{QueryId, QueryStatus, Scheduler, SchedulerConfig};
use rand::RngExt;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Session tuning knobs.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Scheduler worker threads.
    pub workers: usize,
    /// `g` invocations per scheduler slice.
    pub slice_budget: u64,
    /// Panic retries per query before it is reported failed.
    pub max_retries: u32,
    /// Frontier width for scheduled queries (0 = scalar slices; w ≥ 1 =
    /// batched slices at width w — bit-identical across widths, so this
    /// is purely a throughput knob).
    pub batch_width: usize,
    /// Session master seed (drives per-query seeds when the caller does
    /// not pin one).
    pub seed: u64,
    /// Seed the `models` parameter table with the built-in defaults.
    pub seed_models: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            slice_budget: 32_768,
            max_retries: 1,
            batch_width: 0,
            seed: 0,
            seed_models: true,
        }
    }
}

/// Submission metadata retained for the `results` row a done query
/// produces on its first successful poll.
struct SubmitMeta {
    model: String,
    method: String,
    beta: f64,
    horizon: i64,
    /// Plan provenance (`"hit"`/`"miss"`/`"none"`) captured at submit
    /// time, surfaced in the query's `results` row on the first
    /// successful poll.
    plan_source: &'static str,
    submitted: Instant,
    recorded: bool,
}

type MetaMap = Mutex<BTreeMap<QueryId, SubmitMeta>>;

/// A serving session: an embedded database plus a shared scheduler, plan
/// cache, and procedure registry (the built-ins plus
/// `mlss_submit`/`mlss_poll`/`mlss_cancel`).
pub struct Session {
    db: Arc<Database>,
    scheduler: Arc<Scheduler>,
    plans: Arc<PlanCache>,
    registry: ProcRegistry,
    meta: Arc<MetaMap>,
    rng: Mutex<SimRng>,
}

impl Session {
    /// Open a session over a fresh database.
    pub fn new(cfg: SessionConfig) -> Result<Self, DbError> {
        Self::over(Arc::new(Database::new()), cfg)
    }

    /// Open a session over an existing database (tables are shared; the
    /// scheduler and caches are per-session).
    pub fn over(db: Arc<Database>, cfg: SessionConfig) -> Result<Self, DbError> {
        if cfg.seed_models && !db.has_table("models") {
            seed_default_models(&db)?;
        }
        let plans = Arc::new(PlanCache::new());
        let scheduler = Arc::new(Scheduler::new(SchedulerConfig {
            workers: cfg.workers,
            slice_budget: cfg.slice_budget,
            max_retries: cfg.max_retries,
            batch_width: cfg.batch_width,
        }));
        let meta: Arc<MetaMap> = Arc::new(Mutex::new(BTreeMap::new()));
        let mut registry = ProcRegistry::with_builtins_cached(Arc::clone(&plans));
        registry.register(Box::new(MlssSubmit {
            scheduler: Arc::clone(&scheduler),
            plans: Arc::clone(&plans),
            meta: Arc::clone(&meta),
            models: crate::proc::ModelRegistry::with_builtins(),
        }));
        registry.register(Box::new(MlssPoll {
            scheduler: Arc::clone(&scheduler),
            meta: Arc::clone(&meta),
        }));
        registry.register(Box::new(MlssCancel {
            scheduler: Arc::clone(&scheduler),
        }));
        Ok(Self {
            db,
            scheduler,
            plans,
            registry,
            meta,
            rng: Mutex::new(rng_from_seed(cfg.seed)),
        })
    }

    /// The underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The session's scheduler (for native pause/resume/progress access).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The session's plan cache.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }

    /// Call a stored procedure through the session registry.
    ///
    /// Each call draws an independent child stream from the session RNG
    /// under the lock (the lock is *not* held while the procedure runs),
    /// so concurrent calls from multiple clients get independent,
    /// uncorrelated randomness.
    pub fn call(&self, proc_: &str, args: &[Value]) -> Result<Value, DbError> {
        let mut rng = {
            let mut parent = self.rng.lock().unwrap_or_else(PoisonError::into_inner);
            split_rng(&mut parent)
        };
        self.registry.call(&self.db, proc_, args, &mut rng)
    }

    /// Submit an estimation query; returns its id immediately.
    pub fn submit(
        &self,
        model: &str,
        method: &str,
        beta: f64,
        horizon: i64,
        target_re: f64,
        priority: u8,
    ) -> Result<QueryId, DbError> {
        let args = [
            Value::Text(model.to_string()),
            Value::Text(method.to_string()),
            Value::Float(beta),
            Value::Int(horizon),
            Value::Float(target_re),
            Value::Int(priority as i64),
        ];
        let id = self.call("mlss_submit", &args)?;
        Ok(id.as_i64().expect("mlss_submit returns an id") as QueryId)
    }

    /// Current status of a submitted query.
    pub fn poll(&self, id: QueryId) -> Option<QueryStatus> {
        self.scheduler.poll(id)
    }

    /// Block until the query is terminal; records the `results` row for
    /// completed queries (like a successful `mlss_poll`, and with the
    /// same error behavior: a failed insert surfaces instead of silently
    /// dropping the row). `Ok(None)` means the id is unknown.
    pub fn wait(&self, id: QueryId) -> Result<Option<QueryStatus>, DbError> {
        let Some(status) = self.scheduler.wait(id) else {
            return Ok(None);
        };
        if let QueryStatus::Done(est) = &status {
            record_result(&self.db, &self.meta, &self.scheduler, id, est)?;
        }
        Ok(Some(status))
    }

    /// Cancel a query; true if the cancellation took effect.
    pub fn cancel(&self, id: QueryId) -> bool {
        self.scheduler.cancel(id)
    }

    /// Plan-cache and scheduler-pool health counters.
    pub fn diagnostics(&self) -> Vec<Diagnostics> {
        vec![self.plans.diagnostics(), self.scheduler.pool_diagnostics()]
    }

    /// Evict terminal queries from the scheduler and drop their recorded
    /// submission metadata. Completed-but-never-polled queries are
    /// **recorded first** — eviction must not lose a result a client
    /// never got to see; it lands in `results` like any other. Evicted
    /// ids become unknown to `poll`/`wait`. Returns the number of
    /// queries evicted.
    pub fn prune(&self) -> Result<usize, DbError> {
        // Flush pending Done results before their slots disappear.
        let unrecorded: Vec<QueryId> = {
            let metas = self.meta.lock().unwrap_or_else(PoisonError::into_inner);
            metas
                .iter()
                .filter(|(_, m)| !m.recorded)
                .map(|(id, _)| *id)
                .collect()
        };
        for id in unrecorded {
            if let Some(QueryStatus::Done(est)) = self.scheduler.poll(id) {
                record_result(&self.db, &self.meta, &self.scheduler, id, &est)?;
            }
        }
        let evicted = self.scheduler.evict_terminal();
        self.meta
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|id, m| !m.recorded && self.scheduler.poll(*id).is_some());
        Ok(evicted)
    }
}

/// Append the standard `results` row for a completed query exactly once.
/// `millis` reports the query's serving latency — submission to
/// completion, as measured by the scheduler — not how late the caller
/// happened to poll.
fn record_result(
    db: &Database,
    meta: &MetaMap,
    scheduler: &Scheduler,
    id: QueryId,
    est: &mlss_core::estimate::Estimate,
) -> Result<(), DbError> {
    let mut metas = meta.lock().unwrap_or_else(PoisonError::into_inner);
    let Some(m) = metas.get_mut(&id) else {
        return Ok(()); // submitted outside the session procs
    };
    if m.recorded {
        return Ok(());
    }
    if !db.has_table("results") {
        db.create_table("results", results_schema())?;
    }
    let millis = scheduler
        .progress(id)
        .map(|p| p.elapsed)
        .unwrap_or_else(|| m.submitted.elapsed());
    db.insert(
        "results",
        vec![
            m.model.as_str().into(),
            m.method.as_str().into(),
            m.beta.into(),
            Value::Int(m.horizon),
            est.tau.into(),
            est.variance.into(),
            Value::Int(est.steps as i64),
            Value::Int(est.n_roots as i64),
            Value::Int(millis.as_millis() as i64),
            m.plan_source.into(),
        ],
    )?;
    m.recorded = true;
    Ok(())
}

/// `mlss_submit(model, method, beta, horizon, target_re [, priority [, seed]])`.
struct MlssSubmit {
    scheduler: Arc<Scheduler>,
    plans: Arc<PlanCache>,
    meta: Arc<MetaMap>,
    models: crate::proc::ModelRegistry,
}

impl StoredProcedure for MlssSubmit {
    fn name(&self) -> &str {
        "mlss_submit"
    }

    fn arity(&self) -> (usize, usize) {
        (5, 7)
    }

    fn execute(&self, db: &Database, args: &[Value], rng: &mut SimRng) -> Result<Value, DbError> {
        let proc_ = self.name();
        let model_name = arg_text(proc_, args, 0)?.to_string();
        let method_name = arg_text(proc_, args, 1)?.to_string();
        let method = crate::proc::Method::parse(&method_name)?;
        let beta = arg_f64(proc_, args, 2)?;
        let horizon = arg_i64(proc_, args, 3)?;
        if horizon < 1 {
            return Err(DbError::Proc("horizon must be ≥ 1".into()));
        }
        let target_re = arg_f64(proc_, args, 4)?;
        if !(target_re.is_finite() && target_re > 0.0) {
            return Err(DbError::Proc("target_re must be positive".into()));
        }
        let priority = match args.get(5) {
            None => 0u8,
            Some(_) => {
                let p = arg_i64(proc_, args, 5)?;
                if !(0..=255).contains(&p) {
                    return Err(DbError::Proc("priority must be in 0..=255".into()));
                }
                p as u8
            }
        };
        let seed = match args.get(6) {
            None => rng.random::<u64>(),
            Some(_) => arg_i64(proc_, args, 6)? as u64,
        };

        let (runner, fp) = self.models.build(db, &model_name, horizon as u64, beta)?;
        let (id, plan_source) = runner.submit(
            &self.scheduler,
            beta,
            horizon as u64,
            method,
            target_re,
            seed,
            priority,
            PlanContext {
                cache: &self.plans,
                fingerprint: fp,
            },
        )?;
        self.meta
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(
                id,
                SubmitMeta {
                    model: model_name,
                    method: method_name,
                    beta,
                    horizon,
                    plan_source,
                    submitted: Instant::now(),
                    recorded: false,
                },
            );
        Ok(Value::Int(id as i64))
    }
}

/// `mlss_poll(id)` — `τ̂` (float) once done, else a status string.
struct MlssPoll {
    scheduler: Arc<Scheduler>,
    meta: Arc<MetaMap>,
}

impl StoredProcedure for MlssPoll {
    fn name(&self) -> &str {
        "mlss_poll"
    }

    fn arity(&self) -> (usize, usize) {
        (1, 1)
    }

    fn execute(&self, db: &Database, args: &[Value], _rng: &mut SimRng) -> Result<Value, DbError> {
        let id = arg_i64(self.name(), args, 0)? as QueryId;
        let status = self
            .scheduler
            .poll(id)
            .ok_or_else(|| DbError::Proc(format!("unknown query id {id}")))?;
        Ok(match status {
            QueryStatus::Done(est) => {
                record_result(db, &self.meta, &self.scheduler, id, &est)?;
                Value::Float(est.tau)
            }
            QueryStatus::Queued => Value::Text("queued".into()),
            QueryStatus::Running => Value::Text("running".into()),
            QueryStatus::Paused => Value::Text("paused".into()),
            QueryStatus::Cancelled => Value::Text("cancelled".into()),
            QueryStatus::Failed(msg) => Value::Text(format!("failed: {msg}")),
        })
    }
}

/// `mlss_cancel(id)` — 1 if the cancellation took effect, else 0.
struct MlssCancel {
    scheduler: Arc<Scheduler>,
}

impl StoredProcedure for MlssCancel {
    fn name(&self) -> &str {
        "mlss_cancel"
    }

    fn arity(&self) -> (usize, usize) {
        (1, 1)
    }

    fn execute(&self, _db: &Database, args: &[Value], _rng: &mut SimRng) -> Result<Value, DbError> {
        let id = arg_i64(self.name(), args, 0)? as QueryId;
        Ok(Value::Int(self.scheduler.cancel(id) as i64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc::results_count;

    fn session() -> Session {
        Session::new(SessionConfig {
            workers: 2,
            slice_budget: 8_192,
            seed: 42,
            ..SessionConfig::default()
        })
        .unwrap()
    }

    fn submit_args(model: &str, method: &str, beta: f64, horizon: i64, re: f64) -> Vec<Value> {
        vec![
            model.into(),
            method.into(),
            beta.into(),
            Value::Int(horizon),
            re.into(),
        ]
    }

    #[test]
    fn registry_lists_session_procs() {
        let s = session();
        let names: Vec<String> = {
            let mut rng = rng_from_seed(0);
            let _ = &mut rng;
            s.registry.names().iter().map(|n| n.to_string()).collect()
        };
        for p in ["mlss_submit", "mlss_poll", "mlss_cancel", "mlss_estimate"] {
            assert!(names.iter().any(|n| n == p), "missing proc {p}");
        }
    }

    #[test]
    fn submit_poll_roundtrip_records_result() {
        let s = session();
        let id = s
            .call("mlss_submit", &submit_args("walk", "srs", 6.0, 50, 0.3))
            .unwrap()
            .as_i64()
            .unwrap() as QueryId;
        // Poll until done; the first done-poll returns τ̂ and records it.
        let tau = loop {
            match s.call("mlss_poll", &[Value::Int(id as i64)]).unwrap() {
                Value::Float(tau) => break tau,
                Value::Text(status) => {
                    assert!(
                        matches!(status.as_str(), "queued" | "running"),
                        "unexpected status {status}"
                    );
                    std::thread::yield_now();
                }
                other => panic!("unexpected poll result {other:?}"),
            }
        };
        assert!((0.0..=1.0).contains(&tau));
        assert_eq!(results_count(s.db()).unwrap(), 1);
        // Polling again must not duplicate the results row.
        let again = s.call("mlss_poll", &[Value::Int(id as i64)]).unwrap();
        assert!(matches!(again, Value::Float(_)));
        assert_eq!(results_count(s.db()).unwrap(), 1);
        // Prune evicts the consumed query; the results row survives.
        assert_eq!(s.prune().unwrap(), 1);
        assert!(s.poll(id).is_none());
        assert_eq!(results_count(s.db()).unwrap(), 1);
    }

    #[test]
    fn polled_results_surface_plan_cache_provenance() {
        let s = session();
        // First gmlss submit runs the pilot (miss), the second reuses the
        // plan (hit); SRS needs no plan at all.
        let a = s.submit("ar", "gmlss", 3.0, 40, 0.5, 0).unwrap();
        s.wait(a).unwrap().unwrap();
        let b = s.submit("ar", "gmlss", 3.0, 40, 0.5, 0).unwrap();
        s.wait(b).unwrap().unwrap();
        let c = s.submit("walk", "srs", 6.0, 50, 0.5, 0).unwrap();
        s.wait(c).unwrap().unwrap();
        let sources: Vec<String> = s
            .db()
            .with_table("results", |t| {
                t.scan()
                    .map(|row| row.last().unwrap().as_str().unwrap().to_string())
                    .collect()
            })
            .unwrap();
        assert_eq!(sources, vec!["miss", "hit", "none"]);
    }

    #[test]
    fn prune_records_unpolled_completions_before_evicting() {
        let s = session();
        let id = s.submit("walk", "srs", 6.0, 50, 0.3, 0).unwrap();
        // Let it finish without ever polling…
        while !s
            .scheduler()
            .poll(id)
            .map(|st| st.is_terminal())
            .unwrap_or(false)
        {
            std::thread::yield_now();
        }
        assert_eq!(results_count(s.db()).unwrap_or(0), 0, "not yet recorded");
        // …then prune: the result must be flushed, not destroyed.
        assert_eq!(s.prune().unwrap(), 1);
        assert!(s.poll(id).is_none());
        assert_eq!(results_count(s.db()).unwrap(), 1);
    }

    #[test]
    fn concurrent_submissions_share_the_plan_cache() {
        let s = session();
        // Same (model, β, horizon, method) four times: one pilot, three
        // cache hits.
        let mut ids = Vec::new();
        for _ in 0..4 {
            ids.push(
                s.submit("ar", "gmlss", 3.0, 40, 0.5, 0)
                    .expect("submit succeeds"),
            );
        }
        for id in ids {
            let status = s.wait(id).unwrap().unwrap();
            let est = status.estimate().expect("queries complete");
            assert!((0.0..=1.0).contains(&est.tau));
        }
        assert_eq!(s.plan_cache().misses(), 1, "one pilot only");
        assert!(s.plan_cache().hits() >= 3, "repeat queries hit the cache");
        assert_eq!(results_count(s.db()).unwrap(), 4);
        // Diagnostics surface the counters.
        let diags = s.diagnostics();
        let cache = diags.iter().find(|d| d.estimator == "plan_cache").unwrap();
        assert!(cache
            .details
            .iter()
            .any(|(k, v)| k == "plan_cache_hits" && *v >= 3.0));
    }

    #[test]
    fn synchronous_and_scheduled_paths_share_plans() {
        let s = session();
        // Synchronous estimate derives and caches the plan…
        let tau = s
            .call("mlss_estimate", &submit_args("ar", "gmlss", 3.0, 40, 0.5))
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((0.0..=1.0).contains(&tau));
        assert_eq!(s.plan_cache().misses(), 1);
        // …and the scheduled path reuses it.
        let id = s.submit("ar", "gmlss", 3.0, 40, 0.5, 0).unwrap();
        assert!(s.wait(id).unwrap().unwrap().estimate().is_some());
        assert_eq!(s.plan_cache().misses(), 1);
        assert!(s.plan_cache().hits() >= 1);
    }

    #[test]
    fn cancel_via_proc() {
        let s = Session::new(SessionConfig {
            workers: 1,
            slice_budget: 4_096,
            seed: 9,
            ..SessionConfig::default()
        })
        .unwrap();
        // Tight target ⇒ long-running query we can cancel.
        let id = s.submit("walk", "srs", 6.0, 60, 0.01, 0).unwrap();
        let cancelled = s
            .call("mlss_cancel", &[Value::Int(id as i64)])
            .unwrap()
            .as_i64()
            .unwrap();
        assert_eq!(cancelled, 1);
        loop {
            match s.call("mlss_poll", &[Value::Int(id as i64)]).unwrap() {
                Value::Text(status) if status == "cancelled" => break,
                Value::Text(status) => {
                    assert!(matches!(status.as_str(), "queued" | "running"));
                    std::thread::yield_now();
                }
                other => panic!("cancelled query produced {other:?}"),
            }
        }
        // Cancelling a terminal query reports 0.
        let again = s
            .call("mlss_cancel", &[Value::Int(id as i64)])
            .unwrap()
            .as_i64()
            .unwrap();
        assert_eq!(again, 0);
        assert_eq!(results_count(s.db()).unwrap_or(0), 0);
    }

    #[test]
    fn submit_validates_arguments() {
        let s = session();
        // Unknown method.
        assert!(s
            .call("mlss_submit", &submit_args("walk", "nope", 6.0, 50, 0.3))
            .is_err());
        // Wrong arity.
        assert!(matches!(
            s.call(
                "mlss_submit",
                &submit_args("walk", "srs", 6.0, 50, 0.3)[..2]
            ),
            Err(DbError::ProcArity { .. })
        ));
        // Wrong arg type.
        let mut bad = submit_args("walk", "srs", 6.0, 50, 0.3);
        bad[0] = Value::Int(7);
        assert!(matches!(
            s.call("mlss_submit", &bad),
            Err(DbError::ProcArgType { index: 0, .. })
        ));
        // Unknown poll id.
        assert!(s.call("mlss_poll", &[Value::Int(404)]).is_err());
    }
}
