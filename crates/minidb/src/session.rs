//! Concurrent serving sessions: the asynchronous face of the §6.4 DBMS
//! integration, and the front door for the declarative ESTIMATE dialect.
//!
//! `mlss_estimate` is synchronous — the SQL call blocks until the
//! relative-error target is reached, which can take seconds for tight
//! targets. A [`Session`] instead fronts a shared
//! [`mlss_core::scheduler::Scheduler`]: queries are **submitted**,
//! time-sliced alongside each other, and **polled** for results, so many
//! clients share one engine without head-of-line blocking.
//!
//! [`Session::execute`] runs any statement text: the plain SQL surface
//! (`SELECT`/`INSERT`/…) plus the dialect —
//!
//! ```sql
//! ESTIMATE DURABILITY OF cpp(beta=500) WITHIN 1000
//!     USING gmlss(levels=5) TARGET RE 0.5%
//!     WITH (threads=4, batch_width=64) ASYNC;
//! EXPLAIN ESTIMATE DURABILITY OF cpp(beta=500) WITHIN 1000 TARGET RE 1%;
//! SHOW MODELS;
//! ```
//!
//! Every estimation path — dialect statement, positional procedure,
//! native [`Session::submit`] — compiles to the same
//! [`mlss_core::spec::QuerySpec`] and dispatches through
//! [`crate::dispatch::execute_spec`].
//!
//! Three stored procedures wrap the async lifecycle (all also available
//! as native methods):
//!
//! * `mlss_submit(model, method, beta, horizon, target_re [, priority [, seed]])`
//!   → query id (integer). Lower priority runs first; the seed pins the
//!   query's RNG stream for reproducibility (drawn from the session
//!   stream when omitted).
//! * `mlss_poll(id)` → the estimate `τ̂` (float) once done — the first
//!   such poll also appends the standard `results` row — or a status
//!   string (`'queued'`, `'running'`, `'paused'`, `'cancelled'`,
//!   `'failed: …'`) while not.
//! * `mlss_cancel(id)` → 1 if the cancellation took effect, 0 if the
//!   query was already terminal.
//!
//! Sessions share one [`PlanCache`] across the synchronous and scheduled
//! paths, so a submit after an estimate (or vice versa) of the same
//! (model, β, horizon, method) reuses the derived partition plan instead
//! of re-running the pilot. On a plan-cache **miss**, a submission does
//! *not* run the pilot synchronously: plan derivation is scheduled as
//! the query's first slice (single-flight across concurrent cold
//! submissions), recorded as `"miss"` in the query's `results`
//! provenance. [`Session::diagnostics`] surfaces the cache and pool
//! counters.

use crate::dispatch::{
    execute_rank, execute_spec, explain_rank, explain_spec, record_rank_rows, show_models,
    standings_rows, RankOutcome, SpecOutcome,
};
use crate::durability::{
    intern_provenance, rebuild_spec, Durability, SessionWal, WalSessionConfig,
};
use crate::engine::{Database, DbError};
use crate::proc::{
    arg_f64, arg_i64, arg_text, results_schema, seed_default_models, Method, ModelRegistry,
    PlanContext, ProcRegistry, StoredProcedure,
};
use crate::sql::{is_dialect, parse_dialect, DialectStatement, ExecResult};
use crate::value::Value;
use mlss_core::estimator::Diagnostics;
use mlss_core::plan_cache::{CachedPlan, PlanCache};
use mlss_core::prelude::SimRng;
use mlss_core::ranking::RaceOutcome;
use mlss_core::rng::{rng_from_seed, split_rng};
use mlss_core::scheduler::{DurabilityHook, QueryId, QueryStatus, Scheduler, SchedulerConfig};
use mlss_core::shard_store::ShardStore;
use mlss_core::spec::{ExecMode, QuerySpec, RankSpec};
use mlss_store::{Record, ResultRow};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Session tuning knobs.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Scheduler worker threads.
    pub workers: usize,
    /// `g` invocations per scheduler slice.
    pub slice_budget: u64,
    /// Panic retries per query before it is reported failed.
    pub max_retries: u32,
    /// Frontier width for scheduled queries (0 = scalar slices; w ≥ 1 =
    /// batched slices at width w — bit-identical across widths, so this
    /// is purely a throughput knob). Set it to
    /// [`mlss_core::width::AUTO_WIDTH`] to let every query resolve a
    /// width from its model's kernel class (the `batch_width=auto`
    /// policy, probe-memoized per query family). A spec's `batch_width`
    /// option overrides it per query.
    pub batch_width: usize,
    /// Session master seed (drives per-query seeds when the caller does
    /// not pin one).
    pub seed: u64,
    /// Seed the `models` parameter table with the built-in defaults.
    pub seed_models: bool,
    /// Capacity of the cross-query shard store (entries; LRU-evicted
    /// beyond it). `0` disables cross-query reuse entirely: every query
    /// runs cold and deposits nothing.
    pub shard_store_capacity: usize,
    /// Durability mode. [`Durability::Off`] (the default) keeps the
    /// pre-WAL behavior byte-for-byte; [`Durability::Wal`] journals
    /// results, plan builds, shard deposits, and the ASYNC lifecycle
    /// through a crash-recoverable log replayed by [`Session::over`].
    pub durability: Durability,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            slice_budget: 32_768,
            max_retries: 1,
            batch_width: 0,
            seed: 0,
            seed_models: true,
            shard_store_capacity: 64,
            durability: Durability::Off,
        }
    }
}

/// Submission metadata retained for the `results` row a done query
/// produces on its first successful poll.
struct SubmitMeta {
    model: String,
    method: String,
    beta: f64,
    horizon: i64,
    /// Plan provenance (`"hit"`/`"miss"`/`"none"`) captured at submit
    /// time (`"miss"` means plan derivation was scheduled as the query's
    /// first slice), surfaced in the query's `results` row on the first
    /// successful poll.
    plan_source: &'static str,
    /// Shard-store provenance (`"cold"`/`"warm"`/`"stored"`/`"none"`)
    /// captured at submit time, surfaced alongside `plan_source`.
    shard_reuse: &'static str,
    /// Tenant the submission ran under (`None` = tenantless), surfaced
    /// as the `results` row's `tenant` column.
    tenant: Option<String>,
    /// Plan-cache fingerprint, so the completion path can feed the
    /// observed steps/root regime back into the width memo.
    fingerprint: u64,
    submitted: Instant,
    recorded: bool,
}

type MetaMap = Mutex<BTreeMap<QueryId, SubmitMeta>>;

/// Submission metadata retained for an ASYNC `RANK BY` race: the rank
/// spec (to re-derive the per-arm rows), the standings handle the race
/// publishes into when it finalizes, and the per-arm plan provenance
/// captured at submit time.
struct RankMeta {
    rank: RankSpec,
    handle: Arc<Mutex<Option<RaceOutcome>>>,
    plan_sources: Vec<&'static str>,
    submitted: Instant,
    recorded: bool,
}

type RankMap = Mutex<BTreeMap<QueryId, RankMeta>>;

/// A pluggable diagnostics block (serving layers register admission /
/// connection counters here so `SHOW DIAGNOSTICS` surfaces them).
pub type DiagnosticsSource = Arc<dyn Fn() -> Diagnostics + Send + Sync>;

fn record_submit_meta(
    meta: &MetaMap,
    id: QueryId,
    spec: &QuerySpec,
    plan_source: &'static str,
    shard_reuse: &'static str,
    fingerprint: u64,
) {
    meta.lock().unwrap_or_else(PoisonError::into_inner).insert(
        id,
        SubmitMeta {
            model: spec.model.clone(),
            method: spec.method.name().to_string(),
            beta: spec.beta,
            horizon: spec.horizon as i64,
            plan_source,
            shard_reuse,
            tenant: spec.options.tenant.clone(),
            fingerprint,
            submitted: Instant::now(),
            recorded: false,
        },
    );
}

/// A serving session: an embedded database plus a shared scheduler, plan
/// cache, model registry, and procedure registry (the built-ins plus
/// `mlss_submit`/`mlss_poll`/`mlss_cancel`).
pub struct Session {
    db: Arc<Database>,
    scheduler: Arc<Scheduler>,
    plans: Arc<PlanCache>,
    store: Option<Arc<ShardStore>>,
    models: Arc<ModelRegistry>,
    registry: ProcRegistry,
    meta: Arc<MetaMap>,
    rank_meta: RankMap,
    rng: Mutex<SimRng>,
    wal: Option<Arc<SessionWal>>,
    recovered: Vec<QueryId>,
    extra_diags: Mutex<Vec<DiagnosticsSource>>,
}

impl Session {
    /// Open a session over a fresh database.
    pub fn new(cfg: SessionConfig) -> Result<Self, DbError> {
        Self::over(Arc::new(Database::new()), cfg)
    }

    /// Open a WAL-backed session journaling to `dir` (shorthand for
    /// setting [`SessionConfig::durability`] and calling
    /// [`Session::new`]). Replays any existing log: completed queries'
    /// rows are already in `results`, and interrupted ASYNC queries are
    /// resubmitted — see [`Session::recovered_ids`] /
    /// [`Session::wait_recovered`].
    pub fn open(dir: impl Into<PathBuf>, mut cfg: SessionConfig) -> Result<Self, DbError> {
        cfg.durability = Durability::Wal(WalSessionConfig::new(dir));
        Self::new(cfg)
    }

    /// Open a session over an existing database (tables are shared; the
    /// scheduler and caches are per-session).
    pub fn over(db: Arc<Database>, cfg: SessionConfig) -> Result<Self, DbError> {
        if cfg.seed_models && !db.has_table("models") {
            seed_default_models(&db)?;
        }
        // Open + replay the journal before anything else: the replayed
        // state seeds the caches below, and only then do observers and
        // the scheduler hook attach (replay must not re-journal itself).
        let (mut session_wal, wal_state) = match &cfg.durability {
            Durability::Off => (None, None),
            Durability::Wal(wcfg) => {
                let (sw, state) = SessionWal::open(wcfg)
                    .map_err(|e| DbError::Proc(format!("wal open failed: {e}")))?;
                (Some(sw), Some(state))
            }
        };
        let plans = Arc::new(PlanCache::new());
        let models = Arc::new(ModelRegistry::with_builtins());
        let scheduler = Arc::new(Scheduler::new(SchedulerConfig {
            workers: cfg.workers,
            slice_budget: cfg.slice_budget,
            max_retries: cfg.max_retries,
            batch_width: cfg.batch_width,
            tenant_weights: Vec::new(),
        }));
        let store = (cfg.shard_store_capacity > 0)
            .then(|| Arc::new(ShardStore::new(cfg.shard_store_capacity)));
        if let Some(store) = &store {
            // Completed and paused scheduler jobs deposit their shards
            // here; future submits over the same key reuse them.
            scheduler.attach_shard_store(Arc::clone(store));
        }

        // Seed replayed state: results rows (journaled + synthesized
        // from durable AsyncDone records), plan-cache entries, shard
        // deposits. Observers are not attached yet, so nothing here is
        // re-journaled.
        if let Some(state) = &wal_state {
            // Re-execute journaled plain SQL first (log order): user
            // tables must exist before anything that reads them, and the
            // statements are replayed verbatim so a recovered session
            // sees the same user-table state it crashed with.
            for stmt in &state.sql {
                crate::sql::execute(&db, stmt)?;
            }
            if !state.rows.is_empty() && !db.has_table("results") {
                db.create_table("results", results_schema())?;
            }
            for row in &state.rows {
                db.insert("results", result_row_values(row))?;
            }
            for (fp, method, levels, tau_hint, plan) in &state.plans {
                plans.seed(
                    *fp,
                    method,
                    *levels as usize,
                    CachedPlan {
                        plan: plan.clone(),
                        tau_hint: *tau_hint,
                    },
                );
            }
            if let Some(store) = &store {
                for (key, entry) in &state.deposits {
                    store.deposit(key.clone(), entry.clone());
                }
            }
        }
        if let (Some(sw), Some(state)) = (session_wal.as_mut(), &wal_state) {
            sw.note_replayed(state.rows.len() as u64, state.resubmit.len() as u64);
        }
        let wal = session_wal.map(Arc::new);

        // Startup compaction: rewrite the snapshot from the seeded
        // state (single-threaded here — nothing races the walk), then
        // attach the observers and the scheduler hook so everything
        // from now on journals through the fresh tail.
        if let (Some(sw), Some(state)) = (&wal, &wal_state) {
            // SQL statements lead the snapshot so a replay recreates the
            // user tables before anything else touches them.
            let mut records: Vec<Record> = state
                .sql
                .iter()
                .map(|s| Record::SqlStatement { sql: s.clone() })
                .collect();
            records.extend(state.rows.iter().cloned().map(Record::ResultRow));
            for ((fp, method, levels), cached) in plans.entries() {
                records.push(Record::PlanEntry {
                    fingerprint: fp,
                    method,
                    levels: levels as u64,
                    tau_hint: cached.tau_hint,
                    plan: cached.plan,
                });
            }
            if let Some(store) = &store {
                for (key, entry) in store.entries() {
                    records.push(Record::ShardDeposit { key, entry });
                }
            }
            for q in &state.resubmit {
                records.push(Record::AsyncSubmit {
                    qid: q.qid,
                    spec: q.spec.clone(),
                    plan_source: q.plan_source.clone(),
                    shard_reuse: q.shard_reuse.clone(),
                });
                if let Some((method, slices, entry)) = &q.checkpoint {
                    records.push(Record::AsyncCheckpoint {
                        qid: q.qid,
                        method: method.clone(),
                        slices: *slices,
                        entry: entry.clone(),
                    });
                }
            }
            sw.compact(&records)?;
            let plan_wal = Arc::clone(sw);
            plans.set_observer(Arc::new(move |fp, method, levels, cached: &CachedPlan| {
                plan_wal.record_plan_entry(fp, method, levels, cached);
            }));
            if let Some(store) = &store {
                let store_wal = Arc::clone(sw);
                store.set_observer(Arc::new(move |key, entry| {
                    store_wal.record_deposit(key, entry);
                }));
            }
            scheduler.attach_durability_hook(Arc::clone(sw) as Arc<dyn DurabilityHook>);
        }

        let meta: Arc<MetaMap> = Arc::new(Mutex::new(BTreeMap::new()));
        let mut registry = ProcRegistry::with_builtins_shared(
            Arc::clone(&plans),
            Arc::clone(&models),
            store.clone(),
            wal.clone(),
        );
        registry.register(Box::new(MlssSubmit {
            scheduler: Arc::clone(&scheduler),
            plans: Arc::clone(&plans),
            store: store.clone(),
            meta: Arc::clone(&meta),
            models: Arc::clone(&models),
            wal: wal.clone(),
        }));
        registry.register(Box::new(MlssPoll {
            scheduler: Arc::clone(&scheduler),
            plans: Arc::clone(&plans),
            meta: Arc::clone(&meta),
        }));
        registry.register(Box::new(MlssCancel {
            scheduler: Arc::clone(&scheduler),
        }));

        // Resubmit interrupted ASYNC queries in durable-id order: warm
        // from their last checkpoint when one survived, cold from their
        // recorded seed otherwise. Both paths are bit-exact for pinned
        // seeds (the cold rerun replays the identical stream).
        let mut recovered = Vec::new();
        if let (Some(sw), Some(state)) = (&wal, wal_state) {
            for q in state.resubmit {
                let spec = rebuild_spec(&q.spec)?;
                let (runner, fp, _) = models.build_spec(&db, &spec)?;
                let ctx = PlanContext {
                    cache: Arc::clone(&plans),
                    fingerprint: fp,
                    store: store.clone(),
                };
                let out = match &q.checkpoint {
                    Some((method, _, entry)) => {
                        runner.resume(&scheduler, &spec, q.spec.seed, &ctx, method, entry)?
                    }
                    None => runner.submit(&scheduler, &spec, q.spec.seed, &ctx)?,
                };
                sw.register_recovered(out.id, q.qid);
                meta.lock().unwrap_or_else(PoisonError::into_inner).insert(
                    out.id,
                    SubmitMeta {
                        model: spec.model.clone(),
                        method: spec.method.name().to_string(),
                        beta: spec.beta,
                        horizon: spec.horizon as i64,
                        // The eventual results row carries the *original*
                        // submit-time provenance, like an uninterrupted run's.
                        plan_source: intern_provenance(&q.plan_source),
                        shard_reuse: intern_provenance(&q.shard_reuse),
                        tenant: spec.options.tenant.clone(),
                        fingerprint: fp,
                        submitted: Instant::now(),
                        recorded: false,
                    },
                );
                recovered.push(out.id);
            }
        }
        Ok(Self {
            db,
            scheduler,
            plans,
            store,
            models,
            registry,
            meta,
            rank_meta: Mutex::new(BTreeMap::new()),
            rng: Mutex::new(rng_from_seed(cfg.seed)),
            wal,
            recovered,
            extra_diags: Mutex::new(Vec::new()),
        })
    }

    /// The underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The session's scheduler (for native pause/resume/progress access).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The session's plan cache.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }

    /// The session's cross-query shard store (`None` when disabled via
    /// [`SessionConfig::shard_store_capacity`] = 0).
    pub fn shard_store(&self) -> Option<&ShardStore> {
        self.store.as_deref()
    }

    /// The session's model registry (parameter schemas, `SHOW MODELS`).
    pub fn models(&self) -> &ModelRegistry {
        &self.models
    }

    /// The session's journal (`None` for [`Durability::Off`]).
    pub fn wal(&self) -> Option<&SessionWal> {
        self.wal.as_deref()
    }

    /// Scheduler ids of the ASYNC queries this session resubmitted from
    /// the log at open time, in durable-id order. Poll/wait/cancel them
    /// like any live submission.
    pub fn recovered_ids(&self) -> &[QueryId] {
        &self.recovered
    }

    /// Block until every recovered query is terminal, recording the
    /// `results` rows of completed ones (like [`Session::wait`]).
    /// Returns each query's id and terminal status.
    pub fn wait_recovered(&self) -> Result<Vec<(QueryId, QueryStatus)>, DbError> {
        let ids: Vec<QueryId> = self.recovered.clone();
        let mut out = Vec::new();
        for id in ids {
            if let Some(status) = self.wait(id)? {
                out.push((id, status));
            }
        }
        Ok(out)
    }

    /// Draw an independent child stream from the session RNG (the lock
    /// is *not* held while the caller runs), so concurrent calls from
    /// multiple clients get independent, uncorrelated randomness.
    fn child_rng(&self) -> SimRng {
        let mut parent = self.rng.lock().unwrap_or_else(PoisonError::into_inner);
        split_rng(&mut parent)
    }

    /// Call a stored procedure through the session registry.
    pub fn call(&self, proc_: &str, args: &[Value]) -> Result<Value, DbError> {
        let mut rng = self.child_rng();
        self.registry.call(&self.db, proc_, args, &mut rng)
    }

    /// Execute one statement: plain SQL or the ESTIMATE dialect.
    ///
    /// * `ESTIMATE … ` (sync) → one row with the estimate and its
    ///   counters (the standard `results` row is recorded too);
    /// * `ESTIMATE … ASYNC` → one row with the scheduler `query_id`;
    /// * `EXPLAIN ESTIMATE …` → `(property, value)` rows of the resolved
    ///   plan;
    /// * `SHOW MODELS` → the model catalog with per-parameter schemas;
    /// * anything else → the plain SQL executor.
    ///
    /// Malformed dialect statements fail with [`DbError::Spec`] carrying
    /// the typed [`mlss_core::spec::SpecError`] and its byte span.
    pub fn execute(&self, sql: &str) -> Result<ExecResult, DbError> {
        self.execute_as(None, sql)
    }

    /// [`Session::execute`] on behalf of a tenant. The tenant name is
    /// **not** part of the statement language — it is stamped into the
    /// spec's [`mlss_core::spec::ExecOptions`] here, exactly as a
    /// serving layer does after its handshake, so a socketed statement
    /// and this call run the identical dispatch path. Estimation work is
    /// charged to the tenant's fair-share account and the query's
    /// `results` row carries the tenant in its `tenant` column
    /// (tenantless calls record `"-"`).
    pub fn execute_as(&self, tenant: Option<&str>, sql: &str) -> Result<ExecResult, DbError> {
        if !is_dialect(sql) {
            let res = crate::sql::execute(&self.db, sql)?;
            // Journal mutations (CREATE/INSERT/DELETE/DROP) so a
            // recovered session restores user tables. Appended *after*
            // the successful execute — a failed statement must not be
            // replayed — which leaves an at-most-once-behind window for
            // the very last statement (see `SessionWal::record_sql`).
            if !matches!(res, ExecResult::Rows { .. }) {
                if let Some(wal) = &self.wal {
                    wal.record_sql(sql)?;
                }
            }
            return Ok(res);
        }
        let schemas = self.models.schemas();
        let stmt = parse_dialect(sql, Some(&schemas)).map_err(DbError::from)?;
        match stmt {
            DialectStatement::ShowModels => Ok(show_models(&self.models)),
            DialectStatement::ShowDiagnostics => {
                let rows = self
                    .diagnostics()
                    .into_iter()
                    .flat_map(|d| {
                        let component = d.estimator.to_string();
                        d.details.into_iter().map(move |(counter, value)| {
                            vec![
                                Value::Text(component.clone()),
                                Value::Text(counter),
                                Value::Float(value),
                            ]
                        })
                    })
                    .collect();
                Ok(ExecResult::Rows {
                    columns: vec!["component".into(), "counter".into(), "value".into()],
                    rows,
                })
            }
            DialectStatement::ExplainEstimate(spec) => {
                let mut rng = self.child_rng();
                let rows = explain_spec(
                    &self.db,
                    &self.models,
                    &self.plans,
                    self.store.as_ref(),
                    Some(&self.scheduler),
                    &spec,
                    &mut rng,
                )?;
                Ok(ExecResult::Rows {
                    columns: vec!["property".into(), "value".into()],
                    rows: rows
                        .into_iter()
                        .map(|(k, v)| vec![Value::Text(k), Value::Text(v)])
                        .collect(),
                })
            }
            DialectStatement::ExplainRank(rank) => {
                let mut rng = self.child_rng();
                let rows = explain_rank(
                    &self.db,
                    &self.models,
                    &self.plans,
                    Some(&self.scheduler),
                    &rank,
                    &mut rng,
                )?;
                Ok(ExecResult::Rows {
                    columns: vec!["property".into(), "value".into()],
                    rows: rows
                        .into_iter()
                        .map(|(k, v)| vec![Value::Text(k), Value::Text(v)])
                        .collect(),
                })
            }
            DialectStatement::Rank(mut rank) => {
                // Tenant stamping mirrors the single-estimate path: the
                // race itself is charged to the tenant's fair-share
                // account, and every per-arm results row carries it.
                rank.options.tenant = tenant.map(String::from);
                for arm in &mut rank.arms {
                    arm.options.tenant = rank.options.tenant.clone();
                }
                let mut rng = self.child_rng();
                match execute_rank(
                    &self.db,
                    &self.models,
                    &self.plans,
                    Some(&self.scheduler),
                    self.wal.as_deref(),
                    &rank,
                    &mut rng,
                )? {
                    RankOutcome::Ranked { outcome, .. } => Ok(standings_rows(&outcome)),
                    RankOutcome::Submitted {
                        id,
                        handle,
                        plan_sources,
                        ..
                    } => {
                        self.rank_meta
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .insert(
                                id,
                                RankMeta {
                                    rank,
                                    handle,
                                    plan_sources,
                                    submitted: Instant::now(),
                                    recorded: false,
                                },
                            );
                        Ok(ExecResult::Rows {
                            columns: vec!["query_id".into()],
                            rows: vec![vec![Value::Int(id as i64)]],
                        })
                    }
                }
            }
            DialectStatement::Estimate(mut spec) => {
                spec.options.tenant = tenant.map(String::from);
                let mut rng = self.child_rng();
                match execute_spec(
                    &self.db,
                    &self.models,
                    &self.plans,
                    self.store.as_ref(),
                    Some(&self.scheduler),
                    self.wal.as_deref(),
                    &spec,
                    &mut rng,
                )? {
                    SpecOutcome::Estimated { est, millis, .. } => Ok(ExecResult::Rows {
                        columns: vec![
                            "model".into(),
                            "method".into(),
                            "tau".into(),
                            "variance".into(),
                            "steps".into(),
                            "n_roots".into(),
                            "millis".into(),
                            "plan_cache".into(),
                            "shard_reuse".into(),
                        ],
                        rows: vec![vec![
                            Value::Text(spec.model.clone()),
                            Value::Text(spec.method.name().to_string()),
                            Value::Float(est.tau),
                            Value::Float(est.variance),
                            Value::Int(est.steps as i64),
                            Value::Int(est.n_roots as i64),
                            Value::Int(millis),
                            Value::Text(est.plan_source.to_string()),
                            Value::Text(est.shard_reuse.to_string()),
                        ]],
                    }),
                    SpecOutcome::Submitted {
                        id,
                        plan_source,
                        shard_reuse,
                        fingerprint,
                        ..
                    } => {
                        record_submit_meta(
                            &self.meta,
                            id,
                            &spec,
                            plan_source,
                            shard_reuse,
                            fingerprint,
                        );
                        Ok(ExecResult::Rows {
                            columns: vec!["query_id".into()],
                            rows: vec![vec![Value::Int(id as i64)]],
                        })
                    }
                }
            }
        }
    }

    /// Submit an estimation query; returns its id immediately.
    pub fn submit(
        &self,
        model: &str,
        method: &str,
        beta: f64,
        horizon: i64,
        target_re: f64,
        priority: u8,
    ) -> Result<QueryId, DbError> {
        let args = [
            Value::Text(model.to_string()),
            Value::Text(method.to_string()),
            Value::Float(beta),
            Value::Int(horizon),
            Value::Float(target_re),
            Value::Int(priority as i64),
        ];
        let id = self.call("mlss_submit", &args)?;
        Ok(id.as_i64().expect("mlss_submit returns an id") as QueryId)
    }

    /// Current status of a submitted query.
    pub fn poll(&self, id: QueryId) -> Option<QueryStatus> {
        self.scheduler.poll(id)
    }

    /// Block until the query is terminal; records the `results` row for
    /// completed queries (like a successful `mlss_poll`, and with the
    /// same error behavior: a failed insert surfaces instead of silently
    /// dropping the row). `Ok(None)` means the id is unknown.
    pub fn wait(&self, id: QueryId) -> Result<Option<QueryStatus>, DbError> {
        let Some(status) = self.scheduler.wait(id) else {
            return Ok(None);
        };
        if let QueryStatus::Done(est) = &status {
            record_result(&self.db, &self.meta, &self.scheduler, &self.plans, id, est)?;
            self.record_rank_result(id)?;
        }
        Ok(Some(status))
    }

    /// Standings of an ASYNC `RANK BY` race, once it has finalized
    /// (`Ok(None)` while it races, or for ids that are not races).
    /// Reading the standings also records them — the `rankings` rows
    /// plus one `results` row per arm — exactly once, like a successful
    /// [`Session::wait`].
    pub fn rank_standings(&self, id: QueryId) -> Result<Option<RaceOutcome>, DbError> {
        self.record_rank_result(id)?;
        let metas = self
            .rank_meta
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Ok(metas.get(&id).and_then(|m| {
            m.handle
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone()
        }))
    }

    /// Record a finalized ASYNC race exactly once: the scheduled
    /// counterpart of the synchronous recording inside
    /// [`crate::dispatch::execute_rank`]. A no-op for non-race ids and
    /// for races still running.
    fn record_rank_result(&self, id: QueryId) -> Result<(), DbError> {
        let mut metas = self
            .rank_meta
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let Some(m) = metas.get_mut(&id) else {
            return Ok(());
        };
        if m.recorded {
            return Ok(());
        }
        let Some(outcome) = m
            .handle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
        else {
            return Ok(()); // still racing
        };
        let millis = self
            .scheduler
            .progress(id)
            .map(|p| p.elapsed)
            .unwrap_or_else(|| m.submitted.elapsed());
        record_rank_rows(
            &self.db,
            &m.rank,
            &m.plan_sources,
            &outcome,
            millis.as_millis() as i64,
            self.wal.as_deref(),
        )?;
        m.recorded = true;
        Ok(())
    }

    /// Cancel a query; true if the cancellation took effect.
    pub fn cancel(&self, id: QueryId) -> bool {
        self.scheduler.cancel(id)
    }

    /// Plan-cache, shard-store, scheduler-pool, and (when journaling)
    /// WAL health counters — one shared counter shape per component
    /// (the rows behind `SHOW DIAGNOSTICS`).
    pub fn diagnostics(&self) -> Vec<Diagnostics> {
        let mut diags = vec![self.plans.diagnostics()];
        if let Some(store) = &self.store {
            diags.push(store.diagnostics());
        }
        diags.push(self.scheduler.pool_diagnostics());
        if let Some(wal) = &self.wal {
            diags.push(wal.diagnostics());
        }
        // The width policy's speculation ledger (process-wide, like the
        // SIMD backend itself): how many roots batched frontiers
        // launched vs committed — the gap is speculative work thrown
        // away at chunk boundaries — and the average width they actually
        // ran at.
        let spec = mlss_core::width::snapshot();
        let effective_width = if spec.chunks > 0 {
            spec.width_sum as f64 / spec.chunks as f64
        } else {
            0.0
        };
        diags.push(Diagnostics {
            estimator: "width_policy",
            skip_events: 0,
            details: vec![
                ("frontier_chunks".into(), spec.chunks as f64),
                ("roots_launched".into(), spec.launched as f64),
                ("roots_committed".into(), spec.committed as f64),
                ("speculation_discarded".into(), spec.discarded() as f64),
                ("effective_width".into(), effective_width),
                ("reprobed".into(), mlss_core::width::reprobe_count() as f64),
            ],
        });
        // The ranking subsystem's race ledger (process-wide, like the
        // width policy): races decided, arms raced, how many froze
        // before the round cap (the boundary test doing its job), and
        // the rounds/steps actually spent.
        let races = mlss_core::ranking::snapshot();
        diags.push(Diagnostics {
            estimator: "ranking",
            skip_events: 0,
            details: vec![
                ("races".into(), races.races as f64),
                ("arms".into(), races.arms as f64),
                ("arms_frozen_early".into(), races.frozen_early as f64),
                ("rounds".into(), races.rounds as f64),
                ("steps".into(), races.steps as f64),
            ],
        });
        // Per-tenant fair-share accounts, when any tenant is registered.
        if let Some(tenants) = self.scheduler.tenant_diagnostics() {
            diags.push(tenants);
        }
        // Registered serving-layer blocks (admission control, connection
        // counters) ride last.
        let extra = self
            .extra_diags
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for source in extra.iter() {
            diags.push(source());
        }
        diags
    }

    /// Register an extra diagnostics block (e.g. a server's admission
    /// counters); it appears in [`Session::diagnostics`] and therefore
    /// in `SHOW DIAGNOSTICS`.
    pub fn add_diagnostics_source(&self, source: DiagnosticsSource) {
        self.extra_diags
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(source);
    }

    /// Register `tenant` (idempotent) and set its fair-share weight.
    /// Attained service is charged per tenant and the scheduler favors
    /// the lowest attained/weight, so a weight-4 tenant attains ~4x a
    /// weight-1 tenant's service under contention.
    pub fn set_tenant_weight(&self, tenant: &str, weight: f64) {
        self.scheduler.set_tenant_weight(tenant, weight);
    }

    /// Evict terminal queries from the scheduler and drop their recorded
    /// submission metadata. Completed-but-never-polled queries are
    /// **recorded first** — eviction must not lose a result a client
    /// never got to see; it lands in `results` like any other. Evicted
    /// ids become unknown to `poll`/`wait`. Returns the number of
    /// queries evicted.
    pub fn prune(&self) -> Result<usize, DbError> {
        // Flush pending Done results before their slots disappear.
        let unrecorded: Vec<QueryId> = {
            let metas = self.meta.lock().unwrap_or_else(PoisonError::into_inner);
            metas
                .iter()
                .filter(|(_, m)| !m.recorded)
                .map(|(id, _)| *id)
                .collect()
        };
        for id in unrecorded {
            if let Some(QueryStatus::Done(est)) = self.scheduler.poll(id) {
                record_result(&self.db, &self.meta, &self.scheduler, &self.plans, id, &est)?;
            }
        }
        // Likewise for finalized-but-never-read races: their standings
        // land in `rankings` (and their per-arm `results` rows) before
        // the handle's last owner disappears.
        let unrecorded_ranks: Vec<QueryId> = {
            let metas = self
                .rank_meta
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            metas
                .iter()
                .filter(|(_, m)| !m.recorded)
                .map(|(id, _)| *id)
                .collect()
        };
        for id in unrecorded_ranks {
            self.record_rank_result(id)?;
        }
        let evicted = self.scheduler.evict_terminal();
        self.meta
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|id, m| !m.recorded && self.scheduler.poll(*id).is_some());
        self.rank_meta
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|id, m| !m.recorded && self.scheduler.poll(*id).is_some());
        Ok(evicted)
    }
}

/// A replayed [`ResultRow`] as the `results` table's 12-column layout.
fn result_row_values(row: &ResultRow) -> Vec<Value> {
    vec![
        row.model.as_str().into(),
        row.method.as_str().into(),
        row.beta.into(),
        Value::Int(row.horizon),
        row.tau.into(),
        row.variance.into(),
        Value::Int(row.steps),
        Value::Int(row.n_roots),
        Value::Int(row.millis),
        row.plan_source.as_str().into(),
        row.shard_reuse.as_str().into(),
        row.tenant.as_str().into(),
    ]
}

/// Append the standard `results` row for a completed query exactly once.
/// `millis` reports the query's serving latency — submission to
/// completion, as measured by the scheduler — not how late the caller
/// happened to poll.
fn record_result(
    db: &Database,
    meta: &MetaMap,
    scheduler: &Scheduler,
    plans: &PlanCache,
    id: QueryId,
    est: &mlss_core::estimate::Estimate,
) -> Result<(), DbError> {
    let mut metas = meta.lock().unwrap_or_else(PoisonError::into_inner);
    let Some(m) = metas.get_mut(&id) else {
        return Ok(()); // submitted outside the session procs
    };
    if m.recorded {
        return Ok(());
    }
    if !db.has_table("results") {
        db.create_table("results", results_schema())?;
    }
    let millis = scheduler
        .progress(id)
        .map(|p| p.elapsed)
        .unwrap_or_else(|| m.submitted.elapsed());
    db.insert(
        "results",
        vec![
            m.model.as_str().into(),
            m.method.as_str().into(),
            m.beta.into(),
            Value::Int(m.horizon),
            est.tau.into(),
            est.variance.into(),
            Value::Int(est.steps as i64),
            Value::Int(est.n_roots as i64),
            Value::Int(millis.as_millis() as i64),
            m.plan_source.into(),
            m.shard_reuse.into(),
            m.tenant.as_deref().unwrap_or("-").into(),
        ],
    )?;
    m.recorded = true;
    // Feed the observed steps/root regime back into the width memo so a
    // family whose cost shape drifted >2x from its probed regime gets
    // re-probed on the next width resolution.
    if est.n_roots > 0 {
        plans.observe_regime(m.fingerprint, est.steps as f64 / est.n_roots as f64);
    }
    Ok(())
}

/// `mlss_submit(model, method, beta, horizon, target_re [, priority [, seed]])`
/// — the positional shim over the async spec dispatch path.
struct MlssSubmit {
    scheduler: Arc<Scheduler>,
    plans: Arc<PlanCache>,
    store: Option<Arc<ShardStore>>,
    meta: Arc<MetaMap>,
    models: Arc<ModelRegistry>,
    wal: Option<Arc<SessionWal>>,
}

impl StoredProcedure for MlssSubmit {
    fn name(&self) -> &str {
        "mlss_submit"
    }

    fn arity(&self) -> (usize, usize) {
        (5, 7)
    }

    fn execute(&self, db: &Database, args: &[Value], rng: &mut SimRng) -> Result<Value, DbError> {
        let proc_ = self.name();
        let mut spec = QuerySpec::new(
            arg_text(proc_, args, 0)?,
            arg_f64(proc_, args, 2)?,
            arg_i64(proc_, args, 3)?.max(0) as u64,
            arg_f64(proc_, args, 4)?,
        );
        spec.method = Method::parse(arg_text(proc_, args, 1)?).map_err(DbError::from)?;
        if arg_i64(proc_, args, 3)? < 1 {
            return Err(DbError::Proc("horizon must be ≥ 1".into()));
        }
        if !(spec.target_re.is_finite() && spec.target_re > 0.0) {
            return Err(DbError::Proc("target_re must be positive".into()));
        }
        if args.get(5).is_some() {
            let p = arg_i64(proc_, args, 5)?;
            if !(0..=255).contains(&p) {
                return Err(DbError::Proc("priority must be in 0..=255".into()));
            }
            spec.options.priority = p as u8;
        }
        if args.get(6).is_some() {
            spec.options.seed = Some(arg_i64(proc_, args, 6)? as u64);
        }
        spec.options.mode = ExecMode::Async;

        match execute_spec(
            db,
            &self.models,
            &self.plans,
            self.store.as_ref(),
            Some(&self.scheduler),
            self.wal.as_deref(),
            &spec,
            rng,
        )? {
            SpecOutcome::Submitted {
                id,
                plan_source,
                shard_reuse,
                fingerprint,
                ..
            } => {
                record_submit_meta(&self.meta, id, &spec, plan_source, shard_reuse, fingerprint);
                Ok(Value::Int(id as i64))
            }
            SpecOutcome::Estimated { .. } => unreachable!("async spec cannot estimate inline"),
        }
    }
}

/// `mlss_poll(id)` — `τ̂` (float) once done, else a status string.
struct MlssPoll {
    scheduler: Arc<Scheduler>,
    plans: Arc<PlanCache>,
    meta: Arc<MetaMap>,
}

impl StoredProcedure for MlssPoll {
    fn name(&self) -> &str {
        "mlss_poll"
    }

    fn arity(&self) -> (usize, usize) {
        (1, 1)
    }

    fn execute(&self, db: &Database, args: &[Value], _rng: &mut SimRng) -> Result<Value, DbError> {
        let id = arg_i64(self.name(), args, 0)? as QueryId;
        let status = self
            .scheduler
            .poll(id)
            .ok_or_else(|| DbError::Proc(format!("unknown query id {id}")))?;
        Ok(match status {
            QueryStatus::Done(est) => {
                record_result(db, &self.meta, &self.scheduler, &self.plans, id, &est)?;
                Value::Float(est.tau)
            }
            QueryStatus::Queued => Value::Text("queued".into()),
            QueryStatus::Running => Value::Text("running".into()),
            QueryStatus::Paused => Value::Text("paused".into()),
            QueryStatus::Cancelled => Value::Text("cancelled".into()),
            QueryStatus::Failed(msg) => Value::Text(format!("failed: {msg}")),
        })
    }
}

/// `mlss_cancel(id)` — 1 if the cancellation took effect, else 0.
struct MlssCancel {
    scheduler: Arc<Scheduler>,
}

impl StoredProcedure for MlssCancel {
    fn name(&self) -> &str {
        "mlss_cancel"
    }

    fn arity(&self) -> (usize, usize) {
        (1, 1)
    }

    fn execute(&self, _db: &Database, args: &[Value], _rng: &mut SimRng) -> Result<Value, DbError> {
        let id = arg_i64(self.name(), args, 0)? as QueryId;
        Ok(Value::Int(self.scheduler.cancel(id) as i64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc::results_count;

    fn session() -> Session {
        Session::new(SessionConfig {
            workers: 2,
            slice_budget: 8_192,
            seed: 42,
            ..SessionConfig::default()
        })
        .unwrap()
    }

    fn submit_args(model: &str, method: &str, beta: f64, horizon: i64, re: f64) -> Vec<Value> {
        vec![
            model.into(),
            method.into(),
            beta.into(),
            Value::Int(horizon),
            re.into(),
        ]
    }

    #[test]
    fn registry_lists_session_procs() {
        let s = session();
        let names: Vec<String> = s.registry.names().iter().map(|n| n.to_string()).collect();
        for p in ["mlss_submit", "mlss_poll", "mlss_cancel", "mlss_estimate"] {
            assert!(names.iter().any(|n| n == p), "missing proc {p}");
        }
    }

    #[test]
    fn submit_poll_roundtrip_records_result() {
        let s = session();
        let id = s
            .call("mlss_submit", &submit_args("walk", "srs", 6.0, 50, 0.3))
            .unwrap()
            .as_i64()
            .unwrap() as QueryId;
        // Poll until done; the first done-poll returns τ̂ and records it.
        let tau = loop {
            match s.call("mlss_poll", &[Value::Int(id as i64)]).unwrap() {
                Value::Float(tau) => break tau,
                Value::Text(status) => {
                    assert!(
                        matches!(status.as_str(), "queued" | "running"),
                        "unexpected status {status}"
                    );
                    std::thread::yield_now();
                }
                other => panic!("unexpected poll result {other:?}"),
            }
        };
        assert!((0.0..=1.0).contains(&tau));
        assert_eq!(results_count(s.db()).unwrap(), 1);
        // Polling again must not duplicate the results row.
        let again = s.call("mlss_poll", &[Value::Int(id as i64)]).unwrap();
        assert!(matches!(again, Value::Float(_)));
        assert_eq!(results_count(s.db()).unwrap(), 1);
        // Prune evicts the consumed query; the results row survives.
        assert_eq!(s.prune().unwrap(), 1);
        assert!(s.poll(id).is_none());
        assert_eq!(results_count(s.db()).unwrap(), 1);
    }

    #[test]
    fn polled_results_surface_plan_cache_provenance() {
        let s = session();
        // First gmlss submit schedules the pilot as its first slice
        // (miss), the second reuses the plan (hit); SRS needs no plan.
        let a = s.submit("ar", "gmlss", 3.0, 40, 0.5, 0).unwrap();
        s.wait(a).unwrap().unwrap();
        let b = s.submit("ar", "gmlss", 3.0, 40, 0.5, 0).unwrap();
        s.wait(b).unwrap().unwrap();
        let c = s.submit("walk", "srs", 6.0, 50, 0.5, 0).unwrap();
        s.wait(c).unwrap().unwrap();
        let rows: Vec<(String, String)> = s
            .db()
            .with_table("results", |t| {
                t.scan()
                    .map(|row| {
                        (
                            row[9].as_str().unwrap().to_string(),
                            row[10].as_str().unwrap().to_string(),
                        )
                    })
                    .collect()
            })
            .unwrap();
        let sources: Vec<&str> = rows.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(sources, vec!["miss", "hit", "none"]);
        // Shard-store provenance rides alongside: the first gmlss run is
        // cold, the identical repeat is served from the store, and the
        // walk query's key has no entry yet.
        let reuse: Vec<&str> = rows.iter().map(|(_, r)| r.as_str()).collect();
        assert_eq!(reuse, vec!["cold", "stored", "cold"]);
    }

    #[test]
    fn cold_submit_returns_before_the_pilot_runs() {
        // The carried-over ROADMAP item: a cold ASYNC submission must not
        // pay the pilot synchronously. With a paused-capacity scheduler
        // (workers busy elsewhere is hard to stage; instead check the
        // cache is still cold right after submit returns).
        let s = session();
        let id = s.submit("ar", "gmlss", 3.5, 40, 0.4, 0).unwrap();
        // Submit returned; the pilot may not have started yet. The miss
        // is only counted when the first slice derives the plan.
        // (We can't assert misses()==0 without racing the pool, but we
        // can assert the submit path itself recorded a deferred miss.)
        let est = s.wait(id).unwrap().unwrap();
        assert!(est.estimate().is_some());
        assert_eq!(s.plan_cache().misses(), 1, "first slice ran the pilot");
        let sources: Vec<String> = s
            .db()
            .with_table("results", |t| {
                t.scan()
                    .map(|row| row[9].as_str().unwrap().to_string())
                    .collect()
            })
            .unwrap();
        assert_eq!(sources, vec!["miss"]);
    }

    #[test]
    fn prune_records_unpolled_completions_before_evicting() {
        let s = session();
        let id = s.submit("walk", "srs", 6.0, 50, 0.3, 0).unwrap();
        // Let it finish without ever polling…
        while !s
            .scheduler()
            .poll(id)
            .map(|st| st.is_terminal())
            .unwrap_or(false)
        {
            std::thread::yield_now();
        }
        assert_eq!(results_count(s.db()).unwrap_or(0), 0, "not yet recorded");
        // …then prune: the result must be flushed, not destroyed.
        assert_eq!(s.prune().unwrap(), 1);
        assert!(s.poll(id).is_none());
        assert_eq!(results_count(s.db()).unwrap(), 1);
    }

    #[test]
    fn concurrent_submissions_share_the_plan_cache() {
        let s = session();
        // Same (model, β, horizon, method) four times: one pilot (the
        // deferred builds are single-flight), the rest cache hits.
        let mut ids = Vec::new();
        for _ in 0..4 {
            ids.push(
                s.submit("ar", "gmlss", 3.0, 40, 0.5, 0)
                    .expect("submit succeeds"),
            );
        }
        for id in ids {
            let status = s.wait(id).unwrap().unwrap();
            let est = status.estimate().expect("queries complete");
            assert!((0.0..=1.0).contains(&est.tau));
        }
        assert_eq!(s.plan_cache().misses(), 1, "one pilot only");
        assert!(s.plan_cache().hits() >= 3, "repeat queries hit the cache");
        assert_eq!(results_count(s.db()).unwrap(), 4);
        // Diagnostics surface the counters.
        let diags = s.diagnostics();
        let cache = diags.iter().find(|d| d.estimator == "plan_cache").unwrap();
        assert!(cache
            .details
            .iter()
            .any(|(k, v)| k == "plan_cache_hits" && *v >= 3.0));
    }

    #[test]
    fn synchronous_and_scheduled_paths_share_plans() {
        let s = session();
        // Synchronous estimate derives and caches the plan…
        let tau = s
            .call("mlss_estimate", &submit_args("ar", "gmlss", 3.0, 40, 0.5))
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((0.0..=1.0).contains(&tau));
        assert_eq!(s.plan_cache().misses(), 1);
        // …and the scheduled path reuses it.
        let id = s.submit("ar", "gmlss", 3.0, 40, 0.5, 0).unwrap();
        assert!(s.wait(id).unwrap().unwrap().estimate().is_some());
        assert_eq!(s.plan_cache().misses(), 1);
        assert!(s.plan_cache().hits() >= 1);
    }

    #[test]
    fn cancel_via_proc() {
        let s = Session::new(SessionConfig {
            workers: 1,
            slice_budget: 4_096,
            seed: 9,
            ..SessionConfig::default()
        })
        .unwrap();
        // Tight target ⇒ long-running query we can cancel.
        let id = s.submit("walk", "srs", 6.0, 60, 0.01, 0).unwrap();
        let cancelled = s
            .call("mlss_cancel", &[Value::Int(id as i64)])
            .unwrap()
            .as_i64()
            .unwrap();
        assert_eq!(cancelled, 1);
        loop {
            match s.call("mlss_poll", &[Value::Int(id as i64)]).unwrap() {
                Value::Text(status) if status == "cancelled" => break,
                Value::Text(status) => {
                    assert!(matches!(status.as_str(), "queued" | "running"));
                    std::thread::yield_now();
                }
                other => panic!("cancelled query produced {other:?}"),
            }
        }
        // Cancelling a terminal query reports 0.
        let again = s
            .call("mlss_cancel", &[Value::Int(id as i64)])
            .unwrap()
            .as_i64()
            .unwrap();
        assert_eq!(again, 0);
        assert_eq!(results_count(s.db()).unwrap_or(0), 0);
    }

    #[test]
    fn submit_validates_arguments() {
        let s = session();
        // Unknown method.
        assert!(s
            .call("mlss_submit", &submit_args("walk", "nope", 6.0, 50, 0.3))
            .is_err());
        // Wrong arity.
        assert!(matches!(
            s.call(
                "mlss_submit",
                &submit_args("walk", "srs", 6.0, 50, 0.3)[..2]
            ),
            Err(DbError::ProcArity { .. })
        ));
        // Wrong arg type.
        let mut bad = submit_args("walk", "srs", 6.0, 50, 0.3);
        bad[0] = Value::Int(7);
        assert!(matches!(
            s.call("mlss_submit", &bad),
            Err(DbError::ProcArgType { index: 0, .. })
        ));
        // Unknown poll id.
        assert!(s.call("mlss_poll", &[Value::Int(404)]).is_err());
    }

    #[test]
    fn execute_runs_dialect_and_plain_sql() {
        let s = session();
        // Sync ESTIMATE returns an estimate row and records a result.
        let res = s
            .execute("ESTIMATE DURABILITY OF walk(beta=6) WITHIN 50 USING srs TARGET RE 30%")
            .unwrap();
        let row = &res.rows()[0];
        assert_eq!(row[0].as_str(), Some("walk"));
        assert_eq!(row[1].as_str(), Some("srs"));
        let tau = row[2].as_f64().unwrap();
        assert!((0.0..=1.0).contains(&tau));
        assert_eq!(results_count(s.db()).unwrap(), 1);
        // Plain SQL sees the recorded row.
        let res = s.execute("SELECT COUNT(*) FROM results").unwrap();
        assert_eq!(res.scalar(), Some(&Value::Int(1)));
        // SHOW MODELS lists every registered parameter.
        let res = s.execute("SHOW MODELS").unwrap();
        assert!(res.rows().len() >= 8);
        // Async ESTIMATE returns a query id that polls to completion.
        let res = s
            .execute("ESTIMATE DURABILITY OF walk(beta=6) WITHIN 50 USING srs TARGET RE 30% ASYNC")
            .unwrap();
        let id = res.scalar().unwrap().as_i64().unwrap() as QueryId;
        assert!(s.wait(id).unwrap().unwrap().estimate().is_some());
        assert_eq!(results_count(s.db()).unwrap(), 2);
    }

    #[test]
    fn execute_reports_spanned_spec_errors() {
        let s = session();
        let sql = "ESTIMATE DURABILITY OF walk(beta=6, wat=1) WITHIN 50 TARGET RE 30%";
        match s.execute(sql) {
            Err(DbError::Spec(e)) => {
                assert!(matches!(
                    e.kind,
                    mlss_core::spec::SpecErrorKind::UnknownParam { .. }
                ));
                let span = e.span.unwrap();
                assert_eq!(&sql[span.start..span.end], "wat");
            }
            other => panic!("expected Spec error, got {other:?}"),
        }
    }

    #[test]
    fn explain_reports_the_resolved_plan() {
        let s = session();
        let res = s
            .execute(
                "EXPLAIN ESTIMATE DURABILITY OF ar(beta=3) WITHIN 40 \
                 USING auto TARGET RE 50% WITH (batch_width=16)",
            )
            .unwrap();
        let props: BTreeMap<String, String> = res
            .rows()
            .iter()
            .map(|r| {
                (
                    r[0].as_str().unwrap().to_string(),
                    r[1].as_str().unwrap().to_string(),
                )
            })
            .collect();
        assert_eq!(props["method"], "auto");
        assert!(
            props["resolved_method"] == "gmlss" || props["resolved_method"] == "srs",
            "auto must resolve concretely"
        );
        assert_eq!(props["plan_cache"], "miss", "cold cache: the pilot ran");
        assert_eq!(props["batch_width"], "16");
        assert_eq!(props["driver"], "sequential");
        assert!(props.contains_key("level_plan"));
        // The EXPLAIN warmed the cache: executing now hits.
        let res = s
            .execute(
                "EXPLAIN ESTIMATE DURABILITY OF ar(beta=3) WITHIN 40 \
                 USING auto TARGET RE 50% WITH (batch_width=16)",
            )
            .unwrap();
        let cache_row = res
            .rows()
            .iter()
            .find(|r| r[0].as_str() == Some("plan_cache"))
            .unwrap();
        assert_eq!(cache_row[1].as_str(), Some("hit"));
    }
}
