//! JSON persistence with crash-safe writes and corruption recovery.
//!
//! Layout: `<dir>/manifest.json` lists table names; each table lives in
//! `<dir>/<name>.table.json`. Writes go through a temp file + atomic
//! rename so a crash never leaves a half-written table in place; loads
//! skip corrupt files and report them instead of failing wholesale.

use crate::engine::{Database, DbError};
use crate::table::Table;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};

#[derive(Debug, Serialize, Deserialize)]
struct Manifest {
    version: u32,
    tables: Vec<String>,
}

/// Outcome of a [`load`]: the database plus any skipped (corrupt/missing)
/// tables.
#[derive(Debug)]
pub struct LoadReport {
    /// The recovered database.
    pub db: Database,
    /// Tables that could not be recovered, with reasons.
    pub skipped: Vec<(String, String)>,
}

fn table_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.table.json"))
}

/// Atomically write `bytes` to `path` via a sibling temp file.
fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

/// Persist the whole database into `dir` (created if missing).
pub fn save(db: &Database, dir: &Path) -> Result<(), DbError> {
    fs::create_dir_all(dir)?;
    let names = db.table_names();
    for name in &names {
        let table = db.snapshot(name)?;
        let bytes = serde_json::to_vec(&table)
            .map_err(|e| DbError::Corrupt(format!("serialize '{name}': {e}")))?;
        atomic_write(&table_path(dir, name), &bytes)?;
    }
    let manifest = Manifest {
        version: 1,
        tables: names,
    };
    let bytes = serde_json::to_vec_pretty(&manifest)
        .map_err(|e| DbError::Corrupt(format!("serialize manifest: {e}")))?;
    atomic_write(&dir.join("manifest.json"), &bytes)?;
    Ok(())
}

/// Load a database from `dir`, skipping tables that fail to parse.
pub fn load(dir: &Path) -> Result<LoadReport, DbError> {
    let manifest_bytes = fs::read(dir.join("manifest.json"))?;
    let manifest: Manifest = serde_json::from_slice(&manifest_bytes)
        .map_err(|e| DbError::Corrupt(format!("manifest: {e}")))?;

    let db = Database::new();
    let mut skipped = Vec::new();
    for name in manifest.tables {
        match fs::read(table_path(dir, &name)) {
            Err(e) => skipped.push((name, format!("read: {e}"))),
            Ok(bytes) => match serde_json::from_slice::<Table>(&bytes) {
                Err(e) => skipped.push((name, format!("parse: {e}"))),
                Ok(table) => db.install(name, table),
            },
        }
    }
    Ok(LoadReport { db, skipped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::{DataType::*, Value};

    fn sample_db() -> Database {
        let db = Database::new();
        let schema = Schema::new(vec![
            ColumnDef::new("id", Int),
            ColumnDef::new("name", Text),
        ])
        .unwrap();
        db.create_table("users", schema).unwrap();
        db.insert("users", vec![1i64.into(), "ann".into()]).unwrap();
        db.insert("users", vec![2i64.into(), "bob".into()]).unwrap();
        db
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mlssdb-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip() {
        let dir = tmpdir("roundtrip");
        let db = sample_db();
        save(&db, &dir).unwrap();
        let report = load(&dir).unwrap();
        assert!(report.skipped.is_empty());
        let n = report.db.with_table("users", |t| t.len()).unwrap();
        assert_eq!(n, 2);
        let rows: Vec<Vec<Value>> = report
            .db
            .with_table("users", |t| t.scan().map(|r| r.to_vec()).collect())
            .unwrap();
        assert_eq!(rows[0][1], Value::Text("ann".into()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_table_is_skipped_not_fatal() {
        let dir = tmpdir("corrupt");
        let db = sample_db();
        save(&db, &dir).unwrap();
        // Truncate the table file mid-way (simulated crash).
        let path = table_path(&dir, "users");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let report = load(&dir).unwrap();
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].0, "users");
        assert!(!report.db.has_table("users"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_errors() {
        let dir = tmpdir("missing");
        fs::create_dir_all(&dir).unwrap();
        assert!(load(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_overwrites_cleanly() {
        let dir = tmpdir("overwrite");
        let db = sample_db();
        save(&db, &dir).unwrap();
        db.insert("users", vec![3i64.into(), "cat".into()]).unwrap();
        save(&db, &dir).unwrap();
        let report = load(&dir).unwrap();
        assert_eq!(report.db.with_table("users", |t| t.len()).unwrap(), 3);
        let _ = fs::remove_dir_all(&dir);
    }
}
