//! The **one compile-and-dispatch path** every estimation entry point
//! flows through.
//!
//! `ESTIMATE DURABILITY …` statements, the positional stored-procedure
//! shims (`mlss_estimate`, `mlss_submit`), and the native
//! [`crate::session::Session`] API all compile their inputs into a
//! [`QuerySpec`] and call [`execute_spec`]: the spec is validated against
//! the model's schema, the model is built from its effective parameters,
//! and the query runs on the driver its options select — the sequential
//! or parallel driver for `Sync`, the shared scheduler for `Async` (with
//! plan derivation deferred to the query's first slice on a cold cache).
//! Synchronous executions append the standard `results` row here, so
//! every front end records identically.
//!
//! [`explain_spec`] resolves the same spec without running it — the
//! engine behind `EXPLAIN ESTIMATE` — and [`show_models`] renders the
//! registry's parameter schemas as rows for `SHOW MODELS`.

use crate::durability::SessionWal;
use crate::engine::{Database, DbError};
use crate::proc::{results_schema, ModelRegistry, PlanContext, ProcEstimate};
use crate::sql::exec::ExecResult;
use crate::value::Value;
use mlss_core::plan_cache::PlanCache;
use mlss_core::planner::peek_reuse;
use mlss_core::prelude::SimRng;
use mlss_core::rng::StreamFactory;
use mlss_core::scheduler::{QueryId, Scheduler};
use mlss_core::shard_store::{shard_key, ShardStore};
use mlss_core::spec::{ExecMode, QuerySpec};
use rand::RngExt;
use std::sync::Arc;
use std::time::Instant;

/// What executing a spec produced.
pub enum SpecOutcome {
    /// A synchronous run: the estimate, already recorded in `results`.
    Estimated {
        /// Point estimate `τ̂`.
        tau: f64,
        /// The full outcome (variance, steps, roots, plan provenance).
        est: ProcEstimate,
        /// Wall-clock milliseconds the run took.
        millis: i64,
    },
    /// An asynchronous submission: the scheduler query id.
    Submitted {
        /// Scheduler query id (poll/wait/cancel handle).
        id: QueryId,
        /// The RNG seed the query runs under (pinned or drawn).
        seed: u64,
        /// Plan provenance at submit time: `"hit"` (warm plan), `"miss"`
        /// (plan derivation scheduled as the query's first slice), or
        /// `"none"` (SRS).
        plan_source: &'static str,
        /// Shard-store provenance at submit time: `"stored"` (answered
        /// from the store, the query completed instantly), `"warm"`
        /// (the job resumes a stored checkpoint), `"cold"` (store
        /// consulted, no usable entry), or `"none"` (no store).
        shard_reuse: &'static str,
        /// Plan-cache fingerprint of the query family, so completion
        /// paths can feed the observed steps/root regime back into the
        /// width memo (the drift-triggered re-probe policy).
        fingerprint: u64,
    },
}

/// Execute a validated spec through the single dispatch path. `scheduler`
/// is required for `ASYNC` specs; synchronous specs run on the calling
/// thread (sequential, batched, or parallel driver per the options) and
/// record their `results` row before returning. `store` enables the
/// cross-query reuse planner (serve-from-store / warm-start / cold with
/// checkpoint deposit). With `wal`, synchronous rows are journaled
/// before they become visible and ASYNC submissions are journaled with
/// their full durable identity.
#[allow(clippy::too_many_arguments)]
pub fn execute_spec(
    db: &Database,
    models: &ModelRegistry,
    plans: &Arc<PlanCache>,
    store: Option<&Arc<ShardStore>>,
    scheduler: Option<&Scheduler>,
    wal: Option<&SessionWal>,
    spec: &QuerySpec,
    rng: &mut SimRng,
) -> Result<SpecOutcome, DbError> {
    spec.validate().map_err(DbError::from)?;
    match spec.options.mode {
        ExecMode::Sync => {
            let started = Instant::now();
            let (runner, fp, _) = models.build_spec(db, spec)?;
            let ctx = PlanContext {
                cache: Arc::clone(plans),
                fingerprint: fp,
                store: store.map(Arc::clone),
            };
            // A pinned seed runs on the worker-0-canonical stream, so a
            // sync `WITH (seed=…)` run in budget mode is bit-identical
            // to the async submission with the same seed.
            let mut pinned;
            let rng = match spec.options.seed {
                Some(s) => {
                    pinned = StreamFactory::new(s).stream(0);
                    &mut pinned
                }
                None => rng,
            };
            let est = runner.estimate(spec, &ctx, rng)?;
            let millis = started.elapsed().as_millis() as i64;
            record_estimate_row(db, spec, &est, millis, wal)?;
            Ok(SpecOutcome::Estimated {
                tau: est.tau,
                est,
                millis,
            })
        }
        ExecMode::Async => {
            let scheduler = scheduler.ok_or_else(|| {
                DbError::Proc("ASYNC estimation requires a session scheduler".into())
            })?;
            let seed = spec.options.seed.unwrap_or_else(|| rng.random::<u64>());
            let (runner, fp, _) = models.build_spec(db, spec)?;
            let ctx = PlanContext {
                cache: Arc::clone(plans),
                fingerprint: fp,
                store: store.map(Arc::clone),
            };
            let out = runner.submit(scheduler, spec, seed, &ctx)?;
            if let Some(wal) = wal {
                wal.record_async_submit(out.id, spec, seed, out.plan_source, out.shard_reuse);
            }
            Ok(SpecOutcome::Submitted {
                id: out.id,
                seed,
                plan_source: out.plan_source,
                shard_reuse: out.shard_reuse,
                fingerprint: fp,
            })
        }
    }
}

/// Append the standard `results` row for a synchronous estimate. With a
/// journal, the row is WAL-appended **before** the insert (write-ahead:
/// a visible row is always durable).
pub(crate) fn record_estimate_row(
    db: &Database,
    spec: &QuerySpec,
    est: &ProcEstimate,
    millis: i64,
    wal: Option<&SessionWal>,
) -> Result<(), DbError> {
    if let Some(wal) = wal {
        wal.record_result_row(mlss_store::ResultRow {
            model: spec.model.clone(),
            method: spec.method.name().to_string(),
            beta: spec.beta,
            horizon: spec.horizon as i64,
            tau: est.tau,
            variance: est.variance,
            steps: est.steps as i64,
            n_roots: est.n_roots as i64,
            millis,
            plan_source: est.plan_source.to_string(),
            shard_reuse: est.shard_reuse.to_string(),
            tenant: tenant_column(spec).to_string(),
        })?;
    }
    if !db.has_table("results") {
        db.create_table("results", results_schema())?;
    }
    db.insert(
        "results",
        vec![
            spec.model.as_str().into(),
            spec.method.name().into(),
            spec.beta.into(),
            Value::Int(spec.horizon as i64),
            est.tau.into(),
            est.variance.into(),
            Value::Int(est.steps as i64),
            Value::Int(est.n_roots as i64),
            Value::Int(millis),
            est.plan_source.into(),
            est.shard_reuse.into(),
            tenant_column(spec).into(),
        ],
    )?;
    Ok(())
}

/// The `tenant` column value for a spec (`"-"` for tenantless
/// statements, so the column is always populated).
pub(crate) fn tenant_column(spec: &QuerySpec) -> &str {
    spec.options.tenant.as_deref().unwrap_or("-")
}

/// Resolve a spec without running it: the rows `EXPLAIN ESTIMATE …`
/// returns. Derives the level plan through the shared cache (the pilot
/// runs — once — on a cold cache; re-EXPLAINing or executing afterwards
/// hits), applies the `auto` resolution rule, and reports the driver and
/// effective batch width the statement would execute with.
pub fn explain_spec(
    db: &Database,
    models: &ModelRegistry,
    plans: &Arc<PlanCache>,
    store: Option<&Arc<ShardStore>>,
    scheduler: Option<&Scheduler>,
    spec: &QuerySpec,
    rng: &mut SimRng,
) -> Result<Vec<(String, String)>, DbError> {
    spec.validate().map_err(DbError::from)?;
    let (runner, fp, params) = models.build_spec(db, spec)?;
    let ctx = PlanContext {
        cache: Arc::clone(plans),
        fingerprint: fp,
        store: store.map(Arc::clone),
    };
    let mut pinned;
    let rng = match spec.options.seed {
        Some(s) => {
            pinned = StreamFactory::new(s).stream(0);
            &mut pinned
        }
        None => rng,
    };
    let res = runner.resolve_plan(spec, &ctx, rng)?;

    let asynchronous = spec.options.mode == ExecMode::Async;
    let mut rows: Vec<(String, String)> = Vec::new();
    let mut push = |k: &str, v: String| rows.push((k.to_string(), v));
    push(
        "statement",
        format!(
            "ESTIMATE DURABILITY ({})",
            if asynchronous { "async" } else { "sync" }
        ),
    );
    push("model", spec.model.clone());
    push(
        "params",
        params
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    push("beta", format!("{}", spec.beta));
    push("horizon", format!("{}", spec.horizon));
    push("target_re", format!("{}", spec.target_re));
    push("method", spec.method.name().to_string());
    push("resolved_method", res.resolved.name().to_string());
    match res.resolved.plan() {
        Some(plan) => {
            push("levels", format!("{}", plan.num_levels()));
            push(
                "level_plan",
                format!(
                    "[{}]",
                    plan.interior()
                        .iter()
                        .map(|b| format!("{b:.4}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            );
            push("tau_hint", format!("{}", res.tau_hint));
        }
        None => {
            push("levels", "-".into());
            push("level_plan", "none".into());
        }
    }
    push("plan_cache", res.plan_source.to_string());
    // The reuse planner's verdict, previewed against the live store.
    // `peek_reuse` reads without side effects — no hit/miss counters,
    // no LRU touch, no shard clone — so EXPLAIN never perturbs SHOW
    // DIAGNOSTICS or the store's eviction order. The replayability rule
    // mirrors the execution paths': pinned seeds only reuse on the
    // synchronous sequential driver.
    push(
        "reuse",
        match store {
            None => "off".into(),
            Some(s) => {
                let key = shard_key(fp, res.resolved.name(), res.resolved.plan());
                let replayable = !asynchronous && spec.options.threads <= 1;
                peek_reuse(s, &key, spec.target_re, spec.options.seed, replayable).describe(fp)
            }
        },
    );
    push(
        "plan_pilot",
        match (res.plan_source, asynchronous) {
            ("none", _) => "not needed".into(),
            ("hit", _) => "cached".into(),
            (_, true) => "scheduled as the query's first slice".into(),
            (_, false) => "inline before the run".into(),
        },
    );
    let width = if asynchronous {
        spec.options
            .batch_width
            .or_else(|| scheduler.map(|s| s.config().batch_width))
            .unwrap_or(0)
    } else {
        spec.options.batch_width.unwrap_or(0)
    };
    push(
        "driver",
        if asynchronous {
            match scheduler {
                Some(s) => format!("scheduler(workers={})", s.config().workers),
                None => "scheduler (no session pool attached)".into(),
            }
        } else if spec.options.threads > 1 {
            format!("parallel(threads={})", spec.options.threads)
        } else {
            "sequential".into()
        },
    );
    push(
        "batch_width",
        if width == 0 {
            "0 (scalar)".into()
        } else if width == mlss_core::width::AUTO_WIDTH {
            "auto".into()
        } else {
            format!("{width}")
        },
    );
    // The width policy's resolution: what the statement will actually
    // launch at, and where that number came from. For `auto` the probe
    // (or its memoized winner) runs right here, so EXPLAIN warms the
    // width memo exactly like executing would.
    let default_width = if asynchronous {
        scheduler.map(|s| s.config().batch_width).unwrap_or(0)
    } else {
        0
    };
    let (resolved_width, width_src) = runner.resolve_width(spec, &ctx, default_width);
    push(
        "width",
        if width == mlss_core::width::AUTO_WIDTH {
            format!("auto -> {resolved_width} ({width_src})")
        } else {
            format!("{resolved_width} ({width_src})")
        },
    );
    push(
        "seed",
        match spec.options.seed {
            Some(s) => format!("{s}"),
            None => "from session stream".into(),
        },
    );
    if asynchronous {
        push("priority", format!("{}", spec.options.priority));
    }
    Ok(rows)
}

/// The `SHOW MODELS` catalog: one row per declared parameter of every
/// registered model.
pub fn show_models(models: &ModelRegistry) -> ExecResult {
    let mut rows = Vec::new();
    for schema in models.schemas() {
        for p in &schema.params {
            rows.push(vec![
                Value::Text(schema.name.to_string()),
                Value::Text(p.name.to_string()),
                Value::Text(p.ty.name().to_string()),
                Value::Float(p.default),
                Value::Float(p.min),
                Value::Float(p.max),
                Value::Text(p.doc.to_string()),
            ]);
        }
    }
    ExecResult::Rows {
        columns: vec![
            "model".into(),
            "param".into(),
            "type".into(),
            "default".into(),
            "min".into(),
            "max".into(),
            "doc".into(),
        ],
        rows,
    }
}
